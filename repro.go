// Package repro is a Go reproduction of "Completing the Node-Averaged
// Complexity Landscape of LCLs on Trees" (Balliu, Brandt, Kuhn, Olivetti,
// Schmid; PODC 2024, arXiv:2405.01366).
//
// # Architecture
//
// Execution is organized around two public APIs:
//
//   - The simulation engine (internal/sim): a synchronous LOCAL-model
//     simulator configured via functional options — sim.NewEngine(
//     sim.WithIDs(...), sim.WithInputs(...), sim.WithMaxRounds(...),
//     sim.WithContext(ctx), sim.WithParallelism(n)).Run(tree, alg). The
//     parallel backend steps the nodes of each round across a worker pool;
//     the synchronous-round barrier makes this semantics-preserving, so
//     sequential and parallel runs produce bit-identical rounds, outputs,
//     and message counts. Runs honor context cancellation at every round.
//
//   - The experiment registry (internal/exp, re-exported here): every
//     result-regenerating computation of the paper is a registered
//     Experiment with quick/standard/stress presets and a context-aware Run
//     returning a JSON-native Result. Discover them with Experiments or
//     LookupExperiment and run them programmatically, or from the shell via
//     cmd/experiments (-list, -run <name>, -preset, -json, -parallel).
//
// The substrate packages provide:
//
//   - the LOCAL-model engine with per-node termination rounds and
//     node-averaged complexity accounting (internal/sim);
//   - the k-hierarchical 2½/3½-coloring LCLs, their verifier, and the
//     generic phase algorithm of Section 4.1 (internal/hierarchy);
//   - the weighted problems Π^Z_{Δ,d,k} of Definition 22 with both
//     upper-bound algorithms and the Definition-25 lower-bound constructions
//     (internal/weighted, internal/dfree, internal/decomp);
//   - the Section-10 weight-augmented 2½-coloring closing the Θ(n^{1/k})
//     points (internal/labeling);
//   - the landscape mathematics: α₁ exponents, efficiency factors, and the
//     density parameter searches behind Theorems 1 and 6
//     (internal/landscape);
//   - the Section-11 decidability machinery for path LCLs
//     (internal/pathlcl).
//
// The context-free driver functions below (Hierarchical35, Weighted25, ...)
// are the legacy entry points, kept stable for downstream users and the
// repository-level benchmarks; each is a thin wrapper over the corresponding
// registry driver.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/measure"
)

// ExpResult is a scaling-experiment outcome: a formatted table, the fitted
// exponent, and the paper's exponent(s).
type ExpResult = core.ExpResult

// Table is a formatted result table.
type Table = measure.Table

// Experiment is a registered, runnable scenario; see the internal/exp
// package documentation.
type Experiment = exp.Experiment

// RunConfig parameterizes one registry experiment run (preset, sweep
// override, seed, simulator parallelism).
type RunConfig = exp.RunConfig

// RunResult is the JSON-native outcome of a registry experiment run.
type RunResult = exp.Result

// Experiments returns every registered experiment in registration order.
func Experiments() []*Experiment { return exp.List() }

// LookupExperiment returns the experiment registered under name.
func LookupExperiment(name string) (*Experiment, bool) { return exp.Lookup(name) }

// RunExperiment looks up name and runs it under cfg.
func RunExperiment(ctx context.Context, name string, cfg RunConfig) (*RunResult, error) {
	e, ok := exp.Lookup(name)
	if !ok {
		return nil, exp.ErrUnknownExperiment(name)
	}
	return e.Run(ctx, cfg)
}

// Hierarchical35 reproduces Theorem 11 (E-T11): node-averaged complexity of
// k-hierarchical 3½-coloring is Θ(t) at scale parameter t = T.
func Hierarchical35(k int, scales []int, seed uint64) (*ExpResult, error) {
	return core.Hierarchical35(k, scales, seed)
}

// Weighted25 reproduces Theorems 2-3 (E-T2T3): Π^{2.5}_{Δ,d,k} has
// node-averaged complexity Θ(n^{α1(x)}).
func Weighted25(delta, d, k int, sizes []int, seed uint64) (*ExpResult, error) {
	return core.Weighted25(delta, d, k, sizes, seed)
}

// Weighted35 reproduces Theorems 4-5 (E-T4T5): Π^{3.5}_{Δ,d,k} scales
// between (log* n)^{α1(x)} and (log* n)^{α1(x′)} in the scale parameter.
func Weighted35(delta, d, k int, scales []int, weightFactor int, seed uint64) (*ExpResult, error) {
	return core.Weighted35(delta, d, k, scales, weightFactor, seed)
}

// WeightAugmented reproduces Lemmas 68-69 (E-L68): node-averaged complexity
// Θ(n^{1/k}) for the weight-augmented 2½-coloring.
func WeightAugmented(k, delta int, sizes []int, seed uint64) (*ExpResult, error) {
	return core.WeightAugmented(k, delta, sizes, seed)
}

// TwoColoringGap reproduces Corollary 60 (E-C60): node-averaged Θ(n) for
// 2-coloring paths, via real message-passing simulation.
func TwoColoringGap(sizes []int, seed uint64) (*ExpResult, error) {
	return core.TwoColoringGap(sizes, seed)
}

// CopyFraction reproduces Lemma 40 (E-L40): Copy-set size w^x of Algorithm
// 𝒜 on balanced Δ-regular weight trees.
func CopyFraction(delta, d int, sizes []int) (*ExpResult, error) {
	return core.CopyFraction(delta, d, sizes)
}

// DensityPoly reproduces Theorem 1 (E-T1): concrete (Δ,d,k) witnesses for
// exponents in requested intervals.
func DensityPoly(intervals [][2]float64) (Table, error) {
	return core.DensityPoly(intervals)
}

// DensityLogStar reproduces Theorem 6 (E-T6).
func DensityLogStar(intervals [][2]float64, eps float64) (Table, error) {
	return core.DensityLogStar(intervals, eps)
}

// PathLCLTable reproduces the Theorem 7 decidability demonstration (E-T7).
func PathLCLTable() (Table, error) { return core.PathLCLTable() }

// LandscapeFigures renders Figures 1 and 2 of the paper as tables.
func LandscapeFigures() (Table, Table) { return core.LandscapeFigures() }

// SurvivorCounts reproduces the Lemma 13 survivor bound (E-GEN).
func SurvivorCounts(lengths []int, gammas []int, seed uint64) (Table, error) {
	return core.SurvivorCounts(lengths, gammas, seed)
}
