// Package repro is a Go reproduction of "Completing the Node-Averaged
// Complexity Landscape of LCLs on Trees" (Balliu, Brandt, Kuhn, Olivetti,
// Schmid; PODC 2024, arXiv:2405.01366).
//
// # Architecture
//
// Execution is organized around the batch pipeline construction → execution
// → emission:
//
//   - Construction (internal/inst, wired inside the drivers): lower-bound
//     instances are requested through a keyed, size-bounded, singleflight
//     cache, so repeated presets and concurrently scheduled tasks build
//     each instance exactly once. The cache holds bare trees and keyed
//     composite entries (the Definition-25 weighted and Section-10
//     weight-augmented instances), composites sharing their hierarchical
//     core through the same cache. InstanceCacheStats exposes the
//     hit/miss/build-time counters with a per-kind breakdown.
//
//   - Execution: every result-regenerating computation of the paper is a
//     registered Experiment (internal/exp, re-exported here) with
//     quick/standard/stress presets and a context-aware Run returning a
//     JSON-native Result. Each scaling sweep additionally declares a Plan:
//     one independently schedulable Task per sweep point, carrying a seed
//     derived via PointSeed (a pure function of experiment and point, never
//     of scheduling order). RunBatch schedules tasks — not whole
//     experiments — across a bounded worker pool with per-task contexts and
//     first-failure cancellation, reassembling outputs positionally so the
//     aggregate is canonically byte-identical to the serial run; the
//     simulation engine (internal/sim) adds round-internal parallelism and
//     sharding below it via functional options — sim.NewEngine(
//     sim.WithIDs(...), sim.WithParallelism(n), sim.WithShards(k)).Run(
//     tree, alg) — with sequential, parallel, and sharded runs
//     bit-identical (sharded runs partition the tree into node-range
//     shards exchanging only boundary messages, and report per-shard
//     statistics).
//
//   - Emission: RunBatch streams each Result as NDJSON the moment it
//     finishes while keeping the aggregate deterministic (registry order);
//     WriteResults persists canonical (elapsed-stripped) JSON keyed by
//     experiment+preset+seed, and CompareResults diffs two persisted sets,
//     flagging fitted-slope drift beyond a tolerance — a regression tracker
//     over the JSON schema. cmd/experiments exposes all of it (-run, -jobs,
//     -json, -ndjson, -out, and the compare subcommand).
//
// The substrate packages provide:
//
//   - the LOCAL-model engine with per-node termination rounds and
//     node-averaged complexity accounting (internal/sim);
//   - the k-hierarchical 2½/3½-coloring LCLs, their verifier, and the
//     generic phase algorithm of Section 4.1 (internal/hierarchy);
//   - the weighted problems Π^Z_{Δ,d,k} of Definition 22 with both
//     upper-bound algorithms and the Definition-25 lower-bound constructions
//     (internal/weighted, internal/dfree, internal/decomp);
//   - the Section-10 weight-augmented 2½-coloring closing the Θ(n^{1/k})
//     points (internal/labeling);
//   - the landscape mathematics: α₁ exponents, efficiency factors, and the
//     density parameter searches behind Theorems 1 and 6
//     (internal/landscape);
//   - the Section-11 decidability machinery for path LCLs
//     (internal/pathlcl).
//
// The context-free driver functions below (Hierarchical35, Weighted25, ...)
// are the legacy entry points, kept stable for downstream users and the
// repository-level benchmarks; each is a thin wrapper over the corresponding
// registry driver in internal/exp.
package repro

import (
	"context"
	"crypto/tls"
	"io"
	"net"

	"repro/internal/exp"
	"repro/internal/inst"
	"repro/internal/measure"
)

// ExpResult is a scaling-experiment outcome: a formatted table, the fitted
// exponent, and the paper's exponent(s).
type ExpResult = exp.SweepResult

// Table is a formatted result table.
type Table = measure.Table

// Experiment is a registered, runnable scenario; see the internal/exp
// package documentation.
type Experiment = exp.Experiment

// RunConfig parameterizes one registry experiment run (preset, sweep
// override, seed, simulator parallelism).
type RunConfig = exp.RunConfig

// RunResult is the JSON-native outcome of a registry experiment run.
type RunResult = exp.Result

// BatchOptions parameterizes RunBatch (worker count, shared RunConfig,
// optional NDJSON stream).
type BatchOptions = exp.BatchOptions

// Task is one independently schedulable unit of an experiment run — a
// single sweep point for decomposable sweeps.
type Task = exp.Task

// TaskPlan is a decomposed experiment run: independent tasks plus their
// deterministic reassembly; see exp.TaskPlan.
type TaskPlan = exp.TaskPlan

// Drift is one divergence reported by CompareResults.
type Drift = exp.Drift

// WorkerStats is one worker subprocess's shutdown report (task count and
// instance-cache counters), delivered through BatchOptions.OnWorkerStats.
type WorkerStats = exp.WorkerStats

// CacheStats is a snapshot of the instance-cache counters.
type CacheStats = inst.Stats

// CatalogEntry is the machine-readable form of one registered experiment,
// shared by `experiments -list -json` and the expd service catalog endpoint.
type CatalogEntry = exp.CatalogEntry

// Experiments returns every registered experiment in registration order.
func Experiments() []*Experiment { return exp.List() }

// Catalog returns the machine-readable experiment catalog in registration
// order; see exp.Catalog.
func Catalog() []CatalogEntry { return exp.Catalog() }

// LookupExperiment returns the experiment registered under name.
func LookupExperiment(name string) (*Experiment, bool) { return exp.Lookup(name) }

// RunExperiment looks up name and runs it under cfg.
func RunExperiment(ctx context.Context, name string, cfg RunConfig) (*RunResult, error) {
	e, ok := exp.Lookup(name)
	if !ok {
		return nil, exp.ErrUnknownExperiment(name)
	}
	return e.Run(ctx, cfg)
}

// RunBatch executes a set of experiments across a bounded worker pool; see
// exp.RunBatch.
func RunBatch(ctx context.Context, exps []*Experiment, opts BatchOptions) ([]*RunResult, error) {
	return exp.RunBatch(ctx, exps, opts)
}

// RunWorker speaks the worker side of the multi-process batch protocol over
// r/w until EOF; see exp.RunWorker and docs/DISTRIBUTED.md. It is the loop
// behind the `experiments worker` subcommand, which BatchOptions.Workers
// spawns one subprocess per worker of.
func RunWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	return exp.RunWorker(ctx, r, w)
}

// ServeWorker is the acceptor side of the TCP worker transport: it accepts
// connections on l and serves the worker protocol on each until ctx is
// canceled. It is the loop behind `experiments worker -listen`, whose
// address BatchOptions.Remote dials. See exp.ServeWorker and
// docs/DISTRIBUTED.md.
func ServeWorker(ctx context.Context, l net.Listener) error {
	return exp.ServeWorker(ctx, l)
}

// WorkerTLSConfig builds the acceptor-side TLS configuration for
// `experiments worker -listen` from a certificate/key pair; wrap the
// listener with tls.NewListener.
func WorkerTLSConfig(certFile, keyFile string) (*tls.Config, error) {
	return exp.WorkerTLSConfig(certFile, keyFile)
}

// RemoteTLSConfig builds the dialer-side TLS configuration for
// BatchOptions.RemoteTLS: connections to remote workers are verified
// against the CA bundle (or self-signed worker certificate) in caFile.
func RemoteTLSConfig(caFile string) (*tls.Config, error) {
	return exp.RemoteTLSConfig(caFile)
}

// CatalogHash fingerprints the registered experiment catalog; orchestrator
// and worker compare it at handshake so catalog-skewed binaries refuse to
// exchange tasks. See exp.CatalogHash.
func CatalogHash() string { return exp.CatalogHash() }

// BuildID fingerprints the running binary (module version plus VCS
// revision when stamped); the worker handshake compares it so a worker
// built from different code is refused even when its catalog agrees. See
// exp.BuildID.
func BuildID() string { return exp.BuildID() }

// WriteResults persists results in canonical (elapsed-stripped) JSON form:
// one file per run under a directory, or a single array at a .json path.
func WriteResults(path string, results []*RunResult) error {
	return exp.WriteResults(path, results)
}

// LoadResults reads a result set written by WriteResults.
func LoadResults(path string) ([]*RunResult, error) { return exp.LoadResults(path) }

// CanonicalResultJSON renders a result exactly as WriteResults persists it
// in a directory result set (canonical form, indented, newline-terminated);
// see exp.CanonicalJSON. It is the byte contract of the expd result store.
func CanonicalResultJSON(res *RunResult) ([]byte, error) { return exp.CanonicalJSON(res) }

// CompareResults diffs two result sets and reports drift (fitted slopes
// beyond tol, changed analytic constants, shape changes, one-sided runs).
func CompareResults(base, cur []*RunResult, tol float64) []Drift {
	return exp.Compare(base, cur, tol)
}

// InstanceCacheStats snapshots the shared instance provider's counters,
// including the per-kind breakdown (bare trees vs composite instances).
func InstanceCacheStats() CacheStats { return exp.InstanceCache().Stats() }

// InstanceCacheKinds lists the cached construction families in stable
// display order (for rendering CacheStats.Kinds).
func InstanceCacheKinds() []inst.Kind { return inst.Kinds() }

// PointSeed derives the ID seed of one sweep point from a run's base seed
// and the point's sweep value; see exp.PointSeed. It is a pure function of
// its inputs, so a point's IDs never depend on scheduling order.
func PointSeed(base uint64, point int) uint64 { return exp.PointSeed(base, point) }

// Hierarchical35 reproduces Theorem 11 (E-T11): node-averaged complexity of
// k-hierarchical 3½-coloring is Θ(t) at scale parameter t = T.
func Hierarchical35(k int, scales []int, seed uint64) (*ExpResult, error) {
	return exp.Hierarchical35(context.Background(), k, scales, seed)
}

// Weighted25 reproduces Theorems 2-3 (E-T2T3): Π^{2.5}_{Δ,d,k} has
// node-averaged complexity Θ(n^{α1(x)}).
func Weighted25(delta, d, k int, sizes []int, seed uint64) (*ExpResult, error) {
	return exp.Weighted25(context.Background(), delta, d, k, sizes, seed)
}

// Weighted35 reproduces Theorems 4-5 (E-T4T5): Π^{3.5}_{Δ,d,k} scales
// between (log* n)^{α1(x)} and (log* n)^{α1(x′)} in the scale parameter.
func Weighted35(delta, d, k int, scales []int, weightFactor int, seed uint64) (*ExpResult, error) {
	return exp.Weighted35(context.Background(), delta, d, k, scales, weightFactor, seed)
}

// WeightAugmented reproduces Lemmas 68-69 (E-L68): node-averaged complexity
// Θ(n^{1/k}) for the weight-augmented 2½-coloring.
func WeightAugmented(k, delta int, sizes []int, seed uint64) (*ExpResult, error) {
	return exp.WeightAugmented(context.Background(), k, delta, sizes, seed)
}

// TwoColoringGap reproduces Corollary 60 (E-C60): node-averaged Θ(n) for
// 2-coloring paths, via real message-passing simulation.
func TwoColoringGap(sizes []int, seed uint64) (*ExpResult, error) {
	return exp.TwoColoringGap(context.Background(), sizes, seed, 1)
}

// CopyFraction reproduces Lemma 40 (E-L40): Copy-set size w^x of Algorithm
// 𝒜 on balanced Δ-regular weight trees.
func CopyFraction(delta, d int, sizes []int) (*ExpResult, error) {
	return exp.CopyFraction(context.Background(), delta, d, sizes)
}

// DensityPoly reproduces Theorem 1 (E-T1): concrete (Δ,d,k) witnesses for
// exponents in requested intervals.
func DensityPoly(intervals [][2]float64) (Table, error) {
	return exp.DensityPoly(context.Background(), intervals)
}

// DensityLogStar reproduces Theorem 6 (E-T6).
func DensityLogStar(intervals [][2]float64, eps float64) (Table, error) {
	return exp.DensityLogStar(context.Background(), intervals, eps)
}

// PathLCLTable reproduces the Theorem 7 decidability demonstration (E-T7).
func PathLCLTable() (Table, error) { return exp.PathLCLTable() }

// LandscapeFigures renders Figures 1 and 2 of the paper as tables.
func LandscapeFigures() (Table, Table) { return exp.LandscapeFigures() }

// SurvivorCounts reproduces the Lemma 13 survivor bound (E-GEN).
func SurvivorCounts(lengths []int, gammas []int, seed uint64) (Table, error) {
	return exp.SurvivorCounts(context.Background(), lengths, gammas, seed)
}
