// Threecolor: 3-color a path through the real message-passing LOCAL
// simulator with Linial's iterated color reduction, and contrast it with
// 2-coloring — the pair of problems behind the paper's motivating
// observation that 3-coloring trees needs only O(log* n) node-averaged
// rounds while 2-coloring is stuck at Θ(n).
package main

import (
	"fmt"
	"os"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "threecolor:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("n        3-col worst  3-col node-avg  2-col worst  2-col node-avg")
	for _, n := range []int{1000, 4000, 16000} {
		tr, err := graph.BuildPath(n)
		if err != nil {
			return err
		}
		// One engine per instance size, shared by both algorithms; the
		// parallel backend produces bit-identical results to a sequential
		// run.
		eng := sim.NewEngine(
			sim.WithIDs(sim.DefaultIDs(n, uint64(n))),
			sim.WithParallelism(-1), // GOMAXPROCS workers
		)
		three, err := eng.Run(tr, coloring.LinialAlgorithm{Delta: 2})
		if err != nil {
			return err
		}
		colors := make([]int64, n)
		for v, o := range three.Outputs {
			colors[v] = o.(int64)
		}
		if ok, u, v := coloring.VerifyProperColoring(tr, colors); !ok {
			return fmt.Errorf("improper coloring at edge {%d,%d}", u, v)
		}
		two, err := eng.Run(tr, coloring.TwoColorPathAlgorithm{})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-12d %-15.1f %-12d %-14.1f\n",
			n, three.TotalRounds, three.NodeAveraged(), two.TotalRounds, two.NodeAveraged())
	}
	fmt.Println("\n3-coloring stays flat (O(log* n)); 2-coloring grows linearly (Θ(n)).")
	return nil
}
