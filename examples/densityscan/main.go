// Densityscan: pick any exponent interval and get a concrete LCL achieving
// a node-averaged complexity inside it — the constructive content of
// Theorems 1 and 6. Usage: densityscan [r1 r2].
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/landscape"
)

func main() {
	r1, r2 := 0.3, 0.4
	if len(os.Args) == 3 {
		var err1, err2 error
		r1, err1 = strconv.ParseFloat(os.Args[1], 64)
		r2, err2 = strconv.ParseFloat(os.Args[2], 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "usage: densityscan [r1 r2]")
			os.Exit(2)
		}
	}
	if err := run(r1, r2); err != nil {
		fmt.Fprintln(os.Stderr, "densityscan:", err)
		os.Exit(1)
	}
}

func run(r1, r2 float64) error {
	fmt.Printf("target exponent interval: (%.3f, %.3f)\n\n", r1, r2)
	if r2 <= 0.5 {
		p, err := landscape.FindPolyParams(r1, r2)
		if err != nil {
			return err
		}
		fmt.Printf("polynomial regime (Theorem 1):\n")
		fmt.Printf("  Π^2.5_{Δ=%d, d=%d, k=%d} has node-averaged complexity Θ(n^%.4f)\n",
			p.Delta, p.D, p.K, p.C)
		fmt.Printf("  realized via rational efficiency factor x = %s\n\n", p.X)
	} else {
		fmt.Printf("polynomial regime: interval exceeds 1/2, not applicable (Theorem 1 covers (0, 1/2])\n\n")
	}
	lp, err := landscape.FindLogStarParams(r1, r2, (r2-r1)/4)
	if err != nil {
		return err
	}
	fmt.Printf("log* regime (Theorem 6):\n")
	fmt.Printf("  Π^3.5_{Δ=%d, d=%d, k=%d} has node-averaged complexity between\n", lp.Delta, lp.D, lp.K)
	fmt.Printf("  Ω((log* n)^%.4f) and O((log* n)^%.4f)\n", lp.C, lp.CUpper)
	fmt.Printf("  (x = %s, x' = %.4f)\n", lp.X, lp.XPrime)
	return nil
}
