// Registry: discover and run experiments through the registry API instead
// of hand-wired drivers — list what is registered, run one experiment at the
// quick preset with a parallel simulator backend, and print its JSON-native
// result (the same schema cmd/experiments -json emits).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "registry:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("registered experiments:")
	for _, e := range repro.Experiments() {
		fmt.Printf("  %-18s %s\n", e.Name, e.Theory)
	}

	// Runs honor contexts: a deadline or Ctrl-C cancels between sweep points
	// and mid-simulation.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	res, err := repro.RunExperiment(ctx, "twocoloring-gap", repro.RunConfig{
		Preset:      "quick",
		Parallelism: -1, // GOMAXPROCS simulator workers; results identical to sequential
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n%s finished in %.1f ms; fitted exponent %.3f (theory %.0f)\n\n",
		res.Name, res.ElapsedMS, res.Fit.Slope, res.Fit.TheorySlope)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
