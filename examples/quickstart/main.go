// Quickstart: build a weighted lower-bound instance for Π^{2.5}_{Δ=5,d=2,k=2}
// (Definition 25), solve it with A_poly (Section 7.1), verify the output
// against Definition 22, and print the node-averaged complexity next to the
// theoretical exponent α1(x).
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/hierarchy"
	"repro/internal/landscape"
	"repro/internal/sim"
	"repro/internal/weighted"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	p := weighted.Problem{Variant: hierarchy.Coloring25, Delta: 5, D: 2, K: 2}

	// The efficiency factor x = log(Δ−d−1)/log(Δ−1) tunes how much of the
	// weight actually has to wait; here x = 1/2 and α1 = 1/(1+(2−x)) = 0.4.
	x, err := landscape.EfficiencyX(p.Delta, p.D)
	if err != nil {
		return err
	}
	alpha1, err := landscape.Alpha1Poly(x, p.K)
	if err != nil {
		return err
	}

	// Worst-case instance: level-1 paths of length n^{α1}, a level-2 path
	// filling the rest, and n/2 weight nodes hanging off the level-2 path in
	// balanced Δ-regular trees.
	const target = 60000
	l1 := int(math.Pow(target, alpha1))
	inst, err := weighted.BuildInstance(p, []int{l1, target / (2 * l1)}, target/2)
	if err != nil {
		return err
	}

	ids := sim.DefaultIDs(inst.Tree.N(), 42)
	sol, err := weighted.SolvePoly(inst.Tree, inst.Inputs, p, ids)
	if err != nil {
		return err
	}
	if err := p.Verify(inst.Tree, inst.Inputs, sol.Out); err != nil {
		return err
	}

	n := float64(inst.Tree.N())
	fmt.Printf("Π^2.5_{Δ=%d,d=%d,k=%d} on the Definition-25 construction\n", p.Delta, p.D, p.K)
	fmt.Printf("  n                = %d\n", inst.Tree.N())
	fmt.Printf("  x                = %.4f\n", x)
	fmt.Printf("  α1(x)            = %.4f  (theory: node-avg = Θ(n^α1) ≈ %.1f)\n",
		alpha1, math.Pow(n, alpha1))
	fmt.Printf("  measured node-avg = %.1f rounds\n", sol.NodeAveraged())
	fmt.Printf("  measured worst    = %d rounds\n", sol.MaxRounds())
	kinds := map[weighted.Kind]int{}
	for _, o := range sol.Out {
		kinds[o.Kind]++
	}
	fmt.Printf("  outputs: %d active, %d copy, %d decline, %d connect\n",
		kinds[weighted.KindActive], kinds[weighted.KindCopy],
		kinds[weighted.KindDecline], kinds[weighted.KindConnect])
	return nil
}
