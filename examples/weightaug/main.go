// Weightaug: the Θ(√n) point of the landscape (Section 10). Builds the
// weight-augmented 2½-coloring instance for k = 2, solves it (Lemma 69's
// algorithm), and shows that the node-averaged complexity tracks √n while
// almost the entire weight mass waits for its active node (Lemma 68:
// efficiency x = 1).
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/labeling"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weightaug:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("n        node-avg   node-avg/√n   copying weight fraction")
	for _, target := range []int{4000, 16000, 64000} {
		side := int(math.Sqrt(float64(target) / 2))
		inst, err := labeling.BuildAugInstance(2, 5, []int{side, side}, target/2)
		if err != nil {
			return err
		}
		ids := sim.DefaultIDs(inst.Tree.N(), 9)
		res, err := labeling.SolveAug(inst.Tree, inst.Weight, inst.K, ids)
		if err != nil {
			return err
		}
		if err := labeling.VerifyAug(inst.Tree, inst.Weight, inst.K, res.Out); err != nil {
			return err
		}
		weightTotal, copying := 0, 0
		for v := range res.Out {
			if !inst.Weight[v] {
				continue
			}
			weightTotal++
			if !res.Out[v].Secondary.Decline {
				copying++
			}
		}
		n := float64(inst.Tree.N())
		fmt.Printf("%-8d %-10.1f %-13.3f %.3f\n",
			inst.Tree.N(), res.NodeAveraged(), res.NodeAveraged()/math.Sqrt(n),
			float64(copying)/float64(weightTotal))
	}
	fmt.Println("\nnode-avg/√n is flat: the weight-augmented 2½-coloring sits exactly at Θ(√n).")
	return nil
}
