// Command experiments regenerates every experiment of the per-experiment
// index in DESIGN.md and prints the result tables (plain text by default,
// markdown with -markdown). The markdown output is the source of
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/measure"
)

func main() {
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	quick := flag.Bool("quick", false, "smaller sweeps (faster)")
	flag.Parse()
	if err := run(*markdown, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(markdown, quick bool) error {
	emit := func(t measure.Table) {
		if markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
	}
	emitRes := func(r *repro.ExpResult, err error) error {
		if err != nil {
			return err
		}
		emit(r.Table)
		return nil
	}

	f1, f2 := repro.LandscapeFigures()
	emit(f1)
	emit(f2)

	t11Scales := []int{12, 24, 48, 96, 144}
	w25Sizes := []int{16000, 64000, 256000, 1024000, 4096000}
	w25SizesK3 := []int{64000, 256000, 1024000, 4096000, 16384000}
	w35Scales := []int{16, 32, 64, 128, 256}
	augSizes := []int{16000, 64000, 256000, 1024000}
	gapSizes := []int{200, 400, 800, 1600}
	copySizes := []int{4000, 16000, 64000, 256000, 1024000}
	if quick {
		t11Scales = []int{8, 16, 32}
		w25Sizes = []int{4000, 16000, 64000}
		w25SizesK3 = w25Sizes
		w35Scales = []int{8, 16, 32}
		augSizes = []int{4000, 16000, 64000}
		gapSizes = []int{200, 400, 800}
		copySizes = []int{1000, 4000, 16000}
	}

	if err := emitRes(repro.Hierarchical35(2, t11Scales, 1)); err != nil {
		return err
	}
	if err := emitRes(repro.Hierarchical35(3, []int{2, 3, 4, 5, 6}, 2)); err != nil {
		return err
	}
	if err := emitRes(repro.Weighted25(5, 2, 2, w25Sizes, 3)); err != nil {
		return err
	}
	if err := emitRes(repro.Weighted25(6, 2, 2, w25Sizes, 3)); err != nil {
		return err
	}
	if err := emitRes(repro.Weighted25(5, 2, 3, w25SizesK3, 3)); err != nil {
		return err
	}
	if err := emitRes(repro.Weighted35(7, 3, 2, w35Scales, 3, 4)); err != nil {
		return err
	}
	if err := emitRes(repro.Weighted35(9, 3, 2, w35Scales, 3, 4)); err != nil {
		return err
	}
	if err := emitRes(repro.WeightAugmented(2, 5, augSizes, 5)); err != nil {
		return err
	}
	if err := emitRes(repro.WeightAugmented(3, 5, augSizes, 5)); err != nil {
		return err
	}
	if err := emitRes(repro.TwoColoringGap(gapSizes, 6)); err != nil {
		return err
	}
	if err := emitRes(repro.CopyFraction(5, 2, copySizes)); err != nil {
		return err
	}
	if err := emitRes(repro.CopyFraction(7, 3, copySizes)); err != nil {
		return err
	}

	dp, err := repro.DensityPoly([][2]float64{
		{0.05, 0.1}, {0.1, 0.2}, {0.2, 0.3}, {0.3, 0.4}, {0.4, 0.5},
	})
	if err != nil {
		return err
	}
	emit(dp)
	dl, err := repro.DensityLogStar([][2]float64{{0.2, 0.4}, {0.4, 0.6}, {0.6, 0.8}}, 0.05)
	if err != nil {
		return err
	}
	emit(dl)
	pt, err := repro.PathLCLTable()
	if err != nil {
		return err
	}
	emit(pt)
	sv, err := repro.SurvivorCounts([]int{60, 90}, []int{5, 10, 20, 40, 60}, 1)
	if err != nil {
		return err
	}
	emit(sv)
	return nil
}
