// Command experiments runs registered experiments from the registry
// (internal/exp) and prints their result tables — plain text by default,
// GitHub-flavored markdown with -markdown (the source of the tables in
// docs/EXPERIMENTS.md), a machine-readable JSON array with -json, or an
// NDJSON stream with -ndjson.
//
// With no flags it regenerates every experiment of the per-experiment index
// in DESIGN.md at the standard preset, in the historical output order.
// -jobs N executes up to N tasks concurrently in process; -workers N
// instead dispatches tasks to N worker subprocesses over the NDJSON worker
// protocol (docs/DISTRIBUTED.md) with instance-affinity grouping. Aggregate
// output stays in registry order — and canonically byte-identical to a
// serial run — regardless of completion order, jobs, or worker count. -out
// persists canonical (elapsed-stripped) result JSON — one file per run
// under a directory, or a single array when the path ends in .json — and
// the compare subcommand diffs two such result sets as a regression check:
//
//	experiments compare [-tol 0.05] [-json] OLD NEW
//
// The worker subcommand is the worker side of both distributed backends.
// Bare, it speaks the worker protocol over stdin/stdout — the subprocess
// -workers spawns, not run by hand. With -listen it accepts orchestrator
// connections over TCP (optionally TLS with -tls-cert/-tls-key) and serves
// the same protocol on each; -remote host:port,... on the orchestrating
// process dispatches the batch to those acceptors instead of spawning
// subprocesses, with identical output bytes:
//
//	experiments worker
//	experiments worker -listen :9700
//
// Examples:
//
//	experiments -list
//	experiments -list -json
//	experiments -run twocoloring-gap -preset quick -json
//	experiments -run twocoloring-gap -shards 4
//	experiments -run twocoloring-gap -shards 4 -shard-layout subtree
//	experiments -run all -preset quick -jobs 4 -out results/
//	experiments -run all -preset quick -workers 4 -cache-stats
//	experiments -run all -preset quick -remote host1:9700,host2:9700 -worker-retry
//	experiments -preset stress -markdown
//	experiments compare results-main/ results-branch/
package main

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/measure"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := compareMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: compare:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := workerMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: worker:", err)
			os.Exit(1)
		}
		return
	}
	var (
		list       = flag.Bool("list", false, "list registered experiments and exit (with -json: machine-readable catalog)")
		run        = flag.String("run", "", `comma-separated experiment names ("" or "all": every experiment)`)
		preset     = flag.String("preset", "standard", "sweep preset: quick | standard | stress")
		jsonOut    = flag.Bool("json", false, "emit a JSON array of results (registry order)")
		ndjson     = flag.Bool("ndjson", false, "stream one JSON result per line as each experiment finishes (completion order)")
		markdown   = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
		jobs       = flag.Int("jobs", 1, "number of tasks to run concurrently in process")
		workers    = flag.Int("workers", 0, "number of worker subprocesses: tasks are dispatched over the NDJSON worker protocol with instance-affinity grouping (0 = in-process; see docs/DISTRIBUTED.md); results are identical at every count")
		retry      = flag.Bool("worker-retry", false, "retry a crashed worker's tasks once on a fresh worker before failing the batch")
		remote     = flag.String("remote", "", "comma-separated host:port addresses of `experiments worker -listen` acceptors: tasks are dispatched over TCP instead of to subprocesses; results are identical to every other backend")
		remoteCA   = flag.String("remote-ca", "", "verify TLS worker connections against this CA (or self-signed worker certificate) PEM file (requires -remote)")
		remoteRead = flag.Duration("remote-read-timeout", 0, "max silence on a remote worker connection before its slot fails labeled (0 = unbounded; see docs/DISTRIBUTED.md)")
		parallel   = flag.Int("parallel", 1, "simulator worker count (-1 = GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "simulator shard count: partition each simulated tree into contiguous node-range shards (0/1 = unsharded, -1 = GOMAXPROCS); results are identical at every count")
		layout     = flag.String("shard-layout", "", `shard partitioning layout: "range" (contiguous node-ID ranges, the default) or "subtree" (fat-preorder relabeling that minimizes boundary edges); results are identical under both`)
		seed       = flag.Uint64("seed", 0, "override the experiments' default ID seeds (0 = defaults)")
		timeout    = flag.Duration("timeout", 0, "overall batch deadline (e.g. 90s, 10m); a run exceeding it fails labeled instead of hanging (0 = none)")
		out        = flag.String("out", "", "persist canonical results: a directory (one file per run) or a .json path (single array)")
		cacheStats = flag.Bool("cache-stats", false, "print instance-cache counters to stderr after the run")
		quick      = flag.Bool("quick", false, "legacy alias for -preset quick")
	)
	flag.Parse()
	if *quick {
		*preset = "quick"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := mainE(ctx, options{
		list: *list, run: *run, preset: *preset,
		jsonOut: *jsonOut, ndjson: *ndjson, markdown: *markdown,
		jobs: *jobs, workers: *workers, workerRetry: *retry,
		remote: *remote, remoteCA: *remoteCA, remoteRead: *remoteRead,
		parallel: *parallel, shards: *shards, shardLayout: *layout, seed: *seed,
		timeout: *timeout, out: *out, cacheStats: *cacheStats,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type options struct {
	list, jsonOut, ndjson, markdown, cacheStats bool
	workerRetry                                 bool
	run, preset, out                            string
	remote, remoteCA, shardLayout               string
	jobs, workers, parallel, shards             int
	seed                                        uint64
	timeout, remoteRead                         time.Duration
}

func mainE(ctx context.Context, opts options) error {
	if opts.list {
		return printList(opts.jsonOut)
	}
	if opts.jsonOut && opts.ndjson {
		return fmt.Errorf("-json and -ndjson both write to stdout; pick one")
	}
	if opts.jobs > 1 && opts.workers > 0 {
		return fmt.Errorf("-jobs and -workers select different backends (in-process pool vs worker subprocesses); pick one")
	}
	switch opts.shardLayout {
	case "", "range", "subtree":
	default:
		return fmt.Errorf("-shard-layout must be \"range\" or \"subtree\", got %q", opts.shardLayout)
	}
	var remotes []string
	if opts.remote != "" {
		if opts.workers > 0 {
			return fmt.Errorf("-workers and -remote select different backends (worker subprocesses vs TCP workers); pick one")
		}
		if opts.jobs > 1 {
			return fmt.Errorf("-jobs and -remote select different backends (in-process pool vs TCP workers); pick one")
		}
		for _, addr := range strings.Split(opts.remote, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				remotes = append(remotes, addr)
			}
		}
		if len(remotes) == 0 {
			return fmt.Errorf("-remote selected no worker addresses")
		}
	} else if opts.remoteCA != "" {
		return fmt.Errorf("-remote-ca requires -remote")
	}
	exps, err := selectExperiments(opts.run)
	if err != nil {
		return err
	}
	if opts.timeout > 0 {
		// The deadline wraps the whole batch: RunBatch's first-failure
		// machinery cancels every in-flight task when it expires, so a hung
		// run fails labeled instead of forever. The expd service reuses the
		// same plumbing for per-request deadlines.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	batch := repro.BatchOptions{
		Jobs:              opts.jobs,
		Workers:           opts.workers,
		WorkerRetry:       opts.workerRetry,
		Remote:            remotes,
		RemoteReadTimeout: opts.remoteRead,
		Config: repro.RunConfig{Preset: opts.preset, Seed: opts.seed,
			Parallelism: opts.parallel, Shards: opts.shards, ShardLayout: opts.shardLayout},
	}
	if opts.remoteCA != "" {
		tlsCfg, err := repro.RemoteTLSConfig(opts.remoteCA)
		if err != nil {
			return err
		}
		batch.RemoteTLS = tlsCfg
	}
	if opts.ndjson {
		batch.Stream = os.Stdout
	}
	usesWorkers := opts.workers > 0 || len(remotes) > 0
	var workerStats []repro.WorkerStats
	if usesWorkers && opts.cacheStats {
		// With subprocess or remote workers the orchestrator's own cache
		// sits idle; collect each worker's shutdown snapshot instead.
		batch.OnWorkerStats = func(ws repro.WorkerStats) { workerStats = append(workerStats, ws) }
	}
	results, err := repro.RunBatch(ctx, exps, batch)
	if opts.cacheStats {
		if usesWorkers {
			printWorkerStats(workerStats)
		} else {
			printCacheStats()
		}
	}
	if err != nil {
		if opts.timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("batch timed out after %v: %w", opts.timeout, err)
		}
		return err
	}
	if opts.out != "" {
		if err := repro.WriteResults(opts.out, results); err != nil {
			return err
		}
	}
	switch {
	case opts.jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	case opts.ndjson:
		return nil // already streamed
	}
	for _, res := range results {
		for _, tb := range res.Tables {
			if opts.markdown {
				fmt.Println(tb.Markdown())
			} else {
				fmt.Println(tb.Format())
			}
		}
	}
	return nil
}

// workerMain implements `experiments worker [-listen addr]`. Without
// -listen it speaks the worker protocol over stdin/stdout — the subprocess
// side of -workers, spawned by the orchestrating experiments process. With
// -listen it becomes a TCP worker acceptor: it binds addr, announces the
// bound address on stdout as "listening host:port", and serves one worker
// session per connection until interrupted — the remote side of -remote.
func workerMain(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	listen := fs.String("listen", "", "accept orchestrator connections on this TCP address (e.g. :9700) instead of speaking over stdin/stdout")
	tlsCert := fs.String("tls-cert", "", "serve TLS with this certificate file (requires -listen and -tls-key)")
	tlsKey := fs.String("tls-key", "", "serve TLS with this key file (requires -listen and -tls-cert)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: experiments worker [-listen addr [-tls-cert CERT -tls-key KEY]]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if (*tlsCert != "") != (*tlsKey != "") {
		return fmt.Errorf("-tls-cert and -tls-key go together")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *listen == "" {
		if *tlsCert != "" {
			return fmt.Errorf("-tls-cert/-tls-key require -listen")
		}
		return repro.RunWorker(ctx, os.Stdin, os.Stdout)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *tlsCert != "" {
		cfg, err := repro.WorkerTLSConfig(*tlsCert, *tlsKey)
		if err != nil {
			_ = l.Close()
			return err
		}
		l = tls.NewListener(l, cfg)
	}
	// The banner is machine-parseable (scripts bind :0 and read the port)
	// and the only thing this mode ever writes to stdout.
	fmt.Printf("listening %s\n", l.Addr())
	return repro.ServeWorker(ctx, l)
}

// compareMain implements `experiments compare [-tol T] [-json] OLD NEW`:
// load two persisted result sets and flag drift. Exit status 1 (via the
// returned error) when any drift is found.
func compareMain(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.05, "allowed fitted-slope drift before a run is flagged")
	jsonOut := fs.Bool("json", false, "emit drifts as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: experiments compare [-tol T] [-json] OLD NEW")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("need exactly two result sets, got %d", fs.NArg())
	}
	base, err := repro.LoadResults(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := repro.LoadResults(fs.Arg(1))
	if err != nil {
		return err
	}
	drifts := repro.CompareResults(base, cur, *tol)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(drifts); err != nil {
			return err
		}
	} else if len(drifts) == 0 {
		fmt.Printf("no drift: %d runs match within tol %.4g\n", len(base), *tol)
	} else {
		tb := measure.Table{
			Title:  fmt.Sprintf("result drift (tol %.4g)", *tol),
			Header: []string{"run", "field", "old", "new", "detail"},
		}
		for _, d := range drifts {
			tb.AddRow(d.Key, d.Field, d.Old, d.New, d.Detail)
		}
		fmt.Println(tb.Format())
	}
	if len(drifts) > 0 {
		return fmt.Errorf("%d drift(s) beyond tolerance", len(drifts))
	}
	return nil
}

func printCacheStats() {
	s := repro.InstanceCacheStats()
	fmt.Fprintf(os.Stderr,
		"instance cache: %d hits, %d misses (%d builds, %d coalesced), %d evictions, %.1fms building, %d entries / %d nodes cached\n",
		s.Hits, s.Misses, s.Builds, s.Coalesced, s.Evictions,
		float64(s.BuildTime.Microseconds())/1000, s.Entries, s.Nodes)
	// Per-kind breakdown in stable order: the bare tree builds first, then
	// the composite weighted/weight-augmented entries.
	for _, kind := range repro.InstanceCacheKinds() {
		ks, ok := s.Kinds[kind]
		if !ok {
			continue
		}
		fmt.Fprintf(os.Stderr,
			"  %-12s %d builds, %d hits, %.1fms building, %d entries / %d nodes\n",
			kind, ks.Builds, ks.Hits,
			float64(ks.BuildTime.Microseconds())/1000, ks.Entries, ks.Nodes)
	}
}

// printWorkerStats renders each worker subprocess's shutdown cache
// snapshot: with affinity dispatch, tasks sharing a hierarchical core show
// up as one worker's builds plus hits instead of duplicate builds spread
// across processes.
func printWorkerStats(stats []repro.WorkerStats) {
	sort.Slice(stats, func(i, j int) bool { return stats[i].Worker < stats[j].Worker })
	for _, ws := range stats {
		who := fmt.Sprintf("worker %d", ws.Worker)
		if ws.Addr != "" {
			who = "worker " + ws.Addr
		}
		s := ws.Cache
		fmt.Fprintf(os.Stderr,
			"%s: %d tasks; instance cache: %d hits, %d misses (%d builds), %.1fms building, %d entries / %d nodes cached\n",
			who, ws.Tasks, s.Hits, s.Misses, s.Builds,
			float64(s.BuildTime.Microseconds())/1000, s.Entries, s.Nodes)
	}
}

// selectExperiments resolves -run against the registry; empty or "all"
// means every experiment, in registration (historical output) order.
func selectExperiments(run string) ([]*repro.Experiment, error) {
	if run == "" || run == "all" {
		return repro.Experiments(), nil
	}
	var out []*repro.Experiment
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := repro.LookupExperiment(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no experiments")
	}
	return out, nil
}

// presetNames renders the presets an experiment actually registered,
// canonical names first, any custom names after in sorted order.
func presetNames(presets map[string][]int) string {
	if len(presets) == 0 {
		return "-"
	}
	var names []string
	for _, p := range []string{"quick", "standard", "stress"} {
		if _, ok := presets[p]; ok {
			names = append(names, p)
		}
	}
	var extra []string
	for p := range presets {
		if p != "quick" && p != "standard" && p != "stress" {
			extra = append(extra, p)
		}
	}
	sort.Strings(extra)
	return strings.Join(append(names, extra...), "|")
}

func printList(jsonOut bool) error {
	if jsonOut {
		// repro.Catalog is the shared machine-readable catalog; the expd
		// service serves the same value at GET /v1/experiments, and CI
		// cmp-checks the two outputs byte-for-byte.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(repro.Catalog())
	}
	tb := measure.Table{
		Title:  "registered experiments",
		Header: []string{"name", "theory", "presets", "description"},
	}
	for _, e := range repro.Experiments() {
		tb.AddRow(e.Name, e.Theory, presetNames(e.Presets), e.Description)
	}
	fmt.Println(tb.Format())
	return nil
}
