// Command experiments runs registered experiments from the registry
// (internal/exp) and prints their result tables — plain text by default,
// GitHub-flavored markdown with -markdown (the source of EXPERIMENTS.md), or
// a machine-readable JSON array with -json.
//
// With no flags it regenerates every experiment of the per-experiment index
// in DESIGN.md at the standard preset, in the historical output order.
//
// Examples:
//
//	experiments -list
//	experiments -run twocoloring-gap -preset quick -json
//	experiments -run weighted25-d5,weighted25-d6 -parallel 8
//	experiments -preset stress -markdown
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro"
	"repro/internal/measure"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list registered experiments and exit")
		run      = flag.String("run", "", "comma-separated experiment names (default: all)")
		preset   = flag.String("preset", "standard", "sweep preset: quick | standard | stress")
		jsonOut  = flag.Bool("json", false, "emit a JSON array of results")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
		parallel = flag.Int("parallel", 1, "simulator worker count (-1 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 0, "override the experiments' default ID seeds (0 = defaults)")
		quick    = flag.Bool("quick", false, "legacy alias for -preset quick")
	)
	flag.Parse()
	if *quick {
		*preset = "quick"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := mainE(ctx, *list, *run, *preset, *jsonOut, *markdown, *parallel, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func mainE(ctx context.Context, list bool, run, preset string, jsonOut, markdown bool, parallel int, seed uint64) error {
	if list {
		return printList()
	}
	exps, err := selectExperiments(run)
	if err != nil {
		return err
	}
	cfg := repro.RunConfig{Preset: preset, Seed: seed, Parallelism: parallel}
	var results []*repro.RunResult
	for _, e := range exps {
		res, err := e.Run(ctx, cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			results = append(results, res)
			continue
		}
		for _, tb := range res.Tables {
			if markdown {
				fmt.Println(tb.Markdown())
			} else {
				fmt.Println(tb.Format())
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}

// selectExperiments resolves -run against the registry; empty means all, in
// registration (historical output) order.
func selectExperiments(run string) ([]*repro.Experiment, error) {
	if run == "" {
		return repro.Experiments(), nil
	}
	var out []*repro.Experiment
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := repro.LookupExperiment(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no experiments")
	}
	return out, nil
}

// presetNames renders the presets an experiment actually registered,
// canonical names first, any custom names after in sorted order.
func presetNames(presets map[string][]int) string {
	if len(presets) == 0 {
		return "-"
	}
	var names []string
	for _, p := range []string{"quick", "standard", "stress"} {
		if _, ok := presets[p]; ok {
			names = append(names, p)
		}
	}
	var extra []string
	for p := range presets {
		if p != "quick" && p != "standard" && p != "stress" {
			extra = append(extra, p)
		}
	}
	sort.Strings(extra)
	return strings.Join(append(names, extra...), "|")
}

func printList() error {
	tb := measure.Table{
		Title:  "registered experiments",
		Header: []string{"name", "theory", "presets", "description"},
	}
	for _, e := range repro.Experiments() {
		tb.AddRow(e.Name, e.Theory, presetNames(e.Presets), e.Description)
	}
	fmt.Println(tb.Format())
	return nil
}
