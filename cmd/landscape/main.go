// Command landscape prints the node-averaged complexity landscape of LCLs
// on bounded-degree trees (Figures 1 and 2 of the paper) and, on request,
// samples achievable complexity classes inside the dense regions. It is a
// thin wrapper over the registry experiments "landscape-figures" and
// "landscape-density" (cmd/experiments runs the same computations).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
)

func main() {
	samples := flag.Int("samples", 0, "sample this many density points per regime")
	lo := flag.Float64("lo", 0.1, "lower end of the sampled exponent range")
	hi := flag.Float64("hi", 0.45, "upper end of the sampled exponent range")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *samples, *lo, *hi); err != nil {
		fmt.Fprintln(os.Stderr, "landscape:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, samples int, lo, hi float64) error {
	if err := runExperiment(ctx, "landscape-figures", repro.RunConfig{}); err != nil {
		return err
	}
	if samples <= 0 {
		return nil
	}
	// The density experiment's sweep vector is [samples, lo‰, hi‰] (the
	// exponent range travels in thousandths; see the catalog entry).
	return runExperiment(ctx, "landscape-density", repro.RunConfig{
		Sizes: []int{samples, int(lo * 1000), int(hi * 1000)},
	})
}

func runExperiment(ctx context.Context, name string, cfg repro.RunConfig) error {
	res, err := repro.RunExperiment(ctx, name, cfg)
	if err != nil {
		return err
	}
	for _, tb := range res.Tables {
		fmt.Println(tb.Format())
	}
	return nil
}
