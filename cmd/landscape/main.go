// Command landscape prints the node-averaged complexity landscape of LCLs
// on bounded-degree trees (Figures 1 and 2 of the paper) and, on request,
// samples achievable complexity classes inside the dense regions.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/landscape"
	"repro/internal/measure"
)

func main() {
	samples := flag.Int("samples", 0, "sample this many density points per regime")
	lo := flag.Float64("lo", 0.1, "lower end of the sampled exponent range")
	hi := flag.Float64("hi", 0.45, "upper end of the sampled exponent range")
	flag.Parse()
	if err := run(*samples, *lo, *hi); err != nil {
		fmt.Fprintln(os.Stderr, "landscape:", err)
		os.Exit(1)
	}
}

func run(samples int, lo, hi float64) error {
	f1, f2 := repro.LandscapeFigures()
	fmt.Println(f1.Format())
	fmt.Println(f2.Format())
	if samples <= 0 {
		return nil
	}
	for _, regime := range []landscape.Regime{landscape.RegimePolynomial, landscape.RegimeLogStar} {
		a, b := lo, hi
		if regime == landscape.RegimePolynomial && b > 0.5 {
			b = 0.49
		}
		pts, err := landscape.SampleDensityPoints(regime, a, b, samples)
		if err != nil {
			return err
		}
		tb := measure.Table{
			Title:  fmt.Sprintf("density samples, %v regime", regime),
			Header: []string{"exponent", "Δ", "d", "k"},
		}
		for _, p := range pts {
			tb.AddRow(p.Exponent, p.Delta, p.D, p.K)
		}
		fmt.Println(tb.Format())
	}
	return nil
}
