// Command lclsim runs a single algorithm on a generated instance and prints
// per-execution statistics (worst-case rounds, node-averaged rounds, output
// histogram). It is the quick way to poke at the library from the shell.
//
// Examples:
//
//	lclsim -alg 3coloring -n 100000
//	lclsim -alg 2coloring -n 2000 -shards 4
//	lclsim -alg hier35 -k 2 -scale 16
//	lclsim -alg weighted25 -n 50000 -delta 5 -d 2 -k 2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/landscape"
	"repro/internal/sim"
	"repro/internal/weighted"
)

func main() {
	var (
		alg      = flag.String("alg", "3coloring", "3coloring | 2coloring | hier25 | hier35 | weighted25 | weighted35")
		n        = flag.Int("n", 10000, "instance size (target)")
		k        = flag.Int("k", 2, "hierarchy depth")
		delta    = flag.Int("delta", 5, "maximum degree Δ")
		d        = flag.Int("d", 2, "decline budget d")
		scale    = flag.Int("scale", 16, "log*-regime scale parameter T")
		seed     = flag.Uint64("seed", 1, "ID seed")
		parallel = flag.Int("parallel", 1, "simulator worker count (-1 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "simulator shard count (0/1 = unsharded, -1 = GOMAXPROCS); simulator-backed algorithms only")
	)
	flag.Parse()
	if err := run(*alg, *n, *k, *delta, *d, *scale, *seed, *parallel, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "lclsim:", err)
		os.Exit(1)
	}
}

func run(alg string, n, k, delta, d, scale int, seed uint64, parallel, shards int) error {
	switch alg {
	case "3coloring":
		tr, err := graph.BuildPath(n)
		if err != nil {
			return err
		}
		res, err := sim.NewEngine(
			sim.WithIDs(sim.DefaultIDs(n, seed)),
			sim.WithParallelism(parallel),
			sim.WithShards(shards),
		).Run(tr, coloring.LinialAlgorithm{Delta: 2})
		if err != nil {
			return err
		}
		reportShards(res)
		return report("Linial 3-coloring (O(log* n))", n, float64(res.TotalRounds), res.NodeAveraged())
	case "2coloring":
		tr, err := graph.BuildPath(n)
		if err != nil {
			return err
		}
		res, err := sim.NewEngine(
			sim.WithIDs(sim.DefaultIDs(n, seed)),
			sim.WithParallelism(parallel),
			sim.WithShards(shards),
		).Run(tr, coloring.TwoColorPathAlgorithm{})
		if err != nil {
			return err
		}
		reportShards(res)
		return report("2-coloring by propagation (Θ(n))", n, float64(res.TotalRounds), res.NodeAveraged())
	case "hier25", "hier35":
		variant := hierarchy.Coloring25
		if alg == "hier35" {
			variant = hierarchy.Coloring35
		}
		lengths := make([]int, k)
		gammas := make([]int, k-1)
		for i := 1; i <= k; i++ {
			lengths[i-1] = ipow(scale, 1<<uint(i-1))
		}
		for i := 1; i < k; i++ {
			gammas[i-1] = ipow(scale, 1<<uint(i-1))
		}
		h, err := graph.BuildHierarchical(lengths)
		if err != nil {
			return err
		}
		sched, err := hierarchy.NewSchedule(hierarchy.Params{
			Problem: hierarchy.Problem{K: k, Variant: variant},
			Gammas:  gammas,
		})
		if err != nil {
			return err
		}
		levels := graph.ComputeLevels(h.Tree, k)
		ids := sim.DefaultIDs(h.Tree.N(), seed)
		ex, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids)
		if err != nil {
			return err
		}
		if err := (hierarchy.Problem{K: k, Variant: variant}).Verify(h.Tree, levels, ex.Out); err != nil {
			return err
		}
		worst := 0
		for _, r := range ex.Rounds {
			if r > worst {
				worst = r
			}
		}
		return report(fmt.Sprintf("k-hierarchical %v (k=%d, T=%d)", variant, k, scale),
			h.Tree.N(), float64(worst), ex.NodeAveraged())
	case "weighted25", "weighted35":
		variant := hierarchy.Coloring25
		if alg == "weighted35" {
			variant = hierarchy.Coloring35
		}
		p := weighted.Problem{Variant: variant, Delta: delta, D: d, K: k}
		x, err := landscape.EfficiencyX(delta, d)
		if err != nil {
			return err
		}
		regime := landscape.RegimePolynomial
		if variant == hierarchy.Coloring35 {
			regime = landscape.RegimeLogStar
		}
		alphas, err := landscape.Alphas(regime, x, k)
		if err != nil {
			return err
		}
		lengths := make([]int, k)
		prod := 1
		base := float64(n) / float64(k)
		for i := 0; i < k-1; i++ {
			lengths[i] = maxi(2, int(math.Pow(base, alphas[i])))
			prod *= lengths[i]
		}
		lengths[k-1] = maxi(2, int(base)/prod)
		inst, err := weighted.BuildInstance(p, lengths, n/k)
		if err != nil {
			return err
		}
		ids := sim.DefaultIDs(inst.Tree.N(), seed)
		var sol *weighted.Result
		if variant == hierarchy.Coloring25 {
			sol, err = weighted.SolvePoly(inst.Tree, inst.Inputs, p, ids)
		} else {
			sol, err = weighted.SolveLogStar(inst.Tree, inst.Inputs, p, ids, scale)
		}
		if err != nil {
			return err
		}
		if err := p.Verify(inst.Tree, inst.Inputs, sol.Out); err != nil {
			return err
		}
		return report(fmt.Sprintf("Π^%v_{Δ=%d,d=%d,k=%d}", variant, delta, d, k),
			inst.Tree.N(), float64(sol.MaxRounds()), sol.NodeAveraged())
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
}

// reportShards prints the per-shard statistics of a sharded run (nodes,
// boundary edges, crossing traffic, active rounds, machine steps); no-op
// for unsharded runs.
func reportShards(res *sim.Result) {
	if res.Shards == nil {
		return
	}
	var crossed int64
	for _, s := range res.Shards {
		crossed += s.MessagesCrossed
	}
	fmt.Printf("sharded run: %d shards, %d boundary messages crossed, %d machine steps\n",
		len(res.Shards), crossed, res.Steps)
	for _, s := range res.Shards {
		fmt.Printf("  shard %d: %d nodes, %d boundary edges, %d crossed, %d active rounds, %d steps\n",
			s.Shard, s.Nodes, s.BoundaryEdges, s.MessagesCrossed, s.ActiveRounds, s.Steps)
	}
}

func report(name string, n int, worst, avg float64) error {
	fmt.Printf("%s\n  n           = %d\n  worst case  = %.0f rounds\n  node-avg    = %.3f rounds\n",
		name, n, worst, avg)
	return nil
}

func ipow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
