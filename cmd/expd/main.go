// Command expd is the long-running HTTP experiment service: the registry
// catalog, memoized canonical results, and streamed batch queries over one
// shared instance cache, with admission control (docs/SERVICE.md).
//
// Endpoints:
//
//	GET  /v1/experiments                 machine-readable catalog (same JSON as `experiments -list -json`)
//	GET  /v1/experiments/{name}          canonical Result, memoized in the result store
//	     ?preset=&seed=&parallel=&shards=&shard-layout=&timeout=
//	POST /v1/batch                       NDJSON stream of results as experiments finish
//	GET  /healthz                        liveness
//	GET  /statsz                         service telemetry (stores, caches, admission)
//
// A served result is byte-identical to the canonical JSON cmd/experiments
// -out writes for the same (experiment, preset, seed); the store directory
// is interchangeable with a -out directory, so either tool can warm the
// other. Non-2xx responses are JSON envelopes {"error": ..., "label": ...}.
//
// The loadtest subcommand measures the service under concurrent clients
// (cold vs. warm result store) and prints a JSON report; the committed
// BENCH_expd.json is one such run:
//
//	expd loadtest -experiment twocoloring-gap -preset quick -requests 32 -concurrency 1,8 -out BENCH_expd.json
//
// Examples:
//
//	expd -addr :8080 -store expd-store
//	curl localhost:8080/v1/experiments
//	curl 'localhost:8080/v1/experiments/twocoloring-gap?preset=quick'
//	curl -X POST -d '{"experiments":["survivors"],"preset":"quick"}' localhost:8080/v1/batch
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadtest" {
		if err := loadtestMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "expd: loadtest:", err)
			os.Exit(1)
		}
		return
	}
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeDir   = flag.String("store", "expd-store", "result-store directory (interchangeable with a cmd/experiments -out directory)")
		inflight   = flag.Int64("max-inflight", serve.DefaultMaxInFlight, "admission capacity in task-weight units (one unit = one sweep point)")
		maxQueue   = flag.Int("max-queue", serve.DefaultMaxQueue, "requests allowed to wait for admission before the service sheds with 429")
		jobs       = flag.Int("jobs", 0, "task parallelism per admitted computation (0 = GOMAXPROCS; ignored with -remote)")
		timeout    = flag.Duration("timeout", 0, "per-request compute ceiling; requests may lower it via ?timeout=, never raise it (0 = none)")
		retryAfter = flag.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint attached to 429 responses")
		remote     = flag.String("remote", "", "comma-separated host:port addresses of `experiments worker -listen` acceptors: admitted computations dispatch to this fleet instead of computing in process")
		remoteCA   = flag.String("remote-ca", "", "verify TLS worker connections against this CA (or self-signed worker certificate) PEM file (requires -remote)")
		retry      = flag.Bool("worker-retry", false, "retry a crashed remote worker's tasks once on a fresh session before a request fails (with -remote)")
	)
	flag.Parse()
	cfg := serve.Config{
		MaxInFlight: *inflight,
		MaxQueue:    *maxQueue,
		Jobs:        *jobs,
		Timeout:     *timeout,
		RetryAfter:  *retryAfter,
		WorkerRetry: *retry,
	}
	for _, a := range strings.Split(*remote, ",") {
		if a = strings.TrimSpace(a); a != "" {
			cfg.Remote = append(cfg.Remote, a)
		}
	}
	if *remoteCA != "" {
		if len(cfg.Remote) == 0 {
			fmt.Fprintln(os.Stderr, "expd: -remote-ca requires -remote")
			os.Exit(1)
		}
		tlsCfg, err := repro.RemoteTLSConfig(*remoteCA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "expd:", err)
			os.Exit(1)
		}
		cfg.RemoteTLS = tlsCfg
	}
	if err := serveMain(*addr, *storeDir, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "expd:", err)
		os.Exit(1)
	}
}

func serveMain(addr, storeDir string, cfg serve.Config) error {
	store, err := serve.NewStore(storeDir)
	if err != nil {
		return err
	}
	cfg.Store = store
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if len(cfg.Remote) > 0 {
		fmt.Fprintf(os.Stderr, "expd: serving on %s (store %s; remote workers %s)\n", addr, storeDir, strings.Join(cfg.Remote, ","))
	} else {
		fmt.Fprintf(os.Stderr, "expd: serving on %s (store %s)\n", addr, storeDir)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, give in-flight responses a moment,
	// then cancel any remaining computations.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "expd: shut down")
	return nil
}

// loadtestMain implements `expd loadtest`: boot an in-process service and
// measure cold vs. warm phases at each requested concurrency level.
func loadtestMain(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	experiment := fs.String("experiment", "twocoloring-gap", "experiment to query")
	preset := fs.String("preset", "quick", "preset to query")
	requests := fs.Int("requests", 32, "requests per phase per concurrency level")
	concurrency := fs.String("concurrency", "1,8", "comma-separated client concurrency levels")
	jobs := fs.Int("jobs", 0, "server-side task parallelism per computation (0 = GOMAXPROCS)")
	out := fs.String("out", "", "write the JSON report here instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: expd loadtest [-experiment E] [-preset P] [-requests N] [-concurrency 1,8] [-out FILE]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	var levels []int
	for _, part := range strings.Split(*concurrency, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 1 {
			return fmt.Errorf("bad concurrency level %q", part)
		}
		levels = append(levels, c)
	}
	if len(levels) == 0 {
		return errors.New("-concurrency selected no levels")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	report, err := serve.LoadTest(ctx, serve.LoadOptions{
		Experiment:  *experiment,
		Preset:      *preset,
		Requests:    *requests,
		Concurrency: levels,
		Jobs:        *jobs,
		Log:         os.Stderr,
	})
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out != "" {
		return os.WriteFile(*out, raw, 0o644)
	}
	_, err = os.Stdout.Write(raw)
	return err
}
