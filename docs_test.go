package repro

// The documentation gate, run by the CI docs job: every intra-repo markdown
// link in the root documents and docs/ must resolve to an existing file or
// directory, so a rename or deletion cannot silently strand README,
// ROADMAP, or the architecture docs.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/exp"
)

// mdLink matches inline markdown links [text](target); reference-style
// definitions and autolinks are out of scope (the docs use inline links).
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// docFiles lists the markdown files under the link gate: everything at the
// repository root plus everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	root, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files := append(root, sub...)
	if len(files) == 0 {
		t.Fatal("no markdown files found; is the test running from the repo root?")
	}
	return files
}

// TestDistributedDocCoversFrames: docs/DISTRIBUTED.md is the normative
// worker-protocol specification, so it must document every frame type the
// implementation actually emits — each discriminator has to appear both as
// a named frame and inside a JSON example line.
func TestDistributedDocCoversFrames(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("docs", "DISTRIBUTED.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	for _, frame := range exp.FrameTypes() {
		if !strings.Contains(doc, "`"+frame+"`") {
			t.Errorf("docs/DISTRIBUTED.md never names the %q frame", frame)
		}
		if !strings.Contains(doc, fmt.Sprintf("{\"type\":%q", frame)) {
			t.Errorf("docs/DISTRIBUTED.md has no JSON example of the %q frame", frame)
		}
	}
	// The doc also specifies the transport layer under the frames: both
	// transports' user-facing switches and the TCP policies an operator
	// relies on (handshake gate, redial/late-join, deadlines, TLS) must
	// stay documented as the implementation evolves.
	for _, term := range []string{
		"`exp.Transport`",
		"-workers",
		"-remote",
		"-listen",
		"-worker-retry",
		"-remote-read-timeout",
		"backoff",
		"late-join",
		"half-close",
		"keepalive",
		"TLS",
		"`exp.ServeWorker`",
	} {
		if !strings.Contains(doc, term) {
			t.Errorf("docs/DISTRIBUTED.md never mentions %s", term)
		}
	}
}

// TestDocLinksResolve fails on any intra-repo markdown link whose target
// does not exist. External links (with a URL scheme) and pure-fragment
// links are skipped; fragments on relative targets are stripped before the
// existence check.
func TestDocLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if strings.HasPrefix(target, "#") {
				continue // in-page fragment
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken intra-repo link %q (%s does not exist)", file, m[1], resolved)
			}
		}
	}
}
