package decomp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomTree(rng *rand.Rand, n, maxDeg int) *graph.Tree {
	b := graph.NewBuilder(n)
	b.AddNode()
	deg := make([]int, n)
	for v := 1; v < n; v++ {
		b.AddNode()
		for {
			u := rng.Intn(v)
			if deg[u] < maxDeg-1 {
				if err := b.AddEdge(v, u); err != nil {
					panic(err)
				}
				deg[u]++
				deg[v]++
				break
			}
		}
	}
	return b.MustBuild()
}

func checkDecomposition(t *testing.T, tr *graph.Tree, d *Decomposition, opts Options) {
	t.Helper()
	higher := func(u, v int) bool {
		// Is u in a strictly "later" position than v (Definition 75 order)?
		au, av := d.Assign[u], d.Assign[v]
		if au.Iter != av.Iter {
			return au.Iter > av.Iter
		}
		if au.Kind != av.Kind {
			return au.Kind == KindCompress // compress i comes after all rakes of i
		}
		return au.Sub > av.Sub
	}
	for v := 0; v < tr.N(); v++ {
		a := d.Assign[v]
		if a.Kind == KindNone {
			t.Fatalf("node %d unassigned", v)
		}
		if a.Kind == KindRake {
			// Property 3 (Definition 71): each rake-sublayer node has at
			// most one neighbor in a higher layer/sublayer, and sublayer
			// components are isolated nodes (no same-sublayer neighbor).
			higherCount := 0
			for _, w := range tr.NeighborsRaw(v) {
				u := int(w)
				if d.Assign[u] == a {
					t.Fatalf("rake nodes %d and %d adjacent in the same sublayer", v, u)
				}
				if higher(u, v) {
					higherCount++
				}
			}
			if higherCount > 1 {
				t.Fatalf("rake node %d has %d higher neighbors", v, higherCount)
			}
		}
	}
	// Compress paths: consecutive nodes adjacent; length >= ell (and <= 2ell
	// when splitting); endpoints have exactly one higher neighbor; interior
	// nodes none.
	for id, path := range d.Paths {
		if len(path) < opts.Ell {
			t.Fatalf("compress path %d has %d < ℓ=%d nodes", id, len(path), opts.Ell)
		}
		if opts.SplitPaths && len(path) > 2*opts.Ell {
			t.Fatalf("split compress path %d has %d > 2ℓ nodes", id, len(path))
		}
		for i := 1; i < len(path); i++ {
			if !tr.HasEdge(path[i-1], path[i]) {
				t.Fatalf("compress path %d not contiguous", id)
			}
		}
		for i, v := range path {
			higherCount := 0
			for _, w := range tr.NeighborsRaw(v) {
				u := int(w)
				if d.Assign[u].PathID == id {
					continue
				}
				if higher(u, v) {
					higherCount++
				}
			}
			interior := i > 0 && i < len(path)-1
			if interior && higherCount != 0 {
				t.Fatalf("interior compress node %d has %d higher neighbors", v, higherCount)
			}
			if !interior && higherCount > 1 {
				t.Fatalf("compress endpoint %d has %d higher neighbors", v, higherCount)
			}
		}
	}
}

func TestComputeOnPathRelaxed(t *testing.T) {
	tr, err := graph.BuildPath(100)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Gamma: 1, Ell: 3}
	d, err := Compute(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, tr, d, opts)
	// A bare path compresses almost entirely in iteration 1.
	if d.Iters > 3 {
		t.Fatalf("path took %d iterations", d.Iters)
	}
}

func TestComputeOnPathSplit(t *testing.T) {
	tr, err := graph.BuildPath(200)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Gamma: 1, Ell: 4, SplitPaths: true}
	d, err := Compute(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, tr, d, opts)
}

func TestComputeLogIterationsGamma1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 1000, 10000} {
		tr := randomTree(rng, n, 5)
		d, err := Compute(tr, Options{Gamma: 1, Ell: 3})
		if err != nil {
			t.Fatal(err)
		}
		bound := 6*int(math.Log2(float64(n))) + 8
		if d.Iters > bound {
			t.Fatalf("n=%d: %d iterations > %d = O(log n)", n, d.Iters, bound)
		}
	}
}

func TestGeometricDecay(t *testing.T) {
	// The substitute accounting for the Fast Decomposition Algorithm relies
	// on the number of nodes assigned at iteration >= i decaying
	// geometrically; check sum over nodes of Iter is O(n) on balanced trees
	// and random trees (that is exactly "O(1) node-averaged" for layer-
	// proportional charging).
	rng := rand.New(rand.NewSource(9))
	shapes := []*graph.Tree{
		mustBalanced(t, 5, 20000),
		randomTree(rng, 20000, 6),
	}
	for i, tr := range shapes {
		d, err := Compute(tr, Options{Gamma: 1, Ell: 3})
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for v := 0; v < tr.N(); v++ {
			sum += int64(d.Assign[v].Iter)
		}
		avg := float64(sum) / float64(tr.N())
		if avg > 8 {
			t.Fatalf("shape %d: average assignment iteration %.2f, want O(1)", i, avg)
		}
	}
}

func mustBalanced(t *testing.T, delta, size int) *graph.Tree {
	t.Helper()
	tr, err := graph.BuildBalanced(delta, size)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLemma72KIterations(t *testing.T) {
	// With γ = GammaForK(n, ℓ, k), the decomposition finishes within k
	// iterations (Lemma 72).
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{1, 2, 3} {
		for _, n := range []int{100, 2000, 20000} {
			tr := randomTree(rng, n, 4)
			gamma := GammaForK(n, 4, k)
			d, err := Compute(tr, Options{Gamma: gamma, Ell: 4, SplitPaths: true})
			if err != nil {
				t.Fatal(err)
			}
			if d.Iters > k {
				t.Fatalf("k=%d n=%d γ=%d: took %d iterations", k, n, gamma, d.Iters)
			}
		}
	}
}

func TestLemma72KIterationsOnPaths(t *testing.T) {
	for _, k := range []int{2, 3} {
		n := 5000
		tr, err := graph.BuildPath(n)
		if err != nil {
			t.Fatal(err)
		}
		gamma := GammaForK(n, 4, k)
		d, err := Compute(tr, Options{Gamma: gamma, Ell: 4, SplitPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		if d.Iters > k {
			t.Fatalf("k=%d path: took %d iterations", k, d.Iters)
		}
	}
}

func TestComputeValidatesOptions(t *testing.T) {
	tr, err := graph.BuildPath(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(tr, Options{Gamma: 0, Ell: 3}); err == nil {
		t.Error("gamma=0 accepted")
	}
	if _, err := Compute(tr, Options{Gamma: 1, Ell: 0}); err == nil {
		t.Error("ell=0 accepted")
	}
}

func TestSplitRunChunks(t *testing.T) {
	run := make([]int, 23)
	for i := range run {
		run[i] = i
	}
	chunks := splitRun(run, 4)
	covered := 0
	for _, c := range chunks {
		if len(c) < 4 || len(c) > 8 {
			t.Fatalf("chunk size %d outside [4,8]", len(c))
		}
		covered += len(c)
	}
	if covered >= len(run) {
		t.Fatal("separators not excluded")
	}
}

func TestSingleNode(t *testing.T) {
	tr, err := graph.BuildPath(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(tr, Options{Gamma: 1, Ell: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Assign[0].Kind != KindRake || d.Iters != 1 {
		t.Fatalf("single node: %+v iters=%d", d.Assign[0], d.Iters)
	}
}
