// Package decomp implements the rake-and-compress tree decompositions the
// paper's algorithms build on: the (γ, ℓ, L)-decomposition of Definition 71
// (computable in O(k·n^{1/k}) rounds for γ ≈ n^{1/k}, or O(log n) rounds for
// γ = 1; Lemma 72) and the relaxed (γ, ℓ, i)-decomposition of Definition 43
// that does not split long compress paths.
//
// The decomposition drives (a) the k-hierarchical labeling solver of
// Lemma 65, and (b) the round accounting of the weight-node side of the
// Π^{3.5} algorithm (Section 8), where a node's termination round is
// proportional to the iteration in which it is assigned a layer and the
// number of still-unassigned nodes decays geometrically with the iteration
// (the substitute for [BBK+23a]'s Fast Decomposition Algorithm; see
// DESIGN.md).
package decomp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Kind distinguishes rake and compress layers.
type Kind uint8

// Layer kinds.
const (
	KindNone     Kind = iota
	KindRake          // removed as a degree-<=1 node
	KindCompress      // removed as part of a long degree-2 path
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRake:
		return "rake"
	case KindCompress:
		return "compress"
	default:
		return "none"
	}
}

// Assignment records where a node landed in the decomposition.
type Assignment struct {
	Kind Kind
	// Iter is the 1-based iteration (layer number).
	Iter int
	// Sub is the 1-based rake sub-layer within the iteration (1..γ); 0 for
	// compress assignments.
	Sub int
	// PathID identifies the compress path the node belongs to (-1 for rake).
	PathID int
}

// Decomposition is the result of Compute.
type Decomposition struct {
	Assign []Assignment
	// Iters is the number of iterations used.
	Iters int
	// Paths lists the node sets of compress paths, ordered along the path;
	// Assign[v].PathID indexes into this slice.
	Paths [][]int
}

// Options configures Compute.
type Options struct {
	// Gamma is the number of rake sub-rounds per iteration (γ >= 1).
	Gamma int
	// Ell is the minimum compress-path length (ℓ >= 1). Runs of degree-2
	// nodes shorter than Ell are left for later iterations.
	Ell int
	// SplitPaths selects the full Definition-71 behavior: long degree-2 runs
	// are cut into compress paths of length in [Ell, 2*Ell] with single
	// promoted separator nodes left alive in between. Without it, whole runs
	// become one compress path (the relaxed decomposition of Definition 43).
	SplitPaths bool
	// MaxIters aborts if the decomposition does not finish (safety bound);
	// 0 means 4n+16.
	MaxIters int
}

// ErrBadOptions indicates invalid decomposition options.
var ErrBadOptions = errors.New("invalid decomposition options")

// GammaForK returns the rake width γ = ⌈n^{1/k} · (ℓ/2)^{1−1/k}⌉ of
// Lemma 72, which yields a (γ, ℓ, k)-decomposition (at most k iterations).
func GammaForK(n, ell, k int) int {
	if n < 1 || k < 1 {
		return 1
	}
	inv := 1 / float64(k)
	g := int(math.Pow(float64(n), inv)*math.Pow(float64(ell)/2, 1-inv)) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// Compute peels tree t into rake and compress layers.
func Compute(t *graph.Tree, opts Options) (*Decomposition, error) {
	if opts.Gamma < 1 {
		return nil, fmt.Errorf("%w: gamma = %d", ErrBadOptions, opts.Gamma)
	}
	if opts.Ell < 1 {
		return nil, fmt.Errorf("%w: ell = %d", ErrBadOptions, opts.Ell)
	}
	n := t.N()
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 4*n + 16
	}
	d := &Decomposition{Assign: make([]Assignment, n)}
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = t.Degree(v)
	}
	remaining := n
	remove := func(v int, a Assignment) {
		d.Assign[v] = a
		alive[v] = false
		remaining--
		for _, w := range t.NeighborsRaw(v) {
			if alive[w] {
				deg[w]--
			}
		}
	}
	for iter := 1; remaining > 0; iter++ {
		if iter > maxIters {
			return nil, fmt.Errorf("decomp: not finished after %d iterations (%d nodes left)",
				maxIters, remaining)
		}
		d.Iters = iter
		// Rake sub-rounds.
		for sub := 1; sub <= opts.Gamma && remaining > 0; sub++ {
			var batch []int
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= 1 {
					batch = append(batch, v)
				}
			}
			for _, v := range batch {
				remove(v, Assignment{Kind: KindRake, Iter: iter, Sub: sub, PathID: -1})
			}
		}
		if remaining == 0 {
			break
		}
		// Compress: maximal runs of alive degree-2 nodes.
		for _, run := range degree2Runs(t, alive, deg) {
			if len(run) < opts.Ell {
				continue
			}
			chunks := [][]int{run}
			if opts.SplitPaths {
				chunks = splitRun(run, opts.Ell)
			}
			for _, chunk := range chunks {
				id := len(d.Paths)
				d.Paths = append(d.Paths, chunk)
				for _, v := range chunk {
					remove(v, Assignment{Kind: KindCompress, Iter: iter, PathID: id})
				}
			}
		}
	}
	return d, nil
}

// degree2Runs returns the maximal chains of alive nodes whose alive-degree
// is exactly 2, each ordered along the chain.
func degree2Runs(t *graph.Tree, alive []bool, deg []int) [][]int {
	n := t.N()
	isMid := func(v int) bool { return alive[v] && deg[v] == 2 }
	seen := make([]bool, n)
	var runs [][]int
	for v := 0; v < n; v++ {
		if !isMid(v) || seen[v] {
			continue
		}
		end := walkToEnd(t, alive, deg, v)
		runs = append(runs, collectRun(t, alive, deg, end, seen))
	}
	return runs
}

func walkToEnd(t *graph.Tree, alive []bool, deg []int, v int) int {
	isMid := func(u int) bool { return alive[u] && deg[u] == 2 }
	prev, cur := -1, v
	for {
		next := -1
		for _, w := range t.NeighborsRaw(cur) {
			u := int(w)
			if u != prev && isMid(u) {
				next = u
				break
			}
		}
		if next == -1 {
			return cur
		}
		prev, cur = cur, next
	}
}

func collectRun(t *graph.Tree, alive []bool, deg []int, end int, seen []bool) []int {
	isMid := func(u int) bool { return alive[u] && deg[u] == 2 }
	run := []int{end}
	seen[end] = true
	prev, cur := -1, end
	for {
		next := -1
		for _, w := range t.NeighborsRaw(cur) {
			u := int(w)
			if u != prev && isMid(u) && !seen[u] {
				next = u
				break
			}
		}
		if next == -1 {
			return run
		}
		seen[next] = true
		run = append(run, next)
		prev, cur = cur, next
	}
}

// splitRun cuts a run of degree-2 nodes into chunks of length in [ell, 2ell]
// separated by single promoted nodes (which stay alive and join a later
// layer): while more than 2ℓ nodes remain, emit an ℓ-node chunk and skip one
// separator; the final chunk then has between ℓ and 2ℓ nodes.
func splitRun(run []int, ell int) [][]int {
	var chunks [][]int
	for len(run) > 2*ell {
		chunks = append(chunks, run[:ell])
		run = run[ell+1:] // skip one promoted separator node
	}
	if len(run) >= ell {
		chunks = append(chunks, run)
	}
	return chunks
}
