package labeling

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/hierarchy"
)

// Secondary is the secondary output of a weight node in the weight-augmented
// problem: either Decline or a label from the active alphabet.
type Secondary struct {
	Decline bool
	Label   hierarchy.Label
}

// String formats the secondary output.
func (s Secondary) String() string {
	if s.Decline {
		return "Decline"
	}
	return s.Label.String()
}

// AugOutput is a node's output for the k-hierarchical weight-augmented
// 2½-coloring (Definition 67).
type AugOutput struct {
	// Active is the hierarchical output of an active node (LabelNone on
	// weight nodes).
	Active hierarchy.Label
	// Weight-side outputs: the k-hierarchical labeling output plus the
	// secondary output.
	WLabel    Label
	OutNode   int
	Secondary Secondary
}

// AugInstance is a weight-augmented instance: a tree with Active/Weight
// marks.
type AugInstance struct {
	K       int
	Delta   int
	Tree    *graph.Tree
	Weight  []bool // true = weight node
	NumCore int    // number of active (hierarchical-core) nodes
	// Roots maps each attached weight-tree root to its active host.
	Roots map[int]int
}

// BuildAugInstance builds the Definition-25-style instance for the
// weight-augmented problem: a k-hierarchical core with path lengths lengths,
// and weightPerLevel weight nodes distributed evenly as balanced
// Δ-regular trees over the construction levels 2..k.
func BuildAugInstance(k, delta int, lengths []int, weightPerLevel int) (*AugInstance, error) {
	if k >= 2 && len(lengths) != k {
		return nil, fmt.Errorf("labeling: %d lengths for k=%d", len(lengths), k)
	}
	if err := validateAugParams(k, delta); err != nil {
		return nil, err
	}
	h, err := graph.BuildHierarchical(lengths)
	if err != nil {
		return nil, err
	}
	return BuildAugInstanceFrom(k, delta, h, weightPerLevel)
}

// BuildAugInstanceFrom builds the same construction around a prebuilt
// hierarchical core. The instance references h's tree without modifying it,
// so a shared (cached) core can back many composites; internal/inst routes
// its keyed AugKey entries through here.
func BuildAugInstanceFrom(k, delta int, h *graph.Hierarchical, weightPerLevel int) (*AugInstance, error) {
	if err := validateAugParams(k, delta); err != nil {
		return nil, err
	}
	if h.K != k {
		return nil, fmt.Errorf("labeling: %d-level core for k=%d", h.K, k)
	}
	nCore := h.Tree.N()
	b := graph.NewBuilder(nCore + (k-1)*weightPerLevel)
	b.AddNodes(nCore)
	for _, e := range h.Tree.Edges() {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	roots := make(map[int]int)
	fan := delta - 1
	for level := 2; level <= k; level++ {
		var hosts []int
		for _, path := range h.Paths[level-1] {
			hosts = append(hosts, path...)
		}
		if len(hosts) == 0 {
			continue
		}
		per := weightPerLevel / len(hosts)
		if per < 1 {
			per = 1
		}
		for _, host := range hosts {
			first := b.AddNodes(per)
			if err := b.AddEdge(host, first); err != nil {
				return nil, err
			}
			next := first + 1
			lastIdx := first + per - 1
			for v := first; v <= lastIdx && next <= lastIdx; v++ {
				for c := 0; c < fan && next <= lastIdx; c++ {
					if err := b.AddEdge(v, next); err != nil {
						return nil, err
					}
					next++
				}
			}
			roots[first] = host
		}
	}
	tree, err := b.Build()
	if err != nil {
		return nil, err
	}
	weight := make([]bool, tree.N())
	for v := nCore; v < tree.N(); v++ {
		weight[v] = true
	}
	return &AugInstance{
		K:       k,
		Delta:   delta,
		Tree:    tree,
		Weight:  weight,
		NumCore: nCore,
		Roots:   roots,
	}, nil
}

// validateAugParams holds the checks shared by BuildAugInstance and
// BuildAugInstanceFrom.
func validateAugParams(k, delta int) error {
	if k < 2 {
		return fmt.Errorf("labeling: augmented construction needs k >= 2, got %d", k)
	}
	if delta < 4 {
		return fmt.Errorf("labeling: Δ = %d < 4", delta)
	}
	return nil
}

// AugResult is an execution of the weight-augmented solver.
type AugResult struct {
	Out    []AugOutput
	Rounds []int
}

// NodeAveraged returns (1/n) Σ_v T_v.
func (r *AugResult) NodeAveraged() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var sum int64
	for _, t := range r.Rounds {
		sum += int64(t)
	}
	return float64(sum) / float64(len(r.Rounds))
}

// SolveAug solves the k-hierarchical weight-augmented 2½-coloring
// (Definition 67) with node-averaged complexity Θ(n^{1/k}) (Lemma 69):
// active components run the generic 2½ algorithm with γ_i = ⌈n^{1/k}⌉ (the
// x = 1 exponents); weight components compute a k-hierarchical labeling with
// the active-adjacent nodes pinned; secondary outputs then flow down the
// orientation — every rake chain copies the value of the node it points to,
// ultimately the active output (Lemma 68: an Ω(1) fraction of every attached
// weight tree waits for its active node), while compress subtrees decline.
func SolveAug(t *graph.Tree, weight []bool, k int, ids []uint64) (*AugResult, error) {
	n := t.N()
	if len(weight) != n || len(ids) != n {
		return nil, fmt.Errorf("labeling: weight/ids length mismatch (n=%d)", n)
	}
	gamma := int(math.Ceil(math.Pow(float64(n), 1/float64(k))))
	gammas := make([]int, k-1)
	for i := range gammas {
		gammas[i] = gamma
	}
	sched, err := hierarchy.NewSchedule(hierarchy.Params{
		Problem: hierarchy.Problem{K: k, Variant: hierarchy.Coloring25},
		Gammas:  gammas,
	})
	if err != nil {
		return nil, err
	}
	res := &AugResult{
		Out:    make([]AugOutput, n),
		Rounds: make([]int, n),
	}
	for v := range res.Out {
		res.Out[v].OutNode = -1
	}
	activeMask := make([]bool, n)
	for v := 0; v < n; v++ {
		activeMask[v] = !weight[v]
	}
	for _, comp := range graph.InducedComponents(t, activeMask) {
		levels := graph.ComputeLevels(comp.Tree, k)
		compIDs := make([]uint64, len(comp.Nodes))
		for i, v := range comp.Nodes {
			compIDs[i] = ids[v]
		}
		ex, err := hierarchy.RunAnalytic(comp.Tree, levels, sched, compIDs)
		if err != nil {
			return nil, err
		}
		for i, v := range comp.Nodes {
			res.Out[v].Active = ex.Out[i]
			res.Rounds[v] = ex.Rounds[i]
		}
	}
	for _, comp := range graph.InducedComponents(t, weight) {
		if err := solveAugWeightComponent(t, weight, k, comp, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func solveAugWeightComponent(t *graph.Tree, weight []bool, k int, comp *graph.Component, res *AugResult) error {
	m := comp.Tree.N()
	pinned := make([]bool, m)
	activeOf := make([]int, m) // chosen active neighbor (original index), -1
	for i := range activeOf {
		activeOf[i] = -1
	}
	for i, v := range comp.Nodes {
		best := -1
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if !weight[u] {
				if best == -1 || res.Rounds[u] < res.Rounds[best] {
					best = u
				}
			}
		}
		if best >= 0 {
			pinned[i] = true
			activeOf[i] = best
		}
	}
	sol, err := Solve(comp.Tree, k, pinned)
	if err != nil {
		return err
	}
	// Secondary assignment in reverse removal order: a node's orientation
	// target always has a strictly larger removal sequence number, so
	// processing by decreasing Seq resolves all copy dependencies.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sol.Seq[order[a]] > sol.Seq[order[b]] })
	for _, i := range order {
		v := comp.Nodes[i]
		res.Out[v].WLabel = sol.Out[i].Label
		switch {
		case pinned[i]:
			// Rule 3: orient toward the chosen active node and copy it.
			res.Out[v].OutNode = activeOf[i]
			res.Out[v].Secondary = Secondary{Label: res.Out[activeOf[i]].Active}
			res.Rounds[v] = maxInt(sol.Rounds[i], res.Rounds[activeOf[i]]+1)
		case !sol.Out[i].Label.IsRake():
			// Rule 5: compress nodes not adjacent to an active decline.
			res.Out[v].Secondary = Secondary{Decline: true}
			if sol.Out[i].OutNode >= 0 {
				res.Out[v].OutNode = comp.Nodes[sol.Out[i].OutNode]
			}
			res.Rounds[v] = sol.Rounds[i]
		case sol.Out[i].OutNode < 0:
			// A rake node with no target (last survivor of an active-free
			// component) originates an arbitrary legal label.
			res.Out[v].Secondary = Secondary{Label: hierarchy.LabelW}
			res.Rounds[v] = sol.Rounds[i]
		default:
			// Rule 4: copy the secondary of the orientation target.
			j := sol.Out[i].OutNode
			u := comp.Nodes[j]
			res.Out[v].OutNode = u
			res.Out[v].Secondary = res.Out[u].Secondary
			res.Rounds[v] = maxInt(sol.Rounds[i], res.Rounds[u]+1)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// VerifyAug checks the rules of Definition 67 under the interpretation
// documented in DESIGN.md: (1) active components solve k-hierarchical
// 2½-coloring; (2) weight components solve the k-hierarchical labeling
// problem (with active-adjacent nodes treated as pinned); (3) every weight
// node adjacent to an active node points at exactly one of them and copies
// its output; (4) a weight node pointing at another weight node carries the
// same secondary; (5) a compress node declines iff it is not adjacent to an
// active node, and only compress nodes *originate* Decline (rake chains may
// inherit it).
func VerifyAug(t *graph.Tree, weight []bool, k int, out []AugOutput) error {
	n := t.N()
	if len(weight) != n || len(out) != n {
		return fmt.Errorf("labeling: weight/out length mismatch")
	}
	activeMask := make([]bool, n)
	for v := 0; v < n; v++ {
		activeMask[v] = !weight[v]
	}
	hp := hierarchy.Problem{K: k, Variant: hierarchy.Coloring25}
	for _, comp := range graph.InducedComponents(t, activeMask) {
		levels := graph.ComputeLevels(comp.Tree, k)
		labels := make([]hierarchy.Label, len(comp.Nodes))
		for i, v := range comp.Nodes {
			labels[i] = out[v].Active
		}
		if err := hp.Verify(comp.Tree, levels, labels); err != nil {
			return fmt.Errorf("%w: active component: %v", ErrInvalid, err)
		}
	}
	for _, comp := range graph.InducedComponents(t, weight) {
		pinned := make([]bool, comp.Tree.N())
		for i, v := range comp.Nodes {
			for _, w := range t.NeighborsRaw(v) {
				if !weight[w] {
					pinned[i] = true
				}
			}
		}
		wout := make([]Output, comp.Tree.N())
		for i, v := range comp.Nodes {
			wout[i] = Output{Label: out[v].WLabel, OutNode: -1}
			if u := out[v].OutNode; u >= 0 && comp.IndexOf(u) >= 0 {
				wout[i].OutNode = comp.IndexOf(u)
			}
		}
		if err := Verify(comp.Tree, k, pinned, wout); err != nil {
			return err
		}
	}
	for v := 0; v < n; v++ {
		if !weight[v] {
			continue
		}
		adjActive := false
		for _, w := range t.NeighborsRaw(v) {
			if !weight[w] {
				adjActive = true
			}
		}
		target := out[v].OutNode
		if adjActive {
			// Rule 3.
			if target < 0 || weight[target] || !t.HasEdge(v, target) {
				return fmt.Errorf("%w: active-adjacent weight node %d does not point at an active neighbor",
					ErrInvalid, v)
			}
			if out[v].Secondary.Decline || out[v].Secondary.Label != out[target].Active {
				return fmt.Errorf("%w: weight node %d secondary %v != active output %v",
					ErrInvalid, v, out[v].Secondary, out[target].Active)
			}
			continue
		}
		// Rule 5.
		if !out[v].WLabel.IsRake() && !out[v].Secondary.Decline {
			return fmt.Errorf("%w: compress node %d without active neighbor must decline", ErrInvalid, v)
		}
		// Rule 4.
		if target >= 0 && weight[target] && out[v].Secondary != out[target].Secondary {
			return fmt.Errorf("%w: weight node %d secondary %v != target %d secondary %v",
				ErrInvalid, v, out[v].Secondary, target, out[target].Secondary)
		}
		// Origination restriction: a rake node with no weight target must
		// not declare Decline.
		if out[v].WLabel.IsRake() && target < 0 && out[v].Secondary.Decline {
			return fmt.Errorf("%w: rake node %d originates Decline", ErrInvalid, v)
		}
	}
	return nil
}
