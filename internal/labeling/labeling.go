// Package labeling implements Section 10 of the paper: the k-hierarchical
// labeling LCL (Definition 63), its O(n^{1/k})-round solver via a
// (γ, ℓ, k)-decomposition (Lemma 65), and the k-hierarchical
// weight-augmented 2½-coloring (Definition 67) whose weight efficiency
// factor is x = 1 (Lemma 68), closing the landscape at Θ(n^{1/k})
// (Lemma 69) — in particular Θ(√n) for k = 2.
package labeling

import (
	"errors"
	"fmt"

	"repro/internal/decomp"
	"repro/internal/graph"
)

// Label is an output label of the k-hierarchical labeling problem: rake
// labels R_1 < ... < R_k interleaved with compress labels C_1 < ... <
// C_{k-1}, ordered R_1 < C_1 < R_2 < C_2 < ... < C_{k-1} < R_k.
type Label uint8

// Rake returns the label R_i (i >= 1).
func Rake(i int) Label { return Label(2*i - 1) }

// Compress returns the label C_i (i >= 1).
func Compress(i int) Label { return Label(2 * i) }

// IsRake reports whether l is a rake label.
func (l Label) IsRake() bool { return l%2 == 1 }

// Index returns i for R_i or C_i.
func (l Label) Index() int {
	if l.IsRake() {
		return (int(l) + 1) / 2
	}
	return int(l) / 2
}

// String names the label.
func (l Label) String() string {
	if l == 0 {
		return "none"
	}
	if l.IsRake() {
		return fmt.Sprintf("R%d", l.Index())
	}
	return fmt.Sprintf("C%d", l.Index())
}

// Output is one node's output for the k-hierarchical labeling problem: a
// label and the unique outgoing edge (OutNode = neighbor index, or -1).
type Output struct {
	Label   Label
	OutNode int
}

// Solution is a full labeling with round accounting.
type Solution struct {
	Out []Output
	// Rounds[v] is the round at which v fixed its (primary) output; the
	// solver charges a node γ+2 rounds per decomposition iteration, for a
	// worst case of O(k · n^{1/k}).
	Rounds []int
	// Iter[v] is the decomposition iteration in which v was assigned.
	Iter []int
	// Seq[v] is the removal sequence number of v; orientation targets always
	// have strictly larger Seq, so processing nodes in decreasing Seq order
	// resolves all copy dependencies.
	Seq []int
}

// ErrInvalid wraps verifier failures; ErrInfeasible marks instances the
// solver cannot label within k iterations.
var (
	ErrInvalid    = errors.New("k-hierarchical labeling output invalid")
	ErrInfeasible = errors.New("k-hierarchical labeling solver infeasible on this instance")
)

// Solve computes a k-hierarchical labeling of t in worst-case O(k·n^{1/k})
// rounds (Lemma 65), using a (γ, 4, k)-decomposition with γ from Lemma 72.
// pinned marks nodes that must survive until their neighborhood is gone and
// that point "outside" the graph (used by the weight-augmented problem,
// where pinned nodes orient toward an active node); pinned entries get
// OutNode = -1 here. pinned may be nil.
func Solve(t *graph.Tree, k int, pinned []bool) (*Solution, error) {
	n := t.N()
	if k < 1 {
		return nil, fmt.Errorf("labeling: k = %d < 1", k)
	}
	if pinned == nil {
		pinned = make([]bool, n)
	}
	if len(pinned) != n {
		return nil, fmt.Errorf("labeling: pinned length %d != n %d", len(pinned), n)
	}
	for v := 0; v < n; v++ {
		if !pinned[v] {
			continue
		}
		for _, w := range t.NeighborsRaw(v) {
			if pinned[w] {
				return nil, fmt.Errorf("%w: adjacent pinned nodes %d and %d", ErrInfeasible, v, int(w))
			}
		}
	}
	gamma := decomp.GammaForK(n, 4, k)
	sol := &Solution{
		Out:    make([]Output, n),
		Rounds: make([]int, n),
		Iter:   make([]int, n),
		Seq:    make([]int, n),
	}
	seq := 0
	alive := make([]bool, n)
	deg := make([]int, n) // effective degree: +1 for pinned nodes
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = t.Degree(v)
		if pinned[v] {
			deg[v]++
		}
	}
	remaining := n
	aliveNbr := func(v int) int {
		for _, w := range t.NeighborsRaw(v) {
			if alive[w] {
				return int(w)
			}
		}
		return -1
	}
	remove := func(v int, out Output, iter int) {
		sol.Out[v] = out
		sol.Iter[v] = iter
		sol.Seq[v] = seq
		seq++
		sol.Rounds[v] = iter * (gamma + 2)
		alive[v] = false
		remaining--
		for _, w := range t.NeighborsRaw(v) {
			if alive[w] {
				deg[w]--
			}
		}
	}
	for iter := 1; remaining > 0; iter++ {
		if iter > k {
			return nil, fmt.Errorf("%w: needs more than k=%d iterations (γ=%d)", ErrInfeasible, k, gamma)
		}
		// γ rake sub-rounds: remove effective-degree-<=1 nodes; each orients
		// its edge toward its unique alive neighbor (rule 3 direction:
		// lower label points at higher). Pinned nodes have a phantom edge
		// and are removed only when isolated, pointing outside.
		for sub := 0; sub < gamma && remaining > 0; sub++ {
			var batch []int
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= 1 {
					batch = append(batch, v)
				}
			}
			for _, v := range batch {
				remove(v, Output{Label: Rake(iter), OutNode: aliveNbr(v)}, iter)
			}
		}
		if remaining == 0 {
			break
		}
		// Compress: split maximal alive degree-2 runs into [4,8]-node paths;
		// interiors get C_iter, endpoints get R_{iter+1} with the interior
		// neighbor pointing at them and the endpoint pointing at its higher
		// alive neighbor.
		runs := aliveDeg2Runs(t, alive, deg, pinned)
		for _, run := range runs {
			if len(run) < 4 {
				continue
			}
			if iter == k {
				return nil, fmt.Errorf("%w: compress needed at iteration k=%d (no C_%d label)", ErrInfeasible, k, k)
			}
			for _, chunk := range splitChunks(run, 4) {
				last := len(chunk) - 1
				// Interiors first (they point at endpoints while endpoints
				// are conceptually "later").
				for i := 1; i < last; i++ {
					out := Output{Label: Compress(iter), OutNode: -1}
					if i == 1 {
						out.OutNode = chunk[0]
					} else if i == last-1 {
						out.OutNode = chunk[last]
					}
					remove(chunk[i], out, iter)
				}
				for _, e := range []int{0, last} {
					v := chunk[e]
					if e == last && last == 0 {
						continue
					}
					remove(v, Output{Label: Rake(iter + 1), OutNode: aliveNbr(v)}, iter)
				}
			}
		}
	}
	return sol, nil
}

// aliveDeg2Runs lists maximal chains of alive, unpinned, effective-degree-2
// nodes (pinned nodes never join compress paths: their phantom edge keeps
// them anchored).
func aliveDeg2Runs(t *graph.Tree, alive []bool, deg []int, pinned []bool) [][]int {
	n := t.N()
	isMid := func(v int) bool { return alive[v] && deg[v] == 2 && !pinned[v] }
	seen := make([]bool, n)
	var runs [][]int
	for v := 0; v < n; v++ {
		if !isMid(v) || seen[v] {
			continue
		}
		// Walk to one end.
		prev, cur := -1, v
		for {
			next := -1
			for _, w := range t.NeighborsRaw(cur) {
				u := int(w)
				if u != prev && isMid(u) {
					next = u
					break
				}
			}
			if next == -1 {
				break
			}
			prev, cur = cur, next
		}
		// Collect from the end.
		run := []int{cur}
		seen[cur] = true
		prev = -1
		for {
			next := -1
			for _, w := range t.NeighborsRaw(cur) {
				u := int(w)
				if u != prev && isMid(u) && !seen[u] {
					next = u
					break
				}
			}
			if next == -1 {
				break
			}
			seen[next] = true
			run = append(run, next)
			prev, cur = cur, next
		}
		runs = append(runs, run)
	}
	return runs
}

// splitChunks cuts a run into chunks of length in [ell, 2ell], dropping
// separator nodes between chunks (they stay alive).
func splitChunks(run []int, ell int) [][]int {
	var chunks [][]int
	for len(run) > 2*ell {
		chunks = append(chunks, run[:ell])
		run = run[ell+1:]
	}
	if len(run) >= ell {
		chunks = append(chunks, run)
	}
	return chunks
}

// Verify checks the six rules of Definition 63. pinned nodes are allowed
// (and required) to have OutNode = -1 pointing outside; their phantom edge
// counts as oriented.
func Verify(t *graph.Tree, k int, pinned []bool, out []Output) error {
	n := t.N()
	if len(out) != n {
		return fmt.Errorf("labeling: out length %d != n %d", len(out), n)
	}
	if pinned == nil {
		pinned = make([]bool, n)
	}
	oriented := func(u, v int) bool { return out[u].OutNode == v || out[v].OutNode == u }
	for v := 0; v < n; v++ {
		l := out[v].Label
		if l == 0 || l.Index() > k || (!l.IsRake() && l.Index() >= k) {
			return fmt.Errorf("%w: node %d label %v outside alphabet(k=%d)", ErrInvalid, v, l, k)
		}
		// Rule 1: edges adjacent to a rake label are oriented.
		if l.IsRake() {
			for _, w := range t.NeighborsRaw(v) {
				if !oriented(v, int(w)) {
					return fmt.Errorf("%w: unoriented edge {%d,%d} at rake node %d", ErrInvalid, v, int(w), v)
				}
			}
		}
		// Rule 2: at most one outgoing edge; compress nodes with two
		// compress neighbors have none.
		if out[v].OutNode >= 0 && !t.HasEdge(v, out[v].OutNode) {
			return fmt.Errorf("%w: node %d points at non-neighbor %d", ErrInvalid, v, out[v].OutNode)
		}
		if !l.IsRake() {
			compressNbrs := 0
			for _, w := range t.NeighborsRaw(v) {
				if !out[w].Label.IsRake() {
					compressNbrs++
				}
			}
			if compressNbrs >= 2 && out[v].OutNode != -1 {
				return fmt.Errorf("%w: interior compress node %d has an outgoing edge", ErrInvalid, v)
			}
		}
		// Rule 3: labels non-decreasing along orientation.
		if u := out[v].OutNode; u >= 0 && out[u].Label < l {
			return fmt.Errorf("%w: edge %d->%d decreases label %v -> %v", ErrInvalid, v, u, l, out[u].Label)
		}
		// Rules 4+5: compress components are paths; equal compress labels
		// only.
		if !l.IsRake() {
			same := 0
			for _, w := range t.NeighborsRaw(v) {
				lw := out[w].Label
				if !lw.IsRake() {
					if lw != l {
						return fmt.Errorf("%w: adjacent distinct compress labels %v,%v (%d,%d)",
							ErrInvalid, l, lw, v, int(w))
					}
					same++
				}
			}
			if same > 2 {
				return fmt.Errorf("%w: compress node %d has %d same-label neighbors (not a path)", ErrInvalid, v, same)
			}
		}
		// Rule 6: a rake node has at most one compress neighbor pointing at
		// it, and if one exists, all in-pointers carry strictly lower
		// labels.
		if l.IsRake() {
			compressIn := 0
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if out[u].OutNode == v && !out[u].Label.IsRake() {
					compressIn++
				}
			}
			if compressIn > 1 {
				return fmt.Errorf("%w: rake node %d has %d compress in-pointers", ErrInvalid, v, compressIn)
			}
			if compressIn == 1 {
				for _, w := range t.NeighborsRaw(v) {
					u := int(w)
					if out[u].OutNode == v && out[u].Label >= l {
						return fmt.Errorf("%w: in-pointer %d->%d label %v not below %v",
							ErrInvalid, u, v, out[u].Label, l)
					}
				}
			}
		}
	}
	return nil
}
