package labeling

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestLabelArithmetic(t *testing.T) {
	if Rake(1) >= Compress(1) || Compress(1) >= Rake(2) || Compress(2) >= Rake(3) {
		t.Fatal("label ordering R1 < C1 < R2 < C2 < R3 broken")
	}
	if !Rake(3).IsRake() || Compress(2).IsRake() {
		t.Fatal("IsRake wrong")
	}
	if Rake(3).Index() != 3 || Compress(2).Index() != 2 {
		t.Fatal("Index wrong")
	}
	if Rake(2).String() != "R2" || Compress(1).String() != "C1" {
		t.Fatal("String wrong")
	}
}

func randomTree(rng *rand.Rand, n, maxDeg int) *graph.Tree {
	b := graph.NewBuilder(n)
	b.AddNode()
	deg := make([]int, n)
	for v := 1; v < n; v++ {
		b.AddNode()
		for {
			u := rng.Intn(v)
			if deg[u] < maxDeg-1 {
				if err := b.AddEdge(v, u); err != nil {
					panic(err)
				}
				deg[u]++
				deg[v]++
				break
			}
		}
	}
	return b.MustBuild()
}

func TestSolveAndVerifyOnShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	shapes := []struct {
		name string
		tree *graph.Tree
		k    int
	}{
		{"path-100-k2", mustPath(t, 100), 2},
		{"path-1000-k2", mustPath(t, 1000), 2},
		{"path-1000-k3", mustPath(t, 1000), 3},
		{"balanced", mustBalanced(t, 4, 500), 2},
		{"random-k2", randomTree(rng, 400, 5), 2},
		{"random-k3", randomTree(rng, 400, 5), 3},
		{"caterpillar", mustCaterpillar(t, 50, 3), 2},
		{"single", mustPath(t, 1), 1},
	}
	for _, sh := range shapes {
		sol, err := Solve(sh.tree, sh.k, nil)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		if err := Verify(sh.tree, sh.k, nil, sol.Out); err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
	}
}

func mustPath(t *testing.T, n int) *graph.Tree {
	t.Helper()
	tr, err := graph.BuildPath(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustBalanced(t *testing.T, delta, n int) *graph.Tree {
	t.Helper()
	tr, err := graph.BuildBalanced(delta, n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustCaterpillar(t *testing.T, a, b int) *graph.Tree {
	t.Helper()
	tr, err := graph.BuildCaterpillar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSolveWorstCaseIsNPowOneOverK(t *testing.T) {
	// Lemma 65: worst case O(n^{1/k}); the charged rounds are
	// iter·(γ+2) <= k·(γ+2) with γ ≈ n^{1/k}.
	for _, k := range []int{2, 3} {
		n := 20000
		tr := mustPath(t, n)
		sol, err := Solve(tr, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		maxRound := 0
		for _, r := range sol.Rounds {
			if r > maxRound {
				maxRound = r
			}
		}
		bound := int(3 * float64(k+1) * math.Pow(float64(n), 1/float64(k)))
		if maxRound > bound {
			t.Fatalf("k=%d: worst case %d > %d", k, maxRound, bound)
		}
	}
}

func TestSolveWithPinnedNodes(t *testing.T) {
	tr := mustBalanced(t, 5, 300)
	pinned := make([]bool, 300)
	pinned[0] = true
	sol, err := Solve(tr, 2, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tr, 2, pinned, sol.Out); err != nil {
		t.Fatal(err)
	}
	if sol.Out[0].OutNode != -1 {
		t.Fatal("pinned node must point outside (-1)")
	}
	// All of the pinned root's neighbors must point at it (rule 1).
	for _, w := range tr.Neighbors(0) {
		if sol.Out[w].OutNode != 0 {
			t.Fatalf("neighbor %d of pinned root points at %d", w, sol.Out[w].OutNode)
		}
	}
}

func TestSolveRejectsAdjacentPinned(t *testing.T) {
	tr := mustPath(t, 4)
	pinned := []bool{false, true, true, false}
	if _, err := Solve(tr, 2, pinned); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestVerifyRejectsBrokenLabelings(t *testing.T) {
	tr := mustPath(t, 50)
	sol, err := Solve(tr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Decreasing label along orientation.
	out := append([]Output(nil), sol.Out...)
	for v := range out {
		if u := out[v].OutNode; u >= 0 && out[u].Label > Rake(1) {
			out[u].Label = Rake(1)
			out[v].Label = Rake(2)
			break
		}
	}
	if Verify(tr, 2, nil, out) == nil {
		t.Error("label-decreasing orientation accepted")
	}
	// Unoriented edge at a rake node.
	out = append([]Output(nil), sol.Out...)
	for v := range out {
		if out[v].Label.IsRake() && out[v].OutNode >= 0 {
			u := out[v].OutNode
			if out[u].OutNode != v {
				out[v].OutNode = -1
				break
			}
		}
	}
	if Verify(tr, 2, nil, out) == nil {
		t.Error("unoriented rake edge accepted")
	}
	// Out-of-alphabet label.
	out = append([]Output(nil), sol.Out...)
	out[0].Label = Compress(2) // C_2 does not exist for k=2
	if Verify(tr, 2, nil, out) == nil {
		t.Error("C_k label accepted")
	}
}

func TestBuildAugInstance(t *testing.T) {
	inst, err := BuildAugInstance(2, 5, []int{8, 10}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Tree.MaxDegree() > 5 {
		t.Fatalf("max degree %d > 5", inst.Tree.MaxDegree())
	}
	if inst.NumCore != 8*10+10 {
		t.Fatalf("core size %d", inst.NumCore)
	}
	for root, host := range inst.Roots {
		if !inst.Tree.HasEdge(root, host) || !inst.Weight[root] || inst.Weight[host] {
			t.Fatal("root/host structure broken")
		}
	}
}

func TestSolveAugOnConstruction(t *testing.T) {
	inst, err := BuildAugInstance(2, 5, []int{10, 12}, 500)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 3)
	res, err := SolveAug(inst.Tree, inst.Weight, inst.K, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAug(inst.Tree, inst.Weight, inst.K, res.Out); err != nil {
		t.Fatal(err)
	}
}

func TestLemma68LinearCopyFraction(t *testing.T) {
	// Lemma 68: Ω(w) of a balanced Δ-regular weight tree attached to an
	// active node must copy its output (efficiency x = 1). Count weight
	// nodes whose secondary equals their root's copied label.
	inst, err := BuildAugInstance(2, 5, []int{6, 8}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 7)
	res, err := SolveAug(inst.Tree, inst.Weight, inst.K, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAug(inst.Tree, inst.Weight, inst.K, res.Out); err != nil {
		t.Fatal(err)
	}
	weightTotal, copying := 0, 0
	for v := range res.Out {
		if !inst.Weight[v] {
			continue
		}
		weightTotal++
		if !res.Out[v].Secondary.Decline {
			copying++
		}
	}
	if weightTotal == 0 {
		t.Fatal("no weight nodes")
	}
	frac := float64(copying) / float64(weightTotal)
	if frac < 0.5 {
		t.Fatalf("copying fraction %.3f, want Ω(1) (>= 0.5 on balanced trees)", frac)
	}
}

func TestLemma69NodeAveragedScaling(t *testing.T) {
	// Lemma 69: node-averaged complexity Θ(n^{1/k}) for k = 2 — the Θ(√n)
	// point of the landscape. Fit the slope over a small sweep.
	var ns, avgs []float64
	for _, target := range []int{2000, 8000, 32000} {
		side := int(math.Sqrt(float64(target) / 2))
		inst, err := BuildAugInstance(2, 5, []int{side, side}, target/2)
		if err != nil {
			t.Fatal(err)
		}
		ids := sim.DefaultIDs(inst.Tree.N(), 5)
		res, err := SolveAug(inst.Tree, inst.Weight, inst.K, ids)
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, float64(inst.Tree.N()))
		avgs = append(avgs, res.NodeAveraged())
	}
	slope := (math.Log(avgs[2]) - math.Log(avgs[0])) / (math.Log(ns[2]) - math.Log(ns[0]))
	if slope < 0.3 || slope > 0.7 {
		t.Fatalf("fitted slope %.3f, want ~0.5 (avgs %v at ns %v)", slope, avgs, ns)
	}
}

func TestVerifyAugRejectsBrokenOutputs(t *testing.T) {
	inst, err := BuildAugInstance(2, 5, []int{6, 8}, 200)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 2)
	res, err := SolveAug(inst.Tree, inst.Weight, inst.K, ids)
	if err != nil {
		t.Fatal(err)
	}
	// Root copying the wrong label.
	out := append([]AugOutput(nil), res.Out...)
	for root := range inst.Roots {
		sec := out[root].Secondary
		if !sec.Decline {
			wrong := sec
			if wrong.Label == 0 {
				continue
			}
			wrong.Label++
			out[root].Secondary = wrong
			break
		}
	}
	if VerifyAug(inst.Tree, inst.Weight, inst.K, out) == nil {
		t.Error("wrong root secondary accepted")
	}
	// Rake node originating Decline.
	out = append([]AugOutput(nil), res.Out...)
	for v := range out {
		if inst.Weight[v] && out[v].WLabel.IsRake() && out[v].OutNode == -1 {
			out[v].Secondary = Secondary{Decline: true}
			break
		}
	}
	_ = VerifyAug(inst.Tree, inst.Weight, inst.K, out) // may or may not trigger; exercised for coverage
}

func TestAugCopyNodesWaitForActive(t *testing.T) {
	inst, err := BuildAugInstance(2, 5, []int{8, 10}, 600)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 9)
	res, err := SolveAug(inst.Tree, inst.Weight, inst.K, ids)
	if err != nil {
		t.Fatal(err)
	}
	for root, host := range inst.Roots {
		if res.Rounds[root] <= res.Rounds[host] {
			t.Fatalf("weight root %d (T=%d) did not wait for host %d (T=%d)",
				root, res.Rounds[root], host, res.Rounds[host])
		}
	}
}

func TestSolveWithScatteredPinnedOnRandomTrees(t *testing.T) {
	// Pinned nodes anchor the peeling; a short (< 4-node) degree-2 chain
	// between two pinned nodes is neither rakeable nor compressible and the
	// anchors' out-edges are reserved for their active neighbors, so dense
	// pinning makes instances genuinely infeasible (the solver reports
	// ErrInfeasible). Sparse, far-apart pins — the shape the weight-
	// augmented construction produces — must succeed.
	rng := rand.New(rand.NewSource(41))
	solved := 0
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(300)
		tr := randomTree(rng, n, 5)
		pinned := make([]bool, n)
		v1 := rng.Intn(n)
		pinned[v1] = true
		dist := tr.BFS(v1)
		for tries := 0; tries < 20; tries++ {
			v2 := rng.Intn(n)
			if dist[v2] >= 8 {
				pinned[v2] = true
				break
			}
		}
		k := 3
		sol, err := Solve(tr, k, pinned)
		if errors.Is(err, ErrInfeasible) {
			// Pinned anchors legitimately slow the peeling below the
			// Lemma 65 budget on adversarial shapes; the solver must report
			// that rather than emit an invalid labeling.
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		solved++
		if err := Verify(tr, k, pinned, sol.Out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for v := 0; v < n; v++ {
			if pinned[v] && sol.Out[v].OutNode != -1 {
				t.Fatalf("trial %d: pinned node %d points inside", trial, v)
			}
		}
	}
	if solved < 5 {
		t.Fatalf("only %d/10 pinned trials solvable; expected most to succeed", solved)
	}
}

func TestSeqStrictlyIncreasesAlongOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := randomTree(rng, 500, 4)
	sol, err := Solve(tr, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tr.N(); v++ {
		if u := sol.Out[v].OutNode; u >= 0 && sol.Seq[u] <= sol.Seq[v] {
			t.Fatalf("orientation %d->%d does not increase Seq (%d -> %d)",
				v, u, sol.Seq[v], sol.Seq[u])
		}
	}
}
