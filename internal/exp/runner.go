package exp

// The batch runner: decomposes every experiment into its task plan (one
// task per sweep point for decomposable sweeps), schedules *tasks* across a
// bounded worker pool, streams each experiment's result as its last task
// finishes, and reassembles a deterministic aggregate regardless of
// completion order. Scheduling below experiment granularity is what lets
// -jobs flatten a batch whose serial time is dominated by one long sweep.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// BatchOptions parameterizes RunBatch.
type BatchOptions struct {
	// Jobs is the maximum number of tasks executing concurrently; values
	// <= 1 run serially. Tasks are sweep points, so Jobs > 1 parallelizes
	// inside a single experiment's sweep as well as across experiments.
	// Simulator-internal parallelism (RunConfig.Parallelism) composes
	// multiplicatively with Jobs.
	Jobs int
	// Config is the per-experiment run configuration (preset, seed,
	// simulator parallelism), shared by every experiment in the batch.
	Config RunConfig
	// Stream, when non-nil, receives each Result as one compact JSON line
	// (NDJSON) the moment its experiment's last task finishes — in
	// completion order, which under Jobs > 1 differs run to run. The
	// aggregate return value stays ordered by input position either way.
	Stream io.Writer
}

// RunBatch executes exps under opts and returns their results ordered by
// input position (registry order when the slice came from List), regardless
// of completion order. Each experiment is decomposed into its task plan;
// every task runs under its own context derived from ctx, the first failure
// cancels all remaining tasks, and each experiment's outputs are reassembled
// in canonical task order — so the aggregate is byte-identical (canonically)
// to the serial run, whatever the scheduling. The returned error joins every
// failure observed before the batch drained; a nil result slice is returned
// on any error.
func RunBatch(ctx context.Context, exps []*Experiment, opts BatchOptions) ([]*Result, error) {
	for i, e := range exps {
		if e == nil || e.Run == nil {
			return nil, fmt.Errorf("exp: batch position %d: experiment is nil or has no Run", i)
		}
	}
	// Derive every plan up front: plan derivation is analytic (preset
	// resolution, exponent math), so a bad configuration fails before any
	// work is scheduled.
	plans := make([]*TaskPlan, len(exps))
	total := 0
	for i, e := range exps {
		p, err := e.plan(opts.Config)
		if err != nil {
			return nil, err
		}
		plans[i] = p
		total += len(p.Tasks)
	}
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > total {
		jobs = total
	}
	if jobs < 1 {
		jobs = 1 // every plan is empty; keep the pool valid
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex // guards the error slices and Stream writes
		failures  []error    // real failures
		canceled  []error    // cancellation fallout of the first real failure (or of ctx)
		results   = make([]*Result, len(exps))
		outs      = make([][]any, len(exps))
		remaining = make([]int32, len(exps))
	)
	fail := func(err error) {
		mu.Lock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = append(canceled, err)
		} else {
			failures = append(failures, err)
		}
		mu.Unlock()
		cancel()
	}
	// finish reassembles experiment i once its last task completed. Outputs
	// are consumed by task position, so the result is independent of
	// completion order; only the NDJSON stream reflects finish order.
	finish := func(i int) {
		res, err := plans[i].Assemble(outs[i])
		if err != nil {
			fail(fmt.Errorf("exp: %s: assemble: %w", exps[i].Name, err))
			return
		}
		results[i] = res
		if opts.Stream != nil {
			mu.Lock()
			err = json.NewEncoder(opts.Stream).Encode(res)
			mu.Unlock()
			if err != nil {
				fail(fmt.Errorf("exp: %s: stream: %w", exps[i].Name, err))
			}
		}
	}

	// The queue holds every task in canonical order (experiment position,
	// then task position); workers drain it, skipping tasks once the batch
	// is failing so cancellation stops remaining work promptly.
	type unit struct{ exp, task int }
	queue := make(chan unit, total)
	for i, p := range plans {
		outs[i] = make([]any, len(p.Tasks))
		remaining[i] = int32(len(p.Tasks))
		if len(p.Tasks) == 0 {
			finish(i) // an empty sweep assembles immediately
			continue
		}
		for j := range p.Tasks {
			queue <- unit{i, j}
		}
	}
	close(queue)

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range queue {
				if bctx.Err() != nil {
					continue // batch already failing; drain without running
				}
				t := &plans[u.exp].Tasks[u.task]
				tctx, tcancel := context.WithCancel(bctx)
				out, err := t.Run(tctx)
				tcancel()
				if err != nil {
					fail(err)
					continue
				}
				outs[u.exp][u.task] = out
				if atomic.AddInt32(&remaining[u.exp], -1) == 0 {
					finish(u.exp)
				}
			}
		}()
	}
	wg.Wait()
	switch {
	case len(failures) > 0:
		return nil, errors.Join(failures...)
	case len(canceled) > 0:
		return nil, canceled[0]
	}
	// No task recorded an error, but a cancellation racing the final
	// completions may have kept queued tasks from ever starting.
	for _, res := range results {
		if res == nil {
			return nil, fmt.Errorf("exp: batch canceled: %w", context.Cause(bctx))
		}
	}
	return results, nil
}
