package exp

// The batch runner: executes a set of registered experiments across a
// bounded worker pool, streams results as they finish, and returns a
// deterministic aggregate regardless of completion order.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// BatchOptions parameterizes RunBatch.
type BatchOptions struct {
	// Jobs is the maximum number of experiments executing concurrently;
	// values <= 1 run serially. Simulator-internal parallelism
	// (RunConfig.Parallelism) composes multiplicatively with Jobs.
	Jobs int
	// Config is the per-experiment run configuration (preset, seed,
	// simulator parallelism), shared by every experiment in the batch.
	Config RunConfig
	// Stream, when non-nil, receives each Result as one compact JSON line
	// (NDJSON) the moment its experiment finishes — in completion order,
	// which under Jobs > 1 differs run to run. The aggregate return value
	// stays ordered by input position either way.
	Stream io.Writer
}

// RunBatch executes exps under opts and returns their results ordered by
// input position (registry order when the slice came from List), regardless
// of completion order. Each experiment runs under its own context derived
// from ctx; the first failure cancels the remaining experiments, and the
// returned error joins every failure observed before the batch drained.
// A nil result slice is returned on any error.
func RunBatch(ctx context.Context, exps []*Experiment, opts BatchOptions) ([]*Result, error) {
	for i, e := range exps {
		if e == nil || e.Run == nil {
			return nil, fmt.Errorf("exp: batch position %d: experiment is nil or has no Run", i)
		}
	}
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards the error slices and Stream writes
		failures []error    // real failures
		canceled []error    // cancellation fallout of the first real failure (or of ctx)
		results  = make([]*Result, len(exps))
		sem      = make(chan struct{}, jobs)
	)
	fail := func(err error) {
		mu.Lock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = append(canceled, err)
		} else {
			failures = append(failures, err)
		}
		mu.Unlock()
		cancel()
	}
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e *Experiment) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-bctx.Done():
				return // batch already failing; this experiment never started
			}
			defer func() { <-sem }()
			ectx, ecancel := context.WithCancel(bctx)
			defer ecancel()
			res, err := e.Run(ectx, opts.Config)
			if err != nil {
				fail(err)
				return
			}
			results[i] = res
			if opts.Stream != nil {
				mu.Lock()
				err = json.NewEncoder(opts.Stream).Encode(res)
				mu.Unlock()
				if err != nil {
					fail(fmt.Errorf("exp: %s: stream: %w", e.Name, err))
				}
			}
		}(i, e)
	}
	wg.Wait()
	switch {
	case len(failures) > 0:
		return nil, errors.Join(failures...)
	case len(canceled) > 0:
		return nil, canceled[0]
	}
	// No experiment recorded an error, but a cancellation racing the final
	// completions may have kept queued experiments from ever starting.
	for _, res := range results {
		if res == nil {
			return nil, fmt.Errorf("exp: batch canceled: %w", context.Cause(ctx))
		}
	}
	return results, nil
}
