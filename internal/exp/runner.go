package exp

// The batch runner: decomposes every experiment into its task plan (one
// task per sweep point for decomposable sweeps), schedules *tasks* across an
// execution backend, streams each experiment's result as its last task
// finishes, and reassembles a deterministic aggregate regardless of
// completion order. Scheduling below experiment granularity is what lets
// -jobs flatten a batch whose serial time is dominated by one long sweep.
//
// Two backends implement the runner interface: the in-process localRunner
// (a bounded goroutine pool, BatchOptions.Jobs) and the multi-process
// ProcRunner (worker subprocesses speaking the NDJSON protocol of proto.go,
// BatchOptions.Workers). RunBatch owns everything both share — plan
// derivation, positional assembly, NDJSON streaming, first-failure
// bookkeeping — so the canonical aggregate is byte-identical whichever
// backend ran the tasks.

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// BatchOptions parameterizes RunBatch.
type BatchOptions struct {
	// Jobs is the maximum number of tasks executing concurrently in process;
	// values <= 1 run serially. Tasks are sweep points, so Jobs > 1
	// parallelizes inside a single experiment's sweep as well as across
	// experiments. Simulator-internal parallelism (RunConfig.Parallelism)
	// composes multiplicatively with Jobs. Ignored when Workers > 0.
	Jobs int
	// Workers, when > 0, executes tasks in that many worker subprocesses
	// instead of in-process goroutines: each worker is spawned from
	// WorkerCommand, speaks the NDJSON protocol of proto.go over its
	// stdin/stdout, and receives tasks grouped by instance affinity (tasks
	// sharing a hierarchical core route to the same worker). The canonical
	// aggregate stays byte-identical to the serial in-process run at every
	// worker count.
	Workers int
	// WorkerCommand is the argv spawning one worker subprocess. Empty means
	// the current executable with the single argument "worker" — correct
	// when the embedding binary exposes a worker subcommand the way
	// cmd/experiments does.
	WorkerCommand []string
	// WorkerEnv is extra environment appended to the inherited environment
	// of every worker subprocess.
	WorkerEnv []string
	// Remote lists remote worker addresses (host:port of processes running
	// `experiments worker -listen`); each address becomes one worker slot
	// dialed over TCP instead of a spawned subprocess. May be combined with
	// Workers > 0 only in the sense that Remote wins: when Remote is
	// non-empty the batch runs on the remote slots exclusively. An address
	// that is unreachable at batch start is re-dialed on a backoff schedule
	// and joins mid-batch; see docs/DISTRIBUTED.md.
	Remote []string
	// RemoteTLS, when non-nil, wraps every remote worker connection in TLS
	// (see RemoteTLSConfig).
	RemoteTLS *tls.Config
	// RemoteReadTimeout, when > 0, bounds per-read silence on remote worker
	// connections — an opt-in ceiling on task duration that fails a
	// connected-but-stalled peer with a labeled error. Zero (the default)
	// disables it; kernel keepalives still detect dead peers.
	RemoteReadTimeout time.Duration
	// Transports, when non-empty, enumerates the worker slots explicitly
	// and overrides Workers/WorkerCommand/Remote. Primarily a testing
	// seam; cmd wiring uses Workers and Remote.
	Transports []Transport
	// WorkerRetry, when true, retries a crashed worker's remaining tasks
	// (including the in-flight one) once on a fresh worker before failing
	// the batch. Task-level failures (the task itself returned an error)
	// are never retried — they are deterministic.
	WorkerRetry bool
	// OnWorkerStats, when non-nil, receives each worker's shutdown stats
	// (task count and instance-cache counters) as its process exits
	// cleanly.
	OnWorkerStats func(WorkerStats)
	// Config is the per-experiment run configuration (preset, seed,
	// simulator parallelism), shared by every experiment in the batch.
	Config RunConfig
	// Stream, when non-nil, receives each Result as one compact JSON line
	// (NDJSON) the moment its experiment's last task finishes — in
	// completion order, which under concurrency differs run to run. The
	// aggregate return value stays ordered by input position either way.
	Stream io.Writer
}

// batchState is the per-invocation state a runner reports into: the derived
// plans plus the two callbacks every backend shares. Both callbacks are safe
// for concurrent use.
type batchState struct {
	exps  []*Experiment
	plans []*TaskPlan
	cfg   RunConfig
	// deliver records task output (exp, task) and triggers the experiment's
	// positional assembly once its last task completed.
	deliver func(exp, task int, out any)
	// fail records a failure and cancels the batch context; context
	// cancellation errors are bucketed apart so fallout never drowns the
	// root cause.
	fail func(err error)
}

// A runner executes every task of the derived plans, honoring ctx, and
// reports outcomes through the batch state. Implementations own execution
// placement only; ordering, assembly, and error aggregation live in
// RunBatch.
type runner interface {
	runTasks(ctx context.Context, b *batchState)
}

// localRunner is the in-process backend: a bounded pool of goroutines
// draining the canonical task queue.
type localRunner struct {
	jobs int
}

func (r localRunner) runTasks(ctx context.Context, b *batchState) {
	type unit struct{ exp, task int }
	total := 0
	for _, p := range b.plans {
		total += len(p.Tasks)
	}
	// The queue holds every task in canonical order (experiment position,
	// then task position); workers drain it, skipping tasks once the batch
	// is failing so cancellation stops remaining work promptly.
	queue := make(chan unit, total)
	for i, p := range b.plans {
		for j := range p.Tasks {
			queue <- unit{i, j}
		}
	}
	close(queue)
	jobs := r.jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > total {
		jobs = total
	}
	if jobs < 1 {
		jobs = 1 // every plan is empty; keep the pool valid
	}
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range queue {
				if ctx.Err() != nil {
					continue // batch already failing; drain without running
				}
				t := &b.plans[u.exp].Tasks[u.task]
				tctx, tcancel := context.WithCancel(ctx)
				out, err := t.Run(tctx)
				tcancel()
				if err != nil {
					b.fail(err)
					continue
				}
				b.deliver(u.exp, u.task, out)
			}
		}()
	}
	wg.Wait()
}

// RunBatch executes exps under opts and returns their results ordered by
// input position (registry order when the slice came from List), regardless
// of completion order. Each experiment is decomposed into its task plan;
// every task runs under its own context derived from ctx, the first failure
// cancels all remaining tasks, and each experiment's outputs are reassembled
// in canonical task order — so the aggregate is byte-identical (canonically)
// to the serial run, whatever the scheduling or backend (in-process Jobs
// pool or Workers subprocesses). The returned error joins every failure
// observed before the batch drained; a nil result slice is returned on any
// error.
func RunBatch(ctx context.Context, exps []*Experiment, opts BatchOptions) ([]*Result, error) {
	for i, e := range exps {
		if e == nil || e.Run == nil {
			return nil, fmt.Errorf("exp: batch position %d: experiment is nil or has no Run", i)
		}
	}
	// Derive every plan up front: plan derivation is analytic (preset
	// resolution, exponent math), so a bad configuration fails before any
	// work is scheduled.
	plans := make([]*TaskPlan, len(exps))
	for i, e := range exps {
		p, err := e.plan(opts.Config)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex // guards the error slices and Stream writes
		failures  []error    // real failures
		canceled  []error    // cancellation fallout of the first real failure (or of ctx)
		results   = make([]*Result, len(exps))
		outs      = make([][]any, len(exps))
		remaining = make([]int32, len(exps))
	)
	fail := func(err error) {
		mu.Lock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = append(canceled, err)
		} else {
			failures = append(failures, err)
		}
		mu.Unlock()
		cancel()
	}
	// finish reassembles experiment i once its last task completed. Outputs
	// are consumed by task position, so the result is independent of
	// completion order; only the NDJSON stream reflects finish order.
	finish := func(i int) {
		res, err := plans[i].Assemble(outs[i])
		if err != nil {
			fail(fmt.Errorf("exp: %s: assemble: %w", exps[i].Name, err))
			return
		}
		results[i] = res
		if opts.Stream != nil {
			mu.Lock()
			err = json.NewEncoder(opts.Stream).Encode(res)
			mu.Unlock()
			if err != nil {
				fail(fmt.Errorf("exp: %s: stream: %w", exps[i].Name, err))
			}
		}
	}
	for i, p := range plans {
		outs[i] = make([]any, len(p.Tasks))
		remaining[i] = int32(len(p.Tasks))
		if len(p.Tasks) == 0 {
			finish(i) // an empty sweep assembles immediately
		}
	}
	state := &batchState{
		exps:  exps,
		plans: plans,
		cfg:   opts.Config,
		fail:  fail,
		deliver: func(exp, task int, out any) {
			outs[exp][task] = out
			if atomic.AddInt32(&remaining[exp], -1) == 0 {
				finish(exp)
			}
		},
	}

	transports := opts.Transports
	if len(transports) == 0 {
		for _, addr := range opts.Remote {
			transports = append(transports, &TCPTransport{
				Addr:        addr,
				TLS:         opts.RemoteTLS,
				ReadTimeout: opts.RemoteReadTimeout,
			})
		}
	}
	var r runner = localRunner{jobs: opts.Jobs}
	if opts.Workers > 0 || len(transports) > 0 {
		r = &ProcRunner{
			Workers:    opts.Workers,
			Command:    opts.WorkerCommand,
			Env:        opts.WorkerEnv,
			Transports: transports,
			Retry:      opts.WorkerRetry,
			OnStats:    opts.OnWorkerStats,
		}
	}
	r.runTasks(bctx, state)

	switch {
	case len(failures) > 0:
		return nil, errors.Join(failures...)
	case len(canceled) > 0:
		return nil, canceled[0]
	}
	// No task recorded an error, but a cancellation racing the final
	// completions may have kept queued tasks from ever starting.
	for _, res := range results {
		if res == nil {
			return nil, fmt.Errorf("exp: batch canceled: %w", context.Cause(bctx))
		}
	}
	return results, nil
}
