package exp_test

import (
	"context"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/measure"
)

// ExampleRegister registers a new experiment and runs it through the
// registry, the way every scenario of the catalog is wired up: a named value
// with presets and a context-aware Run returning a JSON-native Result.
// Experiments that additionally declare a Plan decompose into per-sweep-point
// tasks that RunBatch schedules across the -jobs pool.
//
// (Catalog tests skip names prefixed "example-" and "test-", so throwaway
// registrations like this one never join the real batch.)
func ExampleRegister() {
	err := exp.Register(&exp.Experiment{
		Name:        "example-doubling",
		Description: "Doubles each sweep value; a stand-in for a real measurement.",
		Theory:      "none (documentation example)",
		Presets: map[string][]int{
			exp.PresetQuick:    {1, 2, 3},
			exp.PresetStandard: {1, 2, 4, 8},
		},
		Run: func(ctx context.Context, cfg exp.RunConfig) (*exp.Result, error) {
			tb := measure.Table{Title: "doubling", Header: []string{"n", "2n"}}
			for _, n := range cfg.Sizes {
				tb.AddRow(n, 2*n)
			}
			return &exp.Result{Name: "example-doubling", Tables: []measure.Table{tb}}, nil
		},
	})
	if err != nil {
		fmt.Println("register:", err)
		return
	}

	e, _ := exp.Lookup("example-doubling")
	res, err := e.Run(context.Background(), exp.RunConfig{Sizes: []int{10, 20}})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println(res.Name)
	for _, row := range res.Tables[0].Rows {
		fmt.Println(row)
	}
	// Output:
	// example-doubling
	// [10 20]
	// [20 40]
}

// ExampleRunBatch_workers runs a batch on worker subprocesses: with
// BatchOptions.Workers set, RunBatch spawns workers from WorkerCommand,
// verifies the protocol version and catalog hash at handshake, and
// dispatches each task as an (experiment, config, index) address over the
// NDJSON worker protocol — closures never cross the wire, and the canonical
// aggregate is byte-identical to an in-process run at every worker count
// (see docs/DISTRIBUTED.md).
//
// A real embedder points WorkerCommand at a binary exposing the worker loop
// — cmd/experiments does, as `experiments worker`, and an empty
// WorkerCommand defaults to re-running the current executable with the
// argument "worker". This example re-execs the test binary, whose TestMain
// doubles as a worker when REPRO_EXP_WORKER_MODE=ok is set.
func ExampleRunBatch_workers() {
	e, ok := exp.Lookup("survivors")
	if !ok {
		fmt.Println("survivors not registered")
		return
	}
	results, err := exp.RunBatch(context.Background(), []*exp.Experiment{e, e}, exp.BatchOptions{
		Workers:       2,
		WorkerCommand: []string{os.Args[0]},
		WorkerEnv:     []string{"REPRO_EXP_WORKER_MODE=ok"},
		Config:        exp.RunConfig{Preset: exp.PresetQuick},
	})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, res := range results {
		fmt.Println(res.Name, len(res.Tables))
	}
	// Output:
	// survivors 1
	// survivors 1
}
