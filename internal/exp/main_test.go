package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
)

// workerModeEnv selects the test binary's worker-helper behavior: when set,
// TestMain acts as a worker subprocess instead of running the test suite.
// The multi-process tests re-exec the test binary with this variable set —
// exactly the way cmd/experiments spawns `experiments worker`, but without
// needing a second binary on disk.
const workerModeEnv = "REPRO_EXP_WORKER_MODE"

// workerCommand is the argv re-execing this test binary as a worker.
func workerCommand() []string { return []string{os.Args[0]} }

// workerEnv selects the helper mode of a spawned worker.
func workerEnv(mode string) []string { return []string{workerModeEnv + "=" + mode} }

func TestMain(m *testing.M) {
	if mode := os.Getenv(workerModeEnv); mode != "" {
		os.Exit(workerHelperMain(mode))
	}
	os.Exit(m.Run())
}

// printHello emits a hello frame, applying tweak to the faithful one first.
func printHello(tweak func(*HelloFrame)) {
	h := HelloFrame{
		Type:        FrameHello,
		Proto:       ProtoVersion,
		Catalog:     CatalogHash(),
		Build:       BuildID(),
		Experiments: len(List()),
	}
	if tweak != nil {
		tweak(&h)
	}
	raw, _ := json.Marshal(h)
	fmt.Printf("%s\n", raw)
}

// workerHelperMain is the subprocess entry point. Mode "ok" is a faithful
// worker; the others misbehave in exactly the ways the failure-path tests
// need to observe.
func workerHelperMain(mode string) int {
	switch mode {
	case "ok":
		if err := RunWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case "badcatalog":
		// A worker whose catalog diverged: valid hello, wrong hash.
		printHello(func(h *HelloFrame) { h.Catalog = "sha256:0000" })
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "badproto":
		// A worker speaking a future protocol version.
		printHello(func(h *HelloFrame) { h.Proto = ProtoVersion + 1 })
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "badbuild":
		// A worker built from different code: catalog agrees, build skews.
		printHello(func(h *HelloFrame) { h.Build = "repro@v0.0.0-stale" })
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "garbage":
		// A worker that greets correctly, then breaks framing: the
		// orchestrator must refuse the malformed line, not hang.
		printHello(nil)
		fmt.Println("this is not a protocol frame")
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "exit3":
		// A worker that dies before saying hello.
		return 3
	case "listen":
		// A TCP worker acceptor: the subprocess shape of
		// `experiments worker -listen`, for tests that need per-connection
		// process-local instance caches (an in-process listener would share
		// the orchestrator's). Announces the bound address on stdout.
		addr := os.Getenv("REPRO_EXP_LISTEN_ADDR")
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		l, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("listening %s\n", l.Addr())
		if err := ServeWorker(context.Background(), l); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case "nostats":
		// A worker that completes every task faithfully but ends the
		// session without its stats frame (dropped here) and exits cleanly
		// — the clean-close-without-stats regression shape.
		_ = RunWorker(context.Background(), os.Stdin, dropStatsWriter{w: os.Stdout})
		return 0
	case "stallstats":
		// A worker that completes every task but then neither writes its
		// stats frame nor ends the session — the teardown watchdog's prey.
		_ = RunWorker(context.Background(), os.Stdin, stallStatsWriter{w: os.Stdout})
		select {} // never exit on our own
	}
	fmt.Fprintf(os.Stderr, "unknown %s=%q\n", workerModeEnv, mode)
	return 2
}

// isStatsFrame spots the one stats line a worker writes: json.Encoder hands
// each frame to Write as a single line, so a substring probe is reliable.
func isStatsFrame(p []byte) bool {
	return bytes.Contains(p, []byte(`"type":"`+FrameStats+`"`))
}

// dropStatsWriter forwards every frame except the stats frame, which it
// swallows while reporting success to the worker loop.
type dropStatsWriter struct{ w io.Writer }

func (d dropStatsWriter) Write(p []byte) (int, error) {
	if isStatsFrame(p) {
		return len(p), nil
	}
	return d.w.Write(p)
}

// stallStatsWriter forwards every frame except the stats frame, on which it
// blocks forever — a worker gone silent at shutdown with the session open.
type stallStatsWriter struct{ w io.Writer }

func (s stallStatsWriter) Write(p []byte) (int, error) {
	if isStatsFrame(p) {
		select {}
	}
	return s.w.Write(p)
}
