package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
)

// workerModeEnv selects the test binary's worker-helper behavior: when set,
// TestMain acts as a worker subprocess instead of running the test suite.
// The multi-process tests re-exec the test binary with this variable set —
// exactly the way cmd/experiments spawns `experiments worker`, but without
// needing a second binary on disk.
const workerModeEnv = "REPRO_EXP_WORKER_MODE"

// workerCommand is the argv re-execing this test binary as a worker.
func workerCommand() []string { return []string{os.Args[0]} }

// workerEnv selects the helper mode of a spawned worker.
func workerEnv(mode string) []string { return []string{workerModeEnv + "=" + mode} }

func TestMain(m *testing.M) {
	if mode := os.Getenv(workerModeEnv); mode != "" {
		os.Exit(workerHelperMain(mode))
	}
	os.Exit(m.Run())
}

// printHello emits a hello frame, applying tweak to the faithful one first.
func printHello(tweak func(*HelloFrame)) {
	h := HelloFrame{
		Type:        FrameHello,
		Proto:       ProtoVersion,
		Catalog:     CatalogHash(),
		Build:       BuildID(),
		Experiments: len(List()),
	}
	if tweak != nil {
		tweak(&h)
	}
	raw, _ := json.Marshal(h)
	fmt.Printf("%s\n", raw)
}

// workerHelperMain is the subprocess entry point. Mode "ok" is a faithful
// worker; the others misbehave in exactly the ways the failure-path tests
// need to observe.
func workerHelperMain(mode string) int {
	switch mode {
	case "ok":
		if err := RunWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case "badcatalog":
		// A worker whose catalog diverged: valid hello, wrong hash.
		printHello(func(h *HelloFrame) { h.Catalog = "sha256:0000" })
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "badproto":
		// A worker speaking a future protocol version.
		printHello(func(h *HelloFrame) { h.Proto = ProtoVersion + 1 })
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "badbuild":
		// A worker built from different code: catalog agrees, build skews.
		printHello(func(h *HelloFrame) { h.Build = "repro@v0.0.0-stale" })
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "garbage":
		// A worker that greets correctly, then breaks framing: the
		// orchestrator must refuse the malformed line, not hang.
		printHello(nil)
		fmt.Println("this is not a protocol frame")
		_, _ = io.Copy(io.Discard, os.Stdin)
		return 0
	case "exit3":
		// A worker that dies before saying hello.
		return 3
	}
	fmt.Fprintf(os.Stderr, "unknown %s=%q\n", workerModeEnv, mode)
	return 2
}
