package exp

// The sweep drivers regenerating every table and figure of the paper. Each
// scaling sweep is declared as a sweepSpec: per-run analytic constants plus
// one independent point function per sweep value. The spec feeds both
// execution paths — the serial legacy API (Hierarchical35, Weighted25, ...)
// and the task planner behind RunBatch, which schedules individual sweep
// points across the -jobs pool — so a sweep produces identical results no
// matter how its points are scheduled.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/coloring"
	"repro/internal/dfree"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/inst"
	"repro/internal/labeling"
	"repro/internal/landscape"
	"repro/internal/measure"
	"repro/internal/pathlcl"
	"repro/internal/sim"
	"repro/internal/weighted"
)

// instances is the shared instance provider: every driver requests its
// lower-bound instances here instead of calling the builders directly, so
// repeated presets (CI, benchmarks, sweeps revisiting sizes) build each
// instance exactly once — even across concurrently running tasks (the cache
// is singleflight-guarded). This includes the composite Definition-25
// weighted and Section-10 weight-augmented instances, which dominate the
// standard batch. Cached values are shared and read-only.
var instances = inst.New(0)

// InstanceCache exposes the shared provider, for counter inspection
// (cmd/experiments -cache-stats, tests asserting warm runs build nothing)
// and for explicit Reset in memory-sensitive callers.
func InstanceCache() *inst.Cache { return instances }

// SweepResult is the raw outcome of one scaling experiment: the formatted
// table, the fitted exponent, and the paper's exponent(s).
type SweepResult struct {
	Table       measure.Table
	Slope       float64 // fitted exponent
	TheorySlope float64 // paper's exponent
	// TheoryUpper is the upper-bound exponent where the paper leaves a gap
	// (Theorems 4-5); equal to TheorySlope otherwise.
	TheoryUpper float64
	Points      []measure.Point
	// Steps is the total simulator machine-step work across the sweep's
	// points; 0 for analytic sweeps that never enter the simulator.
	Steps int64
	// Boundary and Crossed total the sharded simulator's boundary edges and
	// cross-shard messages over the sweep's points (0 for unsharded runs);
	// they feed Result.ShardTraffic, never a table cell.
	Boundary int64
	Crossed  int64
}

// finish annotates the table with fit-vs-theory.
func (r *SweepResult) finish(title string, xName string) {
	r.Table.Title = title
	r.Slope, _ = measure.FitLogLog(r.Points)
	r.Table.AddRow("fitted exponent vs "+xName, r.Slope, "", "")
	r.Table.AddRow("theory exponent", r.TheorySlope, "", "")
	if r.TheoryUpper != r.TheorySlope {
		r.Table.AddRow("theory upper exponent", r.TheoryUpper, "", "")
	}
}

// engineConfig carries the simulator execution knobs — worker count, shard
// count, and shard layout — from RunConfig into the simulator-backed point
// functions. No knob affects results: canonical outputs are byte-identical
// at every setting (asserted catalog-wide in shard_equiv_test.go).
type engineConfig struct {
	parallelism int
	shards      int
	layout      string
}

// engCfg extracts the engine knobs of a run configuration.
func engCfg(cfg RunConfig) engineConfig {
	return engineConfig{parallelism: cfg.Parallelism, shards: cfg.Shards, layout: cfg.ShardLayout}
}

// shardTraffic folds a simulated point's per-shard statistics into the
// layout-objective counters: boundary edges (halved — each edge appears in
// both incident shards' statistics) and real messages crossed (counted once,
// on the sending side). Zero for unsharded runs, whose Shards is nil.
func shardTraffic(r *sim.Result) (boundary, crossed int64) {
	for _, s := range r.Shards {
		boundary += int64(s.BoundaryEdges)
		crossed += s.MessagesCrossed
	}
	return boundary / 2, crossed
}

// sweepStep is the per-point cancellation check shared by every driver.
func sweepStep(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("exp: sweep canceled: %w", err)
	}
	return nil
}

// sweepPoint is one completed sweep value: the point entering the log-log
// fit plus its table row cells. steps carries the simulator machine-step
// work of the point (0 for analytic points) and boundary/crossed its shard
// traffic (0 unsharded); all three feed Result.Steps/ShardTraffic only —
// never a table cell — so canonical outputs are unaffected.
type sweepPoint struct {
	pt       measure.Point
	row      []any
	steps    int64
	boundary int64
	crossed  int64
}

// sweepSpec is the decomposed form of a scaling sweep: the analytic
// constants resolved once per run, and one independent point function per
// sweep value. Point functions must be pure up to their (val, seed) inputs —
// no point may observe another point's execution — which is what makes them
// schedulable in any order.
type sweepSpec struct {
	header      []string
	title       string
	xName       string
	theorySlope float64
	theoryUpper float64
	// key identifies the shared-provider instance the point will request:
	// its String() labels the task and its Core() is the task's affinity
	// group for the multi-process dispatcher; nil when untracked.
	key func(val int) inst.Key
	// point runs one sweep value under the point seed derived via
	// PointSeed from the run's base seed.
	point func(ctx context.Context, val int, seed uint64, eng engineConfig) (sweepPoint, error)
}

// assemble combines completed points — in canonical sweep order — into the
// fitted SweepResult. Both the serial path and the task planner funnel
// through here, so their outputs are identical.
func (s *sweepSpec) assemble(points []sweepPoint) *SweepResult {
	res := &SweepResult{TheorySlope: s.theorySlope, TheoryUpper: s.theoryUpper}
	res.Table.Header = s.header
	for _, p := range points {
		res.Points = append(res.Points, p.pt)
		res.Table.AddRow(p.row...)
		res.Steps += p.steps
		res.Boundary += p.boundary
		res.Crossed += p.crossed
	}
	res.finish(s.title, s.xName)
	return res
}

// runSerial executes the sweep's points in order on the calling goroutine —
// the legacy driver behavior, also used by Experiment.Run.
func (s *sweepSpec) runSerial(ctx context.Context, vals []int, seed uint64, eng engineConfig) (*SweepResult, error) {
	points := make([]sweepPoint, 0, len(vals))
	for _, val := range vals {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		p, err := s.point(ctx, val, PointSeed(seed, val), eng)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return s.assemble(points), nil
}

// hierLengths is the Definition-18 path-length vector ℓ_i = T^{2^{i-1}}.
func hierLengths(k, T int) []int {
	lengths := make([]int, k)
	for i := 1; i <= k; i++ {
		lengths[i-1] = ipow(T, 1<<uint(i-1))
	}
	return lengths
}

// hierarchical35Spec declares experiment E-T11 (Theorem 11): the generic
// algorithm for k-hierarchical 3½-coloring on the Definition-18 lower-bound
// graph with ℓ_i = T^{2^{i-1}}, swept over the scale T (the stand-in for
// t = (log* n)^{1/(2^k−1)}; see substitution 5 in DESIGN.md). The measured
// node-averaged complexity must scale like Θ(T), i.e. slope 1 in T.
func hierarchical35Spec(k int) *sweepSpec {
	return &sweepSpec{
		header:      []string{"T", "n", "node-avg rounds", "node-avg / T"},
		title:       fmt.Sprintf("E-T11: k=%d hierarchical 3½-coloring, node-avg ~ Θ(T)", k),
		xName:       "T",
		theorySlope: 1,
		theoryUpper: 1,
		key:         func(T int) inst.Key { return inst.HierarchicalKey(hierLengths(k, T)) },
		point: func(ctx context.Context, T int, seed uint64, _ engineConfig) (sweepPoint, error) {
			gammas := make([]int, k-1)
			for i := 1; i < k; i++ {
				gammas[i-1] = ipow(T, 1<<uint(i-1))
			}
			h, err := instances.Hierarchical(hierLengths(k, T))
			if err != nil {
				return sweepPoint{}, err
			}
			sched, err := hierarchy.NewSchedule(hierarchy.Params{
				Problem: hierarchy.Problem{K: k, Variant: hierarchy.Coloring35},
				Gammas:  gammas,
			})
			if err != nil {
				return sweepPoint{}, err
			}
			levels := graph.ComputeLevels(h.Tree, k)
			ids := sim.DefaultIDs(h.Tree.N(), seed)
			ex, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids)
			if err != nil {
				return sweepPoint{}, err
			}
			if err := (hierarchy.Problem{K: k, Variant: hierarchy.Coloring35}).Verify(h.Tree, levels, ex.Out); err != nil {
				return sweepPoint{}, fmt.Errorf("T=%d: %w", T, err)
			}
			avg := ex.NodeAveraged()
			return sweepPoint{
				pt:  measure.Point{X: float64(T), Y: avg},
				row: []any{T, h.Tree.N(), avg, avg / float64(T)},
			}, nil
		},
	}
}

// Hierarchical35 runs experiment E-T11 serially (the legacy driver API).
func Hierarchical35(ctx context.Context, k int, scales []int, seed uint64) (*SweepResult, error) {
	return hierarchical35Spec(k).runSerial(ctx, scales, seed, engineConfig{parallelism: 1})
}

// weighted25Spec declares experiment E-T2T3 (Theorems 2-3): A_poly on the
// Definition-25 construction, swept over n; slope vs n must match
// α1(x) = 1/Σ_{j<k}(2−x)^j.
func weighted25Spec(delta, d, k int) (*sweepSpec, error) {
	p := weighted.Problem{Variant: hierarchy.Coloring25, Delta: delta, D: d, K: k}
	x, err := landscape.EfficiencyX(delta, d)
	if err != nil {
		return nil, err
	}
	alpha1, err := landscape.Alpha1Poly(x, k)
	if err != nil {
		return nil, err
	}
	alphas, err := landscape.Alphas(landscape.RegimePolynomial, x, k)
	if err != nil {
		return nil, err
	}
	return &sweepSpec{
		header:      []string{"n (target)", "node-avg rounds", "waiting node-avg", "waiting / n^α1"},
		title:       fmt.Sprintf("E-T2T3: Π^2.5_{Δ=%d,d=%d,k=%d}, node-avg ~ Θ(n^%.4f)", delta, d, k, alpha1),
		xName:       "n",
		theorySlope: alpha1,
		theoryUpper: alpha1,
		key: func(target int) inst.Key {
			return inst.WeightedKey(p, polyLengths(target, k, alphas), target/k)
		},
		point: func(ctx context.Context, target int, seed uint64, _ engineConfig) (sweepPoint, error) {
			in, err := instances.Weighted(p, polyLengths(target, k, alphas), target/k)
			if err != nil {
				return sweepPoint{}, err
			}
			ids := sim.DefaultIDs(in.Tree.N(), seed)
			sol, err := weighted.SolvePoly(in.Tree, in.Inputs, p, ids)
			if err != nil {
				return sweepPoint{}, err
			}
			if err := p.Verify(in.Tree, in.Inputs, sol.Out); err != nil {
				return sweepPoint{}, fmt.Errorf("n=%d: %w", target, err)
			}
			n := float64(in.Tree.N())
			avg := sol.NodeAveraged()
			// Theorem 2's accounting: weight nodes that output Connect or
			// Decline cost only the O(log n) ball collection and are excluded
			// from the leading term ("their contribution does not exceed the
			// targeted node-averaged complexity"). The waiting average isolates
			// the Θ(n^α1) term, which numerically dominates only for n >> 10^9.
			var waitSum int64
			for v, o := range sol.Out {
				if o.Kind == weighted.KindActive || o.Kind == weighted.KindCopy {
					waitSum += int64(sol.Rounds[v])
				}
			}
			waiting := float64(waitSum) / n
			return sweepPoint{
				pt:  measure.Point{X: n, Y: waiting},
				row: []any{target, avg, waiting, waiting / math.Pow(n, alpha1)},
			}, nil
		},
	}, nil
}

// Weighted25 runs experiment E-T2T3 serially (the legacy driver API).
func Weighted25(ctx context.Context, delta, d, k int, sizes []int, seed uint64) (*SweepResult, error) {
	s, err := weighted25Spec(delta, d, k)
	if err != nil {
		return nil, err
	}
	return s.runSerial(ctx, sizes, seed, engineConfig{parallelism: 1})
}

// polyLengths derives the Definition-25 path lengths ℓ_i = (n')^{α_i} for
// i < k and ℓ_k = n' / Π ℓ_i (with n' = n/k). Degenerate targets clamp to
// the minimum legal lengths, so derivation never fails.
func polyLengths(target, k int, alphas []float64) []int {
	nPrime := float64(target) / float64(k)
	lengths := make([]int, k)
	prod := 1
	for i := 0; i < k-1; i++ {
		l := int(math.Pow(nPrime, alphas[i]))
		if l < 2 {
			l = 2
		}
		lengths[i] = l
		prod *= l
	}
	last := int(nPrime) / prod
	if last < 2 {
		last = 2
	}
	lengths[k-1] = last
	return lengths
}

// weighted35Spec declares experiment E-T4T5 (Theorems 4-5): the Section 8.2
// algorithm for Π^{3.5}_{Δ,d,k} swept over the scale T (the log* n
// stand-in); the fitted slope must land between α1(x) (lower bound) and
// α1(x′) (upper bound).
func weighted35Spec(delta, d, k, weightFactor int) (*sweepSpec, error) {
	p := weighted.Problem{Variant: hierarchy.Coloring35, Delta: delta, D: d, K: k}
	x, err := landscape.EfficiencyX(delta, d)
	if err != nil {
		return nil, err
	}
	xPrime, err := landscape.EfficiencyXPrime(delta, d)
	if err != nil {
		return nil, err
	}
	if xPrime > 1 {
		xPrime = 1
	}
	lower, err := landscape.Alpha1LogStar(x, k)
	if err != nil {
		return nil, err
	}
	upper, err := landscape.Alpha1LogStar(xPrime, k)
	if err != nil {
		return nil, err
	}
	alphas, err := landscape.Alphas(landscape.RegimeLogStar, xPrime, k)
	if err != nil {
		return nil, err
	}
	lengthsOf := func(T int) []int {
		lengths := make([]int, k)
		for i := 0; i < k-1; i++ {
			lengths[i] = maxi(2, int(math.Pow(float64(T), alphas[i])))
		}
		// ℓ_k on the recurrence scale (the paper ties ℓ_k to n and log* n;
		// in the sweep the level-k contribution is dominated — DESIGN.md,
		// substitution 5).
		lengths[k-1] = maxi(4, int(math.Pow(float64(T), alphas[k-2]*(2-xPrime))))
		return lengths
	}
	return &sweepSpec{
		header:      []string{"T", "n", "node-avg rounds", "node-avg / T^α1(x')"},
		title:       fmt.Sprintf("E-T4T5: Π^3.5_{Δ=%d,d=%d,k=%d}, slope in [α1(x)=%.4f, α1(x')=%.4f]", delta, d, k, lower, upper),
		xName:       "T",
		theorySlope: lower,
		theoryUpper: upper,
		key: func(T int) inst.Key {
			lengths := lengthsOf(T)
			total := graph.HierarchicalSize(lengths) * weightFactor
			return inst.WeightedKey(p, lengths, total/k)
		},
		point: func(ctx context.Context, T int, seed uint64, _ engineConfig) (sweepPoint, error) {
			lengths := lengthsOf(T)
			total := graph.HierarchicalSize(lengths) * weightFactor
			in, err := instances.Weighted(p, lengths, total/k)
			if err != nil {
				return sweepPoint{}, err
			}
			ids := sim.DefaultIDs(in.Tree.N(), seed)
			sol, err := weighted.SolveLogStar(in.Tree, in.Inputs, p, ids, T)
			if err != nil {
				return sweepPoint{}, err
			}
			if err := p.Verify(in.Tree, in.Inputs, sol.Out); err != nil {
				return sweepPoint{}, fmt.Errorf("T=%d: %w", T, err)
			}
			avg := sol.NodeAveraged()
			return sweepPoint{
				pt:  measure.Point{X: float64(T), Y: avg},
				row: []any{T, in.Tree.N(), avg, avg / math.Pow(float64(T), upper)},
			}, nil
		},
	}, nil
}

// Weighted35 runs experiment E-T4T5 serially (the legacy driver API).
func Weighted35(ctx context.Context, delta, d, k int, scales []int, weightFactor int, seed uint64) (*SweepResult, error) {
	s, err := weighted35Spec(delta, d, k, weightFactor)
	if err != nil {
		return nil, err
	}
	return s.runSerial(ctx, scales, seed, engineConfig{parallelism: 1})
}

// weightAugmentedSpec declares experiment E-L68 (Lemmas 68-69): the
// weight-augmented 2½-coloring with node-averaged complexity Θ(n^{1/k}).
func weightAugmentedSpec(k, delta int) *sweepSpec {
	lengthsOf := func(target int) []int {
		side := maxi(2, int(math.Pow(float64(target)/float64(k), 1/float64(k))))
		lengths := make([]int, k)
		for i := range lengths {
			lengths[i] = side
		}
		return lengths
	}
	return &sweepSpec{
		header:      []string{"n (target)", "n (built)", "node-avg rounds", "node-avg / n^(1/k)"},
		title:       fmt.Sprintf("E-L68: weight-augmented 2½ (k=%d), node-avg ~ Θ(n^{1/%d})", k, k),
		xName:       "n",
		theorySlope: 1 / float64(k),
		theoryUpper: 1 / float64(k),
		key: func(target int) inst.Key {
			return inst.AugKey(k, delta, lengthsOf(target), target/k)
		},
		point: func(ctx context.Context, target int, seed uint64, _ engineConfig) (sweepPoint, error) {
			in, err := instances.Aug(k, delta, lengthsOf(target), target/k)
			if err != nil {
				return sweepPoint{}, err
			}
			ids := sim.DefaultIDs(in.Tree.N(), seed)
			sol, err := labeling.SolveAug(in.Tree, in.Weight, k, ids)
			if err != nil {
				return sweepPoint{}, err
			}
			if err := labeling.VerifyAug(in.Tree, in.Weight, k, sol.Out); err != nil {
				return sweepPoint{}, fmt.Errorf("n=%d: %w", target, err)
			}
			n := float64(in.Tree.N())
			avg := sol.NodeAveraged()
			return sweepPoint{
				pt:  measure.Point{X: n, Y: avg},
				row: []any{target, in.Tree.N(), avg, avg / math.Pow(n, 1/float64(k))},
			}, nil
		},
	}
}

// WeightAugmented runs experiment E-L68 serially (the legacy driver API).
func WeightAugmented(ctx context.Context, k, delta int, sizes []int, seed uint64) (*SweepResult, error) {
	return weightAugmentedSpec(k, delta).runSerial(ctx, sizes, seed, engineConfig{parallelism: 1})
}

// twoColoringGapSpec declares experiment E-C60 (Corollary 60): 2-coloring a
// path has node-averaged complexity Θ(n) (slope 1), witnessing the
// ω(√n)–o(n) gap. This one runs through the real message-passing simulator;
// parallelism sets the engine's worker count (the result is identical at
// every level).
func twoColoringGapSpec() *sweepSpec {
	return &sweepSpec{
		header:      []string{"n", "node-avg rounds", "node-avg / n", ""},
		title:       "E-C60: 2-coloring a path, node-avg ~ Θ(n)",
		xName:       "n",
		theorySlope: 1,
		theoryUpper: 1,
		key:         func(n int) inst.Key { return inst.PathKey(n) },
		point: func(ctx context.Context, n int, seed uint64, eng engineConfig) (sweepPoint, error) {
			tr, err := instances.Path(n)
			if err != nil {
				return sweepPoint{}, err
			}
			r, err := sim.NewEngine(
				sim.WithIDs(sim.DefaultIDs(n, seed)),
				sim.WithContext(ctx),
				sim.WithParallelism(eng.parallelism),
				sim.WithShards(eng.shards),
				sim.WithShardLayout(sim.ShardLayout(eng.layout)),
			).Run(tr, coloring.TwoColorPathAlgorithm{})
			if err != nil {
				return sweepPoint{}, err
			}
			avg := r.NodeAveraged()
			boundary, crossed := shardTraffic(r)
			return sweepPoint{
				pt:       measure.Point{X: float64(n), Y: avg},
				row:      []any{n, avg, avg / float64(n), ""},
				steps:    r.Steps,
				boundary: boundary,
				crossed:  crossed,
			}, nil
		},
	}
}

// TwoColoringGap runs experiment E-C60 serially (the legacy driver API).
func TwoColoringGap(ctx context.Context, sizes []int, seed uint64, parallelism int) (*SweepResult, error) {
	return twoColoringGapSpec().runSerial(ctx, sizes, seed, engineConfig{parallelism: parallelism})
}

// copyFractionSpec declares experiment E-L40 (Lemma 40): the Copy-set size
// of Algorithm 𝒜 on a balanced Δ-regular weight tree scales like w^x with
// x = log(Δ−1−d)/log(Δ−1).
func copyFractionSpec(delta, d int) (*sweepSpec, error) {
	x, err := landscape.EfficiencyX(delta, d)
	if err != nil {
		return nil, err
	}
	return &sweepSpec{
		header:      []string{"w", "copies", "copies / w^x", "bound 6·w^x"},
		title:       fmt.Sprintf("E-L40: Copy-set of Algorithm 𝒜 (Δ=%d, d=%d), size ~ w^%.4f", delta, d, x),
		xName:       "w",
		theorySlope: x,
		theoryUpper: x,
		key:         func(w int) inst.Key { return inst.BalancedKey(delta, w) },
		point: func(ctx context.Context, w int, _ uint64, _ engineConfig) (sweepPoint, error) {
			tr, err := instances.Balanced(delta, w)
			if err != nil {
				return sweepPoint{}, err
			}
			inputs := make([]dfree.Input, w)
			inputs[0] = dfree.InputA
			sol, err := dfree.Solve(tr, inputs, d)
			if err != nil {
				return sweepPoint{}, err
			}
			if err := dfree.Verify(tr, inputs, d, sol.Out); err != nil {
				return sweepPoint{}, err
			}
			copies := 0
			for _, o := range sol.Out {
				if o == dfree.OutCopy {
					copies++
				}
			}
			wx := math.Pow(float64(w), x)
			return sweepPoint{
				pt:  measure.Point{X: float64(w), Y: float64(copies)},
				row: []any{w, copies, float64(copies) / wx, 6 * wx},
			}, nil
		},
	}, nil
}

// CopyFraction runs experiment E-L40 serially (the legacy driver API).
func CopyFraction(ctx context.Context, delta, d int, sizes []int) (*SweepResult, error) {
	s, err := copyFractionSpec(delta, d)
	if err != nil {
		return nil, err
	}
	return s.runSerial(ctx, sizes, 0, engineConfig{parallelism: 1})
}

// DensityPoly runs experiment E-T1 (Theorem 1): for a list of target
// intervals, find (Δ, d, k) with achievable exponent inside.
func DensityPoly(ctx context.Context, intervals [][2]float64) (measure.Table, error) {
	tb := measure.Table{
		Title:  "E-T1: density of Θ(n^c) classes (Theorem 1 / Lemma 58)",
		Header: []string{"target interval", "Δ", "d", "k", "x = a/b", "exponent c"},
	}
	for _, iv := range intervals {
		if err := sweepStep(ctx); err != nil {
			return tb, err
		}
		p, err := landscape.FindPolyParams(iv[0], iv[1])
		if err != nil {
			return tb, err
		}
		tb.AddRow(fmt.Sprintf("[%.3f, %.3f]", iv[0], iv[1]), p.Delta, p.D, p.K, p.X.String(), p.C)
	}
	return tb, nil
}

// DensityLogStar runs experiment E-T6 (Theorem 6).
func DensityLogStar(ctx context.Context, intervals [][2]float64, eps float64) (measure.Table, error) {
	tb := measure.Table{
		Title:  fmt.Sprintf("E-T6: density of (log* n)^c classes (Theorem 6, ε=%.3f)", eps),
		Header: []string{"target interval", "Δ", "d", "k", "c (lower)", "c+ε bound (upper)"},
	}
	for _, iv := range intervals {
		if err := sweepStep(ctx); err != nil {
			return tb, err
		}
		p, err := landscape.FindLogStarParams(iv[0], iv[1], eps)
		if err != nil {
			return tb, err
		}
		tb.AddRow(fmt.Sprintf("[%.3f, %.3f]", iv[0], iv[1]), p.Delta, p.D, p.K, p.C, p.CUpper)
	}
	return tb, nil
}

// DensitySamples runs experiment E-DENSE: the executable rendering of the
// "infinitely dense" bars of Figure 2. For each regime it samples `samples`
// achievable exponents evenly spread in (lo, hi), each witnessed by concrete
// (Δ, d, k) parameters. The polynomial regime is clamped below 1/2 (Theorem
// 1's range); this mirrors what cmd/landscape -samples historically printed.
func DensitySamples(ctx context.Context, samples int, lo, hi float64) ([]measure.Table, error) {
	var tables []measure.Table
	for _, regime := range []landscape.Regime{landscape.RegimePolynomial, landscape.RegimeLogStar} {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		a, b := lo, hi
		if regime == landscape.RegimePolynomial && b > 0.5 {
			b = 0.49
		}
		pts, err := landscape.SampleDensityPoints(regime, a, b, samples)
		if err != nil {
			return nil, err
		}
		tb := measure.Table{
			Title:  fmt.Sprintf("E-DENSE: density samples, %v regime, %d points in (%.3g, %.3g)", regime, samples, a, b),
			Header: []string{"exponent", "Δ", "d", "k"},
		}
		for _, p := range pts {
			tb.AddRow(p.Exponent, p.Delta, p.D, p.K)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// PathLCLTable runs experiment E-T7: the decision procedure on the
// catalogue of path LCLs.
func PathLCLTable() (measure.Table, error) {
	tb := measure.Table{
		Title:  "E-T7: path-LCL classification (decidability demonstration)",
		Header: []string{"problem", "worst-case class", "node-avg class (Lemma 16)", ""},
	}
	for _, p := range pathlcl.Catalogue() {
		class, err := pathlcl.Classify(p)
		if err != nil {
			return tb, err
		}
		tb.AddRow(p.Name, class.String(), class.String(), "")
	}
	return tb, nil
}

// LandscapeFigures renders Figures 1 and 2 as tables.
func LandscapeFigures() (measure.Table, measure.Table) {
	render := func(title string, entries []landscape.Entry) measure.Table {
		tb := measure.Table{Title: title, Header: []string{"region", "status", "source", "new"}}
		for _, e := range entries {
			isNew := ""
			if e.New {
				isNew = "*"
			}
			tb.AddRow(e.Region, e.Status, e.Source, isNew)
		}
		return tb
	}
	return render("Figure 1: landscape before this paper", landscape.Figure1()),
		render("Figure 2: landscape after this paper", landscape.Figure2())
}

// SurvivorCounts runs experiment E-GEN (Lemma 13): after phase i of the
// generic algorithm with parameter γ_i, at most O(n'/γ_i) nodes of level
// > i remain undecided. The driver runs the k=2 generic 3½ algorithm on the
// lower-bound graph for a range of γ values and reports the survivor count
// next to the charging bound from the lemma's proof (each surviving node
// accounts for γ/2 terminated level-1 nodes, so survivors <= c·n/γ).
func SurvivorCounts(ctx context.Context, lengths []int, gammas []int, seed uint64) (measure.Table, error) {
	tb := measure.Table{
		Title:  "E-GEN: Lemma 13 survivor counts after phase 1 (k=2, 3½)",
		Header: []string{"γ1", "n", "survivors", "bound c·n/γ (c=8)"},
	}
	h, err := instances.Hierarchical(lengths)
	if err != nil {
		return tb, err
	}
	levels := graph.ComputeLevels(h.Tree, 2)
	ids := sim.DefaultIDs(h.Tree.N(), seed)
	for _, gamma := range gammas {
		if err := sweepStep(ctx); err != nil {
			return tb, err
		}
		sched, err := hierarchy.NewSchedule(hierarchy.Params{
			Problem: hierarchy.Problem{K: 2, Variant: hierarchy.Coloring35},
			Gammas:  []int{gamma},
		})
		if err != nil {
			return tb, err
		}
		ex, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids)
		if err != nil {
			return tb, err
		}
		survivors := 0
		for v := range ex.Rounds {
			if ex.Rounds[v] >= sched.Start(2) {
				survivors++
			}
		}
		bound := 8 * h.Tree.N() / gamma
		if survivors > bound {
			return tb, fmt.Errorf("exp: Lemma 13 violated: %d survivors > %d at γ=%d",
				survivors, bound, gamma)
		}
		tb.AddRow(gamma, h.Tree.N(), survivors, bound)
	}
	return tb, nil
}

func ipow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
