package exp

// The sweep drivers regenerating every table and figure of the paper. They
// were moved here from internal/core (which keeps thin wrappers for legacy
// callers); each driver honors ctx between sweep points and returns the raw
// SweepResult consumed by both the legacy API and the registered
// experiments.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/coloring"
	"repro/internal/dfree"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/inst"
	"repro/internal/labeling"
	"repro/internal/landscape"
	"repro/internal/measure"
	"repro/internal/pathlcl"
	"repro/internal/sim"
	"repro/internal/weighted"
)

// instances is the shared instance provider: every driver requests its
// lower-bound trees here instead of calling graph.Build* directly, so
// repeated presets (CI, benchmarks, sweeps revisiting sizes) build each
// instance exactly once — even across concurrently running experiments
// (the cache is singleflight-guarded). Cached values are shared and
// read-only by graph.Tree's immutability.
var instances = inst.New(0)

// InstanceCache exposes the shared provider, for counter inspection
// (cmd/experiments -cache-stats, tests asserting warm runs build nothing)
// and for explicit Reset in memory-sensitive callers.
func InstanceCache() *inst.Cache { return instances }

// SweepResult is the raw outcome of one scaling experiment: the formatted
// table, the fitted exponent, and the paper's exponent(s).
type SweepResult struct {
	Table       measure.Table
	Slope       float64 // fitted exponent
	TheorySlope float64 // paper's exponent
	// TheoryUpper is the upper-bound exponent where the paper leaves a gap
	// (Theorems 4-5); equal to TheorySlope otherwise.
	TheoryUpper float64
	Points      []measure.Point
}

// finish annotates the table with fit-vs-theory.
func (r *SweepResult) finish(title string, xName string) {
	r.Table.Title = title
	r.Slope, _ = measure.FitLogLog(r.Points)
	r.Table.AddRow("fitted exponent vs "+xName, r.Slope, "", "")
	r.Table.AddRow("theory exponent", r.TheorySlope, "", "")
	if r.TheoryUpper != r.TheorySlope {
		r.Table.AddRow("theory upper exponent", r.TheoryUpper, "", "")
	}
}

// sweepStep is the per-point cancellation check shared by every driver.
func sweepStep(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("exp: sweep canceled: %w", err)
	}
	return nil
}

// Hierarchical35 runs experiment E-T11 (Theorem 11): the generic algorithm
// for k-hierarchical 3½-coloring on the Definition-18 lower-bound graph with
// ℓ_i = T^{2^{i-1}}, swept over the scale T (the stand-in for
// t = (log* n)^{1/(2^k−1)}; see substitution 5 in DESIGN.md). The measured
// node-averaged complexity must scale like Θ(T), i.e. slope 1 in T.
func Hierarchical35(ctx context.Context, k int, scales []int, seed uint64) (*SweepResult, error) {
	res := &SweepResult{TheorySlope: 1, TheoryUpper: 1}
	res.Table.Header = []string{"T", "n", "node-avg rounds", "node-avg / T"}
	for _, T := range scales {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		lengths := make([]int, k)
		gammas := make([]int, k-1)
		for i := 1; i <= k; i++ {
			lengths[i-1] = ipow(T, 1<<uint(i-1))
		}
		for i := 1; i < k; i++ {
			gammas[i-1] = ipow(T, 1<<uint(i-1))
		}
		h, err := instances.Hierarchical(lengths)
		if err != nil {
			return nil, err
		}
		sched, err := hierarchy.NewSchedule(hierarchy.Params{
			Problem: hierarchy.Problem{K: k, Variant: hierarchy.Coloring35},
			Gammas:  gammas,
		})
		if err != nil {
			return nil, err
		}
		levels := graph.ComputeLevels(h.Tree, k)
		ids := sim.DefaultIDs(h.Tree.N(), seed+uint64(T))
		ex, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids)
		if err != nil {
			return nil, err
		}
		if err := (hierarchy.Problem{K: k, Variant: hierarchy.Coloring35}).Verify(h.Tree, levels, ex.Out); err != nil {
			return nil, fmt.Errorf("T=%d: %w", T, err)
		}
		avg := ex.NodeAveraged()
		res.Points = append(res.Points, measure.Point{X: float64(T), Y: avg})
		res.Table.AddRow(T, h.Tree.N(), avg, avg/float64(T))
	}
	res.finish(fmt.Sprintf("E-T11: k=%d hierarchical 3½-coloring, node-avg ~ Θ(T)", k), "T")
	return res, nil
}

// Weighted25 runs experiment E-T2T3 (Theorems 2-3): A_poly on the
// Definition-25 construction, swept over n; slope vs n must match
// α1(x) = 1/Σ_{j<k}(2−x)^j.
func Weighted25(ctx context.Context, delta, d, k int, sizes []int, seed uint64) (*SweepResult, error) {
	p := weighted.Problem{Variant: hierarchy.Coloring25, Delta: delta, D: d, K: k}
	x, err := landscape.EfficiencyX(delta, d)
	if err != nil {
		return nil, err
	}
	alpha1, err := landscape.Alpha1Poly(x, k)
	if err != nil {
		return nil, err
	}
	alphas, err := landscape.Alphas(landscape.RegimePolynomial, x, k)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{TheorySlope: alpha1, TheoryUpper: alpha1}
	res.Table.Header = []string{"n (target)", "node-avg rounds", "waiting node-avg", "waiting / n^α1"}
	for _, target := range sizes {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		lengths, err := polyLengths(target, k, alphas)
		if err != nil {
			return nil, err
		}
		inst, err := weighted.BuildInstance(p, lengths, target/k)
		if err != nil {
			return nil, err
		}
		ids := sim.DefaultIDs(inst.Tree.N(), seed+uint64(target))
		sol, err := weighted.SolvePoly(inst.Tree, inst.Inputs, p, ids)
		if err != nil {
			return nil, err
		}
		if err := p.Verify(inst.Tree, inst.Inputs, sol.Out); err != nil {
			return nil, fmt.Errorf("n=%d: %w", target, err)
		}
		n := float64(inst.Tree.N())
		avg := sol.NodeAveraged()
		// Theorem 2's accounting: weight nodes that output Connect or
		// Decline cost only the O(log n) ball collection and are excluded
		// from the leading term ("their contribution does not exceed the
		// targeted node-averaged complexity"). The waiting average isolates
		// the Θ(n^α1) term, which numerically dominates only for n >> 10^9.
		var waitSum int64
		for v, o := range sol.Out {
			if o.Kind == weighted.KindActive || o.Kind == weighted.KindCopy {
				waitSum += int64(sol.Rounds[v])
			}
		}
		waiting := float64(waitSum) / n
		res.Points = append(res.Points, measure.Point{X: n, Y: waiting})
		res.Table.AddRow(target, avg, waiting, waiting/math.Pow(n, alpha1))
	}
	res.finish(fmt.Sprintf("E-T2T3: Π^2.5_{Δ=%d,d=%d,k=%d}, node-avg ~ Θ(n^%.4f)", delta, d, k, alpha1), "n")
	return res, nil
}

// polyLengths derives the Definition-25 path lengths ℓ_i = (n')^{α_i} for
// i < k and ℓ_k = n' / Π ℓ_i (with n' = n/k).
func polyLengths(target, k int, alphas []float64) ([]int, error) {
	nPrime := float64(target) / float64(k)
	lengths := make([]int, k)
	prod := 1
	for i := 0; i < k-1; i++ {
		l := int(math.Pow(nPrime, alphas[i]))
		if l < 2 {
			l = 2
		}
		lengths[i] = l
		prod *= l
	}
	last := int(nPrime) / prod
	if last < 2 {
		last = 2
	}
	lengths[k-1] = last
	return lengths, nil
}

// Weighted35 runs experiment E-T4T5 (Theorems 4-5): the Section 8.2
// algorithm for Π^{3.5}_{Δ,d,k} swept over the scale T (the log* n stand-in);
// the fitted slope must land between α1(x) (lower bound) and α1(x′)
// (upper bound).
func Weighted35(ctx context.Context, delta, d, k int, scales []int, weightFactor int, seed uint64) (*SweepResult, error) {
	p := weighted.Problem{Variant: hierarchy.Coloring35, Delta: delta, D: d, K: k}
	x, err := landscape.EfficiencyX(delta, d)
	if err != nil {
		return nil, err
	}
	xPrime, err := landscape.EfficiencyXPrime(delta, d)
	if err != nil {
		return nil, err
	}
	if xPrime > 1 {
		xPrime = 1
	}
	lower, err := landscape.Alpha1LogStar(x, k)
	if err != nil {
		return nil, err
	}
	upper, err := landscape.Alpha1LogStar(xPrime, k)
	if err != nil {
		return nil, err
	}
	alphas, err := landscape.Alphas(landscape.RegimeLogStar, xPrime, k)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{TheorySlope: lower, TheoryUpper: upper}
	res.Table.Header = []string{"T", "n", "node-avg rounds", "node-avg / T^α1(x')"}
	for _, T := range scales {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		lengths := make([]int, k)
		for i := 0; i < k-1; i++ {
			lengths[i] = maxi(2, int(math.Pow(float64(T), alphas[i])))
		}
		// ℓ_k on the recurrence scale (the paper ties ℓ_k to n and log* n;
		// in the sweep the level-k contribution is dominated — DESIGN.md,
		// substitution 5).
		lengths[k-1] = maxi(4, int(math.Pow(float64(T), alphas[k-2]*(2-xPrime))))
		total := graph.HierarchicalSize(lengths) * weightFactor
		inst, err := weighted.BuildInstance(p, lengths, total/k)
		if err != nil {
			return nil, err
		}
		ids := sim.DefaultIDs(inst.Tree.N(), seed+uint64(T))
		sol, err := weighted.SolveLogStar(inst.Tree, inst.Inputs, p, ids, T)
		if err != nil {
			return nil, err
		}
		if err := p.Verify(inst.Tree, inst.Inputs, sol.Out); err != nil {
			return nil, fmt.Errorf("T=%d: %w", T, err)
		}
		avg := sol.NodeAveraged()
		res.Points = append(res.Points, measure.Point{X: float64(T), Y: avg})
		res.Table.AddRow(T, inst.Tree.N(), avg, avg/math.Pow(float64(T), upper))
	}
	res.finish(fmt.Sprintf("E-T4T5: Π^3.5_{Δ=%d,d=%d,k=%d}, slope in [α1(x)=%.4f, α1(x')=%.4f]",
		delta, d, k, lower, upper), "T")
	return res, nil
}

// WeightAugmented runs experiment E-L68 (Lemmas 68-69): the weight-augmented
// 2½-coloring with node-averaged complexity Θ(n^{1/k}).
func WeightAugmented(ctx context.Context, k, delta int, sizes []int, seed uint64) (*SweepResult, error) {
	res := &SweepResult{TheorySlope: 1 / float64(k), TheoryUpper: 1 / float64(k)}
	res.Table.Header = []string{"n (target)", "n (built)", "node-avg rounds", "node-avg / n^(1/k)"}
	for _, target := range sizes {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		side := maxi(2, int(math.Pow(float64(target)/float64(k), 1/float64(k))))
		lengths := make([]int, k)
		for i := range lengths {
			lengths[i] = side
		}
		inst, err := labeling.BuildAugInstance(k, delta, lengths, target/k)
		if err != nil {
			return nil, err
		}
		ids := sim.DefaultIDs(inst.Tree.N(), seed+uint64(target))
		sol, err := labeling.SolveAug(inst.Tree, inst.Weight, k, ids)
		if err != nil {
			return nil, err
		}
		if err := labeling.VerifyAug(inst.Tree, inst.Weight, k, sol.Out); err != nil {
			return nil, fmt.Errorf("n=%d: %w", target, err)
		}
		n := float64(inst.Tree.N())
		avg := sol.NodeAveraged()
		res.Points = append(res.Points, measure.Point{X: n, Y: avg})
		res.Table.AddRow(target, inst.Tree.N(), avg, avg/math.Pow(n, 1/float64(k)))
	}
	res.finish(fmt.Sprintf("E-L68: weight-augmented 2½ (k=%d), node-avg ~ Θ(n^{1/%d})", k, k), "n")
	return res, nil
}

// TwoColoringGap runs experiment E-C60 (Corollary 60): 2-coloring a path has
// node-averaged complexity Θ(n) (slope 1), witnessing the ω(√n)–o(n) gap.
// This one runs through the real message-passing simulator; parallelism sets
// the engine's worker count (the result is identical at every level).
func TwoColoringGap(ctx context.Context, sizes []int, seed uint64, parallelism int) (*SweepResult, error) {
	res := &SweepResult{TheorySlope: 1, TheoryUpper: 1}
	res.Table.Header = []string{"n", "node-avg rounds", "node-avg / n", ""}
	for _, n := range sizes {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		tr, err := instances.Path(n)
		if err != nil {
			return nil, err
		}
		r, err := sim.NewEngine(
			sim.WithIDs(sim.DefaultIDs(n, seed+uint64(n))),
			sim.WithContext(ctx),
			sim.WithParallelism(parallelism),
		).Run(tr, coloring.TwoColorPathAlgorithm{})
		if err != nil {
			return nil, err
		}
		avg := r.NodeAveraged()
		res.Points = append(res.Points, measure.Point{X: float64(n), Y: avg})
		res.Table.AddRow(n, avg, avg/float64(n), "")
	}
	res.finish("E-C60: 2-coloring a path, node-avg ~ Θ(n)", "n")
	return res, nil
}

// CopyFraction runs experiment E-L40 (Lemma 40): the Copy-set size of
// Algorithm 𝒜 on a balanced Δ-regular weight tree scales like w^x with
// x = log(Δ−1−d)/log(Δ−1).
func CopyFraction(ctx context.Context, delta, d int, sizes []int) (*SweepResult, error) {
	x, err := landscape.EfficiencyX(delta, d)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{TheorySlope: x, TheoryUpper: x}
	res.Table.Header = []string{"w", "copies", "copies / w^x", "bound 6·w^x"}
	for _, w := range sizes {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		tr, err := instances.Balanced(delta, w)
		if err != nil {
			return nil, err
		}
		inputs := make([]dfree.Input, w)
		inputs[0] = dfree.InputA
		sol, err := dfree.Solve(tr, inputs, d)
		if err != nil {
			return nil, err
		}
		if err := dfree.Verify(tr, inputs, d, sol.Out); err != nil {
			return nil, err
		}
		copies := 0
		for _, o := range sol.Out {
			if o == dfree.OutCopy {
				copies++
			}
		}
		wx := math.Pow(float64(w), x)
		res.Points = append(res.Points, measure.Point{X: float64(w), Y: float64(copies)})
		res.Table.AddRow(w, copies, float64(copies)/wx, 6*wx)
	}
	res.finish(fmt.Sprintf("E-L40: Copy-set of Algorithm 𝒜 (Δ=%d, d=%d), size ~ w^%.4f", delta, d, x), "w")
	return res, nil
}

// DensityPoly runs experiment E-T1 (Theorem 1): for a list of target
// intervals, find (Δ, d, k) with achievable exponent inside.
func DensityPoly(ctx context.Context, intervals [][2]float64) (measure.Table, error) {
	tb := measure.Table{
		Title:  "E-T1: density of Θ(n^c) classes (Theorem 1 / Lemma 58)",
		Header: []string{"target interval", "Δ", "d", "k", "x = a/b", "exponent c"},
	}
	for _, iv := range intervals {
		if err := sweepStep(ctx); err != nil {
			return tb, err
		}
		p, err := landscape.FindPolyParams(iv[0], iv[1])
		if err != nil {
			return tb, err
		}
		tb.AddRow(fmt.Sprintf("[%.3f, %.3f]", iv[0], iv[1]), p.Delta, p.D, p.K, p.X.String(), p.C)
	}
	return tb, nil
}

// DensityLogStar runs experiment E-T6 (Theorem 6).
func DensityLogStar(ctx context.Context, intervals [][2]float64, eps float64) (measure.Table, error) {
	tb := measure.Table{
		Title:  fmt.Sprintf("E-T6: density of (log* n)^c classes (Theorem 6, ε=%.3f)", eps),
		Header: []string{"target interval", "Δ", "d", "k", "c (lower)", "c+ε bound (upper)"},
	}
	for _, iv := range intervals {
		if err := sweepStep(ctx); err != nil {
			return tb, err
		}
		p, err := landscape.FindLogStarParams(iv[0], iv[1], eps)
		if err != nil {
			return tb, err
		}
		tb.AddRow(fmt.Sprintf("[%.3f, %.3f]", iv[0], iv[1]), p.Delta, p.D, p.K, p.C, p.CUpper)
	}
	return tb, nil
}

// DensitySamples runs experiment E-DENSE: the executable rendering of the
// "infinitely dense" bars of Figure 2. For each regime it samples `samples`
// achievable exponents evenly spread in (lo, hi), each witnessed by concrete
// (Δ, d, k) parameters. The polynomial regime is clamped below 1/2 (Theorem
// 1's range); this mirrors what cmd/landscape -samples historically printed.
func DensitySamples(ctx context.Context, samples int, lo, hi float64) ([]measure.Table, error) {
	var tables []measure.Table
	for _, regime := range []landscape.Regime{landscape.RegimePolynomial, landscape.RegimeLogStar} {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		a, b := lo, hi
		if regime == landscape.RegimePolynomial && b > 0.5 {
			b = 0.49
		}
		pts, err := landscape.SampleDensityPoints(regime, a, b, samples)
		if err != nil {
			return nil, err
		}
		tb := measure.Table{
			Title:  fmt.Sprintf("E-DENSE: density samples, %v regime, %d points in (%.3g, %.3g)", regime, samples, a, b),
			Header: []string{"exponent", "Δ", "d", "k"},
		}
		for _, p := range pts {
			tb.AddRow(p.Exponent, p.Delta, p.D, p.K)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// PathLCLTable runs experiment E-T7: the decision procedure on the
// catalogue of path LCLs.
func PathLCLTable() (measure.Table, error) {
	tb := measure.Table{
		Title:  "E-T7: path-LCL classification (decidability demonstration)",
		Header: []string{"problem", "worst-case class", "node-avg class (Lemma 16)", ""},
	}
	for _, p := range pathlcl.Catalogue() {
		class, err := pathlcl.Classify(p)
		if err != nil {
			return tb, err
		}
		tb.AddRow(p.Name, class.String(), class.String(), "")
	}
	return tb, nil
}

// LandscapeFigures renders Figures 1 and 2 as tables.
func LandscapeFigures() (measure.Table, measure.Table) {
	render := func(title string, entries []landscape.Entry) measure.Table {
		tb := measure.Table{Title: title, Header: []string{"region", "status", "source", "new"}}
		for _, e := range entries {
			isNew := ""
			if e.New {
				isNew = "*"
			}
			tb.AddRow(e.Region, e.Status, e.Source, isNew)
		}
		return tb
	}
	return render("Figure 1: landscape before this paper", landscape.Figure1()),
		render("Figure 2: landscape after this paper", landscape.Figure2())
}

// SurvivorCounts runs experiment E-GEN (Lemma 13): after phase i of the
// generic algorithm with parameter γ_i, at most O(n'/γ_i) nodes of level
// > i remain undecided. The driver runs the k=2 generic 3½ algorithm on the
// lower-bound graph for a range of γ values and reports the survivor count
// next to the charging bound from the lemma's proof (each surviving node
// accounts for γ/2 terminated level-1 nodes, so survivors <= c·n/γ).
func SurvivorCounts(ctx context.Context, lengths []int, gammas []int, seed uint64) (measure.Table, error) {
	tb := measure.Table{
		Title:  "E-GEN: Lemma 13 survivor counts after phase 1 (k=2, 3½)",
		Header: []string{"γ1", "n", "survivors", "bound c·n/γ (c=8)"},
	}
	h, err := instances.Hierarchical(lengths)
	if err != nil {
		return tb, err
	}
	levels := graph.ComputeLevels(h.Tree, 2)
	ids := sim.DefaultIDs(h.Tree.N(), seed)
	for _, gamma := range gammas {
		if err := sweepStep(ctx); err != nil {
			return tb, err
		}
		sched, err := hierarchy.NewSchedule(hierarchy.Params{
			Problem: hierarchy.Problem{K: 2, Variant: hierarchy.Coloring35},
			Gammas:  []int{gamma},
		})
		if err != nil {
			return tb, err
		}
		ex, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids)
		if err != nil {
			return tb, err
		}
		survivors := 0
		for v := range ex.Rounds {
			if ex.Rounds[v] >= sched.Start(2) {
				survivors++
			}
		}
		bound := 8 * h.Tree.N() / gamma
		if survivors > bound {
			return tb, fmt.Errorf("exp: Lemma 13 violated: %d survivors > %d at γ=%d",
				survivors, bound, gamma)
		}
		tb.AddRow(gamma, h.Tree.N(), survivors, bound)
	}
	return tb, nil
}

func ipow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
