package exp

// The worker transport abstraction: ProcRunner drives every worker session
// through the Transport/WorkerSession pair below, so the byte stream a
// session runs over is pluggable. Two implementations ship: PipeTransport
// (spawn a subprocess, speak over its stdin/stdout — the default behind
// BatchOptions.Workers, and the only transport before the TCP one landed)
// and TCPTransport (dial a remote `experiments worker -listen` acceptor —
// see tcp.go). Everything protocol-level — handshake, frame grammar, task
// dispatch, failure labeling — lives above this seam in procrunner.go and
// is byte-for-byte identical on every transport.

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// teardownTimeout bounds session teardown uniformly across transports: the
// wait for the mandatory stats frame after the write side is closed, and —
// for the pipe transport — process reaping. A worker that closes its write
// side but never speaks again (or never exits) fails the batch labeled
// within this bound instead of hanging it, whichever transport carried the
// session. A variable so tests can shrink it.
var teardownTimeout = 10 * time.Second

// A Transport produces worker sessions for the multi-process batch
// backend. One Transport value corresponds to one worker slot; ProcRunner
// connects it (possibly repeatedly, for retry and late admission) and
// drives the NDJSON worker protocol over each session it yields.
type Transport interface {
	// Connect establishes one worker session: a byte stream on which the
	// peer speaks the worker side of the protocol, starting with its hello
	// frame. Connect must honor ctx for any internal waiting.
	Connect(ctx context.Context) (WorkerSession, error)
	// Label names the transport's peer in errors and stats
	// ("worker 2", "worker 127.0.0.1:9701").
	Label() string
	// Redialable reports whether a failed Connect may succeed later. The
	// dialing runner re-attempts redialable transports on a backoff
	// schedule — this is how a late-joining remote worker is admitted
	// mid-batch — and treats a non-redialable Connect failure as final.
	Redialable() bool
}

// A WorkerSession is one established byte stream to a worker, plus the
// teardown hooks the protocol driver needs. Reads and writes carry NDJSON
// frames; the driver never interprets transport specifics beyond these
// methods.
type WorkerSession interface {
	io.Reader
	io.Writer
	// CloseWrite half-closes the orchestrator→worker direction, signaling
	// end of tasks; the worker answers with its stats frame. (Pipe: close
	// stdin. TCP: shut down the write side of the connection.)
	CloseWrite() error
	// Abort tears the session down immediately — kill the process, close
	// the connection — unblocking any pending Read. It is idempotent and
	// safe to call concurrently with Reads and Close (the deadline timers
	// fire it from other goroutines).
	Abort()
	// Close finishes teardown, bounded by teardownTimeout, and describes
	// how the peer ended: desc is a human-readable account ("exited
	// cleanly", "exit status 3", "closed connection") and clean reports
	// whether the ending itself is unremarkable. Close is idempotent; the
	// first call's outcome is cached.
	Close() (desc string, clean bool)
}

// PipeTransport spawns a worker subprocess and speaks the protocol over
// its stdin/stdout — the transport behind BatchOptions.Workers. A spawn
// failure is final (Redialable is false): re-running the same argv would
// fail identically.
type PipeTransport struct {
	// Slot is the worker slot index, used only for labeling.
	Slot int
	// Command is the argv spawning one worker (e.g. the current executable
	// with the single argument "worker").
	Command []string
	// Env is extra environment appended to the inherited environment.
	Env []string
}

func (t *PipeTransport) Label() string    { return fmt.Sprintf("worker %d", t.Slot) }
func (t *PipeTransport) Redialable() bool { return false }

func (t *PipeTransport) Connect(ctx context.Context) (WorkerSession, error) {
	cmd := exec.CommandContext(ctx, t.Command[0], t.Command[1:]...)
	cmd.Env = append(os.Environ(), t.Env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("exp: %s: stdin pipe: %w", t.Label(), err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("exp: %s: stdout pipe: %w", t.Label(), err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("exp: %s: spawn %q: %w", t.Label(), t.Command[0], err)
	}
	return &pipeSession{cmd: cmd, stdin: stdin, stdout: stdout}, nil
}

// pipeSession is one live worker subprocess.
type pipeSession struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser

	reap  sync.Once
	desc  string
	clean bool
}

func (s *pipeSession) Read(p []byte) (int, error)  { return s.stdout.Read(p) }
func (s *pipeSession) Write(p []byte) (int, error) { return s.stdin.Write(p) }
func (s *pipeSession) CloseWrite() error           { return s.stdin.Close() }

// Abort kills the process; killing one that already exited is a no-op, so
// a natural exit's status is never clobbered.
func (s *pipeSession) Abort() { _ = s.cmd.Process.Kill() }

// Close reaps the process exactly once, bounded by teardownTimeout: a
// worker that closed its stdout but never exits is killed rather than
// hanging Wait.
func (s *pipeSession) Close() (string, bool) {
	s.reap.Do(func() {
		_ = s.stdin.Close()
		t := time.AfterFunc(teardownTimeout, func() { _ = s.cmd.Process.Kill() })
		defer t.Stop()
		if err := s.cmd.Wait(); err != nil {
			s.desc, s.clean = err.Error(), false
			return
		}
		s.desc, s.clean = "exited cleanly", true
	})
	return s.desc, s.clean
}
