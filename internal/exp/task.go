package exp

// The sweep-task model: experiments decompose their runs into independently
// schedulable units so RunBatch can spread one long sweep — not just whole
// experiments — across the worker pool. The standard batch is critical-path
// bound (weighted25-d5k3 alone is ~2/3 of the serial total); task-level
// scheduling is what lets -jobs flatten it, and it is the layer a future
// sharded/multi-process backend will schedule over.

import (
	"context"
	"encoding/json"
	"fmt"
)

// Task is one independently schedulable unit of an experiment run — a
// single sweep point for decomposable sweeps, or the whole run for
// experiments without a sweep axis. Tasks of one experiment must be
// mutually independent: no task may read another task's output or depend on
// execution order.
type Task struct {
	// Label identifies the task in logs and errors, e.g.
	// "weighted25-d5k3 n=1024000".
	Label string
	// Seed is the point seed the task runs under (already derived via
	// PointSeed; Run closes over it). Recorded so schedulers, logs, and
	// tests can verify seed derivation without executing the task.
	Seed uint64
	// InstanceKey names the shared-provider instance the task will request
	// (inst.Key.String()), or "" when the task builds no cached instance.
	// Informational: it labels scheduling decisions and per-worker routing.
	InstanceKey string
	// Affinity is the task's co-location group: the hierarchical core of
	// its instance key (inst.Key.Core), or "" when the task builds no
	// cached instance. The multi-process dispatcher routes tasks sharing an
	// affinity key to the same worker process, so a core tree (and any
	// composite built on it) is constructed once per process instead of
	// once per worker that happens to receive one of its tasks — bounding
	// peak memory and maximizing per-process cache hits.
	Affinity string
	// Run executes the unit under ctx and returns its partial output,
	// consumed positionally by the plan's Assemble.
	Run func(ctx context.Context) (any, error)
}

// TaskPlan is a decomposed experiment run: the independent tasks plus the
// deterministic reassembly of their outputs.
type TaskPlan struct {
	// Tasks are the units, in canonical (sweep) order.
	Tasks []Task
	// Assemble combines the task outputs — indexed like Tasks — into the
	// final result. It is called exactly once, after every task succeeded.
	// Because outputs are consumed by task position, never by completion
	// order, the assembled result is byte-identical no matter how the tasks
	// were scheduled.
	Assemble func(outs []any) (*Result, error)
	// Encode marshals one task output for the worker wire protocol
	// (proto.go). Together with Decode it is what lets a task output cross
	// a process boundary: the worker encodes, the orchestrator decodes, and
	// Assemble receives values that reassemble byte-identically to an
	// in-process run. Nil means the plan's outputs cannot cross a process
	// boundary (synthetic test plans); ProcRunner refuses such plans up
	// front.
	Encode func(out any) (json.RawMessage, error)
	// Decode is the inverse of Encode, applied orchestrator-side to the
	// result frame's output.
	Decode func(raw json.RawMessage) (any, error)
	// Started, when non-nil, marks the experiment's wall clock as running
	// (idempotent). Task.Run fires it on entry in-process; a backend that
	// executes Run out of process (ProcRunner) calls it when it first
	// dispatches one of the plan's tasks, so ElapsedMS spans first dispatch
	// to assembly rather than plan derivation to assembly.
	Started func()
}

// PointSeed derives the ID seed of one sweep point from the run's base seed
// and the point's sweep value (n, T, w, or γ — whatever the experiment
// sweeps). It is a pure function of (base, point); the base seed is itself a
// pure function of the experiment and RunConfig (Experiment.seedFor), so a
// point's IDs depend only on (experiment, preset, point) and never on
// scheduling order, worker count, or which other points run.
//
// The splitmix64 finalizer decorrelates nearby inputs: the previous additive
// derivation (base + point) collided whenever base₁+point₁ = base₂+point₂ —
// e.g. the T=5 point of a seed-3 sweep and the T=4 point of a seed-4 sweep
// shared identical node IDs.
func PointSeed(base uint64, point int) uint64 {
	z := base + 0x9e3779b97f4a7c15*(uint64(int64(point))+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// plan returns the experiment's task decomposition for cfg, wrapping Run as
// a single task when the experiment declares no Plan of its own.
func (e *Experiment) plan(cfg RunConfig) (*TaskPlan, error) {
	if e.Plan != nil {
		return e.Plan(cfg)
	}
	return &TaskPlan{
		Tasks: []Task{{
			Label: e.Name,
			Seed:  e.seedFor(cfg),
			Run: func(ctx context.Context) (any, error) {
				return e.Run(ctx, cfg)
			},
		}},
		Assemble: func(outs []any) (*Result, error) {
			res, ok := outs[0].(*Result)
			if !ok {
				return nil, fmt.Errorf("exp: %s: single-task output is %T, not *Result", e.Name, outs[0])
			}
			return res, nil
		},
		Encode: encodeResult,
		Decode: decodeResult,
	}, nil
}
