package exp

// ProcRunner: the multi-process execution backend behind RunBatch's Workers
// option. It spawns N worker subprocesses (each running RunWorker via the
// embedding binary's `worker` subcommand), verifies the protocol version and
// catalog hash at handshake, dispatches tasks with instance-affinity
// grouping (affinity.go), and feeds decoded outputs back into the batch
// state's positional assembly — so the canonical aggregate is byte-identical
// to the serial in-process run at every worker count. A worker failure
// (crash, nonzero exit, protocol violation) surfaces as an error labeled
// with the in-flight task and cancels the rest of the batch; WorkerRetry
// allows one respawn per worker slot before failing.
//
// This is the seam the ROADMAP names for sharding across machines: every
// interaction with a worker flows through the NDJSON frames of proto.go
// over an io pipe pair, so replacing the pipe with a socket is a transport
// swap — nothing above this file changes. See docs/DISTRIBUTED.md.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/inst"
)

// WorkerStats is one worker subprocess's shutdown report: how many tasks it
// ran and its process-local instance-cache counters. Because the dispatcher
// routes tasks sharing a hierarchical core to one worker, these counters
// are where affinity shows up: a warm repeat of a composite family inside a
// batch performs zero builds in its worker and records hits instead.
type WorkerStats struct {
	// Worker is the worker slot index (0..Workers-1).
	Worker int `json:"worker"`
	// Tasks is the number of tasks the worker executed.
	Tasks int `json:"tasks"`
	// Cache is the worker process's instance-cache snapshot at shutdown.
	Cache inst.Stats `json:"cache"`
}

// handshakeTimeout bounds the wait for a spawned worker's hello frame. A
// real worker greets in milliseconds; the generous bound only exists so a
// misconfigured command that never writes fails loudly instead of hanging
// the batch. A variable so tests can shrink it.
var handshakeTimeout = 30 * time.Second

// workerExitTimeout bounds process reaping: a worker that closed its
// stdout but never exits is killed rather than hanging Wait. Killing a
// process that already exited is a no-op, so a natural exit's status is
// never clobbered.
const workerExitTimeout = 10 * time.Second

// errTaskFailed marks a session that already reported its failure through
// the batch state (a task-level error frame or an undecodable output);
// the worker loop must not re-report or retry it.
var errTaskFailed = errors.New("task failed")

// permanentError marks a worker failure a fresh worker would reproduce
// deterministically — handshake refusals (version or catalog mismatch) and
// protocol violations. Retry applies only to crashes, never to these.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err: err} }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// ProcRunner executes a batch's tasks in worker subprocesses. It implements
// the runner interface RunBatch schedules through; BatchOptions.Workers
// constructs one, and the exported fields mirror the corresponding batch
// options.
type ProcRunner struct {
	// Workers is the number of worker subprocesses (clamped to the task
	// count; at least 1).
	Workers int
	// Command is the argv spawning one worker. Empty means the current
	// executable with the single argument "worker".
	Command []string
	// Env is extra environment appended to the inherited environment of
	// every worker subprocess.
	Env []string
	// Retry allows one respawn of a crashed worker's remaining tasks on a
	// fresh process before the crash fails the batch.
	Retry bool
	// OnStats, when non-nil, receives each worker's shutdown stats. Calls
	// are serialized.
	OnStats func(WorkerStats)

	statsMu sync.Mutex
}

// runTasks implements the runner interface: group the batch's tasks by
// instance affinity, run one manager goroutine per worker slot, and wait
// for every slot to drain or the batch to fail.
func (p *ProcRunner) runTasks(ctx context.Context, b *batchState) {
	var units []batchUnit
	for i, plan := range b.plans {
		for j := range plan.Tasks {
			units = append(units, batchUnit{exp: i, task: j, id: len(units)})
		}
		if len(plan.Tasks) > 0 && (plan.Encode == nil || plan.Decode == nil) {
			b.fail(fmt.Errorf("exp: %s: plan outputs are not wire-encodable (no Encode/Decode); run without workers", b.exps[i].Name))
			return
		}
	}
	if len(units) == 0 {
		return
	}
	argv := p.Command
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			b.fail(fmt.Errorf("exp: resolving worker executable: %w", err))
			return
		}
		argv = []string{self, "worker"}
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(units) {
		workers = len(units)
	}
	queues := assignAffinity(units, b.plans, workers)
	var wg sync.WaitGroup
	for slot, queue := range queues {
		if len(queue) == 0 {
			continue
		}
		wg.Add(1)
		go func(slot int, queue []batchUnit) {
			defer wg.Done()
			p.runWorker(ctx, slot, queue, argv, b)
		}(slot, queue)
	}
	wg.Wait()
}

// runWorker drives one worker slot's queue through worker sessions: one
// process normally, a second fresh process when Retry is set and the first
// crashed. Task-level failures are terminal (the task would fail
// identically on a fresh worker); batch cancellation ends the slot
// silently — the cancellation's root cause is recorded elsewhere.
func (p *ProcRunner) runWorker(ctx context.Context, slot int, units []batchUnit, argv []string, b *batchState) {
	retried := false
	for {
		done, err := p.session(ctx, slot, units, argv, b)
		units = units[done:]
		if err == nil {
			return
		}
		if errors.Is(err, errTaskFailed) || ctx.Err() != nil {
			return
		}
		if p.Retry && !retried && len(units) > 0 && !isPermanent(err) {
			retried = true
			continue
		}
		b.fail(err)
		return
	}
}

// session runs one worker process over the given units: spawn, handshake,
// one task frame at a time, then shutdown (stdin EOF → stats frame → clean
// exit). It returns how many units were delivered and, on failure, an error
// describing what the worker did — labeled with the in-flight task when one
// was. errTaskFailed signals a failure already recorded in the batch state.
func (p *ProcRunner) session(ctx context.Context, slot int, units []batchUnit, argv []string, b *batchState) (delivered int, err error) {
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), p.Env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return 0, fmt.Errorf("exp: worker %d: stdin pipe: %w", slot, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return 0, fmt.Errorf("exp: worker %d: stdout pipe: %w", slot, err)
	}
	if err := cmd.Start(); err != nil {
		return 0, fmt.Errorf("exp: worker %d: spawn %q: %w", slot, argv[0], err)
	}
	// exit reaps the process exactly once and describes how it went down;
	// abort additionally makes sure it is gone first (protocol violations
	// leave a live process behind).
	reaped := false
	exit := func() string {
		reaped = true
		t := time.AfterFunc(workerExitTimeout, func() { _ = cmd.Process.Kill() })
		defer t.Stop()
		if werr := cmd.Wait(); werr != nil {
			return werr.Error()
		}
		return "exited cleanly"
	}
	abort := func() {
		_ = cmd.Process.Kill()
		if !reaped {
			_ = cmd.Wait()
			reaped = true
		}
	}
	defer func() {
		_ = stdin.Close()
		if !reaped {
			abort()
		}
	}()

	sc := newFrameScanner(stdout)

	// Handshake: the worker speaks first, and a real worker says hello in
	// milliseconds — bound the wait so a misconfigured command that never
	// writes (e.g. a program blocking on stdin) fails the batch with a
	// labeled error instead of hanging RunBatch forever. The timer kill
	// forces the blocked Scan to EOF.
	hsTimer := time.AfterFunc(handshakeTimeout, func() { _ = cmd.Process.Kill() })
	scanned := sc.Scan()
	hsFired := !hsTimer.Stop()
	if !scanned {
		if hsFired {
			return 0, permanent(fmt.Errorf("exp: worker %d: no hello frame within %v (is %q a worker binary?)",
				slot, handshakeTimeout, argv[0]))
		}
		if serr := sc.Err(); serr != nil {
			ferr := fmt.Errorf("exp: worker %d: reading hello frame: %w", slot, serr)
			if errors.Is(serr, bufio.ErrTooLong) {
				return 0, permanent(ferr)
			}
			return 0, ferr
		}
		return 0, fmt.Errorf("exp: worker %d: no hello frame (%s)", slot, exit())
	}
	// A hello that raced the watchdog at the boundary still counts: if the
	// timer's kill landed anyway, the first dispatch surfaces it as an
	// ordinary (retryable) crash rather than a spurious timeout.
	var hello HelloFrame
	if jerr := json.Unmarshal(sc.Bytes(), &hello); jerr != nil || hello.Type != FrameHello {
		return 0, permanent(fmt.Errorf("exp: worker %d: handshake: expected hello frame, got %q", slot, sc.Bytes()))
	}
	if hello.Proto != ProtoVersion {
		return 0, permanent(fmt.Errorf("exp: worker %d: handshake: protocol version %d, orchestrator speaks %d",
			slot, hello.Proto, ProtoVersion))
	}
	if want := CatalogHash(); hello.Catalog != want {
		return 0, permanent(fmt.Errorf("exp: worker %d: handshake: catalog hash mismatch (worker %s, orchestrator %s): orchestrator and worker would plan different tasks",
			slot, hello.Catalog, want))
	}
	if want := BuildID(); hello.Build != want {
		return 0, permanent(fmt.Errorf("exp: worker %d: handshake: build mismatch (worker %s, orchestrator %s): a version-skewed worker would compute stale outputs",
			slot, hello.Build, want))
	}

	enc := json.NewEncoder(stdin)
	for _, u := range units {
		if ctx.Err() != nil {
			return delivered, ctx.Err()
		}
		label := b.plans[u.exp].Tasks[u.task].Label
		// Task.Run executes in the worker, so the plan's in-process clock
		// trigger never fires; dispatch is the experiment's start here.
		if hook := b.plans[u.exp].Started; hook != nil {
			hook()
		}
		if serr := enc.Encode(TaskFrame{
			Type:       FrameTask,
			ID:         u.id,
			Experiment: b.exps[u.exp].Name,
			Config:     b.cfg,
			Index:      u.task,
		}); serr != nil {
			return delivered, fmt.Errorf("exp: worker %d: %s while dispatching task %q", slot, exit(), label)
		}
		if !sc.Scan() {
			if serr := sc.Err(); serr != nil {
				ferr := fmt.Errorf("exp: worker %d: reading frames during task %q: %w", slot, label, serr)
				if errors.Is(serr, bufio.ErrTooLong) {
					// An oversized frame reproduces on a fresh worker;
					// other read errors may be transient and stay
					// retryable.
					return delivered, permanent(ferr)
				}
				return delivered, ferr
			}
			return delivered, fmt.Errorf("exp: worker %d: %s during task %q", slot, exit(), label)
		}
		line := sc.Bytes()
		kind, ferr := frameType(line)
		if ferr != nil {
			return delivered, permanent(fmt.Errorf("exp: worker %d: %w during task %q", slot, ferr, label))
		}
		switch kind {
		case FrameResult:
			var rf ResultFrame
			if jerr := json.Unmarshal(line, &rf); jerr != nil {
				return delivered, permanent(fmt.Errorf("exp: worker %d: malformed result frame during task %q: %w", slot, label, jerr))
			}
			if rf.ID != u.id {
				return delivered, permanent(fmt.Errorf("exp: worker %d: result frame for task %d, expected %d (%q)", slot, rf.ID, u.id, label))
			}
			out, derr := b.plans[u.exp].Decode(rf.Output)
			if derr != nil {
				b.fail(fmt.Errorf("exp: worker %d: task %q: %w", slot, label, derr))
				return delivered, errTaskFailed
			}
			b.deliver(u.exp, u.task, out)
			delivered++
		case FrameError:
			var ef ErrorFrame
			if jerr := json.Unmarshal(line, &ef); jerr != nil {
				return delivered, permanent(fmt.Errorf("exp: worker %d: malformed error frame during task %q: %w", slot, label, jerr))
			}
			if ef.ID != u.id {
				return delivered, permanent(fmt.Errorf("exp: worker %d: error frame for task %d, expected %d (%q)", slot, ef.ID, u.id, label))
			}
			if ef.Canceled && ctx.Err() != nil {
				// The worker observed the batch's own cancellation (the
				// orchestrator context is canceled too): wrap
				// context.Canceled so the batch books it as fallout and
				// the root cause is never drowned. A canceled-flagged
				// frame while the batch is healthy is a task failing on
				// its own internal deadline — a real failure whose
				// message must survive.
				b.fail(fmt.Errorf("exp: worker %d: task %q: %w", slot, label, context.Canceled))
			} else {
				b.fail(fmt.Errorf("exp: worker %d: task %q: %s", slot, label, ef.Error))
			}
			return delivered, errTaskFailed
		default:
			return delivered, permanent(fmt.Errorf("exp: worker %d: unexpected %q frame during task %q", slot, kind, label))
		}
	}

	// Shutdown: closing stdin asks the worker to emit its stats frame and
	// exit cleanly. The stats frame is mandatory, and a nonzero exit after
	// the last task still fails the batch — a worker that corrupted itself
	// may have corrupted outputs.
	_ = stdin.Close()
	// Like the handshake, the stats read is bounded: a worker that ignores
	// stdin EOF and never writes again would otherwise hang the batch with
	// every task already delivered.
	stTimer := time.AfterFunc(workerExitTimeout, func() { _ = cmd.Process.Kill() })
	gotStats := sc.Scan()
	stFired := !stTimer.Stop()
	if !gotStats {
		if stFired {
			return delivered, permanent(fmt.Errorf("exp: worker %d: no stats frame within %v of shutdown", slot, workerExitTimeout))
		}
		if serr := sc.Err(); serr != nil {
			return delivered, fmt.Errorf("exp: worker %d: reading stats frame: %w", slot, serr)
		}
		return delivered, fmt.Errorf("exp: worker %d: %s without a stats frame", slot, exit())
	}
	var stats StatsFrame
	if jerr := json.Unmarshal(sc.Bytes(), &stats); jerr != nil || stats.Type != FrameStats {
		return delivered, permanent(fmt.Errorf("exp: worker %d: expected stats frame at shutdown, got %q", slot, sc.Bytes()))
	}
	// Every task is delivered and the stats frame arrived; the only exit
	// status to tolerate beyond a clean one is our own watchdog's kill
	// racing a frame that did make it out.
	if desc := exit(); desc != "exited cleanly" && !stFired {
		return delivered, fmt.Errorf("exp: worker %d: %s after its last task", slot, desc)
	}
	if p.OnStats != nil {
		p.statsMu.Lock()
		p.OnStats(WorkerStats{Worker: slot, Tasks: stats.Tasks, Cache: stats.Cache})
		p.statsMu.Unlock()
	}
	return delivered, nil
}
