package exp

// ProcRunner: the multi-process execution backend behind RunBatch's Workers
// and Remote options. Each worker slot is one Transport (transport.go): a
// subprocess spoken to over its stdin/stdout pipes, or a remote
// `experiments worker -listen` acceptor dialed over TCP (tcp.go). The
// protocol driver here is transport-agnostic — it verifies the protocol
// version, catalog hash, and build fingerprint at handshake, claims
// instance-affinity groups from a shared pool (affinity.go), dispatches one
// task frame at a time, and feeds decoded outputs back into the batch
// state's positional assembly — so the canonical aggregate is byte-identical
// to the serial in-process run at every worker count on every transport. A
// worker failure (crash, connection reset, protocol violation) surfaces as
// an error labeled with the in-flight task and cancels the rest of the
// batch; WorkerRetry allows the dropped group's remainder one rerun on a
// fresh session before failing.
//
// This closes the ROADMAP's "transport swap, not a redesign" loop: every
// interaction with a worker flows through the NDJSON frames of proto.go
// over a WorkerSession byte stream. See docs/DISTRIBUTED.md.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/inst"
)

// WorkerStats is one worker session's shutdown report: how many tasks it
// ran and its process-local instance-cache counters. Because the dispatcher
// routes tasks sharing a hierarchical core to one worker, these counters
// are where affinity shows up: a warm repeat of a composite family inside a
// batch performs zero builds in its worker and records hits instead.
type WorkerStats struct {
	// Worker is the worker slot index (0..Workers-1).
	Worker int `json:"worker"`
	// Addr is the remote worker's address for TCP slots; empty for
	// subprocess slots.
	Addr string `json:"addr,omitempty"`
	// Tasks is the number of tasks the worker executed.
	Tasks int `json:"tasks"`
	// Cache is the worker process's instance-cache snapshot at shutdown.
	Cache inst.Stats `json:"cache"`
}

// handshakeTimeout bounds the wait for a connected worker's hello frame. A
// real worker greets in milliseconds; the generous bound only exists so a
// misconfigured command (or a socket that is not a worker) that never
// writes fails loudly instead of hanging the batch. A variable so tests can
// shrink it.
var handshakeTimeout = 30 * time.Second

// Dialer admission policy for redialable (TCP) transports: an unreachable
// address is re-attempted on an exponential backoff schedule for as long as
// the batch has other live workers — that worker may simply not have been
// started yet, and it is admitted into the group pool whenever it appears.
// Only when *no* worker is live does unreachability become fatal, after
// deadDialAttempts consecutive failures. Variables so tests can shrink
// them.
var (
	dialBackoffMin   = 100 * time.Millisecond
	dialBackoffMax   = 2 * time.Second
	deadDialAttempts = 5
)

// errTaskFailed marks a session that already reported its failure through
// the batch state (a task-level error frame, an undecodable output, or a
// shutdown-phase violation); the slot loop must not re-report or retry it.
var errTaskFailed = errors.New("task failed")

// errSlotDone marks a slot whose work ended without incident: the batch was
// canceled or the pool drained while the slot was dialing or backing off.
var errSlotDone = errors.New("slot done")

// permanentError marks a worker failure a fresh worker would reproduce
// deterministically — handshake refusals (version or catalog mismatch) and
// protocol violations. Retry applies only to crashes, never to these.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err: err} }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// ProcRunner executes a batch's tasks in worker sessions. It implements
// the runner interface RunBatch schedules through; BatchOptions.Workers or
// BatchOptions.Remote constructs one, and the exported fields mirror the
// corresponding batch options.
type ProcRunner struct {
	// Workers is the number of worker subprocesses (clamped to the affinity
	// group count; at least 1). Ignored when Transports is non-empty.
	Workers int
	// Command is the argv spawning one worker subprocess. Empty means the
	// current executable with the single argument "worker".
	Command []string
	// Env is extra environment appended to the inherited environment of
	// every worker subprocess.
	Env []string
	// Transports, when non-empty, enumerates the worker slots explicitly —
	// one slot per transport — instead of spawning subprocess slots from
	// Workers/Command. This is how remote TCP workers are wired in.
	Transports []Transport
	// Retry allows an interrupted affinity group's remaining tasks one
	// rerun on a fresh worker session before the crash fails the batch.
	Retry bool
	// OnStats, when non-nil, receives each worker's shutdown stats. Calls
	// are serialized.
	OnStats func(WorkerStats)

	statsMu sync.Mutex
}

// runTasks implements the runner interface: group the batch's tasks by
// instance affinity into a shared pool, run one slot goroutine per
// transport, and wait for every slot to finish or the batch to fail.
func (p *ProcRunner) runTasks(ctx context.Context, b *batchState) {
	var units []batchUnit
	for i, plan := range b.plans {
		for j := range plan.Tasks {
			units = append(units, batchUnit{exp: i, task: j, id: len(units)})
		}
		if len(plan.Tasks) > 0 && (plan.Encode == nil || plan.Decode == nil) {
			b.fail(fmt.Errorf("exp: %s: plan outputs are not wire-encodable (no Encode/Decode); run without workers", b.exps[i].Name))
			return
		}
	}
	if len(units) == 0 {
		return
	}
	groups := affinityGroups(units, b.plans)
	transports := p.Transports
	if len(transports) == 0 {
		argv := p.Command
		if len(argv) == 0 {
			self, err := os.Executable()
			if err != nil {
				b.fail(fmt.Errorf("exp: resolving worker executable: %w", err))
				return
			}
			argv = []string{self, "worker"}
		}
		workers := p.Workers
		if workers < 1 {
			workers = 1
		}
		// A group is pinned to one session, so slots beyond the group count
		// would idle; don't spawn them.
		if workers > len(groups) {
			workers = len(groups)
		}
		for slot := 0; slot < workers; slot++ {
			transports = append(transports, &PipeTransport{Slot: slot, Command: argv, Env: p.Env})
		}
	}
	pool := newGroupPool(groups)
	var live atomic.Int32
	var wg sync.WaitGroup
	for slot, t := range transports {
		wg.Add(1)
		go func(slot int, t Transport) {
			defer wg.Done()
			p.runSlot(ctx, slot, t, pool, &live, b)
		}(slot, t)
	}
	wg.Wait()
}

// runSlot drives one worker slot: connect the transport (with backoff for
// redialable ones), run a session over the group pool, and reconnect after
// a retryable session drop when Retry is set. A drop that interrupted a
// claimed group reconnects immediately — the group's own one-retry latch
// bounds repeats, so total session losses stay finite. A *fruitless* drop
// (the session died before claiming anything, e.g. at handshake) is capped:
// a subprocess gets one respawn, a redialable remote is re-dialed on
// backoff like an unreachable address — patient while other workers are
// live, fatal after deadDialAttempts consecutive losses once none are.
// Task-level failures are terminal (the task would fail identically on a
// fresh worker); batch cancellation ends the slot silently — the
// cancellation's root cause is recorded elsewhere.
func (p *ProcRunner) runSlot(ctx context.Context, slot int, t Transport, pool *groupPool, live *atomic.Int32, b *batchState) {
	fruitless := 0
	backoff := dialBackoffMin
	for {
		select {
		case <-ctx.Done():
			return
		case <-pool.drained:
			return
		default:
		}
		sess, err := p.connect(ctx, t, pool, live)
		if err != nil {
			if errors.Is(err, errSlotDone) {
				return
			}
			b.fail(err)
			return
		}
		live.Add(1)
		claimed, err := p.runSession(ctx, slot, t, sess, pool, b)
		live.Add(-1)
		if err == nil || errors.Is(err, errTaskFailed) || ctx.Err() != nil {
			return
		}
		if isPermanent(err) || !p.Retry {
			b.fail(err)
			return
		}
		if claimed {
			// The interrupted group is back in the pool (or already used
			// its retry, which surfaced as permanent above); reconnect.
			fruitless = 0
			backoff = dialBackoffMin
			continue
		}
		fruitless++
		if !t.Redialable() {
			// One respawn for a subprocess that died before doing anything;
			// a command that cannot even say hello twice is misconfigured.
			if fruitless > 1 {
				b.fail(err)
				return
			}
			continue
		}
		// A remote that connects but loses the session before claiming
		// (e.g. its accept backlog outlived the process) behaves like an
		// unreachable address: back off and re-dial while the batch has
		// other live workers, fail once it is alone and still losing.
		if live.Load() == 0 && fruitless >= deadDialAttempts {
			b.fail(fmt.Errorf("exp: %s: lost %d sessions with no live workers: %w", t.Label(), fruitless, err))
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-pool.drained:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// connect establishes one session, applying the late-join admission policy
// to redialable transports: back off and re-dial while other workers are
// alive (the peer may not have started yet), fail labeled after
// deadDialAttempts consecutive failures with no live worker, and give up
// silently when the pool drains or the batch is canceled. A non-redialable
// transport's connect failure is final.
func (p *ProcRunner) connect(ctx context.Context, t Transport, pool *groupPool, live *atomic.Int32) (WorkerSession, error) {
	backoff := dialBackoffMin
	deadFails := 0
	for {
		sess, err := t.Connect(ctx)
		if err == nil {
			return sess, nil
		}
		if ctx.Err() != nil {
			return nil, errSlotDone
		}
		if !t.Redialable() {
			return nil, err
		}
		if live.Load() == 0 {
			deadFails++
			if deadFails >= deadDialAttempts {
				return nil, fmt.Errorf("exp: %s: unreachable after %d attempts with no live workers: %w", t.Label(), deadFails, err)
			}
		} else {
			deadFails = 0
		}
		select {
		case <-ctx.Done():
			return nil, errSlotDone
		case <-pool.drained:
			return nil, errSlotDone
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// runSession drives one worker session: handshake, then claim affinity
// groups from the pool and run them one task frame at a time, then shutdown
// (write half-close → stats frame → clean teardown). On a retryable drop
// mid-group it requeues the group's undelivered suffix and returns the
// error for the slot to reconnect on; errTaskFailed signals a failure
// already recorded in the batch state. The claimed result reports whether
// the session got far enough to claim a group — the slot's retry policy
// treats a pre-claim loss (a peer that never really came up) differently
// from a worker lost mid-work.
func (p *ProcRunner) runSession(ctx context.Context, slot int, t Transport, sess WorkerSession, pool *groupPool, b *batchState) (claimed bool, err error) {
	defer func() {
		sess.Abort()
		sess.Close()
	}()
	who := t.Label()
	sc := newFrameScanner(sess)

	// Handshake: the worker speaks first, and a real worker says hello in
	// milliseconds — bound the wait so a peer that never writes (e.g. a
	// program blocking on stdin, or a socket that is not a worker) fails
	// the batch with a labeled error instead of hanging RunBatch forever.
	// The timer abort forces the blocked Scan to EOF.
	hsTimer := time.AfterFunc(handshakeTimeout, sess.Abort)
	scanned := sc.Scan()
	hsFired := !hsTimer.Stop()
	if !scanned {
		if hsFired {
			return false, permanent(fmt.Errorf("exp: %s: no hello frame within %v (is the peer a worker?)", who, handshakeTimeout))
		}
		if serr := sc.Err(); serr != nil {
			ferr := fmt.Errorf("exp: %s: reading hello frame: %w", who, serr)
			if errors.Is(serr, bufio.ErrTooLong) {
				return false, permanent(ferr)
			}
			return false, ferr
		}
		desc, _ := sess.Close()
		return false, fmt.Errorf("exp: %s: no hello frame (%s)", who, desc)
	}
	// A hello that raced the watchdog at the boundary still counts: if the
	// timer's abort landed anyway, the first dispatch surfaces it as an
	// ordinary (retryable) crash rather than a spurious timeout.
	var hello HelloFrame
	if jerr := json.Unmarshal(sc.Bytes(), &hello); jerr != nil || hello.Type != FrameHello {
		return false, permanent(fmt.Errorf("exp: %s: handshake: expected hello frame, got %q", who, sc.Bytes()))
	}
	if hello.Proto != ProtoVersion {
		return false, permanent(fmt.Errorf("exp: %s: handshake: protocol version %d, orchestrator speaks %d",
			who, hello.Proto, ProtoVersion))
	}
	if want := CatalogHash(); hello.Catalog != want {
		return false, permanent(fmt.Errorf("exp: %s: handshake: catalog hash mismatch (worker %s, orchestrator %s): orchestrator and worker would plan different tasks",
			who, hello.Catalog, want))
	}
	if want := BuildID(); hello.Build != want {
		return false, permanent(fmt.Errorf("exp: %s: handshake: build mismatch (worker %s, orchestrator %s): a version-skewed worker would compute stale outputs",
			who, hello.Build, want))
	}

	enc := json.NewEncoder(sess)
	for {
		entry := pool.claim(ctx)
		if entry == nil {
			break
		}
		claimed = true
		delivered, err := p.runEntry(ctx, who, entry, enc, sc, sess, b)
		if err != nil {
			if errors.Is(err, errTaskFailed) || ctx.Err() != nil {
				pool.finish()
				return claimed, err
			}
			if p.Retry && !isPermanent(err) {
				if pool.requeue(entry, entry.units[delivered:]) {
					return claimed, err // slot reconnects; the work is safe in the pool
				}
				return claimed, permanent(fmt.Errorf("%w (group already retried once)", err))
			}
			pool.finish()
			return claimed, err
		}
		pool.finish()
	}
	if ctx.Err() != nil {
		return claimed, ctx.Err()
	}

	// Shutdown: half-closing the write side asks the worker to emit its
	// stats frame and end the session cleanly. The stats frame is
	// mandatory, and an unclean ending after the last task still fails the
	// batch — a worker that corrupted itself may have corrupted outputs.
	// Shutdown violations are recorded in the batch state directly (never
	// retried: every task is already delivered, so a fresh session could
	// not re-earn the missing stats).
	if cerr := sess.CloseWrite(); cerr != nil {
		b.fail(fmt.Errorf("exp: %s: closing task stream: %w", who, cerr))
		return claimed, errTaskFailed
	}
	// Like the handshake, the stats read is bounded: a worker that ignores
	// the half-close and never writes again would otherwise hang the batch
	// with every task already delivered.
	stTimer := time.AfterFunc(teardownTimeout, sess.Abort)
	gotStats := sc.Scan()
	stFired := !stTimer.Stop()
	if !gotStats {
		if stFired {
			b.fail(permanent(fmt.Errorf("exp: %s: no stats frame within %v of shutdown", who, teardownTimeout)))
			return claimed, errTaskFailed
		}
		if serr := sc.Err(); serr != nil {
			b.fail(fmt.Errorf("exp: %s: reading stats frame: %w", who, serr))
			return claimed, errTaskFailed
		}
		desc, _ := sess.Close()
		b.fail(fmt.Errorf("exp: %s: %s without a stats frame", who, desc))
		return claimed, errTaskFailed
	}
	var stats StatsFrame
	if jerr := json.Unmarshal(sc.Bytes(), &stats); jerr != nil || stats.Type != FrameStats {
		b.fail(permanent(fmt.Errorf("exp: %s: expected stats frame at shutdown, got %q", who, sc.Bytes())))
		return claimed, errTaskFailed
	}
	// The stats frame arrived; the only unclean ending to tolerate is our
	// own watchdog's abort racing a frame that did make it out.
	if desc, clean := sess.Close(); !clean && !stFired {
		b.fail(fmt.Errorf("exp: %s: %s after its last task", who, desc))
		return claimed, errTaskFailed
	}
	if p.OnStats != nil {
		ws := WorkerStats{Worker: slot, Tasks: stats.Tasks, Cache: stats.Cache}
		if tt, ok := t.(*TCPTransport); ok {
			ws.Addr = tt.Addr
		}
		p.statsMu.Lock()
		p.OnStats(ws)
		p.statsMu.Unlock()
	}
	return claimed, nil
}

// runEntry runs one affinity group's units over the session, one task frame
// at a time, and reports how many were delivered. On failure the error
// describes what the worker did, labeled with the in-flight task;
// errTaskFailed signals a failure already recorded in the batch state.
func (p *ProcRunner) runEntry(ctx context.Context, who string, entry *groupEntry, enc *json.Encoder, sc *bufio.Scanner, sess WorkerSession, b *batchState) (delivered int, err error) {
	for _, u := range entry.units {
		if ctx.Err() != nil {
			return delivered, ctx.Err()
		}
		label := b.plans[u.exp].Tasks[u.task].Label
		// Task.Run executes in the worker, so the plan's in-process clock
		// trigger never fires; dispatch is the experiment's start here.
		if hook := b.plans[u.exp].Started; hook != nil {
			hook()
		}
		if serr := enc.Encode(TaskFrame{
			Type:       FrameTask,
			ID:         u.id,
			Experiment: b.exps[u.exp].Name,
			Config:     b.cfg,
			Index:      u.task,
		}); serr != nil {
			desc, _ := sess.Close()
			return delivered, fmt.Errorf("exp: %s: %s while dispatching task %q", who, desc, label)
		}
		if !sc.Scan() {
			if serr := sc.Err(); serr != nil {
				ferr := fmt.Errorf("exp: %s: reading frames during task %q: %w", who, label, serr)
				if errors.Is(serr, bufio.ErrTooLong) {
					// An oversized frame reproduces on a fresh worker;
					// other read errors (resets, timeouts) may be transient
					// and stay retryable.
					return delivered, permanent(ferr)
				}
				return delivered, ferr
			}
			desc, _ := sess.Close()
			return delivered, fmt.Errorf("exp: %s: %s during task %q", who, desc, label)
		}
		line := sc.Bytes()
		kind, ferr := frameType(line)
		if ferr != nil {
			return delivered, permanent(fmt.Errorf("exp: %s: %w during task %q", who, ferr, label))
		}
		switch kind {
		case FrameResult:
			var rf ResultFrame
			if jerr := json.Unmarshal(line, &rf); jerr != nil {
				return delivered, permanent(fmt.Errorf("exp: %s: malformed result frame during task %q: %w", who, label, jerr))
			}
			if rf.ID != u.id {
				return delivered, permanent(fmt.Errorf("exp: %s: result frame for task %d, expected %d (%q)", who, rf.ID, u.id, label))
			}
			out, derr := b.plans[u.exp].Decode(rf.Output)
			if derr != nil {
				b.fail(fmt.Errorf("exp: %s: task %q: %w", who, label, derr))
				return delivered, errTaskFailed
			}
			b.deliver(u.exp, u.task, out)
			delivered++
		case FrameError:
			var ef ErrorFrame
			if jerr := json.Unmarshal(line, &ef); jerr != nil {
				return delivered, permanent(fmt.Errorf("exp: %s: malformed error frame during task %q: %w", who, label, jerr))
			}
			if ef.ID != u.id {
				return delivered, permanent(fmt.Errorf("exp: %s: error frame for task %d, expected %d (%q)", who, ef.ID, u.id, label))
			}
			if ef.Canceled && ctx.Err() != nil {
				// The worker observed the batch's own cancellation (the
				// orchestrator context is canceled too): wrap
				// context.Canceled so the batch books it as fallout and
				// the root cause is never drowned. A canceled-flagged
				// frame while the batch is healthy is a task failing on
				// its own internal deadline — a real failure whose
				// message must survive.
				b.fail(fmt.Errorf("exp: %s: task %q: %w", who, label, context.Canceled))
			} else {
				b.fail(fmt.Errorf("exp: %s: task %q: %s", who, label, ef.Error))
			}
			return delivered, errTaskFailed
		default:
			return delivered, permanent(fmt.Errorf("exp: %s: unexpected %q frame during task %q", who, kind, label))
		}
	}
	return delivered, nil
}
