package exp

// The fault-injection harness: a flaky net.Conn proxy between the
// orchestrator and a real in-process TCP worker. The proxy forwards the
// orchestrator→worker direction untouched and shapes the worker→orchestrator
// byte stream on a deterministic per-connection schedule — forward N full
// frames, then M bytes of the next frame, then stall / reset / close /
// keep forwarding with per-frame delays. Each test pins one injected fault
// to either a successful recovery through the retry path or a failure with
// the right label: no hangs, no unlabeled errors.

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// faultAction is what the proxy does to the worker→orchestrator stream
// after the planned prefix has been forwarded.
type faultAction int

const (
	// faultForwardAll forwards everything faithfully until the backend
	// closes (per-frame delay still applies) — the healthy connection, and
	// the shape of every retry connection.
	faultForwardAll faultAction = iota
	// faultStall forwards nothing more but keeps the connection open: a
	// peer that is alive and silent.
	faultStall
	// faultReset drops the connection with an RST (SO_LINGER 0): the shape
	// of a worker machine dying mid-frame.
	faultReset
	// faultClose half-delivers and then closes cleanly (FIN): a truncated
	// write followed by an orderly shutdown.
	faultClose
)

// connPlan schedules one proxied connection's faults.
type connPlan struct {
	// lines is the number of complete worker frames to forward before the
	// action (the hello frame is line 1). Ignored by faultForwardAll.
	lines int
	// extra is how many bytes of the following frame to leak through
	// before the action — a mid-frame cut. With extra == 0 the proxy still
	// waits for the frame's first byte to exist before acting, so the
	// action deterministically lands mid-task rather than racing dispatch.
	extra int
	// action is the fault to inject.
	action faultAction
	// delay sleeps before forwarding each frame (faultForwardAll only).
	delay time.Duration
}

// flakyProxy is the in-test proxy. Connection i gets plans[i]; connections
// past the end of plans get the last plan (so a single trailing
// faultForwardAll covers every retry).
type flakyProxy struct {
	t       *testing.T
	l       net.Listener
	backend string
	plans   []connPlan
	accepts atomic.Int32
	done    chan struct{} // closed at cleanup; releases stalled conns
}

func newFlakyProxy(t *testing.T, backend string, plans ...connPlan) *flakyProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{t: t, l: l, backend: backend, plans: plans, done: make(chan struct{})}
	t.Cleanup(func() {
		close(p.done)
		_ = l.Close()
	})
	go p.acceptLoop()
	return p
}

func (p *flakyProxy) Addr() string { return p.l.Addr().String() }

func (p *flakyProxy) acceptLoop() {
	for i := 0; ; i++ {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		p.accepts.Add(1)
		plan := p.plans[len(p.plans)-1]
		if i < len(p.plans) {
			plan = p.plans[i]
		}
		go p.serve(client, plan)
	}
}

func (p *flakyProxy) serve(client net.Conn, plan connPlan) {
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		_ = client.Close()
		return
	}
	defer func() {
		_ = backend.Close()
		_ = client.Close()
	}()
	// The orchestrator→worker direction always flows; an orchestrator
	// half-close (end of tasks) propagates as a backend half-close so the
	// worker sees EOF and answers with its stats frame.
	go func() {
		_, cerr := io.Copy(backend, client)
		if cerr == nil {
			if tc, ok := backend.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
		} else {
			_ = backend.Close()
		}
	}()
	br := bufio.NewReader(backend)
	for n := 0; plan.action == faultForwardAll || n < plan.lines; n++ {
		line, rerr := br.ReadBytes('\n')
		if len(line) > 0 {
			if plan.delay > 0 {
				time.Sleep(plan.delay)
			}
			if _, werr := client.Write(line); werr != nil {
				return
			}
		}
		if rerr != nil {
			return // backend ended; the deferred closes mirror it
		}
	}
	// Leak the planned mid-frame prefix; with extra == 0 still wait for
	// the next frame's first byte so the cut lands mid-task.
	if plan.extra > 0 {
		buf := make([]byte, plan.extra)
		if n, _ := io.ReadFull(br, buf); n > 0 {
			if _, werr := client.Write(buf[:n]); werr != nil {
				return
			}
		}
	} else if _, perr := br.Peek(1); perr != nil {
		return
	}
	switch plan.action {
	case faultStall:
		<-p.done
	case faultReset:
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
	case faultClose:
		// The deferred clean close is the fault.
	}
}

// faultBatch runs exps through a proxy built over a fresh in-process worker
// with the given per-connection plans.
func faultBatch(t *testing.T, names []string, retry bool, readTimeout time.Duration, plans ...connPlan) ([]*Result, error, *flakyProxy) {
	t.Helper()
	proxy := newFlakyProxy(t, startInprocWorker(t), plans...)
	results, err := RunBatch(context.Background(), lookupAll(t, names), BatchOptions{
		Remote:            []string{proxy.Addr()},
		RemoteReadTimeout: readTimeout,
		WorkerRetry:       retry,
		Config:            RunConfig{Preset: PresetQuick},
	})
	return results, err, proxy
}

// TestFaultStalledHandshake: a peer that accepts the connection but never
// produces a hello frame is aborted by the handshake watchdog with a
// labeled permanent error — and WorkerRetry must not buy it a second dial.
func TestFaultStalledHandshake(t *testing.T) {
	saved := handshakeTimeout
	handshakeTimeout = 300 * time.Millisecond
	defer func() { handshakeTimeout = saved }()

	started := time.Now()
	_, err, proxy := faultBatch(t, []string{"test-proc-noop"}, true, 0,
		connPlan{lines: 0, action: faultStall})
	if err == nil || !strings.Contains(err.Error(), "no hello frame within") {
		t.Fatalf("err = %v, want the handshake-watchdog label", err)
	}
	if !isPermanent(err) {
		t.Fatalf("stalled handshake lost its permanent marker: %v", err)
	}
	if n := proxy.accepts.Load(); n != 1 {
		t.Fatalf("stalled peer was dialed %d times, want exactly 1", n)
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("stalled handshake was not bounded")
	}
}

// TestFaultStallAfterHello: a worker that greets and then goes silent
// mid-task is bounded by the opt-in read deadline and fails labeled with
// the in-flight task instead of hanging the batch.
func TestFaultStallAfterHello(t *testing.T) {
	started := time.Now()
	_, err, _ := faultBatch(t, []string{"test-proc-noop"}, false, 300*time.Millisecond,
		connPlan{lines: 1, action: faultStall})
	if err == nil || !strings.Contains(err.Error(), "reading frames during task") {
		t.Fatalf("err = %v, want a read failure labeled with the in-flight task", err)
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want the read-deadline timeout as the cause", err)
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("stall after hello was not bounded by the read deadline")
	}
}

// TestFaultWorkerKilledMidTask: the connection is reset before any result
// byte arrives — the shape of a worker machine dying mid-task. With
// WorkerRetry the interrupted group reruns on a fresh connection and the
// batch's canonical bytes still match the serial run exactly.
func TestFaultWorkerKilledMidTask(t *testing.T) {
	serial, err := RunBatch(context.Background(), lookupAll(t, []string{"test-proc-noop"}),
		BatchOptions{Jobs: 1, Config: RunConfig{Preset: PresetQuick}})
	if err != nil {
		t.Fatal(err)
	}
	results, err, proxy := faultBatch(t, []string{"test-proc-noop"}, true, 0,
		connPlan{lines: 1, action: faultReset},
		connPlan{action: faultForwardAll})
	if err != nil {
		t.Fatalf("retry did not recover the reset connection: %v", err)
	}
	if want, got := canonicalJSON(t, serial), canonicalJSON(t, results); !bytes.Equal(want, got) {
		t.Fatalf("recovered batch diverged from serial:\n%s\nvs\n%s", want, got)
	}
	if n := proxy.accepts.Load(); n != 2 {
		t.Fatalf("proxy saw %d connections, want 2 (original + retry)", n)
	}
}

// TestFaultResetDuringResult: the reset lands mid-frame — ten bytes of the
// first result leak through before the RST. The half-received frame is
// discarded with the dropped connection and the retry rerun still produces
// serial-identical bytes.
func TestFaultResetDuringResult(t *testing.T) {
	serial, err := RunBatch(context.Background(), lookupAll(t, []string{"test-proc-noop"}),
		BatchOptions{Jobs: 1, Config: RunConfig{Preset: PresetQuick}})
	if err != nil {
		t.Fatal(err)
	}
	results, err, proxy := faultBatch(t, []string{"test-proc-noop"}, true, 0,
		connPlan{lines: 1, extra: 10, action: faultReset},
		connPlan{action: faultForwardAll})
	if err != nil {
		t.Fatalf("retry did not recover the mid-frame reset: %v", err)
	}
	if want, got := canonicalJSON(t, serial), canonicalJSON(t, results); !bytes.Equal(want, got) {
		t.Fatalf("recovered batch diverged from serial:\n%s\nvs\n%s", want, got)
	}
	if n := proxy.accepts.Load(); n != 2 {
		t.Fatalf("proxy saw %d connections, want 2 (original + retry)", n)
	}
}

// TestFaultResetWithoutRetryFailsLabeled: the same mid-task reset without
// WorkerRetry fails the batch promptly, labeled with the in-flight task.
func TestFaultResetWithoutRetryFailsLabeled(t *testing.T) {
	started := time.Now()
	_, err, _ := faultBatch(t, []string{"test-proc-noop"}, false, 0,
		connPlan{lines: 1, action: faultReset})
	if err == nil || !strings.Contains(err.Error(), "during task") {
		t.Fatalf("err = %v, want a labeled connection failure", err)
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("reset without retry was not prompt")
	}
}

// TestFaultTruncatedWrite: a half-written frame followed by an orderly
// close is a dropped connection, not a parseable frame — the torn prefix is
// discarded, the failure is labeled with the in-flight task, and with
// WorkerRetry the interrupted group recovers on a fresh connection.
func TestFaultTruncatedWrite(t *testing.T) {
	t.Run("labeled without retry", func(t *testing.T) {
		_, err, _ := faultBatch(t, []string{"test-proc-noop"}, false, 0,
			connPlan{lines: 1, extra: 5, action: faultClose})
		if err == nil || !strings.Contains(err.Error(), "closed connection during task") {
			t.Fatalf("err = %v, want the dropped connection labeled with the task", err)
		}
	})
	t.Run("recovered with retry", func(t *testing.T) {
		serial, err := RunBatch(context.Background(), lookupAll(t, []string{"test-proc-noop"}),
			BatchOptions{Jobs: 1, Config: RunConfig{Preset: PresetQuick}})
		if err != nil {
			t.Fatal(err)
		}
		results, err, proxy := faultBatch(t, []string{"test-proc-noop"}, true, 0,
			connPlan{lines: 1, extra: 5, action: faultClose},
			connPlan{action: faultForwardAll})
		if err != nil {
			t.Fatalf("retry did not recover the truncated write: %v", err)
		}
		if want, got := canonicalJSON(t, serial), canonicalJSON(t, results); !bytes.Equal(want, got) {
			t.Fatalf("recovered batch diverged from serial:\n%s\nvs\n%s", want, got)
		}
		if n := proxy.accepts.Load(); n != 2 {
			t.Fatalf("proxy saw %d connections, want 2 (original + retry)", n)
		}
	})
}

// TestFaultDelayedBytesStillByteIdentical: latency is not a fault — a
// connection that delivers every frame late still completes and the
// canonical bytes match the serial run.
func TestFaultDelayedBytesStillByteIdentical(t *testing.T) {
	serial, err := RunBatch(context.Background(), lookupAll(t, []string{"test-proc-noop"}),
		BatchOptions{Jobs: 1, Config: RunConfig{Preset: PresetQuick}})
	if err != nil {
		t.Fatal(err)
	}
	results, err, _ := faultBatch(t, []string{"test-proc-noop"}, false, 0,
		connPlan{action: faultForwardAll, delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("delayed connection failed the batch: %v", err)
	}
	if want, got := canonicalJSON(t, serial), canonicalJSON(t, results); !bytes.Equal(want, got) {
		t.Fatalf("delayed batch diverged from serial:\n%s\nvs\n%s", want, got)
	}
}
