// Package exp is the experiment registry and execution API.
//
// Every result-regenerating computation of the reproduction — the scaling
// sweeps behind Theorems 2-5 and 11, the density searches of Theorems 1 and
// 6, the landscape figures, the path-LCL classifier — is a registered
// Experiment: a named value with presets (quick/standard/stress sweeps) and
// a context-aware Run function returning a JSON-native Result. Callers
// discover experiments with List/Lookup instead of hard-wiring drivers, so
// adding a scenario is one Register call rather than edits across three
// files. docs/EXPERIMENTS.md maps each catalog entry to the paper claim it
// reproduces.
//
// Decomposable experiments additionally declare a Plan: one independently
// schedulable Task per sweep point (task.go), each carrying a seed derived
// via PointSeed — a pure function of (experiment, point), never of
// scheduling. RunBatch (runner.go) schedules tasks across a bounded worker
// pool and reassembles outputs positionally, so the aggregate is canonically
// byte-identical to a serial run under any -jobs level, simulator
// parallelism, or shard count. Results persist in canonical form
// (persist.go: Canonical/WriteResults/LoadResults) and Compare diffs two
// persisted sets as a regression check.
//
// The sweep drivers themselves also live here (drivers.go), declared as
// sweepSpec values whose point functions feed both the serial legacy API
// (Hierarchical35, Weighted25, ...) and the task planner.
package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/measure"
)

// Preset names every experiment understands.
const (
	PresetQuick    = "quick"
	PresetStandard = "standard"
	PresetStress   = "stress"
)

// RunConfig parameterizes one execution of an experiment.
type RunConfig struct {
	// Preset selects one of the experiment's sweeps (quick/standard/stress);
	// empty means standard.
	Preset string
	// Sizes overrides the preset's sweep values (the meaning — n, T, w, or γ
	// — is per experiment). Ignored by experiments without a sweep axis.
	Sizes []int
	// Seed overrides the experiment's default ID seed; 0 keeps the default.
	Seed uint64
	// Parallelism is the simulator worker count for simulator-backed
	// experiments (0 or 1 = sequential, < 0 = GOMAXPROCS). Analytic
	// experiments ignore it; results are identical at every level either
	// way.
	Parallelism int
	// Shards is the simulator shard count for simulator-backed experiments
	// (0 or 1 = unsharded, < 0 = GOMAXPROCS): the tree is partitioned into
	// contiguous node-range shards exchanging only boundary messages (see
	// sim.WithShards). Analytic experiments ignore it; canonical results are
	// byte-identical at every shard count.
	Shards int
	// ShardLayout selects the sharded backend's partitioning layout:
	// "range" (or empty) for the balanced contiguous split of the
	// construction numbering, "subtree" for the fat-preorder relabeling that
	// minimizes boundary edges (sim.WithShardLayout). Like Shards it is
	// execution mechanics: canonical results are byte-identical across
	// layouts, only the shard-traffic telemetry changes.
	ShardLayout string
}

// Experiment is one registered, runnable scenario.
type Experiment struct {
	// Name is the unique registry key (kebab-case).
	Name string
	// Description says what the experiment measures.
	Description string
	// Theory cites the theorem/lemma/figure of the paper it regenerates.
	Theory string
	// Presets maps preset names to sweep values. Nil for experiments without
	// a sweep axis (their Run ignores sizes).
	Presets map[string][]int
	// DefaultSeed is used when RunConfig.Seed is 0.
	DefaultSeed uint64
	// Run executes the experiment. Implementations honor ctx between sweep
	// points and return an error wrapping ctx.Err() on cancellation.
	Run func(ctx context.Context, cfg RunConfig) (*Result, error)
	// Plan, when non-nil, decomposes a run into independently schedulable
	// sweep-point tasks; RunBatch schedules tasks, not whole experiments.
	// Nil means the experiment is a single unit and RunBatch wraps Run.
	// Run and Plan must produce identical canonical results for the same
	// RunConfig, regardless of how the plan's tasks are scheduled.
	Plan func(cfg RunConfig) (*TaskPlan, error)
}

// SchemaVersion is the version of the Result JSON schema, stamped into
// every emitted result so persisted files are self-describing.
//
// History: version 1 (unstamped; files without a "schema" field) is the
// PR 1-3 format. Version 2 adds the "schema" and "shards" fields and makes
// the canonical (persisted) form strip the execution-mechanics fields
// (parallelism, shards) alongside elapsed_ms. See README "JSON output
// schema".
const SchemaVersion = 2

// Result is the JSON-native outcome of one experiment run.
type Result struct {
	Schema      int    `json:"schema,omitempty"`
	Name        string `json:"name"`
	Theory      string `json:"theory,omitempty"`
	Preset      string `json:"preset,omitempty"`
	Sizes       []int  `json:"sizes,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	// ShardLayout echoes RunConfig.ShardLayout: the partitioning layout the
	// sharded simulator ran under ("" = range). Execution mechanics like
	// Shards; the canonical form strips it.
	ShardLayout string `json:"shard_layout,omitempty"`
	// Steps is the total simulator machine-step work (sim.Result.Steps summed
	// over the run's simulated points); 0 for purely analytic experiments.
	// Like elapsed_ms it describes execution work, not computed results, and
	// the canonical (persisted) form strips it.
	Steps     int64           `json:"steps,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Tables    []measure.Table `json:"tables"`
	Fit       *Fit            `json:"fit,omitempty"`
	// ShardTraffic summarizes what the sharded simulator's partition cost
	// across the run's simulated points; nil for analytic or unsharded runs.
	// It is the layout objective made visible — the number cmd/experiments
	// -json and expd /statsz report so layout improvements are observable —
	// and, being execution mechanics, the canonical form strips it.
	ShardTraffic *ShardTraffic `json:"shard_traffic,omitempty"`
}

// ShardTraffic aggregates the sharded simulator's per-shard statistics over
// every simulated point of a run (sim.Result.Shards).
type ShardTraffic struct {
	// BoundaryEdges is the total number of edges crossing shard boundaries,
	// summed over simulated points, each edge counted once (the per-shard
	// statistics count both endpoints).
	BoundaryEdges int64 `json:"boundary_edges"`
	// MessagesCrossed is the total number of real messages that crossed a
	// shard boundary, summed over simulated points.
	MessagesCrossed int64 `json:"messages_crossed"`
}

// Fit is the fitted-versus-theory exponent comparison of a scaling sweep.
type Fit struct {
	Slope       float64 `json:"slope"`
	TheorySlope float64 `json:"theory_slope"`
	// TheoryUpper is the upper-bound exponent where the paper leaves a gap
	// (Theorems 4-5); equal to TheorySlope otherwise.
	TheoryUpper float64         `json:"theory_upper,omitempty"`
	Points      []measure.Point `json:"points,omitempty"`
}

// sizesFor resolves the sweep for cfg against the experiment's presets.
func (e *Experiment) sizesFor(cfg RunConfig) ([]int, string, error) {
	preset := cfg.Preset
	if preset == "" {
		preset = PresetStandard
	}
	if cfg.Sizes != nil {
		return cfg.Sizes, preset, nil
	}
	if e.Presets == nil {
		return nil, preset, nil
	}
	sizes, ok := e.Presets[preset]
	if !ok {
		return nil, preset, fmt.Errorf("exp: experiment %q has no preset %q", e.Name, preset)
	}
	return sizes, preset, nil
}

// seedFor resolves the ID seed for cfg.
func (e *Experiment) seedFor(cfg RunConfig) uint64 {
	if cfg.Seed != 0 {
		return cfg.Seed
	}
	return e.DefaultSeed
}

// newResult stamps the shared metadata of a run outcome.
func (e *Experiment) newResult(cfg RunConfig, preset string, sizes []int, started time.Time) *Result {
	return &Result{
		Schema:      SchemaVersion,
		Name:        e.Name,
		Theory:      e.Theory,
		Preset:      preset,
		Sizes:       sizes,
		Seed:        e.seedFor(cfg),
		Parallelism: cfg.Parallelism,
		Shards:      cfg.Shards,
		ShardLayout: cfg.ShardLayout,
		ElapsedMS:   float64(time.Since(started).Microseconds()) / 1000,
	}
}

// sweepResultOf stamps a finished SweepResult into the JSON-native Result.
func (e *Experiment) sweepResultOf(cfg RunConfig, preset string, sizes []int, started time.Time, sr *SweepResult) *Result {
	res := e.newResult(cfg, preset, sizes, started)
	res.Steps = sr.Steps
	if sr.Boundary > 0 || sr.Crossed > 0 {
		res.ShardTraffic = &ShardTraffic{BoundaryEdges: sr.Boundary, MessagesCrossed: sr.Crossed}
	}
	res.Tables = []measure.Table{sr.Table}
	res.Fit = &Fit{
		Slope:       sr.Slope,
		TheorySlope: sr.TheorySlope,
		TheoryUpper: sr.TheoryUpper,
		Points:      sr.Points,
	}
	return res
}

// sweepExperiment wraps a decomposable scaling sweep as a registered
// Experiment. The spec constructor resolves the sweep's analytic constants
// (it may fail on invalid parameters); both execution paths are built from
// the same spec — Run executes the points serially, Plan exposes them as
// independently schedulable tasks — so they produce identical canonical
// results.
func sweepExperiment(name, description, theory string, presets map[string][]int, seed uint64,
	spec func() (*sweepSpec, error)) *Experiment {
	e := &Experiment{
		Name:        name,
		Description: description,
		Theory:      theory,
		Presets:     presets,
		DefaultSeed: seed,
	}
	e.Run = func(ctx context.Context, cfg RunConfig) (*Result, error) {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		sizes, preset, err := e.sizesFor(cfg)
		if err != nil {
			return nil, err
		}
		s, err := spec()
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
		}
		started := time.Now()
		sr, err := s.runSerial(ctx, sizes, e.seedFor(cfg), engCfg(cfg))
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
		}
		return e.sweepResultOf(cfg, preset, sizes, started, sr), nil
	}
	e.Plan = func(cfg RunConfig) (*TaskPlan, error) {
		sizes, preset, err := e.sizesFor(cfg)
		if err != nil {
			return nil, err
		}
		s, err := spec()
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
		}
		base := e.seedFor(cfg)
		// The elapsed clock starts when the experiment's first task actually
		// runs (or, under a multi-process backend, when its first task is
		// dispatched — the plan's Started hook), not when the plan is
		// derived: RunBatch derives every plan up front, and queue wait is
		// not this experiment's runtime. (ElapsedMS then spans first task
		// start to assembly: the experiment's wall clock under whatever
		// concurrency it was scheduled with.)
		started := time.Now() // fallback for empty sweeps
		var startedOnce sync.Once
		markStarted := func() { startedOnce.Do(func() { started = time.Now() }) }
		tasks := make([]Task, len(sizes))
		for i, val := range sizes {
			val := val
			pseed := PointSeed(base, val)
			var key, affinity string
			if s.key != nil {
				k := s.key(val)
				key = k.String()
				affinity = k.Core().String()
			}
			tasks[i] = Task{
				Label:       fmt.Sprintf("%s %s=%d", e.Name, s.xName, val),
				Seed:        pseed,
				InstanceKey: key,
				Affinity:    affinity,
				Run: func(ctx context.Context) (any, error) {
					markStarted()
					if err := sweepStep(ctx); err != nil {
						return nil, err
					}
					p, err := s.point(ctx, val, pseed, engCfg(cfg))
					if err != nil {
						return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
					}
					return p, nil
				},
			}
		}
		return &TaskPlan{
			Tasks: tasks,
			Assemble: func(outs []any) (*Result, error) {
				points := make([]sweepPoint, len(outs))
				for i, o := range outs {
					p, ok := o.(sweepPoint)
					if !ok {
						return nil, fmt.Errorf("exp: %s: task %d output is %T, not a sweep point", e.Name, i, o)
					}
					points[i] = p
				}
				return e.sweepResultOf(cfg, preset, sizes, started, s.assemble(points)), nil
			},
			Encode:  encodeSweepPoint,
			Decode:  decodeSweepPoint,
			Started: markStarted,
		}, nil
	}
	return e
}

// tableExperiment wraps a driver producing tables only (no fitted exponent).
func tableExperiment(name, description, theory string, presets map[string][]int, seed uint64,
	driver func(ctx context.Context, sizes []int, seed uint64) ([]measure.Table, error)) *Experiment {
	e := &Experiment{
		Name:        name,
		Description: description,
		Theory:      theory,
		Presets:     presets,
		DefaultSeed: seed,
	}
	e.Run = func(ctx context.Context, cfg RunConfig) (*Result, error) {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		sizes, preset, err := e.sizesFor(cfg)
		if err != nil {
			return nil, err
		}
		started := time.Now()
		tables, err := driver(ctx, sizes, e.seedFor(cfg))
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
		}
		res := e.newResult(cfg, preset, sizes, started)
		res.Tables = tables
		return res, nil
	}
	return e
}
