package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/inst"
	"repro/internal/measure"
)

// The throwaway experiments the multi-process tests dispatch. They are
// registered under the "test-" prefix (skipped by the catalog tests and
// excluded from CatalogHash) in both the orchestrator and the re-execed
// worker — the worker is the same test binary, so init registration runs in
// both processes.
func init() {
	// test-proc-exit kills its own process mid-task: the worker vanishes
	// without a result frame, which must surface as a labeled crash.
	MustRegister(&Experiment{
		Name:        "test-proc-exit",
		Description: "kills its own process mid-task (multi-process failure-path tests)",
		Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			os.Exit(3)
			return nil, nil
		},
	})
	// test-proc-fail fails like a normal task: the worker survives and
	// reports an error frame.
	MustRegister(&Experiment{
		Name:        "test-proc-fail",
		Description: "returns a task error (multi-process failure-path tests)",
		Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			return nil, errors.New("boom")
		},
	})
	// test-proc-slow blocks until canceled: the sibling of every failure
	// test, proving cancellation reaches in-flight work promptly.
	MustRegister(&Experiment{
		Name:        "test-proc-slow",
		Description: "blocks 10s unless canceled (multi-process failure-path tests)",
		Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("slow: %w", ctx.Err())
			case <-time.After(10 * time.Second):
				return &Result{Name: "test-proc-slow"}, nil
			}
		},
	})
	// test-proc-flaky crashes its process on the first run and succeeds on
	// the second, keeping state in the file named by REPRO_EXP_FLAKY_FILE:
	// the retry test's one-crash worker.
	MustRegister(&Experiment{
		Name:        "test-proc-flaky",
		Description: "crashes once, then succeeds (multi-process retry test)",
		Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			if file := os.Getenv("REPRO_EXP_FLAKY_FILE"); file != "" {
				if _, err := os.Stat(file); err != nil {
					_ = os.WriteFile(file, []byte("crashed once"), 0o644)
					os.Exit(3)
				}
			}
			tb := measure.Table{Title: "flaky", Header: []string{"ok"}}
			tb.AddRow(1)
			return &Result{Name: "test-proc-flaky", Tables: []measure.Table{tb}}, nil
		},
	})
	// test-proc-noop decomposes into 16 trivial tasks: the pure
	// dispatch-overhead workload of BenchmarkProcRunner and the cheap
	// multi-task subject of protocol tests.
	MustRegister(noopExperiment())
}

const noopTasks = 16

func noopPlan(cfg RunConfig) (*TaskPlan, error) {
	tasks := make([]Task, noopTasks)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Label: fmt.Sprintf("test-proc-noop i=%d", i),
			Run:   func(ctx context.Context) (any, error) { return float64(i) * 1.5, nil },
		}
	}
	return &TaskPlan{
		Tasks: tasks,
		Assemble: func(outs []any) (*Result, error) {
			tb := measure.Table{Title: "noop", Header: []string{"i", "v"}}
			for i, o := range outs {
				v, ok := o.(float64)
				if !ok {
					return nil, fmt.Errorf("output %d is %T, not float64", i, o)
				}
				tb.AddRow(i, v)
			}
			return &Result{Name: "test-proc-noop", Tables: []measure.Table{tb}}, nil
		},
		Encode: func(out any) (json.RawMessage, error) { return json.Marshal(out) },
		Decode: func(raw json.RawMessage) (any, error) {
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}, nil
}

func noopExperiment() *Experiment {
	e := &Experiment{
		Name:        "test-proc-noop",
		Description: "16 trivial tasks (multi-process dispatch-overhead benchmark)",
	}
	e.Plan = noopPlan
	e.Run = func(ctx context.Context, cfg RunConfig) (*Result, error) {
		plan, err := noopPlan(cfg)
		if err != nil {
			return nil, err
		}
		outs := make([]any, len(plan.Tasks))
		for i, t := range plan.Tasks {
			if outs[i], err = t.Run(ctx); err != nil {
				return nil, err
			}
		}
		return plan.Assemble(outs)
	}
	return e
}

// procBatch runs exps on worker subprocesses in helper mode "ok".
func procBatch(ctx context.Context, exps []*Experiment, workers int, opts BatchOptions) ([]*Result, error) {
	opts.Workers = workers
	opts.WorkerCommand = workerCommand()
	opts.WorkerEnv = append(workerEnv("ok"), opts.WorkerEnv...)
	return RunBatch(ctx, exps, opts)
}

// TestProcBatchMatchesSerialByteForByte is the tentpole acceptance
// criterion: the multi-process batch produces a canonical aggregate
// byte-identical to the serial in-process run at every worker count.
func TestProcBatchMatchesSerialByteForByte(t *testing.T) {
	exps := lookupAll(t, batchNames)
	cfg := RunConfig{Preset: PresetQuick}
	serial, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 1, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalJSON(t, serial)
	for _, workers := range []int{1, 2, 4} {
		got, err := procBatch(context.Background(), exps, workers, BatchOptions{Config: cfg})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if raw := canonicalJSON(t, got); !bytes.Equal(want, raw) {
			t.Fatalf("workers=%d diverged from serial:\n%s\nvs\n%s", workers, want, raw)
		}
		for i, res := range got {
			if res.Name != batchNames[i] {
				t.Fatalf("workers=%d: position %d holds %q, want %q", workers, i, res.Name, batchNames[i])
			}
		}
	}
}

// TestProcSweepDecomposedAcrossWorkers: a single decomposable sweep crosses
// the process boundary point by point and still reassembles byte-identically
// — including the fitted slope, which is recomputed orchestrator-side from
// wire-decoded float64 points.
func TestProcSweepDecomposedAcrossWorkers(t *testing.T) {
	for _, name := range []string{"weighted25-d5", "twocoloring-gap", "test-proc-noop"} {
		exps := lookupAll(t, []string{name})
		cfg := RunConfig{Preset: PresetQuick}
		direct, err := exps[0].Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := procBatch(context.Background(), exps, 3, BatchOptions{Config: cfg})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := canonicalJSON(t, []*Result{direct})
		if raw := canonicalJSON(t, got); !bytes.Equal(want, raw) {
			t.Fatalf("%s: workers diverged from direct Run:\n%s\nvs\n%s", name, want, raw)
		}
	}
}

// procFailure runs a failing batch alongside the blocking sibling and
// asserts the failure is labeled, cancellation reaches in-flight work
// promptly, and no results leak out.
func procFailure(t *testing.T, exps []*Experiment, env []string, wantInError ...string) error {
	t.Helper()
	started := time.Now()
	results, err := RunBatch(context.Background(), exps, BatchOptions{
		Workers:       2,
		WorkerCommand: workerCommand(),
		WorkerEnv:     env,
		Config:        RunConfig{Preset: PresetQuick},
	})
	if err == nil {
		t.Fatal("failing batch returned nil error")
	}
	if results != nil {
		t.Fatalf("failing batch returned results: %v", results)
	}
	for _, want := range wantInError {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err = %q, want it to mention %q", err, want)
		}
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("batch waited for the blocking sibling instead of canceling it")
	}
	return err
}

// TestProcWorkerKilledMidTask: a worker process dying mid-task (here: the
// task kills it) surfaces as an error labeled with the in-flight task and
// cancels the rest of the batch instead of hanging — the multi-process
// mirror of TestMidSweepCancellationStopsRemainingTasks.
func TestProcWorkerKilledMidTask(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-slow", "test-proc-exit"})
	procFailure(t, exps, workerEnv("ok"), `task "test-proc-exit"`, "exit status 3")
}

// TestProcTaskErrorFailsLabeled: a task-level failure inside a worker comes
// back as an error frame and fails the batch with the task's own message.
func TestProcTaskErrorFailsLabeled(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-slow", "test-proc-fail"})
	procFailure(t, exps, workerEnv("ok"), `task "test-proc-fail"`, "boom")
}

// TestProcCatalogHashMismatch: a worker announcing a different catalog hash
// is refused at handshake, before any task is dispatched to it.
func TestProcCatalogHashMismatch(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-slow", "twocoloring-gap"})
	procFailure(t, exps, workerEnv("badcatalog"), "catalog hash mismatch")
}

// TestProcProtoVersionMismatch: same for the protocol version.
func TestProcProtoVersionMismatch(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-slow", "twocoloring-gap"})
	procFailure(t, exps, workerEnv("badproto"), "protocol version")
}

// TestProcBuildMismatch: a worker binary built from different code — same
// catalog, skewed build fingerprint — is refused at handshake; stale code
// must not contribute outputs.
func TestProcBuildMismatch(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-slow", "twocoloring-gap"})
	procFailure(t, exps, workerEnv("badbuild"), "build mismatch")
}

// TestProcMalformedFrame: a worker emitting a non-frame line mid-protocol
// fails the batch with a malformed-frame error naming the in-flight task.
func TestProcMalformedFrame(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-slow", "twocoloring-gap"})
	procFailure(t, exps, workerEnv("garbage"), "malformed frame")
}

// TestProcNonzeroExitBeforeHello: a worker dying before the handshake
// reports its exit status.
func TestProcNonzeroExitBeforeHello(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-slow", "twocoloring-gap"})
	procFailure(t, exps, workerEnv("exit3"), "no hello frame", "exit status 3")
}

// TestProcHandshakeTimeout: a command that never writes a hello frame (a
// misconfigured WorkerCommand, here /bin/cat blocking on stdin) fails the
// batch with a labeled error after the handshake deadline instead of
// hanging RunBatch forever.
func TestProcHandshakeTimeout(t *testing.T) {
	if _, err := os.Stat("/bin/cat"); err != nil {
		t.Skip("/bin/cat not available")
	}
	saved := handshakeTimeout
	handshakeTimeout = 200 * time.Millisecond
	defer func() { handshakeTimeout = saved }()
	exps := lookupAll(t, []string{"twocoloring-gap"})
	_, err := RunBatch(context.Background(), exps, BatchOptions{
		Workers:       1,
		WorkerCommand: []string{"/bin/cat"},
		WorkerRetry:   true, // a timed-out handshake is permanent: no second doomed spawn
	})
	if err == nil || !strings.Contains(err.Error(), "no hello frame within") {
		t.Fatalf("err = %v, want a handshake-timeout failure", err)
	}
}

// TestProcRetryRecoversCrashedWorker: with WorkerRetry a worker that
// crashes once is respawned and its remaining tasks (including the one in
// flight) complete on the fresh process; without it the crash fails the
// batch.
func TestProcRetryRecoversCrashedWorker(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "flaky")
	env := append(workerEnv("ok"), "REPRO_EXP_FLAKY_FILE="+marker)
	exps := lookupAll(t, []string{"test-proc-flaky"})

	results, err := RunBatch(context.Background(), exps, BatchOptions{
		Workers:       1,
		WorkerCommand: workerCommand(),
		WorkerEnv:     env,
		WorkerRetry:   true,
	})
	if err != nil {
		t.Fatalf("retry did not recover the crashed worker: %v", err)
	}
	if len(results) != 1 || results[0].Name != "test-proc-flaky" {
		t.Fatalf("results = %+v", results)
	}

	if err := os.Remove(marker); err != nil {
		t.Fatal(err)
	}
	_, err = RunBatch(context.Background(), exps, BatchOptions{
		Workers:       1,
		WorkerCommand: workerCommand(),
		WorkerEnv:     env,
	})
	if err == nil || !strings.Contains(err.Error(), `task "test-proc-flaky"`) {
		t.Fatalf("without retry, err = %v, want a labeled crash", err)
	}
}

// TestProcRetryNeverAppliesToHandshake: retry softens crashes only — a
// handshake refusal (here: a catalog mismatch) is deterministic, so
// WorkerRetry must not buy it a doomed second spawn.
func TestProcRetryNeverAppliesToHandshake(t *testing.T) {
	exps := lookupAll(t, []string{"twocoloring-gap"})
	started := time.Now()
	_, err := RunBatch(context.Background(), exps, BatchOptions{
		Workers:       1,
		WorkerCommand: workerCommand(),
		WorkerEnv:     workerEnv("badcatalog"),
		WorkerRetry:   true,
	})
	if err == nil || !strings.Contains(err.Error(), "catalog hash mismatch") {
		t.Fatalf("err = %v, want the handshake refusal", err)
	}
	if !isPermanent(err) { // errors.As traverses the batch's joined errors
		t.Fatalf("handshake refusal lost its permanent marker: %v", err)
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("retry loop spun on a deterministic handshake failure")
	}
}

// TestRunWorkerCanceledTaskFlagsFrame: a task failing because the worker's
// context was canceled reports canceled:true, so the orchestrator books it
// as fallout rather than a root-cause failure.
func TestRunWorkerCanceledTaskFlagsFrame(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tf, err := json.Marshal(TaskFrame{Type: FrameTask, ID: 4, Experiment: "survivors", Config: RunConfig{Preset: PresetQuick}, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// The worker loop itself returns a cancellation error after emitting
	// the task's error frame.
	if err := RunWorker(ctx, bytes.NewReader(append(tf, '\n')), &out); err == nil {
		t.Fatal("canceled worker returned nil")
	}
	lines := bytes.Split(bytes.TrimRight(out.Bytes(), "\n"), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("worker emitted %d frames, want hello+error", len(lines))
	}
	var ef ErrorFrame
	if err := json.Unmarshal(lines[1], &ef); err != nil || ef.Type != FrameError {
		t.Fatalf("second frame is not an error frame: %s", lines[1])
	}
	if !ef.Canceled {
		t.Fatalf("error frame for a canceled task is not flagged canceled: %+v", ef)
	}
}

// TestProcRefusesNonWireablePlans: a plan without Encode/Decode (synthetic
// closures) cannot cross the process boundary; the batch fails up front
// with a pointed error instead of dispatching half a batch.
func TestProcRefusesNonWireablePlans(t *testing.T) {
	e := &Experiment{Name: "test-proc-closure"}
	e.Run = func(ctx context.Context, cfg RunConfig) (*Result, error) { return nil, errors.New("unused") }
	e.Plan = func(cfg RunConfig) (*TaskPlan, error) {
		return &TaskPlan{
			Tasks:    []Task{{Label: "closure", Run: func(ctx context.Context) (any, error) { return 1, nil }}},
			Assemble: func(outs []any) (*Result, error) { return &Result{Name: "test-proc-closure"}, nil },
		}, nil
	}
	_, err := procBatch(context.Background(), []*Experiment{e}, 2, BatchOptions{})
	if err == nil || !strings.Contains(err.Error(), "not wire-encodable") {
		t.Fatalf("err = %v, want a wire-encodability refusal", err)
	}
}

// TestAffinityGroupsDeterministicAndGrouped: grouping is a pure function of
// the canonical task order — every unit of one affinity key lands in one
// group, groups are ordered by first appearance, and units keep canonical
// order inside their group.
func TestAffinityGroupsDeterministicAndGrouped(t *testing.T) {
	mkPlan := func(affinities ...string) *TaskPlan {
		tasks := make([]Task, len(affinities))
		for i, a := range affinities {
			tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Affinity: a}
		}
		return &TaskPlan{Tasks: tasks}
	}
	plans := []*TaskPlan{
		mkPlan("core-a", "core-b", "core-a"),
		mkPlan("core-b", "core-c", ""),
	}
	var units []batchUnit
	for i, p := range plans {
		for j := range p.Tasks {
			units = append(units, batchUnit{exp: i, task: j, id: len(units)})
		}
	}
	first := affinityGroups(units, plans)
	second := affinityGroups(units, plans)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("grouping is not deterministic:\n%v\nvs\n%v", first, second)
	}
	// core-a, core-b, core-c, and the affinity-less singleton: four groups.
	if len(first) != 4 {
		t.Fatalf("%d groups, want 4: %v", len(first), first)
	}
	groupOf := map[string]int{}
	grouped := 0
	lastID := -1
	for g, group := range first {
		if len(group) == 0 {
			t.Fatalf("group %d is empty: %v", g, first)
		}
		prevInGroup := -1
		for _, u := range group {
			grouped++
			key := affinityKey(u, plans)
			if prev, seen := groupOf[key]; seen && prev != g {
				t.Fatalf("affinity key %q split across groups %d and %d", key, prev, g)
			}
			groupOf[key] = g
			if u.id <= prevInGroup {
				t.Fatalf("group %d out of canonical order: %v", g, group)
			}
			prevInGroup = u.id
		}
		if group[0].id <= lastID {
			t.Fatalf("groups not ordered by first appearance: %v", first)
		}
		lastID = group[0].id
	}
	if grouped != len(units) {
		t.Fatalf("%d of %d units grouped", grouped, len(units))
	}
}

// TestAffinitylessDuplicatesStaySingletons: duplicating a single-task
// experiment in one batch must not merge its copies into one group (which
// would serialize them onto one worker) — affinity-less tasks are singleton
// groups even when their labels repeat.
func TestAffinitylessDuplicatesStaySingletons(t *testing.T) {
	plan := &TaskPlan{Tasks: []Task{{Label: "same-label"}}}
	plans := []*TaskPlan{plan, plan, plan, plan}
	var units []batchUnit
	for i := range plans {
		units = append(units, batchUnit{exp: i, task: 0, id: i})
	}
	groups := affinityGroups(units, plans)
	if len(groups) != 4 {
		t.Fatalf("%d groups for 4 identical-label units, want 4 singletons: %v", len(groups), groups)
	}
	for g, group := range groups {
		if len(group) != 1 {
			t.Fatalf("group %d holds %d units, want 1: %v", g, len(group), groups)
		}
	}
}

// TestGroupPoolClaimRequeueDrain pins the pool mechanics the slots rely on:
// claims come out in order, a requeued suffix returns to the front, the
// one-retry latch refuses a second requeue, and the pool drains only when
// the queue is empty with nothing outstanding.
func TestGroupPoolClaimRequeueDrain(t *testing.T) {
	ctx := context.Background()
	groups := [][]batchUnit{
		{{id: 0}, {id: 1}, {id: 2}},
		{{id: 3}},
	}
	pool := newGroupPool(groups)

	a := pool.claim(ctx)
	if a == nil || a.units[0].id != 0 {
		t.Fatalf("first claim = %+v, want group starting at id 0", a)
	}
	// Drop the session after one delivery: the suffix goes back to the
	// front of the queue, ahead of the untouched second group.
	if !pool.requeue(a, a.units[1:]) {
		t.Fatal("first requeue refused")
	}
	re := pool.claim(ctx)
	if re != a || len(re.units) != 2 || re.units[0].id != 1 {
		t.Fatalf("requeued claim = %+v, want the suffix {1,2} at the front", re)
	}
	// The group already used its one retry: a second drop is refused.
	if pool.requeue(re, re.units[1:]) {
		t.Fatal("second requeue of the same group accepted")
	}

	b := pool.claim(ctx)
	if b == nil || b.units[0].id != 3 {
		t.Fatalf("claim after refused requeue = %+v, want group {3}", b)
	}
	// The queue is empty but b is outstanding: not drained, and an idle
	// claimer must block (b may yet be requeued and need a runner), waking
	// only when the pool truly drains.
	select {
	case <-pool.drained:
		t.Fatal("pool drained while an entry was outstanding")
	default:
	}
	claimed := make(chan *groupEntry, 1)
	go func() { claimed <- pool.claim(ctx) }()
	select {
	case e := <-claimed:
		t.Fatalf("claim returned %+v while an entry was outstanding", e)
	case <-time.After(50 * time.Millisecond):
	}
	pool.finish()
	select {
	case e := <-claimed:
		if e != nil {
			t.Fatalf("drained claim = %+v, want nil", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("claimer never woke on drain")
	}
	select {
	case <-pool.drained:
	default:
		t.Fatal("pool not marked drained")
	}
}

// TestProcAffinityGroupsShareWorker is the end-to-end affinity criterion:
// dispatching the same sweep twice in one batch routes both copies of each
// point to one worker, so the repeats hit that worker's process-local cache
// and build nothing — the multi-process mirror of
// TestWarmCompositeRepeatBuildsNothing, asserted via per-worker cache
// stats.
func TestProcAffinityGroupsShareWorker(t *testing.T) {
	e := lookupAll(t, []string{"weighted25-d5"})[0]
	points := len(e.Presets[PresetQuick])
	var (
		mu    sync.Mutex
		stats []WorkerStats
	)
	results, err := procBatch(context.Background(), []*Experiment{e, e}, 2, BatchOptions{
		Config: RunConfig{Preset: PresetQuick},
		OnWorkerStats: func(ws WorkerStats) {
			mu.Lock()
			stats = append(stats, ws)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if len(stats) != 2 {
		t.Fatalf("stats from %d workers, want 2", len(stats))
	}
	var builds, hits, tasks uint64
	for _, ws := range stats {
		ks := ws.Cache.Kinds[inst.KindWeighted]
		builds += ks.Builds
		hits += ks.Hits
		tasks += uint64(ws.Tasks)
	}
	if tasks != uint64(2*points) {
		t.Fatalf("workers ran %d tasks, want %d", tasks, 2*points)
	}
	// Each of the `points` distinct composites is built exactly once across
	// ALL workers — the repeat of every point landed on the process that
	// already built it and hit its cache instead.
	if builds != uint64(points) {
		t.Fatalf("workers built %d weighted composites, want %d (affinity routing failed; stats %+v)",
			builds, points, stats)
	}
	if hits < uint64(points) {
		t.Fatalf("workers recorded %d weighted hits, want >= %d", hits, points)
	}
}

// BenchmarkProcRunner pins the multi-process dispatch overhead: spawning
// workers plus one protocol round-trip per trivial task (the noop
// experiment's 16 tasks do no work, so elapsed time is pure
// spawn+handshake+framing cost).
func BenchmarkProcRunner(b *testing.B) {
	e, ok := Lookup("test-proc-noop")
	if !ok {
		b.Fatal("test-proc-noop not registered")
	}
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := procBatch(context.Background(), []*Experiment{e}, workers, BatchOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 1 || len(results[0].Tables) != 1 {
					b.Fatal("missing noop result")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*noopTasks), "ns/task")
		})
	}
}
