package exp

import (
	"context"
	"encoding/json"
	"testing"
)

// TestResultJSONSchema pins the documented JSON field names of the result
// schema (README "JSON output schema").
func TestResultJSONSchema(t *testing.T) {
	e, ok := Lookup("twocoloring-gap")
	if !ok {
		t.Fatal("twocoloring-gap not registered")
	}
	res, err := e.Run(context.Background(), RunConfig{Preset: PresetQuick, Parallelism: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != SchemaVersion {
		t.Fatalf("result schema = %d, want %d", res.Schema, SchemaVersion)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "name", "theory", "preset", "sizes", "seed",
		"parallelism", "shards", "elapsed_ms", "tables", "fit"} {
		if _, ok := m[key]; !ok {
			t.Errorf("result JSON missing key %q", key)
		}
	}
	tables, ok := m["tables"].([]any)
	if !ok || len(tables) == 0 {
		t.Fatal("tables not a non-empty array")
	}
	tb := tables[0].(map[string]any)
	for _, key := range []string{"title", "header", "rows"} {
		if _, ok := tb[key]; !ok {
			t.Errorf("table JSON missing key %q", key)
		}
	}
	fit, ok := m["fit"].(map[string]any)
	if !ok {
		t.Fatal("fit not an object")
	}
	for _, key := range []string{"slope", "theory_slope", "points"} {
		if _, ok := fit[key]; !ok {
			t.Errorf("fit JSON missing key %q", key)
		}
	}
	// The decoded result must round-trip.
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != res.Name || len(back.Tables) != len(res.Tables) {
		t.Fatal("JSON round-trip lost data")
	}
}
