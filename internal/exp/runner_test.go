package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// batchNames is a cheap, diverse slice of the catalog for batch tests: two
// sweeps (one simulator-backed), two analytic tables, and the figures.
var batchNames = []string{
	"landscape-figures", "twocoloring-gap", "survivors",
	"density-poly", "pathlcl-classify",
}

func lookupAll(t *testing.T, names []string) []*Experiment {
	t.Helper()
	out := make([]*Experiment, len(names))
	for i, name := range names {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("%q not registered", name)
		}
		out[i] = e
	}
	return out
}

// canonicalJSON marshals results with volatile fields stripped, for
// byte-level comparison across runs.
func canonicalJSON(t *testing.T, results []*Result) []byte {
	t.Helper()
	canon := make([]*Result, len(results))
	for i, r := range results {
		canon[i] = Canonical(r)
	}
	raw, err := json.MarshalIndent(canon, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestBatchMatchesSerialByteForByte is the tentpole acceptance criterion:
// the concurrent batch produces byte-identical canonical aggregate output
// to the serial run, ordered by input position regardless of completion
// order.
func TestBatchMatchesSerialByteForByte(t *testing.T) {
	exps := lookupAll(t, batchNames)
	cfg := RunConfig{Preset: PresetQuick}
	serial, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 1, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 4, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonicalJSON(t, serial), canonicalJSON(t, batch)
	if !bytes.Equal(a, b) {
		t.Fatalf("batch output differs from serial:\n%s\nvs\n%s", a, b)
	}
	for i, res := range batch {
		if res.Name != batchNames[i] {
			t.Fatalf("position %d holds %q, want %q (order must follow input)", i, res.Name, batchNames[i])
		}
	}
}

// TestBatchStreamsNDJSON: the stream receives one valid JSON object per
// finished experiment, regardless of completion order.
func TestBatchStreamsNDJSON(t *testing.T) {
	exps := lookupAll(t, batchNames)
	var buf bytes.Buffer
	results, err := RunBatch(context.Background(), exps, BatchOptions{
		Jobs:   3,
		Config: RunConfig{Preset: PresetQuick},
		Stream: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(exps) {
		t.Fatalf("streamed %d lines, want %d", len(lines), len(exps))
	}
	seen := map[string]bool{}
	for _, line := range lines {
		var res Result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("stream line is not a result object: %v\n%s", err, line)
		}
		if len(res.Tables) == 0 {
			t.Fatalf("streamed result %q has no tables", res.Name)
		}
		seen[res.Name] = true
	}
	for i, res := range results {
		if !seen[res.Name] {
			t.Fatalf("aggregate result %d (%q) never streamed", i, res.Name)
		}
	}
}

// TestBatchFirstFailureCancelsRest: one failing experiment fails the batch
// with its error, and in-flight work observes cancellation.
func TestBatchFirstFailureCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var sawCancel atomic.Bool
	slowStarted := make(chan struct{})
	exps := []*Experiment{
		{Name: "test-batch-fail", Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			// Fail only once the sibling is in flight, so the test observes
			// mid-run cancellation rather than a never-started experiment.
			<-slowStarted
			return nil, boom
		}},
		{Name: "test-batch-slow", Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			close(slowStarted)
			select {
			case <-ctx.Done():
				sawCancel.Store(true)
				return nil, fmt.Errorf("slow: %w", ctx.Err())
			case <-time.After(10 * time.Second):
				return &Result{Name: "test-batch-slow", Tables: nil}, nil
			}
		}},
	}
	started := time.Now()
	_, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the experiment's own failure", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation fallout drowned the real failure: %v", err)
	}
	if !sawCancel.Load() {
		t.Fatal("sibling experiment never observed cancellation")
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("batch waited for the slow experiment instead of canceling it")
	}
}

// TestBatchHonorsParentCancellation: an already-canceled parent context
// fails the whole batch with context.Canceled.
func TestBatchHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exps := lookupAll(t, []string{"twocoloring-gap", "survivors"})
	if _, err := RunBatch(ctx, exps, BatchOptions{Jobs: 2, Config: RunConfig{Preset: PresetQuick}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestBatchRejectsNilExperiments: nil entries are a caller bug reported up
// front, not a mid-batch panic.
func TestBatchRejectsNilExperiments(t *testing.T) {
	if _, err := RunBatch(context.Background(), []*Experiment{nil}, BatchOptions{}); err == nil {
		t.Fatal("nil experiment accepted")
	}
}

// TestWarmCacheRepeatBuildsNothing is the instance-cache acceptance
// criterion: a warm repeat of a quick preset performs zero graph.Build*
// calls, asserted via the provider counters.
func TestWarmCacheRepeatBuildsNothing(t *testing.T) {
	exps := lookupAll(t, []string{"twocoloring-gap", "survivors", "hierarchical35-k2", "copyfraction-d5"})
	cfg := RunConfig{Preset: PresetQuick}
	if _, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 2, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	warm := InstanceCache().Stats()
	if _, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 2, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	after := InstanceCache().Stats()
	if after.Builds != warm.Builds {
		t.Fatalf("warm repeat built %d instances, want 0 (stats %+v -> %+v)",
			after.Builds-warm.Builds, warm, after)
	}
	if after.Hits <= warm.Hits {
		t.Fatal("warm repeat recorded no cache hits")
	}
}
