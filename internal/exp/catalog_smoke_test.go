package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// catalogExperiments returns the registered catalog, excluding the
// throwaway "test-*" experiments other tests in this package register and
// the "example-*" ones registered by the godoc examples.
func catalogExperiments() []*Experiment {
	var out []*Experiment
	for _, e := range List() {
		if strings.HasPrefix(e.Name, "test-") || strings.HasPrefix(e.Name, "example-") {
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestCatalogQuickSmoke runs every registered experiment at its quick
// preset (concurrently, so -race also exercises the shared instance cache
// and registry) and asserts each produces non-empty tables.
func TestCatalogQuickSmoke(t *testing.T) {
	for _, e := range catalogExperiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(context.Background(), RunConfig{Preset: PresetQuick})
			if err != nil {
				t.Fatal(err)
			}
			if res.Name != e.Name {
				t.Fatalf("result name %q", res.Name)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for i, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %d (%q) is empty", i, tb.Title)
				}
			}
		})
	}
}

// TestCatalogPromptCancellation: every registered experiment fails fast
// with a wrapped context.Canceled when handed an already-canceled context —
// no work, no partial tables.
func TestCatalogPromptCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range catalogExperiments() {
		res, err := e.Run(ctx, RunConfig{Preset: PresetQuick})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want wrapped context.Canceled", e.Name, err)
		}
		if res != nil {
			t.Errorf("%s: returned a result despite cancellation", e.Name)
		}
	}
}
