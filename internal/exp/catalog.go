package exp

// The built-in catalog: every experiment of the per-experiment index in
// DESIGN.md, registered in the order cmd/experiments historically printed
// them. "standard" matches the old default run exactly; "quick" is a small
// smoke sweep (the old -quick values where that flag shrank the sweep, and
// a genuinely smaller sweep for hierarchical35-k3 and survivors, which the
// old flag left at full size); "stress" extends one or two doublings past
// standard.

import (
	"context"

	"repro/internal/measure"
)

// Fixed, sweep-free parameter sets of the density searches (the sweep axis
// of those experiments is an interval list, not a size list).
var (
	densityPolyIntervals = [][2]float64{
		{0.05, 0.1}, {0.1, 0.2}, {0.2, 0.3}, {0.3, 0.4}, {0.4, 0.5},
	}
	densityLogStarIntervals = [][2]float64{{0.2, 0.4}, {0.4, 0.6}, {0.6, 0.8}}
	densityLogStarEps       = 0.05
)

// survivorLengths is the fixed k=2 lower-bound graph of the E-GEN sweep;
// the preset axis is the γ list.
var survivorLengths = []int{60, 90}

func init() {
	MustRegister(tableExperiment(
		"landscape-figures",
		"Figures 1 and 2: the node-averaged complexity landscape before and after the paper.",
		"Figures 1-2",
		nil, 0,
		func(_ context.Context, _ []int, _ uint64) ([]measure.Table, error) {
			f1, f2 := LandscapeFigures()
			return []measure.Table{f1, f2}, nil
		}))

	MustRegister(sweepExperiment(
		"hierarchical35-k2",
		"Generic algorithm for 2-hierarchical 3½-coloring on the Definition-18 lower-bound graph; node-avg ~ Θ(T).",
		"Theorem 11 (E-T11)",
		map[string][]int{
			PresetQuick:    {8, 16, 32},
			PresetStandard: {12, 24, 48, 96, 144},
			PresetStress:   {12, 24, 48, 96, 144, 216, 288},
		}, 1,
		func() (*sweepSpec, error) { return hierarchical35Spec(2), nil }))

	MustRegister(sweepExperiment(
		"hierarchical35-k3",
		"Generic algorithm for 3-hierarchical 3½-coloring; node-avg ~ Θ(T) with ℓ_i = T^{2^{i-1}}.",
		"Theorem 11 (E-T11)",
		map[string][]int{
			PresetQuick:    {2, 3, 4},
			PresetStandard: {2, 3, 4, 5, 6},
			PresetStress:   {2, 3, 4, 5, 6, 7},
		}, 2,
		func() (*sweepSpec, error) { return hierarchical35Spec(3), nil }))

	weighted25 := func(name, desc string, delta, d, k int, standard, stress []int) {
		MustRegister(sweepExperiment(
			name, desc, "Theorems 2-3 (E-T2T3)",
			map[string][]int{
				PresetQuick:    {4000, 16000, 64000},
				PresetStandard: standard,
				PresetStress:   stress,
			}, 3,
			func() (*sweepSpec, error) { return weighted25Spec(delta, d, k) }))
	}
	weighted25("weighted25-d5",
		"A_poly on the Definition-25 construction for Π^2.5_{Δ=5,d=2,k=2}; waiting node-avg ~ Θ(n^α1).",
		5, 2, 2,
		[]int{16000, 64000, 256000, 1024000, 4096000},
		[]int{16000, 64000, 256000, 1024000, 4096000, 16384000})
	weighted25("weighted25-d6",
		"A_poly on the Definition-25 construction for Π^2.5_{Δ=6,d=2,k=2}; waiting node-avg ~ Θ(n^α1).",
		6, 2, 2,
		[]int{16000, 64000, 256000, 1024000, 4096000},
		[]int{16000, 64000, 256000, 1024000, 4096000, 16384000})
	weighted25("weighted25-d5k3",
		"A_poly on the Definition-25 construction for Π^2.5_{Δ=5,d=2,k=3}; waiting node-avg ~ Θ(n^α1).",
		5, 2, 3,
		[]int{64000, 256000, 1024000, 4096000, 16384000},
		[]int{64000, 256000, 1024000, 4096000, 16384000, 65536000})

	weighted35 := func(name string, delta int) {
		MustRegister(sweepExperiment(
			name,
			"Section-8.2 algorithm for Π^3.5; fitted slope must land between α1(x) and α1(x').",
			"Theorems 4-5 (E-T4T5)",
			map[string][]int{
				PresetQuick:    {8, 16, 32},
				PresetStandard: {16, 32, 64, 128, 256},
				PresetStress:   {16, 32, 64, 128, 256, 512},
			}, 4,
			func() (*sweepSpec, error) { return weighted35Spec(delta, 3, 2, 3) }))
	}
	weighted35("weighted35-d7", 7)
	weighted35("weighted35-d9", 9)

	weightAug := func(name string, k int) {
		MustRegister(sweepExperiment(
			name,
			"Section-10 weight-augmented 2½-coloring; node-avg ~ Θ(n^{1/k}).",
			"Lemmas 68-69 (E-L68)",
			map[string][]int{
				PresetQuick:    {4000, 16000, 64000},
				PresetStandard: {16000, 64000, 256000, 1024000},
				PresetStress:   {16000, 64000, 256000, 1024000, 4096000},
			}, 5,
			func() (*sweepSpec, error) { return weightAugmentedSpec(k, 5), nil }))
	}
	weightAug("weightaug-k2", 2)
	weightAug("weightaug-k3", 3)

	MustRegister(sweepExperiment(
		"twocoloring-gap",
		"2-coloring a path through the message-passing simulator; node-avg ~ Θ(n), witnessing the ω(√n)–o(n) gap. Simulator-backed: honors -parallel.",
		"Corollary 60 (E-C60)",
		map[string][]int{
			PresetQuick:    {200, 400, 800},
			PresetStandard: {200, 400, 800, 1600},
			PresetStress:   {200, 400, 800, 1600, 3200, 6400},
		}, 6,
		func() (*sweepSpec, error) { return twoColoringGapSpec(), nil }))

	copyFraction := func(name string, delta, d int) {
		MustRegister(sweepExperiment(
			name,
			"Copy-set size of Algorithm 𝒜 on balanced Δ-regular weight trees; size ~ w^x.",
			"Lemma 40 (E-L40)",
			map[string][]int{
				PresetQuick:    {1000, 4000, 16000},
				PresetStandard: {4000, 16000, 64000, 256000, 1024000},
				PresetStress:   {4000, 16000, 64000, 256000, 1024000, 4096000},
			}, 0,
			func() (*sweepSpec, error) { return copyFractionSpec(delta, d) }))
	}
	copyFraction("copyfraction-d5", 5, 2)
	copyFraction("copyfraction-d7", 7, 3)

	MustRegister(tableExperiment(
		"density-poly",
		"Theorem-1 density search: (Δ,d,k) witnesses with achievable exponent inside each target interval.",
		"Theorem 1 (E-T1)",
		nil, 0,
		func(ctx context.Context, _ []int, _ uint64) ([]measure.Table, error) {
			tb, err := DensityPoly(ctx, densityPolyIntervals)
			if err != nil {
				return nil, err
			}
			return []measure.Table{tb}, nil
		}))

	MustRegister(tableExperiment(
		"density-logstar",
		"Theorem-6 density search in the (log* n)^c regime.",
		"Theorem 6 (E-T6)",
		nil, 0,
		func(ctx context.Context, _ []int, _ uint64) ([]measure.Table, error) {
			tb, err := DensityLogStar(ctx, densityLogStarIntervals, densityLogStarEps)
			if err != nil {
				return nil, err
			}
			return []measure.Table{tb}, nil
		}))

	MustRegister(tableExperiment(
		"landscape-density",
		"Density samples inside the dense bars of Figure 2: achievable exponents with (Δ,d,k) witnesses per regime. Sizes are [samples] or [samples, lo‰, hi‰] (exponent range in thousandths; default 100–450).",
		"Theorems 1 and 6 (E-DENSE)",
		map[string][]int{
			PresetQuick:    {3},
			PresetStandard: {6},
			PresetStress:   {10},
		}, 0,
		func(ctx context.Context, sizes []int, _ uint64) ([]measure.Table, error) {
			samples, lo, hi := 6, 0.1, 0.45
			if len(sizes) > 0 {
				samples = sizes[0]
			}
			if len(sizes) >= 3 {
				lo = float64(sizes[1]) / 1000
				hi = float64(sizes[2]) / 1000
			}
			return DensitySamples(ctx, samples, lo, hi)
		}))

	MustRegister(tableExperiment(
		"pathlcl-classify",
		"Section-11 decision procedure on the catalogue of path LCLs.",
		"Theorem 7 (E-T7)",
		nil, 0,
		func(_ context.Context, _ []int, _ uint64) ([]measure.Table, error) {
			tb, err := PathLCLTable()
			if err != nil {
				return nil, err
			}
			return []measure.Table{tb}, nil
		}))

	// Ensemble experiments: preset values are sample indices, one sampled
	// random tree per task (ensemble.go). Sample i's tree and IDs both
	// derive from PointSeed(seed, i), so the ensembles are deterministic and
	// parallelize across -jobs/-workers/-shards with byte-identical results.
	MustRegister(ensembleExperiment(
		"ensemble-gw-linial",
		"Linial (Δ+1)-coloring over a seeded Galton-Watson ensemble (n=3000, uniform {0..3} offspring); cross-ensemble round statistics and color distribution. Simulator-backed: honors -parallel/-shards.",
		"ensembles toward the landscape papers (E-ENS)",
		map[string][]int{
			PresetQuick:    {1, 2, 3, 4},
			PresetStandard: {1, 2, 3, 4, 5, 6, 7, 8},
			PresetStress:   {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		}, 7,
		func() *ensembleSpec { return ensembleGWSpec(3000, 3) }))

	MustRegister(ensembleExperiment(
		"ensemble-ladder-linial",
		"Linial (Δ+1)-coloring over a seeded ladder-tree ensemble (n=4000, max degree 3); cross-ensemble round statistics and color distribution. Simulator-backed: honors -parallel/-shards.",
		"ensembles toward the landscape papers (E-ENS)",
		map[string][]int{
			PresetQuick:    {1, 2, 3, 4},
			PresetStandard: {1, 2, 3, 4, 5, 6, 7, 8},
			PresetStress:   {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		}, 8,
		func() *ensembleSpec { return ensembleLadderSpec(4000) }))

	MustRegister(tableExperiment(
		"survivors",
		"Lemma-13 survivor counts after phase 1 of the generic algorithm, swept over γ.",
		"Lemma 13 (E-GEN)",
		map[string][]int{
			PresetQuick:    {5, 10, 20},
			PresetStandard: {5, 10, 20, 40, 60},
			PresetStress:   {5, 10, 20, 40, 60, 80},
		}, 1,
		func(ctx context.Context, gammas []int, seed uint64) ([]measure.Table, error) {
			tb, err := SurvivorCounts(ctx, survivorLengths, gammas, seed)
			if err != nil {
				return nil, err
			}
			return []measure.Table{tb}, nil
		}))
}
