package exp

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/measure"
)

func sampleResults(t *testing.T) []*Result {
	t.Helper()
	exps := lookupAll(t, []string{"twocoloring-gap", "survivors"})
	results, err := RunBatch(context.Background(), exps, BatchOptions{
		Config: RunConfig{Preset: PresetQuick},
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestWriteLoadRoundTripDir: the per-result directory form round-trips and
// the files are named by ResultKey.
func TestWriteLoadRoundTripDir(t *testing.T) {
	results := sampleResults(t)
	dir := filepath.Join(t.TempDir(), "out")
	if err := WriteResults(dir, results); err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		file := filepath.Join(dir, ResultKey(res)+".json")
		if _, err := os.Stat(file); err != nil {
			t.Fatalf("missing per-result file: %v", err)
		}
	}
	loaded, err := LoadResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(results) {
		t.Fatalf("loaded %d results, want %d", len(loaded), len(results))
	}
	if drifts := Compare(results, loaded, 1e-9); len(drifts) != 0 {
		t.Fatalf("round trip drifted: %+v", drifts)
	}
	for _, res := range loaded {
		if res.ElapsedMS != 0 {
			t.Fatal("persisted result kept volatile elapsed_ms")
		}
	}
}

// TestStepsReportedLiveStrippedCanonical: a simulator-backed experiment
// reports its machine-step work on the live result, and Canonical strips it
// (like elapsed_ms) so persisted bytes stay independent of the work counter.
func TestStepsReportedLiveStrippedCanonical(t *testing.T) {
	results := sampleResults(t)
	var sawSteps bool
	for _, res := range results {
		if res.Name == "twocoloring-gap" && res.Steps > 0 {
			sawSteps = true
		}
		if Canonical(res).Steps != 0 {
			t.Fatalf("%s: canonical form kept steps = %d", res.Name, Canonical(res).Steps)
		}
	}
	if !sawSteps {
		t.Fatal("simulator-backed twocoloring-gap reported no machine-step work")
	}
}

// TestWriteLoadRoundTripAggregateFile: a path ending in .json holds the
// whole canonical batch as one array.
func TestWriteLoadRoundTripAggregateFile(t *testing.T) {
	results := sampleResults(t)
	file := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteResults(file, results); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(raw)), "[") {
		t.Fatal("aggregate file is not a JSON array")
	}
	loaded, err := LoadResults(file)
	if err != nil {
		t.Fatal(err)
	}
	if drifts := Compare(results, loaded, 1e-9); len(drifts) != 0 {
		t.Fatalf("round trip drifted: %+v", drifts)
	}
}

// TestWriteDeterministic: writing the same canonical results twice yields
// byte-identical files (the diffability guarantee).
func TestWriteDeterministic(t *testing.T) {
	results := sampleResults(t)
	a := filepath.Join(t.TempDir(), "a.json")
	b := filepath.Join(t.TempDir(), "b.json")
	if err := WriteResults(a, results); err != nil {
		t.Fatal(err)
	}
	// Re-run: deterministic seeds make the content identical up to elapsed,
	// which Canonical strips.
	if err := WriteResults(b, sampleResults(t)); err != nil {
		t.Fatal(err)
	}
	ra, _ := os.ReadFile(a)
	rb, _ := os.ReadFile(b)
	if string(ra) != string(rb) {
		t.Fatal("two runs persisted different bytes")
	}
}

// TestCompareFlagsDrift: slope drift beyond tolerance, theory-slope
// changes, and one-sided runs are all reported; within-tolerance noise is
// not.
func TestCompareFlagsDrift(t *testing.T) {
	mk := func(name string, slope, theory float64) *Result {
		return &Result{
			Name: name, Preset: "quick", Seed: 1,
			Tables: []measure.Table{{Title: name}},
			Fit:    &Fit{Slope: slope, TheorySlope: theory},
		}
	}
	base := []*Result{mk("a", 1.00, 1), mk("b", 0.50, 0.5), mk("gone", 1, 1)}
	cur := []*Result{mk("a", 1.04, 1), mk("b", 0.70, 0.6), mk("fresh", 1, 1)}

	drifts := Compare(base, cur, 0.05)
	byKey := map[string][]string{}
	for _, d := range drifts {
		byKey[d.Key] = append(byKey[d.Key], d.Field)
	}
	if len(byKey["a__quick__seed1"]) != 0 {
		t.Fatalf("within-tolerance slope flagged: %+v", drifts)
	}
	bFields := strings.Join(byKey["b__quick__seed1"], ",")
	if !strings.Contains(bFields, "slope") || !strings.Contains(bFields, "theory_slope") {
		t.Fatalf("slope/theory drift not flagged for b: %+v", drifts)
	}
	if fields := byKey["gone__quick__seed1"]; len(fields) != 1 || fields[0] != "missing" {
		t.Fatalf("missing run not flagged: %+v", drifts)
	}
	if fields := byKey["fresh__quick__seed1"]; len(fields) != 1 || fields[0] != "extra" {
		t.Fatalf("extra run not flagged: %+v", drifts)
	}
}

// TestCompareTableShape: table-count changes and fit appearance changes are
// drifts even when no slope exists.
func TestCompareTableShape(t *testing.T) {
	base := []*Result{{Name: "t", Preset: "quick", Tables: []measure.Table{{}, {}}}}
	cur := []*Result{{Name: "t", Preset: "quick", Tables: []measure.Table{{}}}}
	drifts := Compare(base, cur, 0.05)
	if len(drifts) != 1 || drifts[0].Field != "tables" {
		t.Fatalf("table shape change not flagged: %+v", drifts)
	}
	cur[0].Fit = &Fit{Slope: 1}
	drifts = Compare(base, cur, 0.05)
	if len(drifts) == 0 {
		t.Fatal("fit appearance not flagged")
	}
}

// TestWriteDirDropsStaleFiles: rewriting a result directory removes files
// from earlier writes, so a reused -out dir never feeds phantom runs into
// Compare.
func TestWriteDirDropsStaleFiles(t *testing.T) {
	results := sampleResults(t)
	dir := filepath.Join(t.TempDir(), "out")
	if err := WriteResults(dir, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteResults(dir, results[:1]); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("stale files survived rewrite: loaded %d results, want 1", len(loaded))
	}
}

// TestCompareFitlessContent: fit-less results (analytic/discrete tables)
// must reproduce exactly — a changed cell is a drift even when the table
// shape is unchanged.
func TestCompareFitlessContent(t *testing.T) {
	mk := func(cell string) []*Result {
		return []*Result{{
			Name: "t", Preset: "quick",
			Tables: []measure.Table{{
				Title:  "analytic",
				Header: []string{"a", "b"},
				Rows:   [][]string{{"1", cell}},
			}},
		}}
	}
	if drifts := Compare(mk("x"), mk("x"), 0.05); len(drifts) != 0 {
		t.Fatalf("identical fit-less tables flagged: %+v", drifts)
	}
	drifts := Compare(mk("x"), mk("y"), 0.05)
	if len(drifts) != 1 || drifts[0].Field != "tables" {
		t.Fatalf("changed fit-less cell not flagged: %+v", drifts)
	}
}

// TestLoadResultsErrors: empty directories and malformed files are errors.
func TestLoadResultsErrors(t *testing.T) {
	if _, err := LoadResults(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResults(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
}
