package exp

// The worker side of the multi-process backend: RunWorker is the loop
// behind the `experiments worker` subcommand. It announces itself with a
// hello frame, executes task frames one at a time against the process-local
// registry — re-deriving each experiment's plan from the frame's RunConfig,
// so closures never cross the process boundary — and reports a final stats
// frame at clean shutdown. One worker process is strictly sequential; the
// orchestrator gets parallelism by running several workers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// workerPlanKey caches plan derivation per (experiment, config): a batch
// dispatches every task of one experiment under the same RunConfig, so the
// worker derives each plan once instead of once per task.
func workerPlanKey(experiment string, cfg RunConfig) string {
	return fmt.Sprintf("%s|%+v", experiment, cfg)
}

// RunWorker speaks the worker side of the NDJSON protocol (proto.go) over
// r/w until r reaches EOF: hello, then one result or error frame per task
// frame, then a final stats frame. Task execution honors ctx (the
// subcommand wires interrupt signals); a canceled ctx surfaces as error
// frames on in-flight tasks and an early return. A protocol-level problem —
// an unparsable or unknown frame — is returned as an error so the process
// exits nonzero, which the orchestrator reports as a worker failure.
//
// Task frames address work as (experiment, RunConfig, task index): the
// worker looks the experiment up in its own registry, derives plan(cfg),
// and runs the task at the given index. The handshake's catalog hash
// guarantees both processes derive identical plans, so the orchestrator's
// positional assembly receives exactly the outputs its own plan describes.
func RunWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(HelloFrame{
		Type:        FrameHello,
		Proto:       ProtoVersion,
		Catalog:     CatalogHash(),
		Build:       BuildID(),
		Experiments: len(List()),
	}); err != nil {
		return fmt.Errorf("exp: worker: hello: %w", err)
	}

	plans := make(map[string]*TaskPlan)
	tasks := 0
	sc := newFrameScanner(r)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		kind, err := frameType(line)
		if err != nil {
			return fmt.Errorf("exp: worker: %w", err)
		}
		if kind != FrameTask {
			return fmt.Errorf("exp: worker: unexpected %q frame (only task frames flow to workers)", kind)
		}
		var tf TaskFrame
		if err := json.Unmarshal(line, &tf); err != nil {
			return fmt.Errorf("exp: worker: malformed task frame: %w", err)
		}
		tasks++
		if err := runWorkerTask(ctx, enc, plans, &tf); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("exp: worker canceled: %w", ctx.Err())
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("exp: worker: reading frames: %w", err)
	}
	return enc.Encode(StatsFrame{
		Type:  FrameStats,
		Tasks: tasks,
		Cache: InstanceCache().Stats(),
	})
}

// runWorkerTask resolves and executes one task frame, emitting its result
// or error frame. Addressing failures (unknown experiment, unplannable
// config, index out of range, un-encodable output) are reported as error
// frames rather than terminating the worker: they fail the batch with a
// labeled error orchestrator-side, exactly like a failing task.
func runWorkerTask(ctx context.Context, enc *json.Encoder, plans map[string]*TaskPlan, tf *TaskFrame) error {
	fail := func(err error) error {
		return enc.Encode(ErrorFrame{
			Type:     FrameError,
			ID:       tf.ID,
			Error:    err.Error(),
			Canceled: errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded),
		})
	}
	e, ok := Lookup(tf.Experiment)
	if !ok {
		return fail(ErrUnknownExperiment(tf.Experiment))
	}
	key := workerPlanKey(tf.Experiment, tf.Config)
	plan, ok := plans[key]
	if !ok {
		var err error
		plan, err = e.plan(tf.Config)
		if err != nil {
			return fail(err)
		}
		plans[key] = plan
	}
	if tf.Index < 0 || tf.Index >= len(plan.Tasks) {
		return fail(fmt.Errorf("exp: %s: task index %d out of range (plan has %d tasks)",
			tf.Experiment, tf.Index, len(plan.Tasks)))
	}
	if plan.Encode == nil {
		return fail(fmt.Errorf("exp: %s: plan outputs are not wire-encodable", tf.Experiment))
	}
	started := time.Now()
	out, err := plan.Tasks[tf.Index].Run(ctx)
	if err != nil {
		return fail(err)
	}
	raw, err := plan.Encode(out)
	if err != nil {
		return fail(err)
	}
	return enc.Encode(ResultFrame{
		Type:      FrameResult,
		ID:        tf.ID,
		ElapsedMS: float64(time.Since(started).Microseconds()) / 1000,
		Output:    raw,
	})
}
