package exp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/measure"
)

func dummyExperiment(name string) *Experiment {
	return &Experiment{
		Name: name,
		Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			return &Result{Name: name}, nil
		},
	}
}

// TestRegisterLookupListRoundTrip: a registered experiment is found by
// Lookup and appears (in order) in List and Names.
func TestRegisterLookupListRoundTrip(t *testing.T) {
	const name = "test-roundtrip"
	if err := Register(dummyExperiment(name)); err != nil {
		t.Fatal(err)
	}
	e, ok := Lookup(name)
	if !ok || e.Name != name {
		t.Fatalf("Lookup(%q) = %v, %v", name, e, ok)
	}
	res, err := e.Run(context.Background(), RunConfig{})
	if err != nil || res.Name != name {
		t.Fatalf("Run = %v, %v", res, err)
	}
	names := Names()
	if len(names) == 0 || names[len(names)-1] != name {
		t.Fatalf("Names() does not end with %q: %v", name, names)
	}
	list := List()
	if len(list) != len(names) || list[len(list)-1].Name != name {
		t.Fatalf("List() inconsistent with Names()")
	}
}

// TestRegisterRejectsDuplicatesAndInvalid: duplicate names, empty names,
// nil experiments, and missing Run functions are all rejected.
func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	const name = "test-duplicate"
	if err := Register(dummyExperiment(name)); err != nil {
		t.Fatal(err)
	}
	if err := Register(dummyExperiment(name)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := Register(nil); err == nil {
		t.Fatal("nil experiment accepted")
	}
	if err := Register(dummyExperiment("")); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(&Experiment{Name: "test-no-run"}); err == nil {
		t.Fatal("experiment without Run accepted")
	}
}

// TestLookupMiss: unknown names miss, and the canonical error wraps
// ErrNotFound.
func TestLookupMiss(t *testing.T) {
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Fatal("Lookup hit for unregistered name")
	}
	if !errors.Is(ErrUnknownExperiment("no-such-experiment"), ErrNotFound) {
		t.Fatal("ErrUnknownExperiment does not wrap ErrNotFound")
	}
}

// TestCatalogCoversLegacyDrivers: every experiment previously hard-wired
// into cmd/experiments is reachable through the registry (acceptance
// criterion of the registry redesign).
func TestCatalogCoversLegacyDrivers(t *testing.T) {
	want := []string{
		"landscape-figures",
		"hierarchical35-k2", "hierarchical35-k3",
		"weighted25-d5", "weighted25-d6", "weighted25-d5k3",
		"weighted35-d7", "weighted35-d9",
		"weightaug-k2", "weightaug-k3",
		"twocoloring-gap",
		"copyfraction-d5", "copyfraction-d7",
		"density-poly", "density-logstar",
		"pathlcl-classify",
		"survivors",
	}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok {
			t.Errorf("catalog missing %q", name)
			continue
		}
		if e.Run == nil || e.Description == "" || e.Theory == "" {
			t.Errorf("%q incompletely registered: %+v", name, e)
		}
		if e.Presets != nil {
			for _, p := range []string{PresetQuick, PresetStandard, PresetStress} {
				if _, ok := e.Presets[p]; !ok {
					t.Errorf("%q missing preset %q", name, p)
				}
			}
		}
	}
}

// TestUnknownPresetRejected: a bad preset name is an error, not a silent
// fallback.
func TestUnknownPresetRejected(t *testing.T) {
	e, ok := Lookup("twocoloring-gap")
	if !ok {
		t.Fatal("twocoloring-gap not registered")
	}
	if _, err := e.Run(context.Background(), RunConfig{Preset: "enormous"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestRunQuickProducesTables runs one cheap sweep experiment and one
// table-only experiment end to end through the registry.
func TestRunQuickProducesTables(t *testing.T) {
	for _, name := range []string{"twocoloring-gap", "survivors", "landscape-figures"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("%q not registered", name)
		}
		res, err := e.Run(context.Background(), RunConfig{Preset: PresetQuick})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Fatalf("%s: empty tables", name)
		}
		if res.Name != name {
			t.Fatalf("%s: result name %q", name, res.Name)
		}
	}
}

// TestSizesOverrideWins: RunConfig.Sizes beats the preset sweep.
func TestSizesOverrideWins(t *testing.T) {
	e, _ := Lookup("twocoloring-gap")
	res, err := e.Run(context.Background(), RunConfig{Sizes: []int{100, 200}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 sweep rows + 2 fit annotation rows.
	if got := len(res.Tables[0].Rows); got != 4 {
		t.Fatalf("got %d rows, want 4", got)
	}
}

// TestSequentialParallelIdenticalResults: the acceptance criterion that
// sequential and parallel executions produce identical node-averaged results
// for identical seeds, checked through the registry API.
func TestSequentialParallelIdenticalResults(t *testing.T) {
	e, ok := Lookup("twocoloring-gap")
	if !ok {
		t.Fatal("twocoloring-gap not registered")
	}
	run := func(parallelism int) *Result {
		res, err := e.Run(context.Background(), RunConfig{
			Preset:      PresetQuick,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return res
	}
	seq := run(1)
	for _, p := range []int{4, -1} { // -1 = GOMAXPROCS
		par := run(p)
		if len(seq.Tables) != len(par.Tables) {
			t.Fatalf("table count differs at parallelism=%d", p)
		}
		for i := range seq.Tables {
			a, b := seq.Tables[i], par.Tables[i]
			if a.Format() != b.Format() {
				t.Fatalf("parallelism=%d table %d differs:\n%s\nvs\n%s",
					p, i, a.Format(), b.Format())
			}
		}
		if seq.Fit.Slope != par.Fit.Slope {
			t.Fatalf("parallelism=%d slope %v != %v", p, par.Fit.Slope, seq.Fit.Slope)
		}
	}
}

// TestRunCancellation: a canceled context aborts a sweep with an error
// wrapping context.Canceled.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"twocoloring-gap", "hierarchical35-k2", "survivors"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("%q not registered", name)
		}
		if _, err := e.Run(ctx, RunConfig{Preset: PresetQuick}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want wrapped context.Canceled", name, err)
		}
	}
}

// TestSweepResultFitAnnotations pins the fit rows added by finish.
func TestSweepResultFitAnnotations(t *testing.T) {
	sr := &SweepResult{TheorySlope: 0.5, TheoryUpper: 0.75}
	sr.Points = []measure.Point{{X: 10, Y: 10}, {X: 100, Y: 100}}
	sr.finish("title", "n")
	if sr.Slope < 0.99 || sr.Slope > 1.01 {
		t.Fatalf("slope %v, want 1", sr.Slope)
	}
	// 3 annotation rows: fitted, theory, theory upper (since upper differs).
	if len(sr.Table.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(sr.Table.Rows))
	}
}
