package exp

// The worker protocol: versioned NDJSON frames over a worker subprocess's
// stdin/stdout. The orchestrator (ProcRunner) addresses work as
// (experiment name, RunConfig, task index) and the worker re-derives the
// task via plan(cfg) on its own registry — closures never cross the wire,
// so a frame is pure data and the pipe transport can later be swapped for a
// socket without touching a single frame type. docs/DISTRIBUTED.md is the
// normative specification of this protocol; the frame structs below are its
// implementation.
//
// Frame flow:
//
//	worker → orchestrator   HelloFrame   (once, at startup: version + catalog hash)
//	orchestrator → worker   TaskFrame    (one per task, awaited one at a time)
//	worker → orchestrator   ResultFrame  (the task's wire-encoded output)
//	worker → orchestrator   ErrorFrame   (the task failed; orchestrator cancels the batch)
//	worker → orchestrator   StatsFrame   (once, at clean shutdown after stdin EOF)

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/inst"
	"repro/internal/measure"
)

// maxFrameBytes bounds one NDJSON frame line. Task frames are tiny; result
// frames carry a full wire-encoded output (the largest are whole-experiment
// Results, a few hundred KB of tables at stress presets).
const maxFrameBytes = 16 << 20

// newFrameScanner returns a line scanner sized for protocol frames. Unlike
// bufio.ScanLines it never yields a partial trailing line: a frame is only
// a frame once its newline arrived, so a stream cut mid-frame (a connection
// reset, a peer dying mid-write) discards the torn prefix and surfaces the
// stream's own ending — the read error, or plain EOF — instead of handing
// the driver half a frame to misparse as a protocol violation.
func newFrameScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxFrameBytes)
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line := data[:i]
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			return i + 1, line, nil
		}
		if atEOF {
			return len(data), nil, nil // discard the torn final line
		}
		return 0, nil, nil
	})
	return sc
}

// ProtoVersion is the version of the worker wire protocol. The worker
// announces its version in the hello frame and the orchestrator refuses to
// dispatch to a worker speaking a different one.
const ProtoVersion = 1

// The frame discriminators: every NDJSON line carries a "type" field naming
// one of these.
const (
	FrameHello  = "hello"
	FrameTask   = "task"
	FrameResult = "result"
	FrameError  = "error"
	FrameStats  = "stats"
)

// FrameTypes lists every frame discriminator the protocol emits, in
// protocol-flow order. The docs gate (TestDistributedDocCoversFrames)
// asserts docs/DISTRIBUTED.md documents each of them.
func FrameTypes() []string {
	return []string{FrameHello, FrameTask, FrameResult, FrameError, FrameStats}
}

// HelloFrame is the first line a worker writes: its protocol version and
// catalog hash. The orchestrator verifies both before dispatching — a
// mismatch means the worker binary plans different tasks than the
// orchestrator expects, and positional outputs would be silently wrong.
type HelloFrame struct {
	Type string `json:"type"` // "hello"
	// Proto is the worker's ProtoVersion.
	Proto int `json:"proto"`
	// Catalog is the worker's CatalogHash().
	Catalog string `json:"catalog"`
	// Build is the worker's BuildID(): the binary's module version and VCS
	// revision. The catalog hash catches *catalog* skew (renamed
	// experiments, changed presets or seeds); the build fingerprint
	// catches *code* skew — a worker built at a different commit whose
	// driver code changed under an unchanged catalog would otherwise pass
	// the handshake and contribute stale outputs.
	Build string `json:"build"`
	// Experiments is the worker's registered-experiment count (diagnostic;
	// the hashes are what gate dispatch).
	Experiments int `json:"experiments"`
}

// TaskFrame addresses one task: the experiment name, the run configuration,
// and the task's index in the plan the worker re-derives via plan(cfg).
// Shipping the address instead of the closure keeps the wire format pure
// data and guarantees the worker runs exactly the task the orchestrator's
// plan holds at that position (the catalog hash pins both sides to the same
// planner).
type TaskFrame struct {
	Type string `json:"type"` // "task"
	// ID is the orchestrator's identifier for the task (its position in the
	// batch's canonical task order); echoed back on the result/error frame.
	ID int `json:"id"`
	// Experiment is the registry name the worker looks up.
	Experiment string `json:"experiment"`
	// Config is the run configuration the worker derives the plan under.
	Config RunConfig `json:"config"`
	// Index is the task's position in the derived plan's Tasks.
	Index int `json:"index"`
}

// ResultFrame carries one finished task's output back: the plan's
// wire-encoded output (TaskPlan.Encode) plus the worker-side wall clock.
type ResultFrame struct {
	Type string `json:"type"` // "result"
	// ID echoes the task frame's ID.
	ID int `json:"id"`
	// ElapsedMS is the worker-side task wall clock (diagnostic; canonical
	// results never include it).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Output is the wire encoding of the task's output, decoded by the
	// orchestrator via the same plan's Decode.
	Output json.RawMessage `json:"output"`
}

// ErrorFrame reports a failed task (or an unaddressable task frame). The
// orchestrator surfaces the message as the task's labeled failure and
// cancels the rest of the batch, mirroring the in-process runner's
// first-failure semantics.
type ErrorFrame struct {
	Type string `json:"type"` // "error"
	// ID echoes the task frame's ID; the orchestrator rejects an error
	// frame whose ID is not the in-flight task's.
	ID int `json:"id"`
	// Error is the failure message.
	Error string `json:"error"`
	// Canceled reports that the task failed because the worker observed
	// cancellation (its error wraps context.Canceled/DeadlineExceeded)
	// rather than failing on its own. Error values cross the wire as
	// strings, so this flag is what lets the orchestrator keep booking
	// cancellation fallout apart from root-cause failures.
	Canceled bool `json:"canceled,omitempty"`
}

// StatsFrame is the worker's final line, written after stdin EOF at clean
// shutdown: how many tasks it ran and a snapshot of its instance-cache
// counters. Per-worker cache stats are what make affinity dispatch
// observable — tasks sharing an instance routed to one worker show up as
// that worker's cache hits.
type StatsFrame struct {
	Type string `json:"type"` // "stats"
	// Tasks is the number of tasks the worker executed (successes and
	// failures).
	Tasks int `json:"tasks"`
	// Cache is the worker process's instance-cache snapshot.
	Cache inst.Stats `json:"cache"`
}

// frameType peeks at a raw NDJSON line's discriminator.
func frameType(line []byte) (string, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return "", fmt.Errorf("malformed frame: %w", err)
	}
	if probe.Type == "" {
		return "", fmt.Errorf("malformed frame: missing \"type\"")
	}
	return probe.Type, nil
}

// CatalogHash fingerprints the registered experiment catalog: the names (in
// registration order), presets, default seeds, and decomposability of every
// experiment. Orchestrator and worker exchange it at handshake; a mismatch
// means the two processes would derive different plans for the same task
// address, so dispatch refuses to start. Throwaway registrations (names
// prefixed "test-" or "example-", the convention the catalog tests already
// skip) are excluded — they exist only in the process that registered them
// and are never dispatched.
func CatalogHash() string {
	h := sha256.New()
	for _, e := range List() {
		if strings.HasPrefix(e.Name, "test-") || strings.HasPrefix(e.Name, "example-") {
			continue
		}
		fmt.Fprintf(h, "%s|%d|%t|", e.Name, e.DefaultSeed, e.Plan != nil)
		names := make([]string, 0, len(e.Presets))
		for name := range e.Presets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "%s=%v;", name, e.Presets[name])
		}
		fmt.Fprint(h, "\n")
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}

// BuildID fingerprints the running binary for the handshake: the main
// module's version plus the VCS revision and dirty flag when the build was
// stamped with them (test binaries and unstamped builds fall back to the
// module version alone). Orchestrator and workers spawned from the same
// executable always match; a worker binary built at a different commit is
// refused even when its catalog hash happens to agree.
func BuildID() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unstamped"
	}
	id := bi.Main.Path + "@" + bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			id += "+" + s.Value
		case "vcs.modified":
			if s.Value == "true" {
				id += "+dirty"
			}
		}
	}
	return id
}

// wirePoint is the wire encoding of one completed sweep point. The row
// cells cross the wire pre-formatted by measure.FormatCell — the same
// rendering Table.AddRow applies — so the orchestrator-side assembly
// produces byte-identical tables, and X/Y are float64s whose JSON shortest
// representation round-trips exactly, so the fitted slope is bit-equal too.
type wirePoint struct {
	X   float64  `json:"x"`
	Y   float64  `json:"y"`
	Row []string `json:"row"`
	// Steps is the point's simulator machine-step work; it feeds the
	// result's steps counter (stripped from canonical output), never a
	// table cell, so it cannot perturb canonical bytes.
	Steps int64 `json:"steps,omitempty"`
	// Boundary and Crossed carry the point's sharded-run traffic counters
	// (boundary edges, cross-shard messages). Like Steps they feed the
	// result's diagnostic ShardTraffic block, which Canonical strips, so
	// they cannot perturb canonical bytes either.
	Boundary int64 `json:"boundary,omitempty"`
	Crossed  int64 `json:"crossed,omitempty"`
}

// encodeSweepPoint converts a sweep task's in-process output to its wire
// form.
func encodeSweepPoint(out any) (json.RawMessage, error) {
	p, ok := out.(sweepPoint)
	if !ok {
		return nil, fmt.Errorf("exp: sweep task output is %T, not a sweep point", out)
	}
	w := wirePoint{X: p.pt.X, Y: p.pt.Y, Row: make([]string, len(p.row)), Steps: p.steps,
		Boundary: p.boundary, Crossed: p.crossed}
	for i, c := range p.row {
		w.Row[i] = measure.FormatCell(c)
	}
	return json.Marshal(w)
}

// decodeSweepPoint is the inverse of encodeSweepPoint. The decoded row
// holds the pre-formatted strings, which Table.AddRow passes through
// verbatim.
func decodeSweepPoint(raw json.RawMessage) (any, error) {
	var w wirePoint
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("exp: decoding sweep point: %w", err)
	}
	p := sweepPoint{pt: measure.Point{X: w.X, Y: w.Y}, row: make([]any, len(w.Row)), steps: w.Steps,
		boundary: w.Boundary, crossed: w.Crossed}
	for i, s := range w.Row {
		p.row[i] = s
	}
	return p, nil
}

// encodeResult wire-encodes a whole-experiment output (*Result, the output
// of single-task plans). Result is JSON-native with fully typed fields —
// table rows are pre-formatted strings — so plain marshaling round-trips
// byte-identically.
func encodeResult(out any) (json.RawMessage, error) {
	res, ok := out.(*Result)
	if !ok {
		return nil, fmt.Errorf("exp: single-task output is %T, not *Result", out)
	}
	return json.Marshal(res)
}

// decodeResult is the inverse of encodeResult.
func decodeResult(raw json.RawMessage) (any, error) {
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("exp: decoding result: %w", err)
	}
	return &res, nil
}
