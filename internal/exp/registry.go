package exp

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is the sentinel wrapped by ErrUnknownExperiment.
var ErrNotFound = errors.New("experiment not registered")

// ErrUnknownExperiment builds the canonical lookup-miss error for name.
func ErrUnknownExperiment(name string) error {
	return fmt.Errorf("exp: %q: %w", name, ErrNotFound)
}

// The global registry. Registration order is preserved so that "run
// everything" reproduces the historical cmd/experiments output order.
var registry = struct {
	sync.RWMutex
	byName map[string]*Experiment
	order  []string
}{byName: map[string]*Experiment{}}

// Register adds an experiment to the registry. It rejects nil experiments,
// empty names, missing Run functions, and duplicate names.
func Register(e *Experiment) error {
	if e == nil {
		return fmt.Errorf("exp: Register(nil)")
	}
	if e.Name == "" {
		return fmt.Errorf("exp: experiment with empty name")
	}
	if e.Run == nil {
		return fmt.Errorf("exp: experiment %q has no Run function", e.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[e.Name]; dup {
		return fmt.Errorf("exp: experiment %q already registered", e.Name)
	}
	registry.byName[e.Name] = e
	registry.order = append(registry.order, e.Name)
	return nil
}

// MustRegister is Register that panics on error; for catalog init.
func MustRegister(e *Experiment) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the experiment registered under name.
func Lookup(name string) (*Experiment, bool) {
	registry.RLock()
	defer registry.RUnlock()
	e, ok := registry.byName[name]
	return e, ok
}

// List returns every registered experiment in registration order.
func List() []*Experiment {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Experiment, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Names returns the registered names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// CatalogEntry is the machine-readable form of one registered experiment:
// everything needed to drive a run without reading drivers.go. It is the
// element type of `experiments -list -json` and of the expd service's
// GET /v1/experiments, which must stay byte-identical.
type CatalogEntry struct {
	Name        string           `json:"name"`
	Theory      string           `json:"theory,omitempty"`
	Description string           `json:"description,omitempty"`
	Presets     map[string][]int `json:"presets,omitempty"`
	DefaultSeed uint64           `json:"default_seed,omitempty"`
	// Decomposable reports whether the experiment plans per-sweep-point
	// tasks (so schedulers parallelize inside its sweep, not just across
	// experiments).
	Decomposable bool `json:"decomposable"`
}

// Catalog returns the machine-readable catalog of every registered
// experiment, in registration order.
func Catalog() []CatalogEntry {
	exps := List()
	entries := make([]CatalogEntry, 0, len(exps))
	for _, e := range exps {
		entries = append(entries, CatalogEntry{
			Name:         e.Name,
			Theory:       e.Theory,
			Description:  e.Description,
			Presets:      e.Presets,
			DefaultSeed:  e.DefaultSeed,
			Decomposable: e.Plan != nil,
		})
	}
	return entries
}
