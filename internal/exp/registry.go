package exp

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is the sentinel wrapped by ErrUnknownExperiment.
var ErrNotFound = errors.New("experiment not registered")

// ErrUnknownExperiment builds the canonical lookup-miss error for name.
func ErrUnknownExperiment(name string) error {
	return fmt.Errorf("exp: %q: %w", name, ErrNotFound)
}

// The global registry. Registration order is preserved so that "run
// everything" reproduces the historical cmd/experiments output order.
var registry = struct {
	sync.RWMutex
	byName map[string]*Experiment
	order  []string
}{byName: map[string]*Experiment{}}

// Register adds an experiment to the registry. It rejects nil experiments,
// empty names, missing Run functions, and duplicate names.
func Register(e *Experiment) error {
	if e == nil {
		return fmt.Errorf("exp: Register(nil)")
	}
	if e.Name == "" {
		return fmt.Errorf("exp: experiment with empty name")
	}
	if e.Run == nil {
		return fmt.Errorf("exp: experiment %q has no Run function", e.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[e.Name]; dup {
		return fmt.Errorf("exp: experiment %q already registered", e.Name)
	}
	registry.byName[e.Name] = e
	registry.order = append(registry.order, e.Name)
	return nil
}

// MustRegister is Register that panics on error; for catalog init.
func MustRegister(e *Experiment) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the experiment registered under name.
func Lookup(name string) (*Experiment, bool) {
	registry.RLock()
	defer registry.RUnlock()
	e, ok := registry.byName[name]
	return e, ok
}

// List returns every registered experiment in registration order.
func List() []*Experiment {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Experiment, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Names returns the registered names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}
