package exp

// TCP transport tests: byte-identity of the quick catalog over remote
// workers, handshake refusals over a socket, teardown bounds on both
// transports, late-join admission, and recovery from a worker killed
// mid-batch. The fault-injection proxy lives in faultconn_test.go.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startListenWorkerProc spawns the test binary as a TCP worker acceptor
// (helper mode "listen", the subprocess shape of `experiments worker
// -listen`) and returns its address. Each call is a separate process with
// its own instance cache, which is what per-worker stats assertions need.
func startListenWorkerProc(t *testing.T, env ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerModeEnv+"=listen")
	cmd.Env = append(cmd.Env, env...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	br := bufio.NewReader(stdout)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("listen worker never announced its address: %v", err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "listening ")
	if !ok {
		t.Fatalf("unexpected listen worker banner %q", line)
	}
	go func() { _, _ = io.Copy(io.Discard, stdout) }()
	return addr
}

// startInprocWorker serves the worker protocol from this test process on a
// loopback listener. Handy when the test needs to shape the worker side
// directly; note it shares the orchestrator's registry AND instance cache,
// so per-worker cache assertions need startListenWorkerProc instead.
func startInprocWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ServeWorker(ctx, l)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return l.Addr().String()
}

// totalTasks derives every plan and sums the task counts.
func totalTasks(t *testing.T, exps []*Experiment, cfg RunConfig) int {
	t.Helper()
	total := 0
	for _, e := range exps {
		p, err := e.plan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		total += len(p.Tasks)
	}
	return total
}

// TestTCPBatchMatchesSerialByteForByte is the transport-swap acceptance
// criterion: the full quick catalog over TCP workers on loopback is
// byte-identical to the serial in-process run AND to the pipe-subprocess
// run at every worker count, with every worker reporting a stats frame
// (satellite: per-worker stats and -cache-stats assembly ride on OnStats).
func TestTCPBatchMatchesSerialByteForByte(t *testing.T) {
	exps := lookupAll(t, batchNames)
	cfg := RunConfig{Preset: PresetQuick}
	serial, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 1, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalJSON(t, serial)
	pipes, err := procBatch(context.Background(), exps, 2, BatchOptions{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if raw := canonicalJSON(t, pipes); !bytes.Equal(want, raw) {
		t.Fatalf("pipe workers diverged from serial:\n%s\nvs\n%s", want, raw)
	}
	tasks := totalTasks(t, exps, cfg)
	for _, workers := range []int{1, 2, 4} {
		addrs := make([]string, workers)
		for i := range addrs {
			addrs[i] = startListenWorkerProc(t)
		}
		var (
			mu    sync.Mutex
			stats []WorkerStats
		)
		got, err := RunBatch(context.Background(), exps, BatchOptions{
			Remote: addrs,
			Config: cfg,
			OnWorkerStats: func(ws WorkerStats) {
				mu.Lock()
				stats = append(stats, ws)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("tcp workers=%d: %v", workers, err)
		}
		if raw := canonicalJSON(t, got); !bytes.Equal(want, raw) {
			t.Fatalf("tcp workers=%d diverged from serial:\n%s\nvs\n%s", workers, want, raw)
		}
		if len(stats) != workers {
			t.Fatalf("tcp workers=%d: stats from %d workers, want %d: %+v", workers, len(stats), workers, stats)
		}
		ranTasks := 0
		addrSet := map[string]bool{}
		for _, a := range addrs {
			addrSet[a] = true
		}
		for _, ws := range stats {
			if !addrSet[ws.Addr] {
				t.Fatalf("tcp workers=%d: stats carry unknown addr %q (want one of %v)", workers, ws.Addr, addrs)
			}
			ranTasks += ws.Tasks
		}
		if ranTasks != tasks {
			t.Fatalf("tcp workers=%d: workers ran %d tasks, want %d", workers, ranTasks, tasks)
		}
	}
}

// fakeHelloListener accepts connections, answers each with a tweaked hello
// frame, then discards input until the orchestrator closes the connection.
// It returns the address, an accept counter, and a channel closed when the
// first connection has been torn down by the peer.
func fakeHelloListener(t *testing.T, tweak func(*HelloFrame)) (string, *atomic.Int32, chan struct{}) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	accepts := new(atomic.Int32)
	closed := make(chan struct{})
	var closeOnce sync.Once
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				h := HelloFrame{
					Type:        FrameHello,
					Proto:       ProtoVersion,
					Catalog:     CatalogHash(),
					Build:       BuildID(),
					Experiments: len(List()),
				}
				tweak(&h)
				raw, _ := json.Marshal(h)
				_, _ = conn.Write(append(raw, '\n'))
				// Reads return only when the orchestrator closes the
				// connection — which a handshake refusal must do.
				_, _ = io.Copy(io.Discard, conn)
				closeOnce.Do(func() { close(closed) })
			}(conn)
		}
	}()
	return l.Addr().String(), accepts, closed
}

// TestTCPHandshakeRefusals mirrors TestProcRetryNeverAppliesToHandshake
// over a socket: a remote worker announcing a skewed catalog hash, build
// fingerprint, or protocol version is refused with a labeled permanent
// error, the connection is closed, and WorkerRetry never buys a second
// dial.
func TestTCPHandshakeRefusals(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*HelloFrame)
		want  string
	}{
		{"catalog", func(h *HelloFrame) { h.Catalog = "sha256:0000" }, "catalog hash mismatch"},
		{"build", func(h *HelloFrame) { h.Build = "repro@v0.0.0-stale" }, "build mismatch"},
		{"proto", func(h *HelloFrame) { h.Proto = ProtoVersion + 1 }, "protocol version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, accepts, closed := fakeHelloListener(t, tc.tweak)
			exps := lookupAll(t, []string{"twocoloring-gap"})
			started := time.Now()
			_, err := RunBatch(context.Background(), exps, BatchOptions{
				Remote:      []string{addr},
				WorkerRetry: true, // must not buy the refusal a second dial
				Config:      RunConfig{Preset: PresetQuick},
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want the %s refusal", err, tc.name)
			}
			if !strings.Contains(err.Error(), "worker "+addr) {
				t.Fatalf("err = %v, want it labeled with the remote address", err)
			}
			if !isPermanent(err) {
				t.Fatalf("handshake refusal lost its permanent marker: %v", err)
			}
			select {
			case <-closed:
			case <-time.After(5 * time.Second):
				t.Fatal("orchestrator never closed the refused connection")
			}
			if n := accepts.Load(); n != 1 {
				t.Fatalf("refused worker was dialed %d times, want exactly 1", n)
			}
			if time.Since(started) > 5*time.Second {
				t.Fatal("refusal took too long (backoff applied to a permanent failure?)")
			}
		})
	}
}

// TestTCPCleanCloseWithoutStats is the satellite regression: a remote
// worker that completes every task and closes the connection cleanly — but
// never sends its stats frame — fails the batch with the labeled
// closed-connection error, and WorkerRetry does not resurrect it (every
// task is already delivered; a fresh session could not re-earn the stats).
func TestTCPCleanCloseWithoutStats(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	var accepts atomic.Int32
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				// A faithful worker whose stats frame is swallowed: the
				// session ends with a clean FIN and no stats.
				_ = RunWorker(context.Background(), conn, dropStatsWriter{w: conn})
			}(conn)
		}
	}()
	exps := lookupAll(t, []string{"test-proc-noop"})
	_, err = RunBatch(context.Background(), exps, BatchOptions{
		Remote:      []string{l.Addr().String()},
		WorkerRetry: true,
		Config:      RunConfig{Preset: PresetQuick},
	})
	if err == nil || !strings.Contains(err.Error(), "closed connection without a stats frame") {
		t.Fatalf("err = %v, want the closed-connection-without-stats label", err)
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("worker dialed %d times, want 1 (shutdown violations are never retried)", n)
	}
}

// TestTCPStatsStallBounded: a remote worker that finishes its tasks but
// then goes silent with the connection open is aborted by the teardown
// watchdog — the same deadline that bounds pipe-worker reaping — and the
// batch fails labeled instead of hanging.
func TestTCPStatsStallBounded(t *testing.T) {
	saved := teardownTimeout
	teardownTimeout = 300 * time.Millisecond
	defer func() { teardownTimeout = saved }()

	unblock := make(chan struct{})
	t.Cleanup(func() { close(unblock) })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_ = RunWorker(context.Background(), conn, blockOnStatsWriter{w: conn, block: unblock})
			}(conn)
		}
	}()
	exps := lookupAll(t, []string{"test-proc-noop"})
	started := time.Now()
	_, err = RunBatch(context.Background(), exps, BatchOptions{
		Remote: []string{l.Addr().String()},
		Config: RunConfig{Preset: PresetQuick},
	})
	if err == nil || !strings.Contains(err.Error(), "no stats frame within") {
		t.Fatalf("err = %v, want the stats-watchdog label", err)
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("stalled shutdown was not bounded by the teardown deadline")
	}
}

// blockOnStatsWriter forwards every frame except the stats frame, on which
// it blocks until the test releases it — a worker silent at shutdown.
type blockOnStatsWriter struct {
	w     io.Writer
	block chan struct{}
}

func (b blockOnStatsWriter) Write(p []byte) (int, error) {
	if isStatsFrame(p) {
		<-b.block
		return 0, fmt.Errorf("session torn down")
	}
	return b.w.Write(p)
}

// TestProcCleanExitWithoutStats is the pipe-transport face of the same
// regression: a worker subprocess that completes its tasks and exits
// cleanly without the stats frame fails the batch labeled, identically to
// the TCP clean-close case.
func TestProcCleanExitWithoutStats(t *testing.T) {
	exps := lookupAll(t, []string{"test-proc-noop"})
	_, err := RunBatch(context.Background(), exps, BatchOptions{
		Workers:       1,
		WorkerCommand: workerCommand(),
		WorkerEnv:     workerEnv("nostats"),
		WorkerRetry:   true,
		Config:        RunConfig{Preset: PresetQuick},
	})
	if err == nil || !strings.Contains(err.Error(), "exited cleanly without a stats frame") {
		t.Fatalf("err = %v, want the clean-exit-without-stats label", err)
	}
}

// TestProcStatsStallBounded: the pipe-transport worker that neither writes
// stats nor exits is killed by the same teardown watchdog within the same
// deadline (the uniform-teardown satellite, subprocess side).
func TestProcStatsStallBounded(t *testing.T) {
	saved := teardownTimeout
	teardownTimeout = 300 * time.Millisecond
	defer func() { teardownTimeout = saved }()
	exps := lookupAll(t, []string{"test-proc-noop"})
	started := time.Now()
	_, err := RunBatch(context.Background(), exps, BatchOptions{
		Workers:       1,
		WorkerCommand: workerCommand(),
		WorkerEnv:     workerEnv("stallstats"),
		Config:        RunConfig{Preset: PresetQuick},
	})
	if err == nil || !strings.Contains(err.Error(), "no stats frame within") {
		t.Fatalf("err = %v, want the stats-watchdog label", err)
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("stalled worker was not bounded by the teardown deadline")
	}
}

// The gate experiment for the late-join test: tasks block until the test
// releases them, so the batch provably spans the second worker's arrival.
// Only meaningful with in-process TCP workers (the channels are
// process-local).
var (
	tcpGateStarted = make(chan struct{}, 64)
	tcpGateRelease = make(chan struct{})
)

func init() {
	MustRegister(&Experiment{
		Name:        "test-tcp-gate",
		Description: "tasks block until released (late-join TCP test)",
		Run: func(ctx context.Context, cfg RunConfig) (*Result, error) {
			return nil, fmt.Errorf("test-tcp-gate runs only via its plan")
		},
		Plan: func(cfg RunConfig) (*TaskPlan, error) {
			tasks := make([]Task, 4)
			for i := range tasks {
				i := i
				tasks[i] = Task{
					Label: fmt.Sprintf("test-tcp-gate i=%d", i),
					Run: func(ctx context.Context) (any, error) {
						tcpGateStarted <- struct{}{}
						select {
						case <-tcpGateRelease:
							return float64(i), nil
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					},
				}
			}
			return &TaskPlan{
				Tasks: tasks,
				Assemble: func(outs []any) (*Result, error) {
					return &Result{Name: "test-tcp-gate"}, nil
				},
				Encode: func(out any) (json.RawMessage, error) { return json.Marshal(out) },
				Decode: func(raw json.RawMessage) (any, error) {
					var v float64
					if err := json.Unmarshal(raw, &v); err != nil {
						return nil, err
					}
					return v, nil
				},
			}, nil
		},
	})
}

// TestTCPLateJoiningWorkerAdmitted: a remote address that is unreachable at
// batch start is re-dialed on backoff and — once a worker appears there
// mid-batch — admitted into the group pool and handed queued work, while
// the batch keeps running on the workers that were up.
func TestTCPLateJoiningWorkerAdmitted(t *testing.T) {
	savedMin, savedMax := dialBackoffMin, dialBackoffMax
	dialBackoffMin, dialBackoffMax = 10*time.Millisecond, 50*time.Millisecond
	defer func() { dialBackoffMin, dialBackoffMax = savedMin, savedMax }()
	// Fresh gate channels: a prior run of this test (-count>1) closed the
	// release channel for good.
	tcpGateStarted = make(chan struct{}, 64)
	tcpGateRelease = make(chan struct{})

	early := startInprocWorker(t)
	// Reserve an address for the late worker, then free it: the batch
	// dials it while nothing is listening.
	res, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := res.Addr().String()
	_ = res.Close()

	exps := lookupAll(t, []string{"test-tcp-gate"})
	var (
		mu    sync.Mutex
		stats []WorkerStats
	)
	type outcome struct {
		results []*Result
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		results, err := RunBatch(context.Background(), exps, BatchOptions{
			Remote: []string{early, lateAddr},
			Config: RunConfig{Preset: PresetQuick},
			OnWorkerStats: func(ws WorkerStats) {
				mu.Lock()
				stats = append(stats, ws)
				mu.Unlock()
			},
		})
		done <- outcome{results, err}
	}()

	// The early worker holds its first gate task open; the late address is
	// still dark.
	select {
	case <-tcpGateStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("no task ever started on the early worker")
	}
	// Bring the late worker up; a slot is backing off on its address and
	// admits it. One worker session runs one task at a time, so a second
	// in-flight gate task proves the late worker claimed from the pool.
	l, err := net.Listen("tcp", lateAddr)
	if err != nil {
		t.Fatalf("could not bind the reserved late address: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = ServeWorker(ctx, l)
	}()
	t.Cleanup(func() {
		cancel()
		<-served
	})
	select {
	case <-tcpGateStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("late-joining worker never received a task")
	}
	close(tcpGateRelease)

	out := <-done
	if out.err != nil {
		t.Fatalf("batch with a late-joining worker failed: %v", out.err)
	}
	if len(out.results) != 1 || out.results[0].Name != "test-tcp-gate" {
		t.Fatalf("results = %+v", out.results)
	}
	if len(stats) != 2 {
		t.Fatalf("stats from %d workers, want both the early and the late one: %+v", len(stats), stats)
	}
	ranTasks := 0
	byAddr := map[string]int{}
	for _, ws := range stats {
		ranTasks += ws.Tasks
		byAddr[ws.Addr] = ws.Tasks
	}
	if ranTasks != 4 {
		t.Fatalf("workers ran %d tasks, want 4: %+v", ranTasks, stats)
	}
	if byAddr[lateAddr] == 0 {
		t.Fatalf("late worker %s ran no tasks: %+v", lateAddr, stats)
	}
}

// TestTCPWorkerKilledMidBatchRecoversViaRetry: with WorkerRetry, a remote
// worker process dying mid-task (the task kills its acceptor) drops the
// connection; the interrupted group is requeued and completes on the
// surviving worker, and the dead address's slot retires silently once the
// pool drains. Without WorkerRetry the crash fails the batch labeled.
func TestTCPWorkerKilledMidBatchRecoversViaRetry(t *testing.T) {
	savedMin, savedMax := dialBackoffMin, dialBackoffMax
	dialBackoffMin, dialBackoffMax = 10*time.Millisecond, 50*time.Millisecond
	defer func() { dialBackoffMin, dialBackoffMax = savedMin, savedMax }()

	marker := filepath.Join(t.TempDir(), "flaky")
	env := "REPRO_EXP_FLAKY_FILE=" + marker
	a := startListenWorkerProc(t, env)
	b := startListenWorkerProc(t, env)
	exps := lookupAll(t, []string{"test-proc-flaky"})

	results, err := RunBatch(context.Background(), exps, BatchOptions{
		Remote:      []string{a, b},
		WorkerRetry: true,
	})
	if err != nil {
		t.Fatalf("retry did not recover the killed remote worker: %v", err)
	}
	if len(results) != 1 || results[0].Name != "test-proc-flaky" {
		t.Fatalf("results = %+v", results)
	}

	// Without retry: fresh marker, fresh workers, same crash — labeled.
	if err := os.Remove(marker); err != nil {
		t.Fatal(err)
	}
	c := startListenWorkerProc(t, env)
	_, err = RunBatch(context.Background(), exps, BatchOptions{
		Remote: []string{c},
	})
	if err == nil || !strings.Contains(err.Error(), `task "test-proc-flaky"`) {
		t.Fatalf("without retry, err = %v, want a labeled crash", err)
	}
	if !strings.Contains(err.Error(), "worker "+c) {
		t.Fatalf("err = %v, want it labeled with the remote address", err)
	}
}
