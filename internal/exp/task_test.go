package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/inst"
)

// TestPointSeedPureAndCollisionFree: a point's seed is a pure function of
// (base seed, point value) — never of scheduling order — and the mixing
// avoids the additive collisions of base+point.
func TestPointSeedPureAndCollisionFree(t *testing.T) {
	if PointSeed(3, 5000) != PointSeed(3, 5000) {
		t.Fatal("PointSeed is not deterministic")
	}
	// The additive derivation collided on base1+point1 == base2+point2.
	if PointSeed(3, 5) == PointSeed(4, 4) {
		t.Fatal("additive collision: (3,5) and (4,4) share a seed")
	}
	if PointSeed(3, 5) == PointSeed(5, 3) {
		t.Fatal("additive collision: (3,5) and (5,3) share a seed")
	}
	// Distinct points of one sweep get distinct seeds (all catalog presets).
	for _, e := range catalogExperiments() {
		seen := map[uint64]int{}
		for _, sizes := range e.Presets {
			for _, val := range sizes {
				s := PointSeed(e.DefaultSeed, val)
				if prev, dup := seen[s]; dup && prev != val {
					t.Fatalf("%s: points %d and %d share seed %d", e.Name, prev, val, s)
				}
				seen[s] = val
			}
		}
	}
}

// TestTaskSeedsIndependentOfSweepOrder: the planner derives each task's seed
// from (experiment, preset, point) only — reordering or subsetting the sweep
// never changes the seed a given point runs under.
func TestTaskSeedsIndependentOfSweepOrder(t *testing.T) {
	e, ok := Lookup("weighted25-d5")
	if !ok {
		t.Fatal("weighted25-d5 not registered")
	}
	forward, err := e.plan(RunConfig{Sizes: []int{4000, 16000, 64000}})
	if err != nil {
		t.Fatal(err)
	}
	reversed, err := e.plan(RunConfig{Sizes: []int{64000, 16000, 4000}})
	if err != nil {
		t.Fatal(err)
	}
	subset, err := e.plan(RunConfig{Sizes: []int{16000}})
	if err != nil {
		t.Fatal(err)
	}
	seedOf := func(p *TaskPlan, val int) uint64 {
		for _, task := range p.Tasks {
			if task.Seed == PointSeed(e.DefaultSeed, val) {
				return task.Seed
			}
		}
		t.Fatalf("no task carries the seed of point %d", val)
		return 0
	}
	for _, val := range []int{4000, 16000, 64000} {
		if seedOf(forward, val) != PointSeed(e.DefaultSeed, val) {
			t.Fatalf("point %d seed is not PointSeed(base, point)", val)
		}
	}
	if seedOf(forward, 16000) != seedOf(reversed, 16000) || seedOf(forward, 16000) != seedOf(subset, 16000) {
		t.Fatal("a point's seed depends on the rest of the sweep")
	}
}

// TestTaskPlanMetadata: sweep plans expose one task per point, in sweep
// order, each carrying its label, derived seed, and the composite instance
// key it will populate.
func TestTaskPlanMetadata(t *testing.T) {
	e, ok := Lookup("weighted25-d5")
	if !ok {
		t.Fatal("weighted25-d5 not registered")
	}
	plan, err := e.plan(RunConfig{Preset: PresetQuick})
	if err != nil {
		t.Fatal(err)
	}
	sizes := e.Presets[PresetQuick]
	if len(plan.Tasks) != len(sizes) {
		t.Fatalf("%d tasks for %d sweep points", len(plan.Tasks), len(sizes))
	}
	for i, task := range plan.Tasks {
		if want := fmt.Sprintf("weighted25-d5 n=%d", sizes[i]); task.Label != want {
			t.Fatalf("task %d label %q, want %q", i, task.Label, want)
		}
		if task.Seed != PointSeed(e.DefaultSeed, sizes[i]) {
			t.Fatalf("task %d seed %d, want PointSeed(base, %d)", i, task.Seed, sizes[i])
		}
		if !bytes.Contains([]byte(task.InstanceKey), []byte("weighted(")) {
			t.Fatalf("task %d instance key %q is not a composite weighted key", i, task.InstanceKey)
		}
	}
	// Experiments without a Plan wrap Run as a single task.
	tbl, ok := Lookup("density-poly")
	if !ok {
		t.Fatal("density-poly not registered")
	}
	single, err := tbl.plan(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Tasks) != 1 || single.Tasks[0].Label != "density-poly" {
		t.Fatalf("table experiment plan = %+v, want one task", single.Tasks)
	}
}

// TestSweepTasksMatchSerialByteForByte is the tentpole acceptance criterion
// at test scale: a single sweep experiment run with Jobs > 1 (its points
// scheduled concurrently) produces a canonical result byte-identical to both
// the serial batch and the plain Run path.
func TestSweepTasksMatchSerialByteForByte(t *testing.T) {
	for _, name := range []string{"weighted25-d5", "weightaug-k2", "hierarchical35-k2", "twocoloring-gap"} {
		e := lookupAll(t, []string{name})
		cfg := RunConfig{Preset: PresetQuick}
		direct, err := e[0].Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := RunBatch(context.Background(), e, BatchOptions{Jobs: 1, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunBatch(context.Background(), e, BatchOptions{Jobs: 4, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		want := canonicalJSON(t, []*Result{direct})
		if got := canonicalJSON(t, serial); !bytes.Equal(want, got) {
			t.Fatalf("%s: serial batch differs from Run:\n%s\nvs\n%s", name, want, got)
		}
		if got := canonicalJSON(t, parallel); !bytes.Equal(want, got) {
			t.Fatalf("%s: parallel batch differs from Run:\n%s\nvs\n%s", name, want, got)
		}
	}
}

// shuffleExperiment builds a synthetic sweep experiment whose n tasks
// complete in a deliberately scrambled order (each task blocks until every
// later-indexed task finished), to prove reassembly is positional.
func shuffleExperiment(n int, order *[]int) *Experiment {
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	e := &Experiment{Name: "test-task-shuffle"}
	e.Run = func(ctx context.Context, cfg RunConfig) (*Result, error) {
		return nil, errors.New("serial path unused")
	}
	e.Plan = func(cfg RunConfig) (*TaskPlan, error) {
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = Task{
				Label: fmt.Sprintf("test-task-shuffle i=%d", i),
				Run: func(ctx context.Context) (any, error) {
					if i < n-1 {
						select {
						case <-done[i+1]: // force reverse completion order
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					}
					*order = append(*order, i)
					close(done[i])
					return i, nil
				},
			}
		}
		return &TaskPlan{
			Tasks: tasks,
			Assemble: func(outs []any) (*Result, error) {
				res := &Result{Name: "test-task-shuffle"}
				for i, o := range outs {
					if o.(int) != i {
						return nil, fmt.Errorf("position %d holds output %v", i, o)
					}
				}
				return res, nil
			},
		}, nil
	}
	return e
}

// TestShuffledCompletionOrderStillCanonical: tasks completing in reverse
// order still assemble positionally (the aggregate never reflects
// completion order).
func TestShuffledCompletionOrderStillCanonical(t *testing.T) {
	const n = 6
	var order []int
	e := shuffleExperiment(n, &order)
	results, err := RunBatch(context.Background(), []*Experiment{e}, BatchOptions{Jobs: n})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] == nil || results[0].Name != "test-task-shuffle" {
		t.Fatalf("assembled result = %+v", results[0])
	}
	for i, got := range order {
		if want := n - 1 - i; got != want {
			t.Fatalf("completion order %v was not reversed (position %d)", order, i)
		}
	}
}

// TestMidSweepCancellationStopsRemainingTasks: a failing task cancels its
// in-flight siblings promptly and keeps the queued remainder of the sweep
// from ever starting.
func TestMidSweepCancellationStopsRemainingTasks(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	var sawCancel atomic.Bool
	siblingUp := make(chan struct{})
	tasks := []Task{
		{Label: "failer", Run: func(ctx context.Context) (any, error) {
			<-siblingUp // fail only once the sibling is mid-flight
			return nil, boom
		}},
		{Label: "sibling", Run: func(ctx context.Context) (any, error) {
			close(siblingUp)
			select {
			case <-ctx.Done():
				sawCancel.Store(true)
				return nil, fmt.Errorf("sibling: %w", ctx.Err())
			case <-time.After(10 * time.Second):
				return 1, nil
			}
		}},
	}
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{Label: "queued", Run: func(ctx context.Context) (any, error) {
			started.Add(1)
			return 1, nil
		}})
	}
	e := &Experiment{Name: "test-task-cancel"}
	e.Run = func(ctx context.Context, cfg RunConfig) (*Result, error) { return nil, errors.New("unused") }
	e.Plan = func(cfg RunConfig) (*TaskPlan, error) {
		return &TaskPlan{
			Tasks: tasks,
			Assemble: func(outs []any) (*Result, error) {
				return nil, errors.New("assemble must not run after a failure")
			},
		}, nil
	}
	begun := time.Now()
	_, err := RunBatch(context.Background(), []*Experiment{e}, BatchOptions{Jobs: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task's own failure", err)
	}
	if !sawCancel.Load() {
		t.Fatal("in-flight sibling task never observed cancellation")
	}
	if n := started.Load(); n != 0 {
		t.Fatalf("%d queued tasks started after the failure", n)
	}
	if time.Since(begun) > 5*time.Second {
		t.Fatal("batch waited for the slow task instead of canceling it")
	}
}

// TestWarmCompositeRepeatBuildsNothing is the composite-cache acceptance
// criterion: a warm repeat of the weighted/labeling presets performs zero
// composite builds, asserted via the provider's per-kind counters.
func TestWarmCompositeRepeatBuildsNothing(t *testing.T) {
	exps := lookupAll(t, []string{"weighted25-d5", "weightaug-k2"})
	cfg := RunConfig{Preset: PresetQuick}
	if _, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 2, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	warm := InstanceCache().Stats()
	if _, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 2, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	after := InstanceCache().Stats()
	for _, kind := range []string{"weighted", "weightaug"} {
		w, a := warm.Kinds[inst.Kind(kind)], after.Kinds[inst.Kind(kind)]
		if w.Builds == 0 {
			t.Fatalf("first run performed no %s composite builds (stats %+v)", kind, warm)
		}
		if a.Builds != w.Builds {
			t.Fatalf("warm repeat performed %d new %s composite builds, want 0", a.Builds-w.Builds, kind)
		}
		if a.Hits <= w.Hits {
			t.Fatalf("warm repeat recorded no %s composite hits", kind)
		}
		if a.BuildTime <= 0 {
			t.Fatalf("no %s build time recorded", kind)
		}
	}
}

// TestBatchRandomJobsFuzz: the canonical aggregate of a mixed batch is
// invariant across random worker counts.
func TestBatchRandomJobsFuzz(t *testing.T) {
	exps := lookupAll(t, []string{"hierarchical35-k2", "copyfraction-d5", "survivors"})
	cfg := RunConfig{Preset: PresetQuick}
	baseline, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: 1, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalJSON(t, baseline)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		jobs := 2 + rng.Intn(6)
		got, err := RunBatch(context.Background(), exps, BatchOptions{Jobs: jobs, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if raw := canonicalJSON(t, got); !bytes.Equal(want, raw) {
			t.Fatalf("jobs=%d diverged from serial:\n%s\nvs\n%s", jobs, want, raw)
		}
	}
}
