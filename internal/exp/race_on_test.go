//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in; the long
// stress-preset equivalence sweep skips under it (raced engine rounds are
// ~10x slower and the quick/standard sweeps already cover the contract).
const raceEnabled = true
