package exp

// The TCP transport: distributing batches across machines. The orchestrator
// side (TCPTransport) dials a remote worker started with
// `experiments worker -listen addr` and speaks the same NDJSON frame
// grammar the pipe transport speaks over stdin/stdout; the worker side
// (ServeWorker) accepts connections and runs the ordinary RunWorker loop on
// each. Nothing protocol-level changes across the wire — the hello
// handshake's ProtoVersion/CatalogHash/BuildID gate is what refuses a
// version-skewed remote binary, a crash becomes a connection reset, and
// cancellation closes the connection. TLS is optional on both sides
// (WorkerTLSConfig for the acceptor's cert/key, RemoteTLSConfig for the
// dialer's trust root).

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// connectTimeout bounds one dial attempt (including the TLS handshake when
// enabled) to a remote worker: an unreachable or black-holed address fails
// the attempt promptly so the backoff schedule stays responsive. A variable
// so tests can shrink it.
var connectTimeout = 5 * time.Second

// tcpWriteTimeout bounds each frame write to a remote worker. Task frames
// are tiny, so a write that cannot complete within this bound means the
// peer stopped draining its socket — fail labeled instead of blocking the
// slot forever.
var tcpWriteTimeout = 30 * time.Second

// tcpKeepAlive configures kernel keepalive probing on every worker
// connection, so a half-open peer (machine gone, NAT state lost) is
// detected and surfaces as a read error within ~30s even while a long task
// keeps the stream otherwise silent.
var tcpKeepAlive = net.KeepAliveConfig{
	Enable:   true,
	Idle:     15 * time.Second,
	Interval: 5 * time.Second,
	Count:    3,
}

// TCPTransport dials one remote worker (`experiments worker -listen addr`)
// and speaks the NDJSON worker protocol over the connection. It is
// redialable: an unreachable address is re-attempted on a backoff schedule
// mid-batch, which is how a late-joining worker is admitted into the
// affinity dispatch.
type TCPTransport struct {
	// Addr is the worker's host:port.
	Addr string
	// TLS, when non-nil, wraps every connection in TLS (the worker must be
	// listening with -tls-cert/-tls-key). See RemoteTLSConfig.
	TLS *tls.Config
	// ReadTimeout, when > 0, bounds the silence on the connection while
	// the orchestrator is awaiting frames: a peer that is connected but
	// stalled — not even crashing, just never writing — fails labeled
	// after this long instead of hanging the batch. Zero disables the
	// bound; tasks may legitimately compute for a long time between
	// frames, so this is an opt-in ceiling on task duration, not a
	// liveness probe (kernel keepalives cover dead peers).
	ReadTimeout time.Duration
}

func (t *TCPTransport) Label() string    { return "worker " + t.Addr }
func (t *TCPTransport) Redialable() bool { return true }

func (t *TCPTransport) Connect(ctx context.Context) (WorkerSession, error) {
	d := net.Dialer{Timeout: connectTimeout, KeepAliveConfig: tcpKeepAlive}
	conn, err := d.DialContext(ctx, "tcp", t.Addr)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: connect: %w", t.Label(), err)
	}
	if t.TLS != nil {
		tc := tls.Client(conn, t.TLS)
		hctx, cancel := context.WithTimeout(ctx, connectTimeout)
		err := tc.HandshakeContext(hctx)
		cancel()
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("exp: %s: tls handshake: %w", t.Label(), err)
		}
		conn = tc
	}
	return &tcpSession{conn: conn, readTimeout: t.ReadTimeout}, nil
}

// writeHalfCloser is the half-close both stream types used here provide
// (*net.TCPConn and *tls.Conn).
type writeHalfCloser interface{ CloseWrite() error }

// tcpSession is one live connection to a remote worker.
type tcpSession struct {
	conn        net.Conn
	readTimeout time.Duration

	once  sync.Once
	desc  string
	clean bool
}

func (s *tcpSession) Read(p []byte) (int, error) {
	if s.readTimeout > 0 {
		_ = s.conn.SetReadDeadline(time.Now().Add(s.readTimeout))
	}
	return s.conn.Read(p)
}

func (s *tcpSession) Write(p []byte) (int, error) {
	_ = s.conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout))
	return s.conn.Write(p)
}

func (s *tcpSession) CloseWrite() error {
	if hc, ok := s.conn.(writeHalfCloser); ok {
		return hc.CloseWrite()
	}
	return fmt.Errorf("exp: connection %T cannot half-close", s.conn)
}

// Abort closes the connection, unblocking any pending Read; the remote
// worker observes the close and abandons its in-flight task via its own
// context.
func (s *tcpSession) Abort() { _ = s.conn.Close() }

// Close tears the connection down. Unlike a subprocess there is no exit
// status to collect: from the orchestrator's side every ending looks like a
// closed connection, and whether that was a crash is judged by *when* it
// happened (mid-task, before the stats frame, ...) in the protocol driver.
func (s *tcpSession) Close() (string, bool) {
	s.once.Do(func() {
		_ = s.conn.Close()
		s.desc, s.clean = "closed connection", true
	})
	return s.desc, s.clean
}

// ServeWorker is the acceptor side of the TCP transport: it accepts
// connections on l and serves the worker protocol (RunWorker) on each —
// concurrently, one session per connection, all sharing this process's
// registry and instance cache — until ctx is canceled or the listener
// fails. A protocol error on one connection closes that connection (the
// orchestrator sees the reset and labels the failure on its side) without
// taking the acceptor down. On cancellation the listener and every open
// session are closed and ServeWorker returns nil.
func ServeWorker(ctx context.Context, l net.Listener) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
	)
	unhook := context.AfterFunc(ctx, func() {
		_ = l.Close()
		mu.Lock()
		for c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
	})
	defer unhook()
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("exp: worker listener: %w", err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetKeepAliveConfig(tcpKeepAlive)
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			if err := RunWorker(ctx, conn, conn); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "exp: worker session %s: %v\n", conn.RemoteAddr(), err)
			}
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
			_ = conn.Close()
		}(conn)
	}
}

// WorkerTLSConfig builds the acceptor-side TLS configuration for
// `experiments worker -listen` from a certificate/key pair; wrap the
// listener with tls.NewListener.
func WorkerTLSConfig(certFile, keyFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("exp: loading worker TLS key pair: %w", err)
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}, nil
}

// RemoteTLSConfig builds the dialer-side TLS configuration: connections to
// remote workers are verified against the CA bundle (or self-signed worker
// certificate) in caFile.
func RemoteTLSConfig(caFile string) (*tls.Config, error) {
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("exp: reading remote CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("exp: remote CA %s holds no PEM certificates", caFile)
	}
	return &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}, nil
}
