package exp

// Error-path coverage for the persistence loader and key derivation: the
// expd result store's correctness rests on LoadResults rejecting garbage
// cleanly and on ResultKey being collision-free across the whole catalog.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadResultsEmptyDir: a directory with no result files is an explicit
// error, not a silent empty set.
func TestLoadResultsEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadResults(dir); err == nil || !strings.Contains(err.Error(), "no result files") {
		t.Fatalf("err = %v, want 'no result files'", err)
	}
}

// TestLoadResultsMissingPath: a nonexistent path fails with the stat error.
func TestLoadResultsMissingPath(t *testing.T) {
	if _, err := LoadResults(filepath.Join(t.TempDir(), "nope")); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want IsNotExist", err)
	}
}

// TestLoadResultFileCorrupt: syntactically broken JSON fails and the error
// names the offending file.
func TestLoadResultFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(file, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadResults(dir)
	if err == nil {
		t.Fatal("corrupt file loaded without error")
	}
	if !strings.Contains(err.Error(), "broken.json") {
		t.Fatalf("error %q does not name the corrupt file", err)
	}
}

// TestLoadResultFileWrongShape: valid JSON that is neither a result array
// nor a result object is rejected with the canonical message.
func TestLoadResultFileWrongShape(t *testing.T) {
	for _, raw := range []string{"42", `"a string"`, "[1, 2, 3]"} {
		file := filepath.Join(t.TempDir(), "shape.json")
		if err := os.WriteFile(file, []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := loadResultFile(file)
		if err == nil || !strings.Contains(err.Error(), "neither a result array nor a result object") {
			t.Fatalf("payload %s: err = %v, want shape error", raw, err)
		}
	}
}

// TestLoadResultsMixedSchemaVersions: a directory holding a schema-1 file
// (the unstamped PR 1-3 format) next to schema-2 files loads both, with
// each result's schema field preserved — the loader never rewrites history.
func TestLoadResultsMixedSchemaVersions(t *testing.T) {
	dir := t.TempDir()
	v1 := `{
  "name": "legacy-run",
  "preset": "quick",
  "seed": 3,
  "elapsed_ms": 0,
  "tables": [{"title": "t", "header": ["a"], "rows": [["1"]]}]
}
`
	if err := os.WriteFile(filepath.Join(dir, "legacy-run__quick__seed3.json"), []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := CanonicalJSON(&Result{Schema: SchemaVersion, Name: "modern-run", Preset: "quick", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "modern-run__quick__seed4.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	results, err := LoadResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("loaded %d results, want 2", len(results))
	}
	bySchema := map[int]string{}
	for _, r := range results {
		bySchema[r.Schema] = r.Name
	}
	if bySchema[0] != "legacy-run" {
		t.Fatalf("schema-1 (unstamped) result = %q, want legacy-run", bySchema[0])
	}
	if bySchema[SchemaVersion] != "modern-run" {
		t.Fatalf("schema-%d result = %q, want modern-run", SchemaVersion, bySchema[SchemaVersion])
	}
}

// TestLoadResultsSkipsNonResultEntries: subdirectories and non-.json files
// are ignored, not misparsed.
func TestLoadResultsSkipsNonResultEntries(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := CanonicalJSON(&Result{Schema: SchemaVersion, Name: "only-run", Preset: "quick", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "only-run__quick__seed1.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := LoadResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "only-run" {
		t.Fatalf("loaded %v, want exactly only-run", results)
	}
}

// TestResultKeyUniqueAcrossCatalog: every (experiment, declared preset)
// pair of the full catalog — at the default seed and at an override —
// derives a distinct ResultKey. The result store memoizes on this key, so
// a collision would serve one experiment's bytes for another's request.
func TestResultKeyUniqueAcrossCatalog(t *testing.T) {
	seen := map[string]string{}
	record := func(key, what string) {
		if prev, dup := seen[key]; dup {
			t.Fatalf("ResultKey collision: %s and %s both derive %q", prev, what, key)
		}
		seen[key] = what
	}
	for _, e := range List() {
		presets := []string{""}
		for p := range e.Presets {
			presets = append(presets, p)
		}
		for _, preset := range presets {
			for _, seed := range []uint64{0, 99} {
				cfg := RunConfig{Preset: preset, Seed: seed}
				key, err := e.ResultKeyFor(cfg)
				if err != nil {
					t.Fatalf("%s preset %q: %v", e.Name, preset, err)
				}
				what := e.Name + "/" + preset + "/seed-override"
				if seed == 0 {
					what = e.Name + "/" + preset + "/default-seed"
				}
				// "" resolves to standard: the same key on purpose — skip
				// the duplicate registration, but verify the equivalence.
				if preset == "" {
					std, err := e.ResultKeyFor(RunConfig{Preset: PresetStandard, Seed: seed})
					if err == nil && std != key {
						t.Fatalf("%s: empty preset key %q != standard key %q", e.Name, key, std)
					}
					continue
				}
				record(key, what)
			}
		}
	}
	if len(seen) < 18 {
		t.Fatalf("only %d catalog keys recorded; catalog shrank?", len(seen))
	}
}

// TestResultKeyForMatchesRunStamp: the key derived before a run equals the
// key of the Result the run actually produces — the store's lookup key and
// its write-through key cannot diverge.
func TestResultKeyForMatchesRunStamp(t *testing.T) {
	e, ok := Lookup("survivors")
	if !ok {
		t.Fatal("survivors not registered")
	}
	for _, cfg := range []RunConfig{
		{Preset: PresetQuick},
		{Preset: ""},
		{Preset: PresetQuick, Seed: 42},
	} {
		want, err := e.ResultKeyFor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := ResultKey(res); got != want {
			t.Fatalf("cfg %+v: ResultKeyFor = %q but run stamped %q", cfg, want, got)
		}
	}
}

// TestResultKeyForRejectsUnknownPreset: key derivation validates the preset
// so a bad request is refused before any computation.
func TestResultKeyForRejectsUnknownPreset(t *testing.T) {
	e, ok := Lookup("survivors")
	if !ok {
		t.Fatal("survivors not registered")
	}
	if _, err := e.ResultKeyFor(RunConfig{Preset: "bogus"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestCanonicalJSONMatchesWriteResults: CanonicalJSON is byte-for-byte the
// per-result file WriteResults persists — the store and the -out directory
// share one byte contract.
func TestCanonicalJSONMatchesWriteResults(t *testing.T) {
	res := &Result{
		Schema:      SchemaVersion,
		Name:        "test-canon",
		Preset:      "quick",
		Seed:        5,
		Parallelism: 4,   // stripped by the canonical form
		Shards:      2,   // stripped
		ElapsedMS:   9.5, // stripped
	}
	dir := t.TempDir()
	if err := WriteResults(dir, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	file, err := os.ReadFile(filepath.Join(dir, ResultKey(res)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CanonicalJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(file) {
		t.Fatalf("CanonicalJSON differs from the WriteResults file:\n%s\nvs\n%s", raw, file)
	}
	if strings.Contains(string(raw), "parallelism") || strings.Contains(string(raw), "shards") {
		t.Fatal("canonical form leaked execution-mechanics fields")
	}
}
