package exp

// The ensemble-* experiment family: cross-ensemble statistics of a LOCAL
// algorithm over seeded random-tree families (graph.BuildGaltonWatson,
// graph.BuildLadder). An ensemble run samples one tree per point — the
// preset values are sample indices, and sample i's tree and IDs both derive
// from PointSeed(base, i) — so the existing task scheduler parallelizes the
// ensemble across -jobs and -workers for free, and the canonical result is
// byte-identical no matter how the samples are scheduled.
//
// Wire discipline: a sample's numeric summary rides in the measure.Point
// (float64 round-trips exactly through the worker protocol's wirePoint) and
// its color distribution rides as a pre-formatted string cell
// (measure.FormatCell passes strings through verbatim), so the in-process
// and cross-process assemble paths see identical inputs and emit identical
// bytes.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/measure"
	"repro/internal/sim"
)

// ensembleSpec is the decomposed form of an ensemble experiment: one
// independent sample function per sample index. Like sweepSpec point
// functions, samples must be pure up to their (idx, seed) inputs.
type ensembleSpec struct {
	header []string
	title  string
	// key identifies the sampled instance for (idx, seed): its String()
	// labels the task and its Core() is the task's affinity group.
	key func(idx int, seed uint64) inst.Key
	// sample draws and runs one ensemble member under the point seed. The
	// returned row's last cell must be the formatColorDist string and the
	// point must carry (TotalRounds, node-averaged rounds); assemble depends
	// on both.
	sample func(ctx context.Context, idx int, seed uint64, eng engineConfig) (sweepPoint, error)
}

// pointTotals sums the execution-mechanics counters of a point set: machine
// steps and shard traffic. They annotate the Result (and are stripped from
// its canonical form); none of them touches a table cell.
type pointTotals struct{ steps, boundary, crossed int64 }

// assemble combines completed samples — in canonical sample order — into the
// per-sample table and the cross-ensemble statistics table, plus the total
// simulator machine-step work and shard traffic across the samples. Both the
// serial path and the task planner funnel through here.
func (s *ensembleSpec) assemble(points []sweepPoint) ([]measure.Table, pointTotals, error) {
	samples := measure.Table{Title: s.title, Header: s.header}
	var sumTotal, maxTotal, sumAvg float64
	var totals pointTotals
	dist := map[int64]int64{}
	for i, p := range points {
		samples.AddRow(p.row...)
		totals.steps += p.steps
		totals.boundary += p.boundary
		totals.crossed += p.crossed
		sumTotal += p.pt.X
		if p.pt.X > maxTotal {
			maxTotal = p.pt.X
		}
		sumAvg += p.pt.Y
		// The distribution cell is the row's last entry on both execution
		// paths: a string built by formatColorDist (in-process) or its
		// verbatim wire copy (cross-process).
		cell, ok := p.row[len(p.row)-1].(string)
		if !ok {
			return nil, pointTotals{}, fmt.Errorf("sample %d: distribution cell is %T, not string", i, p.row[len(p.row)-1])
		}
		if err := addColorDist(dist, cell); err != nil {
			return nil, pointTotals{}, fmt.Errorf("sample %d: %w", i, err)
		}
	}
	n := float64(len(points))
	stats := measure.Table{
		Title:  "ensemble statistics",
		Header: []string{"statistic", "value", "", ""},
	}
	stats.AddRow("samples", len(points), "", "")
	if len(points) > 0 {
		stats.AddRow("mean total rounds", sumTotal/n, "", "")
		stats.AddRow("max total rounds", maxTotal, "", "")
		stats.AddRow("mean node-avg rounds", sumAvg/n, "", "")
		stats.AddRow("output distribution", formatColorDist(dist), "", "")
	}
	return []measure.Table{samples, stats}, totals, nil
}

// runSerial executes the ensemble's samples in order on the calling
// goroutine (the Experiment.Run path).
func (s *ensembleSpec) runSerial(ctx context.Context, idxs []int, seed uint64, eng engineConfig) ([]measure.Table, pointTotals, error) {
	points := make([]sweepPoint, 0, len(idxs))
	for _, idx := range idxs {
		if err := sweepStep(ctx); err != nil {
			return nil, pointTotals{}, err
		}
		p, err := s.sample(ctx, idx, PointSeed(seed, idx), eng)
		if err != nil {
			return nil, pointTotals{}, err
		}
		points = append(points, p)
	}
	return s.assemble(points)
}

// formatColorDist renders per-color output counts in ascending color order:
// "0:412 1:305 2:51". The format is its own inverse under addColorDist, so
// per-sample cells aggregate into the cross-ensemble distribution without a
// second representation.
func formatColorDist(counts map[int64]int64) string {
	colors := make([]int64, 0, len(counts))
	for c := range counts {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })
	var b strings.Builder
	for i, c := range colors {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatInt(c, 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(counts[c], 10))
	}
	return b.String()
}

// addColorDist accumulates one formatColorDist cell into counts.
func addColorDist(counts map[int64]int64, cell string) error {
	if cell == "" {
		return nil
	}
	for _, part := range strings.Split(cell, " ") {
		c, n, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("bad distribution cell %q", cell)
		}
		color, err := strconv.ParseInt(c, 10, 64)
		if err != nil {
			return fmt.Errorf("bad distribution cell %q: %w", cell, err)
		}
		count, err := strconv.ParseInt(n, 10, 64)
		if err != nil {
			return fmt.Errorf("bad distribution cell %q: %w", cell, err)
		}
		counts[color] += count
	}
	return nil
}

// runLinialSample runs the Linial (Δ+1)-coloring workload on one sampled
// tree and summarizes it as a sweep point: pt = (TotalRounds, node-avg) and
// a row ending in the color-distribution cell.
func runLinialSample(ctx context.Context, idx int, seed uint64, eng engineConfig, tr *graph.Tree) (sweepPoint, error) {
	delta := tr.MaxDegree()
	if delta < 1 {
		delta = 1 // single-node sample: Linial needs a positive degree bound
	}
	r, err := sim.NewEngine(
		sim.WithIDs(sim.DefaultIDs(tr.N(), seed)),
		sim.WithContext(ctx),
		sim.WithParallelism(eng.parallelism),
		sim.WithShards(eng.shards),
		sim.WithShardLayout(sim.ShardLayout(eng.layout)),
	).Run(tr, coloring.LinialAlgorithm{Delta: delta})
	if err != nil {
		return sweepPoint{}, err
	}
	colors := make([]int64, len(r.Outputs))
	counts := map[int64]int64{}
	for v, o := range r.Outputs {
		c, ok := o.(int64)
		if !ok {
			return sweepPoint{}, fmt.Errorf("sample %d: node %d output is %T, not a color", idx, v, o)
		}
		colors[v] = c
		counts[c]++
	}
	if ok, u, v := coloring.VerifyProperColoring(tr, colors); !ok {
		return sweepPoint{}, fmt.Errorf("sample %d: improper coloring on edge {%d,%d}", idx, u, v)
	}
	avg := r.NodeAveraged()
	boundary, crossed := shardTraffic(r)
	return sweepPoint{
		pt:       measure.Point{X: float64(r.TotalRounds), Y: avg},
		row:      []any{idx, delta, r.TotalRounds, avg, formatColorDist(counts)},
		steps:    r.Steps,
		boundary: boundary,
		crossed:  crossed,
	}, nil
}

// ensembleHeader is the per-sample table header shared by the Linial
// ensembles; the distribution cell is last by the assemble contract.
var ensembleHeader = []string{"sample", "Δ", "total rounds", "node-avg rounds", "color distribution"}

// ensembleGWSpec declares a Linial-coloring ensemble over Galton-Watson
// trees with n nodes and uniform {0..maxChildren} offspring.
func ensembleGWSpec(n, maxChildren int) *ensembleSpec {
	return &ensembleSpec{
		header: ensembleHeader,
		title: fmt.Sprintf("E-ENS: Linial (Δ+1)-coloring over Galton-Watson(n=%d, c=%d) samples",
			n, maxChildren),
		key: func(_ int, seed uint64) inst.Key { return inst.GWKey(n, maxChildren, seed) },
		sample: func(ctx context.Context, idx int, seed uint64, eng engineConfig) (sweepPoint, error) {
			tr, err := instances.GaltonWatson(n, maxChildren, seed)
			if err != nil {
				return sweepPoint{}, err
			}
			return runLinialSample(ctx, idx, seed, eng, tr)
		},
	}
}

// ensembleLadderSpec declares a Linial-coloring ensemble over ladder-heavy
// trees with n nodes (max degree 3).
func ensembleLadderSpec(n int) *ensembleSpec {
	return &ensembleSpec{
		header: ensembleHeader,
		title:  fmt.Sprintf("E-ENS: Linial (Δ+1)-coloring over ladder-tree(n=%d) samples", n),
		key:    func(_ int, seed uint64) inst.Key { return inst.LadderKey(n, seed) },
		sample: func(ctx context.Context, idx int, seed uint64, eng engineConfig) (sweepPoint, error) {
			tr, err := instances.Ladder(n, seed)
			if err != nil {
				return sweepPoint{}, err
			}
			return runLinialSample(ctx, idx, seed, eng, tr)
		},
	}
}

// ensembleExperiment wraps an ensembleSpec as a registered Experiment,
// mirroring sweepExperiment: Run executes the samples serially, Plan
// exposes them as independently schedulable tasks, and both produce
// identical canonical results (two tables, no fitted exponent — an ensemble
// has no scaling axis). Preset values are sample indices.
func ensembleExperiment(name, description, theory string, presets map[string][]int, seed uint64,
	spec func() *ensembleSpec) *Experiment {
	e := &Experiment{
		Name:        name,
		Description: description,
		Theory:      theory,
		Presets:     presets,
		DefaultSeed: seed,
	}
	finish := func(cfg RunConfig, preset string, idxs []int, started time.Time, tables []measure.Table, totals pointTotals) *Result {
		res := e.newResult(cfg, preset, idxs, started)
		res.Tables = tables
		res.Steps = totals.steps
		if totals.boundary > 0 || totals.crossed > 0 {
			res.ShardTraffic = &ShardTraffic{BoundaryEdges: totals.boundary, MessagesCrossed: totals.crossed}
		}
		return res
	}
	e.Run = func(ctx context.Context, cfg RunConfig) (*Result, error) {
		if err := sweepStep(ctx); err != nil {
			return nil, err
		}
		idxs, preset, err := e.sizesFor(cfg)
		if err != nil {
			return nil, err
		}
		s := spec()
		started := time.Now()
		tables, totals, err := s.runSerial(ctx, idxs, e.seedFor(cfg), engCfg(cfg))
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
		}
		return finish(cfg, preset, idxs, started, tables, totals), nil
	}
	e.Plan = func(cfg RunConfig) (*TaskPlan, error) {
		idxs, preset, err := e.sizesFor(cfg)
		if err != nil {
			return nil, err
		}
		s := spec()
		base := e.seedFor(cfg)
		// Same clock discipline as sweepExperiment: the elapsed clock starts
		// at the first task's start (or dispatch), not at plan derivation.
		started := time.Now() // fallback for empty ensembles
		var startedOnce sync.Once
		markStarted := func() { startedOnce.Do(func() { started = time.Now() }) }
		tasks := make([]Task, len(idxs))
		for i, idx := range idxs {
			idx := idx
			pseed := PointSeed(base, idx)
			k := s.key(idx, pseed)
			tasks[i] = Task{
				Label:       fmt.Sprintf("%s sample=%d", e.Name, idx),
				Seed:        pseed,
				InstanceKey: k.String(),
				Affinity:    k.Core().String(),
				Run: func(ctx context.Context) (any, error) {
					markStarted()
					if err := sweepStep(ctx); err != nil {
						return nil, err
					}
					p, err := s.sample(ctx, idx, pseed, engCfg(cfg))
					if err != nil {
						return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
					}
					return p, nil
				},
			}
		}
		return &TaskPlan{
			Tasks: tasks,
			Assemble: func(outs []any) (*Result, error) {
				points := make([]sweepPoint, len(outs))
				for i, o := range outs {
					p, ok := o.(sweepPoint)
					if !ok {
						return nil, fmt.Errorf("exp: %s: task %d output is %T, not a sweep point", e.Name, i, o)
					}
					points[i] = p
				}
				tables, totals, err := s.assemble(points)
				if err != nil {
					return nil, fmt.Errorf("exp: %s: %w", e.Name, err)
				}
				return finish(cfg, preset, idxs, started, tables, totals), nil
			},
			Encode:  encodeSweepPoint,
			Decode:  decodeSweepPoint,
			Started: markStarted,
		}, nil
	}
	return e
}
