package exp

// Affinity-aware dispatch: the multi-process backend routes tasks sharing a
// hierarchical instance core (Task.Affinity, derived from inst.Key.Core) to
// the same worker process. A worker's instance cache is process-local, so
// without affinity every worker that happens to receive one task of a
// composite family rebuilds the shared core tree; with it, each core — and
// every composite built on it — is constructed in exactly one process,
// which maximizes per-process cache hits and bounds the batch's peak
// resident memory to roughly one core family per worker. Assignment is a
// pure function of the canonical task order and the worker count, so the
// dispatch plan itself is deterministic (and the aggregate would be
// byte-identical even if it were not, by positional assembly).

import "fmt"

// batchUnit addresses one task inside a batch: experiment position, task
// position, and the task's global index in canonical order (the protocol
// frame ID).
type batchUnit struct {
	exp, task int
	id        int
}

// affinityKey returns a unit's routing key: the task's declared affinity
// group (the hierarchical core of its instance key), falling back to the
// full instance key, then to a key unique to the unit itself. The unique
// fallback keeps affinity-less tasks singleton groups, so they spread
// across workers instead of piling onto one — a label would not do: a
// batch listing the same experiment twice repeats every label, and merging
// those copies into one group would serialize them on a single worker for
// no cache benefit.
func affinityKey(u batchUnit, plans []*TaskPlan) string {
	t := &plans[u.exp].Tasks[u.task]
	if t.Affinity != "" {
		return t.Affinity
	}
	if t.InstanceKey != "" {
		return t.InstanceKey
	}
	return fmt.Sprintf("unit:%d", u.id)
}

// assignAffinity partitions units across `workers` queues: units are walked
// in canonical order, each distinct affinity key becomes a group pinned to
// one worker, and each new group goes to the currently least-loaded worker
// (ties break toward the lowest index). The result is deterministic —
// identical inputs always produce identical queues — and every unit of one
// group lands on one worker, in canonical order within its queue.
func assignAffinity(units []batchUnit, plans []*TaskPlan, workers int) [][]batchUnit {
	if workers < 1 {
		workers = 1
	}
	queues := make([][]batchUnit, workers)
	load := make([]int, workers)
	groupOf := make(map[string]int)
	for _, u := range units {
		key := affinityKey(u, plans)
		w, ok := groupOf[key]
		if !ok {
			w = 0
			for i := 1; i < workers; i++ {
				if load[i] < load[w] {
					w = i
				}
			}
			groupOf[key] = w
		}
		queues[w] = append(queues[w], u)
		load[w]++
	}
	return queues
}
