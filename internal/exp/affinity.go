package exp

// Affinity-aware dispatch: the multi-process backend routes tasks sharing a
// hierarchical instance core (Task.Affinity, derived from inst.Key.Core) to
// the same worker process. A worker's instance cache is process-local, so
// without affinity every worker that happens to receive one task of a
// composite family rebuilds the shared core tree; with it, each core — and
// every composite built on it — is constructed in exactly one process,
// which maximizes per-process cache hits and bounds the batch's peak
// resident memory to roughly one core family per worker.
//
// Groups are dispatched dynamically: worker slots claim the next group from
// a shared pool as they go idle, which is online least-loaded assignment
// and — unlike a static partition — also admits workers that join
// mid-batch (a late-dialed remote claims whatever is still queued). The
// dispatch plan therefore depends on timing, but the canonical aggregate
// does not: outputs are assembled positionally, so the bytes are identical
// whichever worker ran which group.

import (
	"context"
	"fmt"
	"sync"
)

// batchUnit addresses one task inside a batch: experiment position, task
// position, and the task's global index in canonical order (the protocol
// frame ID).
type batchUnit struct {
	exp, task int
	id        int
}

// affinityKey returns a unit's routing key: the task's declared affinity
// group (the hierarchical core of its instance key), falling back to the
// full instance key, then to a key unique to the unit itself. The unique
// fallback keeps affinity-less tasks singleton groups, so they spread
// across workers instead of piling onto one — a label would not do: a
// batch listing the same experiment twice repeats every label, and merging
// those copies into one group would serialize them on a single worker for
// no cache benefit.
func affinityKey(u batchUnit, plans []*TaskPlan) string {
	t := &plans[u.exp].Tasks[u.task]
	if t.Affinity != "" {
		return t.Affinity
	}
	if t.InstanceKey != "" {
		return t.InstanceKey
	}
	return fmt.Sprintf("unit:%d", u.id)
}

// affinityGroups partitions units into affinity groups, ordered by each
// group's first appearance in canonical task order, with each group's units
// in canonical order. Deterministic: identical inputs always produce
// identical groups.
func affinityGroups(units []batchUnit, plans []*TaskPlan) [][]batchUnit {
	var groups [][]batchUnit
	idx := make(map[string]int)
	for _, u := range units {
		key := affinityKey(u, plans)
		g, ok := idx[key]
		if !ok {
			g = len(groups)
			groups = append(groups, nil)
			idx[key] = g
		}
		groups[g] = append(groups[g], u)
	}
	return groups
}

// groupEntry is one affinity group in flight: its remaining units plus the
// single-retry latch. When a session drops mid-group, the undelivered
// suffix is requeued exactly once; a second interruption of the same group
// fails the batch (matching the historical one-respawn-per-slot policy).
type groupEntry struct {
	units   []batchUnit
	retried bool
}

// groupPool is the shared dispatch queue worker slots claim groups from.
// Entries leave the pool in order; a requeued entry returns to the front so
// interrupted work is picked up before fresh groups. The pool is drained
// when the queue is empty and no claimed entry is still outstanding —
// idle slots block in claim until then, because an outstanding entry may
// yet be requeued and need a runner.
type groupPool struct {
	mu          sync.Mutex
	queue       []*groupEntry
	outstanding int
	notify      chan struct{} // closed and replaced on every requeue
	drained     chan struct{} // closed when queue empty and nothing outstanding
}

func newGroupPool(groups [][]batchUnit) *groupPool {
	p := &groupPool{
		notify:  make(chan struct{}),
		drained: make(chan struct{}),
	}
	for _, g := range groups {
		p.queue = append(p.queue, &groupEntry{units: g})
	}
	if len(p.queue) == 0 {
		close(p.drained)
	}
	return p
}

func (p *groupPool) closeDrainedLocked() {
	select {
	case <-p.drained:
	default:
		close(p.drained)
	}
}

// claim blocks until an entry is available and returns it, or returns nil
// when the pool drains or ctx is canceled. The caller must hand the entry
// back through finish or requeue.
func (p *groupPool) claim(ctx context.Context) *groupEntry {
	for {
		p.mu.Lock()
		if len(p.queue) > 0 {
			e := p.queue[0]
			p.queue = p.queue[1:]
			p.outstanding++
			p.mu.Unlock()
			return e
		}
		if p.outstanding == 0 {
			p.closeDrainedLocked()
			p.mu.Unlock()
			return nil
		}
		notify := p.notify
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil
		case <-p.drained:
			return nil
		case <-notify:
		}
	}
}

// finish returns a claimed entry as complete.
func (p *groupPool) finish() {
	p.mu.Lock()
	p.outstanding--
	if p.outstanding == 0 && len(p.queue) == 0 {
		p.closeDrainedLocked()
	}
	p.mu.Unlock()
}

// requeue hands a claimed entry back with its undelivered suffix after a
// session drop. It reports whether the remaining work is safe: true when
// the suffix was requeued (or nothing remains), false when the group
// already used its one retry — the caller must fail the batch.
func (p *groupPool) requeue(e *groupEntry, remaining []batchUnit) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outstanding--
	if len(remaining) == 0 {
		if p.outstanding == 0 && len(p.queue) == 0 {
			p.closeDrainedLocked()
		}
		return true
	}
	if e.retried {
		if p.outstanding == 0 && len(p.queue) == 0 {
			p.closeDrainedLocked()
		}
		return false
	}
	e.retried = true
	e.units = remaining
	p.queue = append([]*groupEntry{e}, p.queue...)
	close(p.notify)
	p.notify = make(chan struct{})
	return true
}
