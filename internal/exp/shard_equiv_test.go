package exp

// The sharded-execution acceptance tests: canonical result JSON must be
// byte-identical between the sequential engine and WithShards(k) for k in
// {1, 2, 4, 7} — across the whole catalog at the quick preset, across
// every preset of the simulator-backed experiment, and under both shard
// layouts ("range" and the fat-preorder "subtree" relabeling). CI repeats
// the check end-to-end by cmp-ing `cmd/experiments -shards` output against
// the serial run (see .github/workflows/ci.yml).

import (
	"context"
	"encoding/json"
	"testing"
)

// shardCounts are the acceptance shard counts.
var shardCounts = []int{1, 2, 4, 7}

// shardLayouts are the acceptance shard layouts. An empty ShardLayout is
// the engine default and identical to "range" by construction (the sim
// tests pin that), so the explicit names are what need catalog coverage.
var shardLayouts = []string{"range", "subtree"}

// canonicalBytes marshals the canonical (elapsed- and mechanics-stripped)
// form of a result.
func canonicalBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	raw, err := json.Marshal(Canonical(res))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestShardedCanonicalBytesCatalogWide runs every catalog experiment at the
// quick preset under each acceptance shard count and asserts the canonical
// JSON matches the unsharded run byte for byte. Analytic experiments ignore
// the knob; the simulator-backed ones must reproduce exactly.
func TestShardedCanonicalBytesCatalogWide(t *testing.T) {
	for _, e := range catalogExperiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			base, err := e.Run(context.Background(), RunConfig{Preset: PresetQuick})
			if err != nil {
				t.Fatal(err)
			}
			want := canonicalBytes(t, base)
			for _, layout := range shardLayouts {
				for _, k := range shardCounts {
					res, err := e.Run(context.Background(), RunConfig{Preset: PresetQuick, Shards: k, ShardLayout: layout})
					if err != nil {
						t.Fatalf("shards=%d layout=%s: %v", k, layout, err)
					}
					if got := canonicalBytes(t, res); string(got) != string(want) {
						t.Fatalf("shards=%d layout=%s: canonical JSON diverges from sequential\n got: %s\nwant: %s",
							k, layout, got, want)
					}
				}
			}
		})
	}
}

// TestShardedCanonicalBytesEveryPreset covers every preset of the
// simulator-backed experiment (the one whose execution actually flows
// through the sharded engine): for each preset and each acceptance shard
// count, canonical JSON must match the sequential run byte for byte. The
// stress preset is skipped under -short and under the race detector (it is
// the one long sweep; quick and standard already pin the contract).
func TestShardedCanonicalBytesEveryPreset(t *testing.T) {
	e, ok := Lookup("twocoloring-gap")
	if !ok {
		t.Fatal("twocoloring-gap not registered")
	}
	for _, preset := range []string{PresetQuick, PresetStandard, PresetStress} {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			if preset == PresetStress && (testing.Short() || raceEnabled) {
				t.Skip("stress sweep skipped under -short and -race")
			}
			t.Parallel()
			base, err := e.Run(context.Background(), RunConfig{Preset: preset})
			if err != nil {
				t.Fatal(err)
			}
			want := canonicalBytes(t, base)
			for _, layout := range shardLayouts {
				for _, k := range shardCounts {
					res, err := e.Run(context.Background(), RunConfig{Preset: preset, Shards: k, ShardLayout: layout})
					if err != nil {
						t.Fatalf("shards=%d layout=%s: %v", k, layout, err)
					}
					if got := canonicalBytes(t, res); string(got) != string(want) {
						t.Fatalf("shards=%d layout=%s: canonical JSON diverges from sequential", k, layout)
					}
				}
			}
		})
	}
}

// TestShardedBatchMatchesSerial: the task scheduler composes with sharding —
// a -jobs style batch run with Shards set must still reassemble the exact
// canonical aggregate of the serial unsharded run.
func TestShardedBatchMatchesSerial(t *testing.T) {
	exps := catalogExperiments()
	serial, err := RunBatch(context.Background(), exps, BatchOptions{
		Jobs: 1, Config: RunConfig{Preset: PresetQuick},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range shardLayouts {
		sharded, err := RunBatch(context.Background(), exps, BatchOptions{
			Jobs: 4, Config: RunConfig{Preset: PresetQuick, Shards: 7, ShardLayout: layout},
		})
		if err != nil {
			t.Fatalf("layout=%s: %v", layout, err)
		}
		if len(serial) != len(sharded) {
			t.Fatalf("layout=%s: result counts differ: %d vs %d", layout, len(serial), len(sharded))
		}
		for i := range serial {
			a := canonicalBytes(t, serial[i])
			b := canonicalBytes(t, sharded[i])
			if string(a) != string(b) {
				t.Fatalf("%s (layout=%s): sharded batch diverges from serial", serial[i].Name, layout)
			}
		}
	}
}
