package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/measure"
)

// scanFrames splits a worker's output stream into parsed generic frames.
func scanFrames(t *testing.T, out []byte) []map[string]any {
	t.Helper()
	var frames []map[string]any
	for _, line := range bytes.Split(bytes.TrimRight(out, "\n"), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("worker emitted a non-frame line %q: %v", line, err)
		}
		frames = append(frames, m)
	}
	return frames
}

// TestRunWorkerProtocol drives the worker loop directly through one task:
// hello first (correct version and catalog hash), then a result frame whose
// decoded output assembles into exactly what a direct Run produces, then a
// stats frame at EOF.
func TestRunWorkerProtocol(t *testing.T) {
	e, ok := Lookup("survivors")
	if !ok {
		t.Fatal("survivors not registered")
	}
	cfg := RunConfig{Preset: PresetQuick}
	tf, err := json.Marshal(TaskFrame{Type: FrameTask, ID: 7, Experiment: "survivors", Config: cfg, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RunWorker(context.Background(), bytes.NewReader(append(tf, '\n')), &out); err != nil {
		t.Fatal(err)
	}
	frames := scanFrames(t, out.Bytes())
	if len(frames) != 3 {
		t.Fatalf("worker emitted %d frames, want hello+result+stats:\n%s", len(frames), out.Bytes())
	}
	if frames[0]["type"] != FrameHello || frames[0]["proto"] != float64(ProtoVersion) ||
		frames[0]["catalog"] != CatalogHash() || frames[0]["build"] != BuildID() {
		t.Fatalf("bad hello frame: %v", frames[0])
	}
	var rf ResultFrame
	if err := json.Unmarshal(jsonLine(t, out.Bytes(), 1), &rf); err != nil || rf.Type != FrameResult {
		t.Fatalf("bad result frame: %v %v", frames[1], err)
	}
	if rf.ID != 7 {
		t.Fatalf("result frame id %d, want the task frame's 7", rf.ID)
	}
	plan, err := e.plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := plan.Decode(rf.Output)
	if err != nil {
		t.Fatal(err)
	}
	assembled, err := plan.Assemble([]any{decoded})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want, got := canonicalJSON(t, []*Result{direct}), canonicalJSON(t, []*Result{assembled}); !bytes.Equal(want, got) {
		t.Fatalf("wire round-trip diverged from direct Run:\n%s\nvs\n%s", want, got)
	}
	if frames[2]["type"] != FrameStats || frames[2]["tasks"] != float64(1) {
		t.Fatalf("bad stats frame: %v", frames[2])
	}
}

// jsonLine returns the i-th NDJSON line of a stream.
func jsonLine(t *testing.T, out []byte, i int) []byte {
	t.Helper()
	lines := bytes.Split(bytes.TrimRight(out, "\n"), []byte("\n"))
	if i >= len(lines) {
		t.Fatalf("stream has %d lines, wanted line %d", len(lines), i)
	}
	return lines[i]
}

// TestRunWorkerMalformedFrame: a line that is not JSON, or a frame missing
// its type, terminates the worker with an error (nonzero exit for the
// subcommand) after the hello frame.
func TestRunWorkerMalformedFrame(t *testing.T) {
	for _, input := range []string{"{this is not json\n", `{"id":3}` + "\n"} {
		var out bytes.Buffer
		err := RunWorker(context.Background(), strings.NewReader(input), &out)
		if err == nil || !strings.Contains(err.Error(), "malformed frame") {
			t.Fatalf("input %q: err = %v, want a malformed-frame error", input, err)
		}
		frames := scanFrames(t, out.Bytes())
		if len(frames) != 1 || frames[0]["type"] != FrameHello {
			t.Fatalf("input %q: worker emitted %v, want only the hello frame", input, frames)
		}
	}
}

// TestRunWorkerRejectsNonTaskFrames: only task frames flow to workers; a
// stray result/hello frame on stdin is a protocol error.
func TestRunWorkerRejectsNonTaskFrames(t *testing.T) {
	var out bytes.Buffer
	err := RunWorker(context.Background(), strings.NewReader(`{"type":"result","id":1}`+"\n"), &out)
	if err == nil || !strings.Contains(err.Error(), `unexpected "result" frame`) {
		t.Fatalf("err = %v, want an unexpected-frame error", err)
	}
}

// TestRunWorkerUnknownExperiment: an unaddressable task (unknown name, task
// index out of range) is an error frame — failing that task batch-side —
// not a worker death; the worker stays up and still reports stats.
func TestRunWorkerUnknownExperiment(t *testing.T) {
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for _, tf := range []TaskFrame{
		{Type: FrameTask, ID: 1, Experiment: "no-such-experiment", Config: RunConfig{}, Index: 0},
		{Type: FrameTask, ID: 2, Experiment: "survivors", Config: RunConfig{Preset: PresetQuick}, Index: 99},
	} {
		if err := enc.Encode(tf); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := RunWorker(context.Background(), &in, &out); err != nil {
		t.Fatal(err)
	}
	frames := scanFrames(t, out.Bytes())
	if len(frames) != 4 { // hello, two errors, stats
		t.Fatalf("worker emitted %d frames: %v", len(frames), frames)
	}
	for i, want := range []string{"not registered", "out of range"} {
		f := frames[i+1]
		if f["type"] != FrameError || !strings.Contains(f["error"].(string), want) {
			t.Fatalf("frame %d = %v, want an error frame mentioning %q", i+1, f, want)
		}
	}
	if frames[3]["type"] != FrameStats {
		t.Fatalf("missing stats frame: %v", frames[3])
	}
}

// TestCatalogHashIgnoresThrowawayRegistrations: the handshake hash is
// stable across runs and unmoved by "test-"/"example-" registrations, so a
// test or example registering a scratch experiment in the orchestrator
// process cannot desynchronize it from its workers.
func TestCatalogHashIgnoresThrowawayRegistrations(t *testing.T) {
	before := CatalogHash()
	if before != CatalogHash() {
		t.Fatal("CatalogHash is not deterministic")
	}
	if !strings.HasPrefix(before, "sha256:") {
		t.Fatalf("hash %q lacks its algorithm prefix", before)
	}
	MustRegister(&Experiment{
		Name: "test-proto-hash-throwaway",
		Run:  func(ctx context.Context, cfg RunConfig) (*Result, error) { return &Result{}, nil },
	})
	if after := CatalogHash(); after != before {
		t.Fatalf("a test- registration moved the catalog hash %q -> %q", before, after)
	}
}

// TestSweepPointWireCodec: the sweep-point wire encoding carries rows
// pre-formatted by the same renderer Table.AddRow uses, so assembling
// decoded points produces byte-identical table rows, and X/Y round-trip
// exactly for the orchestrator-side fit.
func TestSweepPointWireCodec(t *testing.T) {
	p := sweepPoint{
		pt:  measure.Point{X: 4096000, Y: 0.123456789},
		row: []any{4096000, 0.123456789, "cell", 7},
	}
	raw, err := encodeSweepPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := decodeSweepPoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	q := decoded.(sweepPoint)
	if q.pt != p.pt {
		t.Fatalf("point %v round-tripped to %v", p.pt, q.pt)
	}
	var local, wire measure.Table
	local.AddRow(p.row...)
	wire.AddRow(q.row...)
	if !reflect.DeepEqual(local.Rows, wire.Rows) {
		t.Fatalf("decoded row renders %v, local renders %v", wire.Rows, local.Rows)
	}
	if _, err := encodeSweepPoint("not a point"); err == nil {
		t.Fatal("encoding a non-point succeeded")
	}
}

// TestFrameTypesCoverProtocol: the exported frame list — the docs gate's
// source of truth — names exactly the discriminators the implementation
// emits.
func TestFrameTypesCoverProtocol(t *testing.T) {
	want := []string{FrameHello, FrameTask, FrameResult, FrameError, FrameStats}
	if got := FrameTypes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FrameTypes() = %v, want %v", got, want)
	}
}
