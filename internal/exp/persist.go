package exp

// Persistence and regression comparison: canonical result files written by
// cmd/experiments -out, loadable and diffable so a stored run doubles as a
// regression baseline for a later one.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"repro/internal/measure"
)

// Canonical returns a copy of res with the volatile and execution-mechanics
// fields zeroed: ElapsedMS is wall-clock and differs run to run, and
// Parallelism, Shards, Steps, ShardLayout, and ShardTraffic describe how
// the run was scheduled and how much simulator work and cross-shard traffic
// it performed, not what it computed (results are identical at every
// setting). Two runs of the same experiment at the same preset and seed
// therefore marshal to identical bytes regardless of -jobs, -parallel,
// -shards, or -shard-layout.
func Canonical(res *Result) *Result {
	c := *res
	c.ElapsedMS = 0
	c.Parallelism = 0
	c.Shards = 0
	c.Steps = 0
	c.ShardLayout = ""
	c.ShardTraffic = nil
	return &c
}

// ResultKey identifies a persisted run: experiment + preset + seed. It is
// the per-result file stem of WriteResults, the join key of Compare, and the
// memoization key of the expd result store (internal/serve). Parallelism and
// shards are deliberately absent: they are execution mechanics that the
// canonical form strips, so runs differing only in scheduling share a key.
func ResultKey(res *Result) string {
	return resultKey(res.Name, res.Preset, res.Seed)
}

func resultKey(name, preset string, seed uint64) string {
	return fmt.Sprintf("%s__%s__seed%d", name, preset, seed)
}

// ResultKeyFor returns the ResultKey a run of e under cfg will persist as,
// resolving the preset default ("" means standard) and the seed default
// (0 means the experiment's DefaultSeed) exactly the way Run stamps them
// into the Result. It fails on a preset the experiment does not declare, so
// a caller can reject a request before computing anything. The key is
// independent of cfg.Parallelism and cfg.Shards, matching Canonical.
func (e *Experiment) ResultKeyFor(cfg RunConfig) (string, error) {
	_, preset, err := e.sizesFor(cfg)
	if err != nil {
		return "", err
	}
	return resultKey(e.Name, preset, e.seedFor(cfg)), nil
}

// CanonicalJSON renders res exactly as WriteResults persists it in a
// directory result set: the canonical (elapsed- and mechanics-stripped)
// form, two-space indented, newline terminated. It is the byte contract of
// the expd result store — a served response must be byte-identical to the
// file cmd/experiments -out writes for the same ResultKey.
func CanonicalJSON(res *Result) ([]byte, error) {
	raw, err := json.MarshalIndent(Canonical(res), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// WriteResults persists results in canonical form. A path ending in ".json"
// receives the whole batch as one indented JSON array; any other path is
// created as a directory holding one "<name>__<preset>__seed<S>.json" file
// per result. Both forms are deterministic byte-for-byte for deterministic
// results, so they diff cleanly under version control.
func WriteResults(path string, results []*Result) error {
	canon := make([]*Result, len(results))
	for i, res := range results {
		if res == nil {
			return fmt.Errorf("exp: WriteResults: nil result at position %d", i)
		}
		canon[i] = Canonical(res)
	}
	if strings.HasSuffix(path, ".json") {
		raw, err := json.MarshalIndent(canon, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(raw, '\n'), 0o644)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return err
	}
	// The directory is the result set: drop stale .json files from earlier
	// writes so a reused -out dir never feeds phantom runs into Compare.
	existing, err := os.ReadDir(path)
	if err != nil {
		return err
	}
	for _, e := range existing {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			if err := os.Remove(filepath.Join(path, e.Name())); err != nil {
				return err
			}
		}
	}
	for _, res := range canon {
		raw, err := CanonicalJSON(res)
		if err != nil {
			return err
		}
		file := filepath.Join(path, ResultKey(res)+".json")
		if err := os.WriteFile(file, raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadResults reads a result set written by WriteResults: either a single
// .json file holding an array (or one object), or a directory of per-result
// .json files.
func LoadResults(path string) ([]*Result, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return loadResultFile(path)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		part, err := loadResultFile(filepath.Join(path, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("exp: no result files in %s", path)
	}
	return out, nil
}

func loadResultFile(file string) ([]*Result, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var many []*Result
	if err := json.Unmarshal(raw, &many); err == nil {
		return many, nil
	}
	var one Result
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, fmt.Errorf("exp: %s: neither a result array nor a result object: %w", file, err)
	}
	return []*Result{&one}, nil
}

// Drift is one divergence found by Compare.
type Drift struct {
	// Key is the ResultKey of the affected run.
	Key string `json:"key"`
	// Field names what diverged: "slope", "theory_slope", "tables",
	// "missing" (in new), or "extra" (not in old).
	Field string `json:"field"`
	// Old and New are the compared values where numeric (slope fields).
	Old float64 `json:"old,omitempty"`
	New float64 `json:"new,omitempty"`
	// Detail is the human-readable description.
	Detail string `json:"detail"`
}

// Compare diffs two result sets, joined on ResultKey, and returns every
// drift found: fitted slopes moving more than tol, theory slopes changing
// at all (they are analytic constants), table counts changing, runs
// present on only one side, and — for results without a fit — any change
// to the table content itself (fit-less tables are analytic or discrete:
// survivor counts, density witnesses, figures, classifications; they must
// reproduce exactly, while measured sweep tables get the slope tolerance).
// An empty return means the new set reproduces the old within tolerance.
func Compare(base, cur []*Result, tol float64) []Drift {
	index := func(rs []*Result) map[string]*Result {
		m := make(map[string]*Result, len(rs))
		for _, r := range rs {
			if r != nil {
				m[ResultKey(r)] = r
			}
		}
		return m
	}
	oldBy, newBy := index(base), index(cur)
	keys := make([]string, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, ok := oldBy[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var drifts []Drift
	for _, k := range keys {
		o, haveOld := oldBy[k]
		n, haveNew := newBy[k]
		switch {
		case !haveNew:
			drifts = append(drifts, Drift{Key: k, Field: "missing",
				Detail: "run present in old set but missing from new"})
			continue
		case !haveOld:
			drifts = append(drifts, Drift{Key: k, Field: "extra",
				Detail: "run present in new set but not in old"})
			continue
		}
		if (o.Fit == nil) != (n.Fit == nil) {
			drifts = append(drifts, Drift{Key: k, Field: "tables",
				Detail: "fit section appeared or disappeared"})
			continue
		}
		if o.Fit != nil {
			if d := math.Abs(n.Fit.Slope - o.Fit.Slope); d > tol {
				drifts = append(drifts, Drift{Key: k, Field: "slope",
					Old: o.Fit.Slope, New: n.Fit.Slope,
					Detail: fmt.Sprintf("fitted slope drifted %.4g > tol %.4g", d, tol)})
			}
			if o.Fit.TheorySlope != n.Fit.TheorySlope {
				drifts = append(drifts, Drift{Key: k, Field: "theory_slope",
					Old: o.Fit.TheorySlope, New: n.Fit.TheorySlope,
					Detail: "theory slope changed (analytic constant)"})
			}
		}
		if len(o.Tables) != len(n.Tables) {
			drifts = append(drifts, Drift{Key: k, Field: "tables",
				Old: float64(len(o.Tables)), New: float64(len(n.Tables)),
				Detail: fmt.Sprintf("table count changed %d -> %d", len(o.Tables), len(n.Tables))})
			continue
		}
		if o.Fit == nil {
			if detail, same := tablesEqual(o.Tables, n.Tables); !same {
				drifts = append(drifts, Drift{Key: k, Field: "tables", Detail: detail})
			}
		}
	}
	return drifts
}

// tablesEqual deep-compares two table slices of equal length, returning a
// description of the first divergence.
func tablesEqual(a, b []measure.Table) (string, bool) {
	for i := range a {
		if a[i].Title != b[i].Title {
			return fmt.Sprintf("table %d title changed %q -> %q", i, a[i].Title, b[i].Title), false
		}
		if !reflect.DeepEqual(a[i].Header, b[i].Header) {
			return fmt.Sprintf("table %d header changed", i), false
		}
		if len(a[i].Rows) != len(b[i].Rows) {
			return fmt.Sprintf("table %d row count changed %d -> %d", i, len(a[i].Rows), len(b[i].Rows)), false
		}
		for r := range a[i].Rows {
			if !reflect.DeepEqual(a[i].Rows[r], b[i].Rows[r]) {
				return fmt.Sprintf("table %d row %d changed %v -> %v", i, r, a[i].Rows[r], b[i].Rows[r]), false
			}
		}
	}
	return "", true
}
