package pathlcl

import (
	"fmt"
	"sort"
)

// The black-white formalism of Definition 70: problems on properly
// 2-colored trees whose outputs live on edges; a node's constraint is a set
// of allowed multisets of (input, output) pairs over its incident edges.

// Pair is one (input label, output label) edge annotation.
type Pair struct {
	In, Out int
}

// Multiset is a sorted multiset of pairs (the canonical form used for
// constraint matching).
type Multiset []Pair

// Canon sorts the multiset into canonical order.
func (m Multiset) Canon() Multiset {
	out := append(Multiset(nil), m...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].In != out[j].In {
			return out[i].In < out[j].In
		}
		return out[i].Out < out[j].Out
	})
	return out
}

// BWProblem is an LCL in the black-white formalism (Definition 70).
type BWProblem struct {
	Name   string
	NumIn  int
	NumOut int
	White  []Multiset // allowed multisets at white nodes
	Black  []Multiset // allowed multisets at black nodes
}

// Side selects the white or black constraint.
type Side uint8

// Node sides.
const (
	SideWhite Side = iota + 1
	SideBlack
)

// constraints returns the multiset list of the side.
func (p *BWProblem) constraints(s Side) []Multiset {
	if s == SideWhite {
		return p.White
	}
	return p.Black
}

// LabelSet is a set of output labels, the label-sets of Definition 73/74.
type LabelSet map[int]bool

// NewLabelSet builds a set from labels.
func NewLabelSet(labels ...int) LabelSet {
	s := make(LabelSet, len(labels))
	for _, l := range labels {
		s[l] = true
	}
	return s
}

// Sorted returns the labels in increasing order.
func (s LabelSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// SingleNodeLabelSet implements the "single nodes" case of Definition 74:
// given a node of the given side whose incoming edges carry input labels
// incomingIn[i] and label-sets incoming[i], and whose single outgoing edge
// carries input label outIn, it returns g(v): the set of output labels o
// assignable to the outgoing edge such that some choice
// ℓ_i ∈ incoming[i] makes the full incident multiset allowed.
func SingleNodeLabelSet(p *BWProblem, side Side, incomingIn []int, incoming []LabelSet, outIn int) (LabelSet, error) {
	if len(incomingIn) != len(incoming) {
		return nil, fmt.Errorf("pathlcl: %d incoming inputs for %d sets", len(incomingIn), len(incoming))
	}
	deg := len(incoming) + 1
	result := make(LabelSet)
	for _, ms := range p.constraints(side) {
		if len(ms) != deg {
			continue
		}
		canon := ms.Canon()
		// Try every element of the multiset as the outgoing pair.
		for j, pr := range canon {
			if pr.In != outIn || result[pr.Out] {
				continue
			}
			rest := make(Multiset, 0, deg-1)
			rest = append(rest, canon[:j]...)
			rest = append(rest, canon[j+1:]...)
			if matchIncoming(rest, incomingIn, incoming) {
				result[pr.Out] = true
			}
		}
	}
	return result, nil
}

// matchIncoming decides whether the remaining multiset can be assigned
// bijectively to the incoming edges, respecting each edge's input label and
// label-set (bitmask DP over edges; degrees are constant).
func matchIncoming(rest Multiset, incomingIn []int, incoming []LabelSet) bool {
	k := len(rest)
	if k != len(incoming) {
		return false
	}
	if k == 0 {
		return true
	}
	// can[i] = bitmask of pairs edge i can absorb.
	can := make([]uint32, k)
	for i := range incoming {
		for j, pr := range rest {
			if pr.In == incomingIn[i] && incoming[i][pr.Out] {
				can[i] |= 1 << uint(j)
			}
		}
	}
	// DP over subsets: match edges 0..i-1 to the pairs in the subset.
	dp := make([]bool, 1<<uint(k))
	dp[0] = true
	for mask := 0; mask < 1<<uint(k); mask++ {
		if !dp[mask] {
			continue
		}
		i := popcount(uint32(mask))
		if i == k {
			return true
		}
		avail := can[i] &^ uint32(mask)
		for avail != 0 {
			bit := avail & (-avail)
			dp[mask|int(bit)] = true
			avail &^= bit
		}
	}
	return dp[1<<uint(k)-1]
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// EdgeColoringBW returns the proper 2-edge-coloring problem on 2-colored
// paths in the black-white formalism (a standard example: every node of
// degree 2 must see two distinct edge outputs).
func EdgeColoringBW() *BWProblem {
	distinct := []Multiset{
		{{0, 0}, {0, 1}},
	}
	single := []Multiset{{{0, 0}}, {{0, 1}}}
	all := append(append([]Multiset{}, distinct...), single...)
	return &BWProblem{
		Name:   "2-edge-coloring",
		NumIn:  1,
		NumOut: 2,
		White:  all,
		Black:  all,
	}
}
