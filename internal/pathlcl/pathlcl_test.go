package pathlcl

import (
	"testing"
	"testing/quick"
)

func findProblem(t *testing.T, name string) Problem {
	t.Helper()
	for _, p := range Catalogue() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("catalogue has no %q", name)
	return Problem{}
}

func TestClassifyCatalogue(t *testing.T) {
	want := map[string]Class{
		"trivial (any labeling)":          ClassConstant,
		"consistent value":                ClassConstant,
		"2-coloring":                      ClassLinear,
		"3-coloring":                      ClassLogStar,
		"at most one color change (weak)": ClassConstant,
		"no solution":                     ClassUnsolvable,
		"5-cycle walk (odd, loopless)":    ClassLogStar,
		"4-cycle walk (even, loopless)":   ClassLinear,
	}
	for _, p := range Catalogue() {
		got, err := Classify(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got != want[p.Name] {
			t.Errorf("%s: classified %v, want %v", p.Name, got, want[p.Name])
		}
	}
}

func TestClassifyRejectsAsymmetric(t *testing.T) {
	p := Problem{
		Name:   "asym",
		Labels: 2,
		Allowed: [][]bool{
			{false, true},
			{false, false},
		},
	}
	if _, err := Classify(p); err == nil {
		t.Fatal("asymmetric relation accepted")
	}
}

func TestSolvePathProducesValidLabelings(t *testing.T) {
	for _, p := range Catalogue() {
		class, err := Classify(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 5, 40} {
			labels, err := SolvePath(p, n)
			if class == ClassUnsolvable && n >= 2 {
				if err == nil {
					t.Errorf("%s: unsolvable but SolvePath succeeded", p.Name)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s n=%d: %v", p.Name, n, err)
			}
			if err := p.VerifyLabeling(labels); err != nil {
				t.Fatalf("%s n=%d: %v", p.Name, n, err)
			}
		}
	}
}

func TestTwoColoringNeedsParity(t *testing.T) {
	p := findProblem(t, "2-coloring")
	// All-same labeling must be rejected by the verifier.
	if p.VerifyLabeling([]int{0, 0}) == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if p.VerifyLabeling([]int{0, 1, 0, 1}) != nil {
		t.Fatal("alternating labeling rejected")
	}
}

func TestQuickClassifyTotal(t *testing.T) {
	// Classify must return a sensible class for every random symmetric
	// relation.
	f := func(bits uint16, sz uint8) bool {
		labels := 1 + int(sz)%4
		allowed := make([][]bool, labels)
		for i := range allowed {
			allowed[i] = make([]bool, labels)
		}
		b := bits
		for a := 0; a < labels; a++ {
			for c := a; c < labels; c++ {
				if b&1 == 1 {
					allowed[a][c] = true
					allowed[c][a] = true
				}
				b >>= 1
			}
		}
		p := Problem{Name: "rand", Labels: labels, Allowed: allowed}
		class, err := Classify(p)
		if err != nil {
			return false
		}
		switch class {
		case ClassUnsolvable, ClassConstant, ClassLogStar, ClassLinear:
		default:
			return false
		}
		// Constructive cross-check: solvable classes must actually solve.
		if class != ClassUnsolvable {
			lab, err := SolvePath(p, 17)
			if err != nil {
				return false
			}
			if p.VerifyLabeling(lab) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeLabelSetEdgeColoring(t *testing.T) {
	p := EdgeColoringBW()
	// Degree-2 node with one incoming edge whose label-set is {0}: the
	// outgoing edge must take {1}.
	got, err := SingleNodeLabelSet(p, SideWhite, []int{0}, []LabelSet{NewLabelSet(0)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[1] {
		t.Fatalf("label set %v, want {1}", got.Sorted())
	}
	// Incoming {0,1}: outgoing may be either.
	got, err = SingleNodeLabelSet(p, SideWhite, []int{0}, []LabelSet{NewLabelSet(0, 1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("label set %v, want {0,1}", got.Sorted())
	}
	// Leaf (no incoming): both singles allowed.
	got, err = SingleNodeLabelSet(p, SideBlack, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("leaf label set %v, want {0,1}", got.Sorted())
	}
}

func TestSingleNodeLabelSetEmptyWhenOverconstrained(t *testing.T) {
	p := EdgeColoringBW()
	// Two incoming edges already forcing both colors, no 3-edge multiset
	// exists: outgoing set must be empty (this is how the testing procedure
	// detects functions that are not good).
	got, err := SingleNodeLabelSet(p, SideWhite,
		[]int{0, 0}, []LabelSet{NewLabelSet(0), NewLabelSet(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("label set %v, want empty", got.Sorted())
	}
}

func TestMultisetCanon(t *testing.T) {
	m := Multiset{{1, 2}, {0, 3}, {0, 1}}
	c := m.Canon()
	if c[0] != (Pair{0, 1}) || c[1] != (Pair{0, 3}) || c[2] != (Pair{1, 2}) {
		t.Fatalf("canon = %v", c)
	}
	// Original untouched.
	if m[0] != (Pair{1, 2}) {
		t.Fatal("Canon mutated its receiver")
	}
}

func TestClassString(t *testing.T) {
	if ClassConstant.String() != "O(1)" || ClassLinear.String() != "Θ(n)" {
		t.Fatal("class names wrong")
	}
}
