// Package pathlcl implements the decidability machinery that Section 11 of
// the paper bottoms out in: classification of LCLs on paths (Lemma 81,
// Observation 78) and the black-white formalism of Definition 70 with the
// single-node label-set computation of Definition 74.
//
// Path LCLs are given by a finite output alphabet and a symmetric
// compatibility relation on adjacent outputs (no inputs; endpoints
// unconstrained). For this fragment the deterministic worst-case complexity
// on paths is exactly one of O(1), Θ(log* n), Θ(n), or unsolvable, decided
// by Classify:
//
//   - unsolvable       iff the compatibility relation is empty (n >= 2);
//   - O(1)             iff some label is self-compatible (a constant labeling
//     is valid; conversely, an O(1) algorithm is order-
//     invariant on middle nodes and must label two adjacent
//     indistinguishable nodes identically);
//   - Θ(log* n)        iff no self-loop but some compatibility component
//     contains an odd closed walk (non-bipartite: symmetry
//     can be broken with a 3-coloring-style rendezvous);
//   - Θ(n)             otherwise (every component bipartite: the labeling
//     carries a global 2-coloring-like parity).
//
// By Feuilloley's transfer (Lemma 16 of the paper), the deterministic
// node-averaged complexity on paths coincides with the worst case for the
// Θ(n) and Θ(log* n) classes, so Classify also reports the node-averaged
// class.
package pathlcl

import (
	"errors"
	"fmt"
)

// Class is a worst-case complexity class of a path LCL.
type Class uint8

// The possible classes.
const (
	ClassUnsolvable Class = iota + 1
	ClassConstant         // O(1)
	ClassLogStar          // Θ(log* n)
	ClassLinear           // Θ(n)
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassUnsolvable:
		return "unsolvable"
	case ClassConstant:
		return "O(1)"
	case ClassLogStar:
		return "Θ(log* n)"
	case ClassLinear:
		return "Θ(n)"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Problem is a path LCL: labels 0..Labels-1 with a symmetric compatibility
// relation.
type Problem struct {
	Name   string
	Labels int
	// Allowed[a][b] reports whether labels a and b may appear on adjacent
	// nodes. Must be symmetric.
	Allowed [][]bool
}

// ErrBadProblem indicates a malformed problem description.
var ErrBadProblem = errors.New("malformed path LCL")

// Validate checks shape and symmetry.
func (p Problem) Validate() error {
	if p.Labels < 1 {
		return fmt.Errorf("%w: %d labels", ErrBadProblem, p.Labels)
	}
	if len(p.Allowed) != p.Labels {
		return fmt.Errorf("%w: Allowed has %d rows", ErrBadProblem, len(p.Allowed))
	}
	for a := range p.Allowed {
		if len(p.Allowed[a]) != p.Labels {
			return fmt.Errorf("%w: row %d has %d entries", ErrBadProblem, a, len(p.Allowed[a]))
		}
	}
	for a := 0; a < p.Labels; a++ {
		for b := 0; b < p.Labels; b++ {
			if p.Allowed[a][b] != p.Allowed[b][a] {
				return fmt.Errorf("%w: relation not symmetric at (%d,%d)", ErrBadProblem, a, b)
			}
		}
	}
	return nil
}

// Classify decides the deterministic worst-case (= node-averaged, by
// Lemma 16) complexity class of the problem on paths.
func Classify(p Problem) (Class, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	hasEdge := false
	for a := 0; a < p.Labels; a++ {
		for b := a; b < p.Labels; b++ {
			if p.Allowed[a][b] {
				hasEdge = true
			}
		}
		if p.Allowed[a][a] {
			return ClassConstant, nil
		}
	}
	if !hasEdge {
		return ClassUnsolvable, nil
	}
	if hasOddClosedWalk(p) {
		return ClassLogStar, nil
	}
	return ClassLinear, nil
}

// hasOddClosedWalk reports whether the compatibility graph (self-loops
// excluded by the caller) has a non-bipartite connected component.
func hasOddClosedWalk(p Problem) bool {
	color := make([]int, p.Labels) // 0 unvisited, 1/2 sides
	for s := 0; s < p.Labels; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for b := 0; b < p.Labels; b++ {
				if !p.Allowed[a][b] {
					continue
				}
				if color[b] == 0 {
					color[b] = 3 - color[a]
					queue = append(queue, b)
				} else if color[b] == color[a] {
					return true
				}
			}
		}
	}
	return false
}

// VerifyLabeling checks a labeling of a path (nodes in path order).
func (p Problem) VerifyLabeling(labels []int) error {
	for i, l := range labels {
		if l < 0 || l >= p.Labels {
			return fmt.Errorf("%w: label %d at position %d", ErrBadProblem, l, i)
		}
		if i > 0 && !p.Allowed[labels[i-1]][l] {
			return fmt.Errorf("%w: pair (%d,%d) at positions %d,%d not allowed",
				ErrBadProblem, labels[i-1], l, i-1, i)
		}
	}
	return nil
}

// SolvePath produces a valid labeling of a path with n nodes for any
// solvable problem, using the class-appropriate strategy (constant labeling,
// walk unrolling, or parity). Used by tests to confirm Classify's
// solvability verdicts constructively.
func SolvePath(p Problem, n int) ([]int, error) {
	class, err := Classify(p)
	if err != nil {
		return nil, err
	}
	switch class {
	case ClassUnsolvable:
		if n == 1 {
			return []int{0}, nil
		}
		return nil, fmt.Errorf("pathlcl: %q unsolvable for n=%d", p.Name, n)
	case ClassConstant:
		for a := 0; a < p.Labels; a++ {
			if p.Allowed[a][a] {
				out := make([]int, n)
				for i := range out {
					out[i] = a
				}
				return out, nil
			}
		}
		return nil, fmt.Errorf("pathlcl: internal: constant class without self-loop")
	default:
		// Unroll any walk: greedily continue from an arbitrary edge.
		var a, b int
		found := false
		for a = 0; a < p.Labels && !found; a++ {
			for b = 0; b < p.Labels; b++ {
				if p.Allowed[a][b] {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		out := make([]int, n)
		for i := range out {
			if i%2 == 0 {
				out[i] = a
			} else {
				out[i] = b
			}
		}
		return out, nil
	}
}

// Catalogue returns the classical path LCLs used in the experiments
// (Theorem 7 demonstration table).
func Catalogue() []Problem {
	mk := func(name string, labels int, pairs [][2]int) Problem {
		allowed := make([][]bool, labels)
		for i := range allowed {
			allowed[i] = make([]bool, labels)
		}
		for _, pr := range pairs {
			allowed[pr[0]][pr[1]] = true
			allowed[pr[1]][pr[0]] = true
		}
		return Problem{Name: name, Labels: labels, Allowed: allowed}
	}
	return []Problem{
		mk("trivial (any labeling)", 2, [][2]int{{0, 0}, {0, 1}, {1, 1}}),
		mk("consistent value", 2, [][2]int{{0, 0}, {1, 1}}),
		mk("2-coloring", 2, [][2]int{{0, 1}}),
		mk("3-coloring", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}),
		mk("at most one color change (weak)", 2, [][2]int{{0, 0}, {0, 1}, {1, 1}}),
		mk("no solution", 2, nil),
		mk("5-cycle walk (odd, loopless)", 5,
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}),
		mk("4-cycle walk (even, loopless)", 4,
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
	}
}
