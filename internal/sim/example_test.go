package sim_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// countdown is a minimal LOCAL algorithm for the examples: every node pings
// its neighbors for three rounds and then terminates, outputting how many
// messages it heard in total. A degree-d node hears d messages in each of
// rounds 1-3 (its neighbors' round-0..2 sends arrive one round later), so on
// a path the endpoints output 3 and interior nodes output 6.
type countdown struct{}

func (countdown) Name() string { return "countdown" }

func (countdown) NewMachine(info sim.NodeInfo) sim.Machine {
	return &countdownMachine{degree: info.Degree}
}

type countdownMachine struct {
	degree int
	heard  int
}

func (m *countdownMachine) Step(round int, recv []any) ([]any, bool) {
	for _, msg := range recv {
		if _, ok := msg.(string); ok {
			m.heard++
		}
	}
	if round >= 3 {
		return nil, true
	}
	send := make([]any, m.degree)
	for i := range send {
		send[i] = "ping"
	}
	return send, false
}

func (m *countdownMachine) Output() any { return m.heard }

// ExampleNewEngine configures an Engine with functional options and runs a
// deterministic three-round algorithm on a path. The same options plus
// WithParallelism or WithShards would produce bit-identical Rounds, Outputs,
// and Messages.
func ExampleNewEngine() {
	tree, err := graph.BuildPath(5)
	if err != nil {
		panic(err)
	}
	eng := sim.NewEngine(
		sim.WithIDs(sim.SequentialIDs(5)), // deterministic identifiers
		sim.WithMaxRounds(100),
	)
	res, err := eng.Run(tree, countdown{})
	if err != nil {
		panic(err)
	}
	fmt.Println("total rounds:", res.TotalRounds)
	fmt.Println("node-averaged:", res.NodeAveraged())
	fmt.Println("outputs:", res.Outputs)
	// Output:
	// total rounds: 4
	// node-averaged: 3
	// outputs: [3 6 6 6 3]
}

// ExampleNewEngine_sharded runs the same computation on the sharded backend:
// the path is split into two node-range shards that exchange only the
// messages crossing the single boundary edge. Results are bit-identical to
// the sequential run; the per-shard statistics report the boundary traffic.
func ExampleNewEngine_sharded() {
	tree, err := graph.BuildPath(5)
	if err != nil {
		panic(err)
	}
	res, err := sim.NewEngine(
		sim.WithIDs(sim.SequentialIDs(5)),
		sim.WithShards(2),
	).Run(tree, countdown{})
	if err != nil {
		panic(err)
	}
	fmt.Println("outputs:", res.Outputs)
	for _, s := range res.Shards {
		fmt.Printf("shard %d: %d nodes, %d boundary edges, %d messages crossed\n",
			s.Shard, s.Nodes, s.BoundaryEdges, s.MessagesCrossed)
	}
	// Output:
	// outputs: [3 6 6 6 3]
	// shard 0: 3 nodes, 1 boundary edges, 3 messages crossed
	// shard 1: 2 nodes, 1 boundary edges, 3 messages crossed
}
