package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
)

// tick is a minimal algorithm used to measure pure engine overhead: every
// node sends a constant (pre-boxed) message to all neighbors for a fixed
// number of rounds, then terminates. Send buffers are allocated once per
// machine, so any steady-state allocation observed belongs to the engine.
var (
	tickMsg any = "tick"
	tickOut any = "done"
)

type tickAlg struct{ rounds int }

func (a tickAlg) Name() string { return "tick" }
func (a tickAlg) NewMachine(info NodeInfo) Machine {
	return &tickMachine{rounds: a.rounds, send: make([]any, info.Degree)}
}

type tickMachine struct {
	rounds int
	send   []any
}

func (m *tickMachine) Step(round int, recv []any) ([]any, bool) {
	if round >= m.rounds {
		return nil, true
	}
	for i := range m.send {
		m.send[i] = tickMsg
	}
	return m.send, false
}

func (m *tickMachine) Output() any { return tickOut }

// forever never terminates; used to exercise cancellation and round limits.
type forever struct{}

func (forever) Name() string                { return "forever" }
func (forever) NewMachine(NodeInfo) Machine { return foreverMachine{} }

type foreverMachine struct{}

func (foreverMachine) Step(int, []any) ([]any, bool) { return nil, false }
func (foreverMachine) Output() any                   { return nil }

// echoAlias returns its recv slice as its send slice, which the engine
// contract permits; guards the inbox clear-after-send ordering.
type echoAlias struct{ rounds int }

func (a echoAlias) Name() string { return "echo-alias" }
func (a echoAlias) NewMachine(info NodeInfo) Machine {
	return &echoAliasMachine{rounds: a.rounds}
}

type echoAliasMachine struct {
	rounds int
	got    int
}

func (m *echoAliasMachine) Step(round int, recv []any) ([]any, bool) {
	for _, x := range recv {
		if x != nil {
			m.got++
		}
	}
	if round >= m.rounds {
		return nil, true
	}
	if round == 0 {
		out := make([]any, len(recv))
		for i := range out {
			out[i] = tickMsg
		}
		return out, false
	}
	return recv, false // alias: forward exactly what was received
}

func (m *echoAliasMachine) Output() any { return m.got }

// TestEngineGoldenSemantics pins the simulator contract to concrete values
// (Run now delegates to the Engine, so comparing the two would be vacuous):
// with tickAlg{rounds: R} on a path, every node terminates in round R, the
// execution takes R+1 rounds total, and exactly R rounds of full-degree
// sends are delivered. The legacy Config wrapper must plumb through to the
// same result.
func TestEngineGoldenSemantics(t *testing.T) {
	const n, rounds = 500, 7
	tr := mustPath(t, n)
	ids := DefaultIDs(n, 9)
	res, err := NewEngine(WithIDs(ids)).Run(tr, tickAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res.Rounds {
		if r != rounds {
			t.Fatalf("node %d terminated in round %d, want %d", v, r, rounds)
		}
	}
	if res.TotalRounds != rounds+1 {
		t.Fatalf("TotalRounds = %d, want %d", res.TotalRounds, rounds+1)
	}
	// Each of the first `rounds` rounds delivers one message per directed
	// edge: 2(n-1) on a path.
	if want := int64(rounds * 2 * (n - 1)); res.Messages != want {
		t.Fatalf("Messages = %d, want %d", res.Messages, want)
	}
	legacy, err := Run(tr, tickAlg{rounds: rounds}, Config{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, res) {
		t.Fatal("legacy Config wrapper diverges from engine options")
	}
}

// TestEngineSequentialParallelEquivalence: identical seeds must yield
// bit-identical results at every parallelism level (the per-round barrier
// makes parallel stepping semantics-preserving).
func TestEngineSequentialParallelEquivalence(t *testing.T) {
	const n = 2000
	tr := mustPath(t, n)
	ids := DefaultIDs(n, 42)
	algs := []Algorithm{tickAlg{rounds: 5}, echoAlias{rounds: 9}}
	for _, alg := range algs {
		seq, err := NewEngine(WithIDs(ids), WithParallelism(1)).Run(tr, alg)
		if err != nil {
			t.Fatalf("%s sequential: %v", alg.Name(), err)
		}
		for _, p := range []int{2, 4, 8, -1} { // -1 = GOMAXPROCS
			par, err := NewEngine(WithIDs(ids), WithParallelism(p)).Run(tr, alg)
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", alg.Name(), p, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s parallel=%d diverges from sequential", alg.Name(), p)
			}
		}
	}
}

// TestEngineContextCancellation: a canceled context must abort the run
// promptly with an error wrapping context.Canceled.
func TestEngineContextCancellation(t *testing.T) {
	tr := mustPath(t, 64)
	for _, p := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := NewEngine(
			WithContext(ctx),
			WithParallelism(p),
			WithMaxRounds(1<<30),
		).Run(tr, forever{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism=%d: got %v, want wrapped context.Canceled", p, err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("parallelism=%d: cancellation took %v, want prompt return", p, el)
		}
		cancel()
	}
}

// TestEngineRoundLimit keeps the ErrRoundLimit contract.
func TestEngineRoundLimit(t *testing.T) {
	tr := mustPath(t, 8)
	_, err := NewEngine(WithMaxRounds(3)).Run(tr, forever{})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("got %v, want ErrRoundLimit", err)
	}
}

// TestEngineInputLengthValidation: mismatched option slices are rejected.
func TestEngineInputLengthValidation(t *testing.T) {
	tr := mustPath(t, 8)
	if _, err := NewEngine(WithIDs(make([]uint64, 3))).Run(tr, tickAlg{rounds: 1}); err == nil {
		t.Fatal("short ID slice accepted")
	}
	if _, err := NewEngine(WithInputs(make([]any, 3))).Run(tr, tickAlg{rounds: 1}); err == nil {
		t.Fatal("short input slice accepted")
	}
}

// TestEngineSteadyStateAllocs asserts the hot-loop allocation fix: after
// setup, extra rounds must not allocate (message buffers are reused via
// clear-and-swap, and the boxed Terminated value is cached per node). The
// assertion compares whole-run allocations of a short and a long run on the
// same instance; the difference is the per-round churn.
func TestEngineSteadyStateAllocs(t *testing.T) {
	const n, shortR, longR = 256, 8, 264
	tr := mustPath(t, n)
	ids := DefaultIDs(n, 3)
	runRounds := func(rounds int) func() {
		return func() {
			if _, err := NewEngine(WithIDs(ids)).Run(tr, tickAlg{rounds: rounds}); err != nil {
				t.Fatal(err)
			}
		}
	}
	short := testing.AllocsPerRun(10, runRounds(shortR))
	long := testing.AllocsPerRun(10, runRounds(longR))
	// Generous slack for runtime noise; the seed engine churned O(n) boxed
	// Terminated values per round, i.e. tens of thousands over this gap.
	if churn := long - short; churn > 16 {
		t.Fatalf("%.0f extra allocations over %d extra rounds; hot loop is churning",
			churn, longR-shortR)
	}
}

// BenchmarkEngine measures engine overhead per node-round on a path (the
// degree-2 cache-friendly extreme) and a hierarchical lower-bound instance
// (the branchy shape the sweeps actually run on), and guards the allocation
// fix: run with -benchmem; steady-state allocs/op must stay flat in the
// round count (see TestEngineSteadyStateAllocs for the hard assertion).
// BENCH_engine.json records the committed before/after numbers of the flat
// CSR + struct-of-arrays refactor.
func BenchmarkEngine(b *testing.B) {
	const rounds = 32
	for _, in := range []struct {
		name  string
		build func() (*graph.Tree, error)
	}{
		{"path4096", func() (*graph.Tree, error) { return graph.BuildPath(4096) }},
		{"hier60x90", func() (*graph.Tree, error) {
			h, err := graph.BuildHierarchical([]int{60, 90})
			if err != nil {
				return nil, err
			}
			return h.Tree, nil
		}},
	} {
		tr, err := in.build()
		if err != nil {
			b.Fatal(err)
		}
		n := tr.N()
		ids := DefaultIDs(n, 1)
		for _, bc := range []struct {
			name string
			par  int
		}{{"sequential", 1}, {"parallel", -1}} {
			b.Run(in.name+"/"+bc.name, func(b *testing.B) {
				eng := NewEngine(WithIDs(ids), WithParallelism(bc.par))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(tr, tickAlg{rounds: rounds}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n*rounds), "ns/node-round")
			})
		}
	}
}
