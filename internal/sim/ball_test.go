package sim

import (
	"testing"

	"repro/internal/graph"
)

func TestBallAlgorithmCountsMatchGraphBalls(t *testing.T) {
	shapes := []*graph.Tree{
		mustPath(t, 21),
		mustStar(t, 9),
		mustCaterpillar(t, 8, 2),
	}
	for si, tr := range shapes {
		for _, radius := range []int{0, 1, 2, 4} {
			res, err := Run(tr, BallAlgorithm{Radius: radius}, Config{})
			if err != nil {
				t.Fatalf("shape %d radius %d: %v", si, radius, err)
			}
			for v := 0; v < tr.N(); v++ {
				want := len(tr.Ball(v, radius))
				got := res.Outputs[v].(int)
				if got != want {
					t.Fatalf("shape %d radius %d node %d: ball size %d, want %d",
						si, radius, v, got, want)
				}
				if res.Rounds[v] != radius {
					t.Fatalf("node %d terminated at %d, want %d", v, res.Rounds[v], radius)
				}
			}
		}
	}
}

func TestBallCollectorDistances(t *testing.T) {
	tr := mustPath(t, 9)
	res, err := Run(tr, ballDistAlg{radius: 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Middle node must know exactly 7 nodes (itself + 3 each side) with
	// correct max distance 3.
	mid := 4
	got := res.Outputs[mid].(int)
	if got != 3 {
		t.Fatalf("max distance seen = %d, want 3", got)
	}
}

// ballDistAlg outputs the maximum distance among collected nodes.
type ballDistAlg struct{ radius int }

func (ballDistAlg) Name() string { return "ball-dist" }
func (a ballDistAlg) NewMachine(info NodeInfo) Machine {
	return &ballDistMachine{info: info, radius: a.radius, bc: NewBallCollector(info)}
}

type ballDistMachine struct {
	info   NodeInfo
	radius int
	bc     *BallCollector
}

func (m *ballDistMachine) Step(round int, recv []any) ([]any, bool) {
	for _, msg := range recv {
		if bm, ok := msg.(ballMsg); ok {
			m.bc.Absorb(bm)
		}
	}
	if round >= m.radius {
		return nil, true
	}
	send := make([]any, m.info.Degree)
	snap := m.bc.Snapshot()
	for i := range send {
		send[i] = snap
	}
	return send, false
}

func (m *ballDistMachine) Output() any {
	max := 0
	for _, bn := range m.bc.Known(m.radius) {
		if bn.Dist > max {
			max = bn.Dist
		}
	}
	return max
}

func mustPath(t *testing.T, n int) *graph.Tree {
	t.Helper()
	tr, err := graph.BuildPath(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustStar(t *testing.T, n int) *graph.Tree {
	t.Helper()
	tr, err := graph.BuildStar(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustCaterpillar(t *testing.T, a, b int) *graph.Tree {
	t.Helper()
	tr, err := graph.BuildCaterpillar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
