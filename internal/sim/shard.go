package sim

// The sharded backend: one simulation partitioned into k contiguous
// node-range shards that execute rounds independently and exchange only the
// messages crossing shard boundaries through a shardBus at the round
// barrier.
//
// Each shard owns the machines and message slots of its node range and
// steps them exactly like the sequential backend — including its frontier:
// each shard keeps the compact list of its not-yet-terminated nodes and a
// round costs Θ(local frontier size), not Θ(shard size). Because the tree is
// in CSR form, a contiguous node range [lo, hi) owns the contiguous
// directed-edge slot range [off[lo], off[hi)) — a shard's entire message
// state is two flat arrays covering that interval, and snapshotting or
// shipping a shard is a pair of slice copies. A message from a local node
// to a local neighbor is written directly into the neighbor's receive slot;
// a message to a node of another shard is queued as a boundaryMsg
// (addressed by global flat slot) and delivered by the bus at the barrier.
//
// Frozen outputs of terminated nodes reach still-active local nodes by pull:
// before stepping, each frontier node fills its empty inbox slots from
// terminated local neighbors (and from remoteFrozen, see below), so
// terminated nodes cost nothing per round. Frozen outputs of terminated
// boundary nodes cross the bus exactly once, as a fill message that the
// receiving shard caches in remoteFrozen by local slot; every later round
// the pull phase serves it from the cache at zero bus cost — the same
// zero-cost convention the unsharded backends implement.
//
// Which nodes a shard owns is the engine's shard layout (WithShardLayout):
// the range layout shards the construction numbering directly, while the
// subtree layout relabels the tree by graph.Partition's fat preorder first,
// so shard ranges align with subtrees and far fewer edges cross shards. A
// layout only permutes indices — the machinery below always sees contiguous
// ranges — and results are mapped back to construction numbering, so the
// layout is invisible in everything but Result.Shards.
//
// Determinism: every receive slot has exactly one writer (the neighbor
// behind the reverse edge, or the bus acting for it), and the pull phase
// only fills slots that round's writers left empty, so delivery order never
// affects what a machine observes, and Rounds, Outputs, TotalRounds,
// Messages, and Steps are bit-identical to the sequential backend at every
// shard count. The bus is the single seam through which a shard learns
// anything about other shards' nodes, which is what makes it the attachment
// point for a future multi-process executor: replace the in-memory exchange
// with a network transport and nothing else changes.

import (
	"fmt"

	"repro/internal/graph"
)

// ShardStats describes what one shard observed over a sharded run.
type ShardStats struct {
	// Shard is the shard index; shard i owns the i-th contiguous node range.
	Shard int `json:"shard"`
	// Nodes is the number of nodes the shard owns.
	Nodes int `json:"nodes"`
	// BoundaryEdges counts edges with exactly one endpoint in this shard.
	BoundaryEdges int `json:"boundary_edges"`
	// MessagesCrossed counts real (non-nil) messages sent by this shard's
	// nodes to nodes of other shards. Frozen-output fills cross the bus once
	// per (terminated boundary node, cross edge) and are not counted, in
	// keeping with the zero-message-cost redelivery convention.
	MessagesCrossed int64 `json:"messages_crossed"`
	// ActiveRounds counts rounds in which the shard still hosted at least
	// one undecided node.
	ActiveRounds int `json:"active_rounds"`
	// Steps counts the Machine.Step invocations the shard performed: the
	// shard's share of Result.Steps, and — frontier scheduling — the work it
	// actually did.
	Steps int64 `json:"steps"`
}

// boundaryMsg is one unit of cross-shard traffic: a payload for the receive
// slot `slot` (a global flat directed-edge index; the owning shard is
// implied by the destination node dst). A fill message carries a terminated
// node's frozen output; the receiving shard caches it in remoteFrozen and
// its pull phase serves it into the slot whenever a round leaves the slot
// empty (a real message — including one sent in the terminating round —
// always takes precedence).
type boundaryMsg struct {
	dst     int
	slot    int32
	fill    bool
	payload any
}

// shardPhase selects the work a shard executor performs at a barrier step.
type shardPhase int

const (
	// phaseStep runs one synchronous round for the shard's frontier: the
	// pull phase (frozen-output fills) followed by the machine steps.
	phaseStep shardPhase = iota
	// phaseFinish swaps the shard's receive/send buffers, completing the
	// round after the bus exchange.
	phaseFinish
)

type shardCmd struct {
	phase shardPhase
	round int
}

// shard is one contiguous node range [lo, hi) with private execution state.
// Node-indexed slices (machines, done, frozen) use local offset v - lo;
// message slots use local slot e - slotBase, where [slotBase, slotEnd) =
// [off[lo], off[hi)) is the shard's contiguous global slot interval.
type shard struct {
	r         *shardRun
	idx       int
	lo, hi    int
	slotBase  int32 // global flat slot of local slot 0 (= off[lo])
	remaining int

	machines []Machine
	done     []bool
	frozen   []any
	inbox    []any // flat receive slots, len off[hi]-off[lo]
	next     []any // flat send slots for the following round
	// active is the shard's frontier: local offsets of its undecided nodes,
	// ascending, compacted in place as nodes terminate.
	active []int32
	// remoteFrozen[ls] caches the frozen output of the terminated remote
	// neighbor behind local receive slot ls, delivered once by a fill
	// message; the pull phase serves it in every later round at zero bus
	// cost. Allocated lazily on the first fill, so runs whose boundary
	// nodes never terminate early pay nothing for it. nRemote counts the
	// cached entries (with remaining it gates the pull phase: nothing to
	// pull while both are at their initial values).
	remoteFrozen []any
	nRemote      int

	// outbox[t] queues this round's boundary messages for shard t; the bus
	// drains it at the barrier and the backing arrays are reused.
	outbox [][]boundaryMsg

	stats ShardStats
	fins  int   // terminations this round, drained by the coordinator
	msgs  int64 // sends this round, drained by the coordinator
	steps int64 // machine steps this round, drained by the coordinator
	err   error

	cmd chan shardCmd
	ack chan struct{}
}

// shardBus exchanges boundary messages between shards at the round barrier.
// Delivery iterates destinations and sources in index order, but order is
// immaterial for the results: each receive slot has a single writer, and
// fill messages only populate the remoteFrozen cache.
type shardBus struct {
	shards []*shard
}

// exchange drains every shard's outboxes into the destination shards'
// receive buffers. Real messages are written unconditionally (the slot's only
// writer is the sender); fill messages land in the destination's
// remoteFrozen cache, from which its pull phase redelivers locally.
func (b *shardBus) exchange() {
	for _, dst := range b.shards {
		for _, src := range b.shards {
			if src == dst {
				continue
			}
			q := src.outbox[dst.idx]
			for i := range q {
				m := &q[i]
				ls := m.slot - dst.slotBase
				if !m.fill {
					dst.next[ls] = m.payload
					continue
				}
				if dst.remoteFrozen == nil {
					dst.remoteFrozen = make([]any, len(dst.inbox))
				}
				if dst.remoteFrozen[ls] == nil {
					dst.remoteFrozen[ls] = m.payload
					dst.nRemote++
				}
			}
			src.outbox[dst.idx] = q[:0]
		}
	}
}

// shardRun is the mutable state of one sharded execution. Under the subtree
// layout every index here is an *execution* index: the run operates on a
// relabeled tree in which each shard's nodes are contiguous, and orig maps
// execution indices back to construction indices for everything the caller
// observes (Rounds, Outputs, error messages).
type shardRun struct {
	t         *graph.Tree
	alg       Algorithm
	maxRounds int
	owner     []int32 // owner[v] = shard index of execution node v
	orig      []int32 // execution index -> construction index; nil = identity
	shards    []*shard
	bus       *shardBus
	off       []int32 // CSR offsets (shared with the tree; read-only)
	nbrs      []int32 // CSR neighbors
	rev       []int32 // rev[e] = global flat slot of the reverse edge
	res       *Result
}

// origNode maps an execution index back to its construction index.
func (r *shardRun) origNode(v int) int {
	if r.orig == nil {
		return v
	}
	return int(r.orig[v])
}

// runSharded executes alg across k > 1 shards under the engine's layout.
// IDs and inputs are already validated by Run.
//
// The range layout shards the construction numbering directly over the
// balanced graph.RangeCuts split. The subtree layout first relabels the tree
// by graph.Partition's fat preorder: node v of the construction occupies
// execution index perm[v], with its ID and input carried along, and the
// contiguous-range machinery below applies verbatim to the relabeled
// indices. Relabeling preserves every machine's observable world — the same
// ID, degree, input, and per-port neighbor sequence — so the permuted run is
// the same simulation step for step; results are mapped back through the
// inverse permutation (origNode), making Rounds, Outputs, TotalRounds,
// Messages, and Steps bit-identical across layouts. Only Result.Shards
// differs: its BoundaryEdges/MessagesCrossed describe the layout actually
// executed — the objective the partitioner minimizes.
func (e *Engine) runSharded(t *graph.Tree, alg Algorithm, ids []uint64, maxRounds, k int) (*Result, error) {
	n := t.N()
	exec, inputs := t, e.inputs
	var cuts []int32
	var orig []int32
	if e.layout == LayoutSubtree {
		lay := graph.Partition(t, k)
		cuts = lay.Cuts
		if lay.Perm != nil {
			exec = graph.PermuteTree(t, lay.Perm)
			orig = lay.Inverse()
			pids := make([]uint64, n)
			for p := range pids {
				pids[p] = ids[orig[p]]
			}
			ids = pids
			if e.inputs != nil {
				pin := make([]any, n)
				for p := range pin {
					pin[p] = e.inputs[orig[p]]
				}
				inputs = pin
			}
		}
	} else {
		cuts = graph.RangeCuts(n, k)
	}
	r := &shardRun{
		t:         exec,
		alg:       alg,
		maxRounds: maxRounds,
		owner:     (&graph.Layout{Cuts: cuts}).Owners(),
		orig:      orig,
		off:       exec.Offsets(),
		nbrs:      exec.AdjacencyRaw(),
		rev:       reverseSlots(exec),
		res: &Result{
			Rounds:  make([]int, n),
			Outputs: make([]any, n),
		},
	}
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := int(cuts[i]), int(cuts[i+1])
		if hi <= lo {
			return nil, fmt.Errorf("sim: internal: empty shard %d in cuts %v (n=%d, k=%d)", i, cuts, n, k)
		}
		size := hi - lo
		slots := int(r.off[hi] - r.off[lo])
		sh := &shard{
			r:         r,
			idx:       i,
			lo:        lo,
			hi:        hi,
			slotBase:  r.off[lo],
			remaining: size,
			machines:  make([]Machine, size),
			done:      make([]bool, size),
			frozen:    make([]any, size),
			inbox:     make([]any, slots),
			next:      make([]any, slots),
			active:    make([]int32, size),
			cmd:       make(chan shardCmd),
			ack:       make(chan struct{}),
		}
		sh.stats = ShardStats{Shard: sh.idx, Nodes: size}
		r.shards = append(r.shards, sh)
	}
	for _, sh := range r.shards {
		sh.outbox = make([][]boundaryMsg, len(r.shards))
		for v := sh.lo; v < sh.hi; v++ {
			i := v - sh.lo
			sh.active[i] = int32(i)
			var input any
			if inputs != nil {
				input = inputs[v]
			}
			sh.machines[i] = alg.NewMachine(NodeInfo{
				ID:     ids[v],
				Degree: exec.Degree(v),
				N:      n,
				Input:  input,
			})
			for _, w := range exec.NeighborsRaw(v) {
				if r.owner[w] != int32(sh.idx) {
					sh.stats.BoundaryEdges++
				}
			}
		}
	}
	r.bus = &shardBus{shards: r.shards}
	return r.execute(e)
}

// execute drives the round loop: step all shards (pull + machine steps),
// exchange boundary messages, swap, until every node terminated. Shard
// executors are persistent goroutines commanded phase by phase; the
// coordinator owns the round barrier, the termination count, and the
// cancellation checks.
func (r *shardRun) execute(e *Engine) (*Result, error) {
	for _, sh := range r.shards {
		go sh.loop()
	}
	defer func() {
		for _, sh := range r.shards {
			close(sh.cmd)
		}
	}()
	remaining := 0
	for _, sh := range r.shards {
		remaining += sh.remaining
	}
	for round := 0; ; round++ {
		if remaining == 0 {
			r.res.TotalRounds = round
			r.res.Shards = make([]ShardStats, len(r.shards))
			for i, sh := range r.shards {
				r.res.Shards[i] = sh.stats
			}
			return r.res, nil
		}
		if round >= r.maxRounds {
			return nil, fmt.Errorf("%w: algorithm %q, n=%d, limit=%d",
				ErrRoundLimit, r.alg.Name(), r.t.N(), r.maxRounds)
		}
		if err := e.ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: algorithm %q canceled at round %d: %w",
				r.alg.Name(), round, err)
		}
		r.barrier(shardCmd{phase: phaseStep, round: round})
		// Drain per-round counters lowest shard first so the reported error
		// is deterministic (the same node order the sequential backend
		// observes failures in).
		for _, sh := range r.shards {
			if sh.err != nil {
				return nil, sh.err
			}
			remaining -= sh.fins
			r.res.Messages += sh.msgs
			r.res.Steps += sh.steps
			sh.stats.Steps += sh.steps
			sh.fins, sh.msgs, sh.steps = 0, 0, 0
		}
		r.bus.exchange()
		r.barrier(shardCmd{phase: phaseFinish})
	}
}

// barrier broadcasts one phase command to every shard executor and waits for
// all of them to finish it.
func (r *shardRun) barrier(c shardCmd) {
	for _, sh := range r.shards {
		sh.cmd <- c
	}
	for _, sh := range r.shards {
		<-sh.ack
	}
}

// loop is the shard's executor goroutine: it performs one phase per command
// until the coordinator closes the channel.
func (sh *shard) loop() {
	for c := range sh.cmd {
		switch c.phase {
		case phaseStep:
			sh.step(c.round)
		case phaseFinish:
			sh.inbox, sh.next = sh.next, sh.inbox
		}
		sh.ack <- struct{}{}
	}
}

// step runs one round for the shard's frontier: the sharded counterpart of
// pullRange + stepRange, with sends to remote nodes diverted into the
// outboxes instead of written directly. The pull loop completes before any
// machine steps, so a node terminating this round becomes visible to its
// local neighbors only from the next round on — exactly the sequential
// backend's phase order. Both loops touch only shard-private state between
// barriers, so pull and step can share one phase.
func (sh *shard) step(round int) {
	if len(sh.active) == 0 {
		return
	}
	sh.stats.ActiveRounds++
	r := sh.r
	off, nbrs, rev := r.off, r.nbrs, r.rev
	if sh.remaining < sh.stats.Nodes || sh.nRemote > 0 {
		for _, li := range sh.active {
			v := sh.lo + int(li)
			for e := off[v]; e < off[v+1]; e++ {
				ls := e - sh.slotBase
				if sh.inbox[ls] != nil {
					continue
				}
				if sh.nRemote > 0 {
					if fz := sh.remoteFrozen[ls]; fz != nil {
						sh.inbox[ls] = fz
						continue
					}
				}
				if u := int(nbrs[e]); r.owner[u] == int32(sh.idx) && sh.done[u-sh.lo] {
					sh.inbox[ls] = sh.frozen[u-sh.lo]
				}
			}
		}
	}
	keep := 0
	for _, li := range sh.active {
		i := int(li)
		v := sh.lo + i
		base, end := off[v], off[v+1]
		recv := sh.inbox[base-sh.slotBase : end-sh.slotBase : end-sh.slotBase]
		send, fin := sh.machines[i].Step(round, recv)
		sh.steps++
		deg := int(end - base)
		for p := deg; p < len(send); p++ {
			if send[p] != nil {
				sh.err = fmt.Errorf("%w: algorithm %q node %d port %d degree %d",
					ErrBadPort, r.alg.Name(), r.origNode(v), p, deg)
				return
			}
		}
		for p := 0; p < len(send) && p < deg; p++ {
			if send[p] == nil {
				continue
			}
			e := int(base) + p
			sh.msgs++
			if t := int(r.owner[nbrs[e]]); t != sh.idx {
				sh.outbox[t] = append(sh.outbox[t],
					boundaryMsg{dst: int(nbrs[e]), slot: rev[e], payload: send[p]})
				sh.stats.MessagesCrossed++
			} else {
				sh.next[rev[e]-sh.slotBase] = send[p]
			}
		}
		// Clear only after the sends are copied out: a machine may return its
		// recv slice as send (the boundary queue holds interface copies, so
		// queued payloads survive the clear).
		clearAny(recv)
		if !fin {
			sh.active[keep] = li
			keep++
			continue
		}
		sh.done[i] = true
		sh.remaining--
		sh.fins++
		r.res.Rounds[r.origNode(v)] = round
		out := sh.machines[i].Output()
		if out == nil {
			sh.err = fmt.Errorf("%w: algorithm %q node %d",
				ErrNilOutput, r.alg.Name(), r.origNode(v))
			return
		}
		r.res.Outputs[r.origNode(v)] = out
		sh.frozen[i] = Terminated{Output: out}
		// Local neighbors observe the frozen output by pulling it from the
		// next round on; a real message sent in the terminating round stays
		// in its slot and takes precedence. Cross-shard ports ship the frozen
		// value once as a fill message (after any real send queued above) for
		// the remote shard's remoteFrozen cache.
		for e := base; e < end; e++ {
			if t := int(r.owner[nbrs[e]]); t != sh.idx {
				sh.outbox[t] = append(sh.outbox[t],
					boundaryMsg{dst: int(nbrs[e]), slot: rev[e], fill: true, payload: sh.frozen[i]})
			}
		}
	}
	sh.active = sh.active[:keep]
}
