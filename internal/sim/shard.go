package sim

// The sharded backend: one simulation partitioned into k contiguous
// node-range shards that execute rounds independently and exchange only the
// messages crossing shard boundaries through a shardBus at the round
// barrier.
//
// Each shard owns the machines and message slots of its node range and
// steps them exactly like the sequential backend. Because the tree is in
// CSR form, a contiguous node range [lo, hi) owns the contiguous
// directed-edge slot range [off[lo], off[hi)) — a shard's entire message
// state is two flat arrays covering that interval, and snapshotting or
// shipping a shard is a pair of slice copies. A message from a local node
// to a local neighbor is written directly into the neighbor's receive slot;
// a message to a node of another shard is queued as a boundaryMsg
// (addressed by global flat slot) and delivered by the bus between the step
// and redeliver phases. Frozen outputs of terminated boundary nodes cross
// the bus exactly once (as a fill message); the receiving shard mirrors
// them and redelivers locally in every later round, so steady-state frozen
// redelivery costs no bus traffic — the same zero-cost convention the
// sequential backend implements with its cached Terminated values.
//
// Determinism: every receive slot has exactly one writer (the neighbor
// behind the reverse edge, or the bus acting for it), so delivery order
// never affects what a machine observes, and Rounds, Outputs, TotalRounds,
// and Messages are bit-identical to the sequential backend at every shard
// count. The bus is the single seam through which a shard learns anything
// about other shards' nodes, which is what makes it the attachment point for
// a future multi-process executor: replace the in-memory exchange with a
// network transport and nothing else changes.

import (
	"fmt"

	"repro/internal/graph"
)

// ShardStats describes what one shard observed over a sharded run.
type ShardStats struct {
	// Shard is the shard index; shard i owns the i-th contiguous node range.
	Shard int `json:"shard"`
	// Nodes is the number of nodes the shard owns.
	Nodes int `json:"nodes"`
	// BoundaryEdges counts edges with exactly one endpoint in this shard.
	BoundaryEdges int `json:"boundary_edges"`
	// MessagesCrossed counts real (non-nil) messages sent by this shard's
	// nodes to nodes of other shards. Frozen-output fills cross the bus once
	// per (terminated boundary node, cross edge) and are not counted, in
	// keeping with the zero-message-cost redelivery convention.
	MessagesCrossed int64 `json:"messages_crossed"`
	// ActiveRounds counts rounds in which the shard still hosted at least
	// one undecided node.
	ActiveRounds int `json:"active_rounds"`
}

// boundaryMsg is one unit of cross-shard traffic: a payload for the receive
// slot `slot` (a global flat directed-edge index; the owning shard is
// implied by the destination node dst). A fill message carries a terminated
// node's frozen output; it only lands in an empty slot (a real message sent
// in the terminating round takes precedence) and is mirrored by the
// receiving shard for local redelivery in all later rounds.
type boundaryMsg struct {
	dst     int
	slot    int32
	fill    bool
	payload any
}

// mirrorEdge records a remote neighbor's frozen output and the local receive
// slot it keeps filling: once a fill message for (node, slot) arrives, the
// owning shard redelivers val into that slot in every later round, with no
// further bus traffic. slot is shard-local (global slot minus slotBase).
type mirrorEdge struct {
	node int
	slot int32
	val  any
}

// shardPhase selects the work a shard executor performs at a barrier step.
type shardPhase int

const (
	// phaseStep runs one synchronous round for the shard's undecided nodes.
	phaseStep shardPhase = iota
	// phaseFinish redelivers frozen outputs (local and mirrored) and swaps
	// the shard's receive/send buffers, completing the round.
	phaseFinish
)

type shardCmd struct {
	phase shardPhase
	round int
}

// shard is one contiguous node range [lo, hi) with private execution state.
// Node-indexed slices (machines, done, frozen) use local offset v - lo;
// message slots use local slot e - slotBase, where [slotBase, slotEnd) =
// [off[lo], off[hi)) is the shard's contiguous global slot interval.
type shard struct {
	r         *shardRun
	idx       int
	lo, hi    int
	slotBase  int32 // global flat slot of local slot 0 (= off[lo])
	remaining int

	machines []Machine
	done     []bool
	frozen   []any
	inbox    []any // flat receive slots, len off[hi]-off[lo]
	next     []any // flat send slots for the following round

	// outbox[t] queues this round's boundary messages for shard t; the bus
	// drains it at the barrier and the backing arrays are reused.
	outbox [][]boundaryMsg
	// mirror accumulates the frozen outputs of terminated remote neighbors,
	// redelivered locally in every later round.
	mirror []mirrorEdge

	stats ShardStats
	fins  int   // terminations this round, drained by the coordinator
	msgs  int64 // sends this round, drained by the coordinator
	err   error

	cmd chan shardCmd
	ack chan struct{}
}

// shardBus exchanges boundary messages between shards at the round barrier.
// Delivery iterates destinations and sources in index order, but order is
// immaterial for the results: each receive slot has a single writer.
type shardBus struct {
	shards []*shard
}

// exchange drains every shard's outboxes into the destination shards'
// receive buffers. Real messages are written unconditionally (the slot's only
// writer is the sender); fill messages land only in empty slots and are
// mirrored by the destination for later local redelivery.
func (b *shardBus) exchange() {
	for _, dst := range b.shards {
		for _, src := range b.shards {
			if src == dst {
				continue
			}
			q := src.outbox[dst.idx]
			for i := range q {
				m := &q[i]
				ls := m.slot - dst.slotBase
				slot := &dst.next[ls]
				if !m.fill {
					*slot = m.payload
					continue
				}
				if *slot == nil {
					*slot = m.payload
				}
				dst.mirror = append(dst.mirror, mirrorEdge{node: m.dst, slot: ls, val: m.payload})
			}
			src.outbox[dst.idx] = q[:0]
		}
	}
}

// shardRun is the mutable state of one sharded execution.
type shardRun struct {
	t         *graph.Tree
	alg       Algorithm
	maxRounds int
	chunk     int // shardOf(v) = v / chunk
	shards    []*shard
	bus       *shardBus
	off       []int32 // CSR offsets (shared with the tree; read-only)
	nbrs      []int32 // CSR neighbors
	rev       []int32 // rev[e] = global flat slot of the reverse edge
	res       *Result
}

// runSharded executes alg across k > 1 shards. IDs and inputs are already
// validated by Run.
func (e *Engine) runSharded(t *graph.Tree, alg Algorithm, ids []uint64, maxRounds, k int) (*Result, error) {
	n := t.N()
	chunk := (n + k - 1) / k
	r := &shardRun{
		t:         t,
		alg:       alg,
		maxRounds: maxRounds,
		chunk:     chunk,
		off:       t.Offsets(),
		nbrs:      t.AdjacencyRaw(),
		rev:       reverseSlots(t),
		res: &Result{
			Rounds:  make([]int, n),
			Outputs: make([]any, n),
		},
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		size := hi - lo
		slots := int(r.off[hi] - r.off[lo])
		sh := &shard{
			r:         r,
			idx:       len(r.shards),
			lo:        lo,
			hi:        hi,
			slotBase:  r.off[lo],
			remaining: size,
			machines:  make([]Machine, size),
			done:      make([]bool, size),
			frozen:    make([]any, size),
			inbox:     make([]any, slots),
			next:      make([]any, slots),
			cmd:       make(chan shardCmd),
			ack:       make(chan struct{}),
		}
		sh.stats = ShardStats{Shard: sh.idx, Nodes: size}
		r.shards = append(r.shards, sh)
	}
	for _, sh := range r.shards {
		sh.outbox = make([][]boundaryMsg, len(r.shards))
		for v := sh.lo; v < sh.hi; v++ {
			i := v - sh.lo
			var input any
			if e.inputs != nil {
				input = e.inputs[v]
			}
			sh.machines[i] = alg.NewMachine(NodeInfo{
				ID:     ids[v],
				Degree: t.Degree(v),
				N:      n,
				Input:  input,
			})
			for _, w := range t.NeighborsRaw(v) {
				if int(w)/chunk != sh.idx {
					sh.stats.BoundaryEdges++
				}
			}
		}
	}
	r.bus = &shardBus{shards: r.shards}
	return r.execute(e)
}

// execute drives the round loop: step all shards, exchange boundary
// messages, redeliver and swap, until every node terminated. Shard executors
// are persistent goroutines commanded phase by phase; the coordinator owns
// the round barrier, the termination count, and the cancellation checks.
func (r *shardRun) execute(e *Engine) (*Result, error) {
	for _, sh := range r.shards {
		go sh.loop()
	}
	defer func() {
		for _, sh := range r.shards {
			close(sh.cmd)
		}
	}()
	remaining := 0
	for _, sh := range r.shards {
		remaining += sh.remaining
	}
	for round := 0; ; round++ {
		if remaining == 0 {
			r.res.TotalRounds = round
			r.res.Shards = make([]ShardStats, len(r.shards))
			for i, sh := range r.shards {
				r.res.Shards[i] = sh.stats
			}
			return r.res, nil
		}
		if round > r.maxRounds {
			return nil, fmt.Errorf("%w: algorithm %q, n=%d, limit=%d",
				ErrRoundLimit, r.alg.Name(), r.t.N(), r.maxRounds)
		}
		if err := e.ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: algorithm %q canceled at round %d: %w",
				r.alg.Name(), round, err)
		}
		r.barrier(shardCmd{phase: phaseStep, round: round})
		// Drain per-round counters lowest shard first so the reported error
		// is deterministic (the same node order the sequential backend
		// observes failures in).
		for _, sh := range r.shards {
			if sh.err != nil {
				return nil, sh.err
			}
			remaining -= sh.fins
			r.res.Messages += sh.msgs
			sh.fins, sh.msgs = 0, 0
		}
		r.bus.exchange()
		r.barrier(shardCmd{phase: phaseFinish})
	}
}

// barrier broadcasts one phase command to every shard executor and waits for
// all of them to finish it.
func (r *shardRun) barrier(c shardCmd) {
	for _, sh := range r.shards {
		sh.cmd <- c
	}
	for _, sh := range r.shards {
		<-sh.ack
	}
}

// loop is the shard's executor goroutine: it performs one phase per command
// until the coordinator closes the channel.
func (sh *shard) loop() {
	for c := range sh.cmd {
		switch c.phase {
		case phaseStep:
			sh.step(c.round)
		case phaseFinish:
			sh.redeliver()
			sh.inbox, sh.next = sh.next, sh.inbox
		}
		sh.ack <- struct{}{}
	}
}

// step runs one round for the shard's undecided nodes: the sharded
// counterpart of stepRange, with sends to remote nodes diverted into the
// outboxes instead of written directly.
func (sh *shard) step(round int) {
	if sh.remaining == 0 {
		return
	}
	sh.stats.ActiveRounds++
	r := sh.r
	off, nbrs, rev := r.off, r.nbrs, r.rev
	for v := sh.lo; v < sh.hi; v++ {
		i := v - sh.lo
		if sh.done[i] {
			continue
		}
		base, end := off[v], off[v+1]
		recv := sh.inbox[base-sh.slotBase : end-sh.slotBase : end-sh.slotBase]
		send, fin := sh.machines[i].Step(round, recv)
		deg := int(end - base)
		for p := 0; p < len(send) && p < deg; p++ {
			if send[p] == nil {
				continue
			}
			e := int(base) + p
			sh.msgs++
			if t := int(nbrs[e]) / r.chunk; t != sh.idx {
				sh.outbox[t] = append(sh.outbox[t],
					boundaryMsg{dst: int(nbrs[e]), slot: rev[e], payload: send[p]})
				sh.stats.MessagesCrossed++
			} else {
				sh.next[rev[e]-sh.slotBase] = send[p]
			}
		}
		// Clear only after the sends are copied out: a machine may return its
		// recv slice as send (the boundary queue holds interface copies, so
		// queued payloads survive the clear).
		clearAny(recv)
		if fin {
			sh.done[i] = true
			sh.remaining--
			sh.fins++
			r.res.Rounds[v] = round
			out := sh.machines[i].Output()
			if out == nil {
				sh.err = fmt.Errorf("%w: algorithm %q node %d",
					ErrNilOutput, r.alg.Name(), v)
				return
			}
			r.res.Outputs[v] = out
			sh.frozen[i] = Terminated{Output: out}
			// Neighbors observe the frozen output from the next round on; a
			// real message sent in the terminating round takes precedence.
			// Cross-shard ports ship the frozen value once as a fill message,
			// after any real send queued above, so the bus preserves the
			// precedence rule.
			for e := base; e < end; e++ {
				if t := int(nbrs[e]) / r.chunk; t != sh.idx {
					sh.outbox[t] = append(sh.outbox[t],
						boundaryMsg{dst: int(nbrs[e]), slot: rev[e], fill: true, payload: sh.frozen[i]})
				} else if slot := &sh.next[rev[e]-sh.slotBase]; *slot == nil {
					*slot = sh.frozen[i]
				}
			}
		}
	}
}

// redeliver keeps frozen outputs visible to still-active local nodes: local
// terminated neighbors directly (like redeliverRange), remote ones through
// the mirror populated by fill messages — both at zero message cost.
func (sh *shard) redeliver() {
	r := sh.r
	off, nbrs, rev := r.off, r.nbrs, r.rev
	for i, d := range sh.done {
		if !d {
			continue
		}
		v := sh.lo + i
		fz := sh.frozen[i]
		for e := off[v]; e < off[v+1]; e++ {
			u := int(nbrs[e])
			if u/r.chunk != sh.idx {
				continue // the owning shard redelivers from its mirror
			}
			if sh.done[u-sh.lo] {
				continue
			}
			if slot := &sh.next[rev[e]-sh.slotBase]; *slot == nil {
				*slot = fz
			}
		}
	}
	for _, m := range sh.mirror {
		if sh.done[m.node-sh.lo] {
			continue
		}
		if slot := &sh.next[m.slot]; *slot == nil {
			*slot = m.val
		}
	}
}
