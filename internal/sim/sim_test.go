package sim

import (
	"testing"

	"repro/internal/graph"
)

// maxIDAlg floods the maximum identifier: each node terminates once its
// known maximum has been stable for eccentricity-many rounds. To keep the
// test algorithm simple it terminates after exactly N rounds (a valid, if
// slow, LOCAL algorithm) and outputs the maximum ID it has seen.
type maxIDAlg struct{}

func (maxIDAlg) Name() string { return "flood-max-id" }

func (maxIDAlg) NewMachine(info NodeInfo) Machine {
	return &maxIDMachine{info: info, best: info.ID}
}

type maxIDMachine struct {
	info NodeInfo
	best uint64
}

func (m *maxIDMachine) Step(round int, recv []any) ([]any, bool) {
	for _, msg := range recv {
		switch v := msg.(type) {
		case uint64:
			if v > m.best {
				m.best = v
			}
		case Terminated:
			if id, ok := v.Output.(uint64); ok && id > m.best {
				m.best = id
			}
		}
	}
	if round >= m.info.N {
		return nil, true
	}
	send := make([]any, m.info.Degree)
	for i := range send {
		send[i] = m.best
	}
	return send, false
}

func (m *maxIDMachine) Output() any { return m.best }

func TestFloodMaxIDConverges(t *testing.T) {
	tr, err := graph.BuildCaterpillar(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := DefaultIDs(tr.N(), 7)
	res, err := Run(tr, maxIDAlg{}, Config{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for _, id := range ids {
		if id > want {
			want = id
		}
	}
	for v, out := range res.Outputs {
		if out.(uint64) != want {
			t.Fatalf("node %d output %v, want %v", v, out, want)
		}
	}
}

// copyNeighborAlg models the weighted-LCL dependency: node 0 (the "active"
// node, input "A") terminates at a fixed round with output "X"; all other
// nodes wait until some neighbor has terminated and copy its output. This
// exercises the frozen-output (Terminated) delivery semantics.
type copyNeighborAlg struct{ activeDelay int }

func (copyNeighborAlg) Name() string { return "copy-neighbor" }

func (a copyNeighborAlg) NewMachine(info NodeInfo) Machine {
	return &copyMachine{info: info, delay: a.activeDelay}
}

type copyMachine struct {
	info  NodeInfo
	delay int
	out   string
}

func (m *copyMachine) Step(round int, recv []any) ([]any, bool) {
	if m.info.Input == "A" {
		if round >= m.delay {
			m.out = "X"
			return nil, true
		}
		return nil, false
	}
	for _, msg := range recv {
		if term, ok := msg.(Terminated); ok {
			m.out = term.Output.(string)
			return nil, true
		}
	}
	return nil, false
}

func (m *copyMachine) Output() any { return m.out }

func TestTerminatedOutputsPropagate(t *testing.T) {
	// Path of 6 nodes; node 0 is active with delay 3; outputs must ripple.
	tr, err := graph.BuildPath(6)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]any, 6)
	inputs[0] = "A"
	res, err := Run(tr, copyNeighborAlg{activeDelay: 3}, Config{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out.(string) != "X" {
			t.Fatalf("node %d output %q, want X", v, out)
		}
	}
	// Node 0 terminates at round 3; node v at round 3 + v (one hop per
	// round).
	for v := 0; v < 6; v++ {
		if res.Rounds[v] != 3+v {
			t.Fatalf("node %d terminated at %d, want %d", v, res.Rounds[v], 3+v)
		}
	}
	wantAvg := float64(3+4+5+6+7+8) / 6
	if got := res.NodeAveraged(); got != wantAvg {
		t.Fatalf("node-averaged = %v, want %v", got, wantAvg)
	}
}

// immediateAlg terminates in round 0 with a constant output.
type immediateAlg struct{}

func (immediateAlg) Name() string { return "immediate" }
func (immediateAlg) NewMachine(info NodeInfo) Machine {
	return &immediateMachine{}
}

type immediateMachine struct{}

func (m *immediateMachine) Step(round int, recv []any) ([]any, bool) { return nil, true }
func (m *immediateMachine) Output() any                              { return "ok" }

func TestImmediateTerminationHasZeroCost(t *testing.T) {
	tr, err := graph.BuildStar(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, immediateAlg{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeAveraged() != 0 {
		t.Fatalf("node-averaged = %v, want 0", res.NodeAveraged())
	}
	if res.TotalRounds != 1 {
		t.Fatalf("total rounds = %d, want 1", res.TotalRounds)
	}
}

// stubbornAlg never terminates; Run must hit the round limit.
type stubbornAlg struct{}

func (stubbornAlg) Name() string                     { return "stubborn" }
func (stubbornAlg) NewMachine(info NodeInfo) Machine { return stubbornMachine{} }

type stubbornMachine struct{}

func (stubbornMachine) Step(round int, recv []any) ([]any, bool) { return nil, false }
func (stubbornMachine) Output() any                              { return nil }

func TestRoundLimit(t *testing.T) {
	tr, err := graph.BuildPath(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tr, stubbornAlg{}, Config{MaxRounds: 10}); err == nil {
		t.Fatal("want round-limit error")
	}
}

func TestDefaultIDsDistinct(t *testing.T) {
	ids := DefaultIDs(10000, 3)
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if id == 0 {
			t.Fatal("zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestDefaultIDsDeterministic(t *testing.T) {
	a := DefaultIDs(100, 9)
	b := DefaultIDs(100, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DefaultIDs not deterministic")
		}
	}
	c := DefaultIDs(100, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical ID streams")
	}
}

func TestSequentialIDs(t *testing.T) {
	ids := SequentialIDs(5)
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("ids[%d] = %d", i, id)
		}
	}
}

func TestRunRejectsWrongIDCount(t *testing.T) {
	tr, err := graph.BuildPath(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tr, immediateAlg{}, Config{IDs: []uint64{1}}); err == nil {
		t.Fatal("want ID-count error")
	}
}

func TestMessagesCounted(t *testing.T) {
	tr, err := graph.BuildPath(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, maxIDAlg{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("expected nonzero message count")
	}
}
