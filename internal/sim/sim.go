// Package sim implements a synchronous LOCAL-model simulator.
//
// The LOCAL model (Linial): nodes of a graph host identical deterministic
// state machines; computation proceeds in synchronous rounds; in every round
// each node sends an (unbounded-size) message to each neighbor, receives the
// messages of its neighbors, and updates its state. Each node knows its own
// unique identifier, its degree, and the total number of nodes n. A node
// terminates when it irrevocably fixes its output; the running time of node v
// is the number T_v of rounds until v terminates.
//
// The node-averaged complexity of an execution is (1/n) * sum_v T_v (Section
// 2 of the paper).
//
// Terminated nodes keep participating passively: their frozen output remains
// visible to their neighbors (this is the standard convention, and the
// weighted LCLs of the paper rely on neighbors observing outputs of
// terminated nodes).
//
// # Engine and backends
//
// Executions run through an Engine configured by functional options
// (NewEngine, WithIDs, WithInputs, WithMaxRounds, WithContext,
// WithParallelism, WithShards). Three backends share one semantics:
//
//   - sequential: one goroutine steps all nodes in index order;
//   - parallel (WithParallelism): the nodes of each round are stepped
//     across a worker pool behind the synchronous-round barrier;
//   - sharded (WithShards): the tree is partitioned into contiguous
//     node-range shards with private machines and message buffers,
//     exchanging only cross-shard boundary messages through an in-memory
//     bus between rounds (the seam a multi-process executor plugs into).
//
// All three produce bit-identical Rounds, Outputs, TotalRounds, and
// Messages for the same IDs and inputs; sharded runs additionally report
// per-shard statistics in Result.Shards. Determinism rests on a single
// invariant: within a round, the receive slot of a directed edge has
// exactly one writer.
//
// All backends keep execution state in struct-of-arrays form: termination
// flags, frozen outputs, and message buffers are flat arrays indexed by
// node or by directed-edge slot through the tree's CSR offsets
// (graph.Tree.Offsets), so stepping a round is a linear sweep over
// contiguous memory rather than a pointer chase through per-node objects.
//
// All backends schedule rounds over the active frontier: a compact list of
// the not-yet-terminated nodes, compacted in place as nodes terminate, so a
// round costs Θ(frontier size) rather than Θ(n). Frozen outputs reach active
// nodes by pull (each active node fills its empty inbox slots from
// terminated neighbors before stepping) instead of push, so terminated nodes
// cost nothing at all — per-round work is proportional to exactly the
// node-averaged quantity the paper measures. Result.Steps records the total
// machine-step work.
package sim

import (
	"errors"

	"repro/internal/graph"
)

// Common simulator errors.
var (
	ErrRoundLimit = errors.New("round limit exceeded before all nodes terminated")
	ErrNilOutput  = errors.New("machine terminated with nil output")
	// ErrBadPort reports a machine that returned a non-nil message on a port
	// >= its degree. The seed engine truncated such sends silently, which made
	// buggy algorithms appear to run clean while dropping traffic.
	ErrBadPort = errors.New("machine sent on a port beyond its degree")
)

// NodeInfo is the static information available to a node at the start of the
// computation: exactly what a LOCAL node legitimately knows.
type NodeInfo struct {
	// ID is the node's globally unique identifier.
	ID uint64
	// Degree is the number of incident edges (ports 0..Degree-1).
	Degree int
	// N is the total number of nodes in the network.
	N int
	// Input is the node's LCL input label (problem specific; may be nil).
	Input any
}

// Machine is the per-node state machine of a distributed algorithm.
type Machine interface {
	// Step executes one synchronous round. recv[i] holds the message received
	// on port i this round (nil if the neighbor sent nothing). It returns the
	// messages to send on each port next round (send may be nil or shorter
	// than Degree; missing entries mean "no message") and whether the node
	// terminates *now*. Once done is returned, Step is never called again.
	Step(round int, recv []any) (send []any, done bool)
	// Output returns the node's final output; called only after termination.
	Output() any
}

// Algorithm constructs the state machine for one node.
type Algorithm interface {
	// Name identifies the algorithm in traces and errors.
	Name() string
	// NewMachine creates the state machine for a node with the given static
	// info.
	NewMachine(info NodeInfo) Machine
}

// Terminated is the message the runtime delivers on behalf of a terminated
// neighbor in every subsequent round: the neighbor's frozen output.
type Terminated struct {
	Output any
}

// Result captures an execution of an algorithm on a graph.
type Result struct {
	// Rounds[v] is T_v, the round in which node v terminated (a node that
	// terminates before sending or receiving anything has T_v = 0).
	Rounds []int
	// Outputs[v] is node v's output.
	Outputs []any
	// TotalRounds is the worst-case round count max_v T_v.
	TotalRounds int
	// Messages is the total number of non-nil messages delivered.
	Messages int64
	// Steps is the total number of Machine.Step invocations across the run:
	// node v steps in rounds 0..T_v, so Steps = SumRounds() + n. It is the
	// work the active-frontier scheduler actually performs — Θ(Σ_v T_v)
	// machine steps rather than the Θ(n · TotalRounds) sweep a full-range
	// scheduler would pay — and, like every other Result field, it is
	// bit-identical across the sequential, parallel, and sharded backends.
	Steps int64
	// Shards holds per-shard execution statistics when the run used the
	// sharded backend (WithShards); nil otherwise. Rounds, Outputs,
	// TotalRounds, and Messages are bit-identical across all shard counts —
	// only this field distinguishes a sharded result.
	Shards []ShardStats
}

// NodeAveraged returns (1/n) * sum_v T_v.
func (r *Result) NodeAveraged() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var sum int64
	for _, t := range r.Rounds {
		sum += int64(t)
	}
	return float64(sum) / float64(len(r.Rounds))
}

// SumRounds returns sum_v T_v.
func (r *Result) SumRounds() int64 {
	var sum int64
	for _, t := range r.Rounds {
		sum += int64(t)
	}
	return sum
}

// Config controls an execution.
type Config struct {
	// IDs assigns the identifier of each node; if nil, DefaultIDs(seed=1) is
	// used.
	IDs []uint64
	// Inputs assigns each node's input label; may be nil.
	Inputs []any
	// MaxRounds aborts the run if some node has not terminated after this
	// many rounds; 0 means 4*n + 64 (a generous bound for linear-time
	// algorithms).
	MaxRounds int
}

// Run executes alg on t under cfg. It is the legacy entry point, kept for
// existing callers; new code should configure an Engine via NewEngine and
// functional options (WithContext, WithParallelism, ...).
func Run(t *graph.Tree, alg Algorithm, cfg Config) (*Result, error) {
	return NewEngine(
		WithIDs(cfg.IDs),
		WithInputs(cfg.Inputs),
		WithMaxRounds(cfg.MaxRounds),
	).Run(t, alg)
}

func clearAny(xs []any) {
	for i := range xs {
		xs[i] = nil
	}
}

// reverseSlots computes, for each directed-edge slot e = off[v]+p (port p of
// node v in the tree's CSR layout), the flat slot of the reverse directed
// edge — off[u]+q where q is the port of u leading back to v. Message state
// indexed by flat slot then needs no per-node indirection: node v sends on
// port p by writing next[rev[off[v]+p]].
func reverseSlots(t *graph.Tree) []int32 {
	off, nbrs := t.Offsets(), t.AdjacencyRaw()
	rev := make([]int32, len(nbrs))
	n := t.N()
	for v := 0; v < n; v++ {
		for e := off[v]; e < off[v+1]; e++ {
			u := nbrs[e]
			// Degrees are bounded, so the inner scan is O(Δ).
			for f := off[u]; f < off[u+1]; f++ {
				if int(nbrs[f]) == v {
					rev[e] = f
					break
				}
			}
		}
	}
	return rev
}

// DefaultIDs produces n distinct pseudo-random 63-bit identifiers from a
// seed, deterministic across runs (splitmix64 stream with collision
// avoidance; collisions at these sizes are practically impossible but are
// handled anyway).
func DefaultIDs(n int, seed uint64) []uint64 {
	ids := make([]uint64, n)
	used := make(map[uint64]bool, n)
	s := seed
	for i := 0; i < n; i++ {
		for {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			z >>= 1 // keep IDs in 63 bits
			if z != 0 && !used[z] {
				used[z] = true
				ids[i] = z
				break
			}
		}
	}
	return ids
}

// SequentialIDs returns IDs 1..n (useful for adversarial/parity tests).
func SequentialIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	return ids
}
