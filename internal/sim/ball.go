package sim

// Ball collection: the standard LOCAL primitive "learn your radius-R
// neighborhood in R rounds". BallCollector is a reusable sub-machine: every
// round it exchanges its currently known ball with its neighbors; after r
// rounds the node knows the subgraph induced by all nodes within distance r,
// including their IDs, inputs, and adjacency. Algorithm 𝒜 of Section 7 and
// the level computation of Definition 8 are both of this form.

// BallNode is one node of a collected ball.
type BallNode struct {
	ID    uint64
	Input any
	// Neighbors lists the IDs of the node's neighbors known so far. A node
	// at the boundary of the collected ball may not have all its neighbors
	// listed yet.
	Neighbors []uint64
	// Dist is the hop distance from the collector.
	Dist int
}

// BallCollector accumulates the collector's ball, one hop per round.
type BallCollector struct {
	self  BallNode
	known map[uint64]*BallNode
}

// NewBallCollector creates a collector for a node with the given identity.
func NewBallCollector(info NodeInfo) *BallCollector {
	self := BallNode{ID: info.ID, Input: info.Input, Dist: 0}
	bc := &BallCollector{
		self:  self,
		known: map[uint64]*BallNode{info.ID: &self},
	}
	return bc
}

// ballMsg is the knowledge snapshot exchanged each round.
type ballMsg struct {
	nodes []BallNode
}

// Snapshot returns the message to send to every neighbor this round.
func (bc *BallCollector) Snapshot() ballMsg {
	nodes := make([]BallNode, 0, len(bc.known))
	for _, bn := range bc.known {
		nodes = append(nodes, *bn)
	}
	return ballMsg{nodes: nodes}
}

// Absorb folds a received snapshot into the collector's knowledge. fromPort
// identifies the sending neighbor so the direct edge is recorded even before
// the neighbor's own entry arrives.
func (bc *BallCollector) Absorb(msg ballMsg) {
	for _, bn := range msg.nodes {
		cur, ok := bc.known[bn.ID]
		if !ok {
			cp := bn
			cp.Dist = bn.Dist + 1
			cp.Neighbors = append([]uint64(nil), bn.Neighbors...)
			bc.known[bn.ID] = &cp
			continue
		}
		// Keep the closer distance and merge neighbor knowledge.
		if bn.Dist+1 < cur.Dist {
			cur.Dist = bn.Dist + 1
		}
		cur.Neighbors = mergeIDs(cur.Neighbors, bn.Neighbors)
	}
}

// NoteNeighbor records a direct neighbor's ID (learned from any first
// message on a port).
func (bc *BallCollector) NoteNeighbor(id uint64, input any) {
	bc.self.Neighbors = mergeIDs(bc.self.Neighbors, []uint64{id})
	bc.known[bc.self.ID] = &bc.self
	if _, ok := bc.known[id]; !ok {
		bc.known[id] = &BallNode{ID: id, Input: input, Dist: 1}
	}
}

// Known returns the collected nodes within the given distance.
func (bc *BallCollector) Known(maxDist int) []BallNode {
	var out []BallNode
	for _, bn := range bc.known {
		if bn.Dist <= maxDist {
			out = append(out, *bn)
		}
	}
	return out
}

// Size returns the number of distinct nodes known.
func (bc *BallCollector) Size() int { return len(bc.known) }

func mergeIDs(dst, src []uint64) []uint64 {
	seen := make(map[uint64]bool, len(dst)+len(src))
	for _, id := range dst {
		seen[id] = true
	}
	for _, id := range src {
		if !seen[id] {
			seen[id] = true
			dst = append(dst, id)
		}
	}
	return dst
}

// BallAlgorithm is a sim.Algorithm that collects balls of radius R and then
// terminates, outputting the number of nodes within the ball — a reusable
// building block and a direct test of the "R rounds = radius-R knowledge"
// property of the LOCAL model.
type BallAlgorithm struct {
	Radius int
}

var _ Algorithm = BallAlgorithm{}

// Name implements Algorithm.
func (a BallAlgorithm) Name() string { return "ball-collect" }

// NewMachine implements Algorithm.
func (a BallAlgorithm) NewMachine(info NodeInfo) Machine {
	return &ballMachine{info: info, radius: a.Radius, bc: NewBallCollector(info)}
}

type ballMachine struct {
	info   NodeInfo
	radius int
	bc     *BallCollector
	// send is reused across rounds: the engine copies each entry out of the
	// returned slice before the machine steps again, so the buffer is free
	// for rewriting every round.
	send []any
}

func (m *ballMachine) Step(round int, recv []any) ([]any, bool) {
	for _, msg := range recv {
		if bm, ok := msg.(ballMsg); ok {
			m.bc.Absorb(bm)
		}
	}
	if round >= m.radius {
		return nil, true
	}
	if m.send == nil {
		m.send = make([]any, m.info.Degree)
	}
	snap := m.bc.Snapshot()
	for i := range m.send {
		m.send[i] = snap
	}
	return m.send, false
}

func (m *ballMachine) Output() any { return len(m.bc.Known(m.radius)) }
