package sim

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/graph"
)

// Engine executes LOCAL algorithms. It is configured once via functional
// options and can then run any number of (tree, algorithm) pairs; every run
// with the same options, IDs, and inputs is deterministic, independent of the
// parallelism level.
//
// All backends schedule over the active frontier: the compact list of nodes
// that have not terminated yet. A round steps only frontier nodes, and the
// frozen outputs of terminated nodes reach their live neighbors by pull
// (each active node fills its empty inbox slots before stepping) instead of
// a push sweep over the terminated set, so per-round cost is proportional to
// the live-node count — Θ(Σ_v T_v) machine steps over a whole run instead of
// Θ(n · TotalRounds).
//
// The parallel backend steps the frontier of a single round across a
// persistent worker pool. The LOCAL model's synchronous-round barrier makes
// this semantics-preserving: within a round, node v only reads its own inbox
// (written during the previous round) and only writes the slots
// next[u][port-back-to-v], which no other node writes. Rounds, outputs, and
// message counts are therefore bit-identical between sequential and parallel
// executions.
//
// The sharded backend (WithShards) instead partitions the tree into
// contiguous node-range shards with private state (each with its own
// frontier), exchanging only cross-shard boundary messages at the round
// barrier; see shard.go. It is equally bit-identical to the sequential
// backend.
type Engine struct {
	ids         []uint64
	inputs      []any
	maxRounds   int
	ctx         context.Context
	parallelism int
	shards      int
	layout      ShardLayout
}

// Option configures an Engine.
type Option func(*Engine)

// WithIDs assigns the identifier of each node. If unset, DefaultIDs(n, 1) is
// used.
func WithIDs(ids []uint64) Option { return func(e *Engine) { e.ids = ids } }

// WithInputs assigns each node's LCL input label (may be nil).
func WithInputs(inputs []any) Option { return func(e *Engine) { e.inputs = inputs } }

// WithMaxRounds aborts a run if some node has not terminated after this many
// executed rounds; 0 means 4*n + 64 (a generous bound for linear-time
// algorithms). An algorithm that needs exactly MaxRounds rounds succeeds;
// one that needs MaxRounds+1 fails with ErrRoundLimit.
func WithMaxRounds(r int) Option { return func(e *Engine) { e.maxRounds = r } }

// WithContext attaches a context checked at every round barrier; when it is
// canceled the run returns promptly with an error wrapping ctx.Err().
func WithContext(ctx context.Context) Option {
	return func(e *Engine) {
		if ctx != nil {
			e.ctx = ctx
		}
	}
}

// WithParallelism sets the number of workers stepping nodes within a round.
// 0 (the zero value) and 1 select the sequential backend; n < 0 selects
// GOMAXPROCS workers. It applies to the unsharded backend only; under
// WithShards(k > 1) the shards themselves are the units of concurrency.
func WithParallelism(n int) Option { return func(e *Engine) { e.parallelism = n } }

// WithShards partitions the tree into k contiguous node-range shards, each
// with its own machines and message buffers, run as independent per-round
// executors that exchange only cross-shard boundary messages through an
// in-memory bus between rounds (see shard.go). 0 and 1 select the unsharded
// backends; k < 0 selects GOMAXPROCS shards; k > n is clamped to n (one
// node per shard). The clamped count always yields exactly min(k, n)
// non-empty shards — the split is the balanced graph.RangeCuts partition,
// never a shorter or empty-shard one — pinned by TestShardCountResolution.
// Rounds, outputs, and message counts are bit-identical to the sequential
// backend at every shard count; sharded runs additionally report per-shard
// statistics in Result.Shards.
func WithShards(k int) Option { return func(e *Engine) { e.shards = k } }

// ShardLayout selects how the sharded backend maps nodes to shards.
type ShardLayout string

const (
	// LayoutRange is the default: shards own balanced contiguous index
	// ranges of the construction numbering (graph.RangeCuts).
	LayoutRange ShardLayout = "range"
	// LayoutSubtree relabels nodes by a fat preorder before cutting
	// (graph.Partition): every subtree occupies a contiguous interval, and
	// cut points slide within a balance window to minimize boundary edges.
	// Results are bit-identical to every other layout and backend; only
	// Result.Shards (boundary edges, messages crossed) changes.
	LayoutSubtree ShardLayout = "subtree"
)

// WithShardLayout selects the sharded backend's partitioning layout; the
// empty string means LayoutRange. The layout is execution mechanics in the
// same sense as the shard count: the simulation is executed over relabeled
// indices and every observable result is mapped back through the inverse
// relabeling, so Rounds, Outputs, TotalRounds, Messages, and Steps are
// bit-identical across layouts. Only the per-shard statistics — boundary
// edges and the traffic crossing them, the thing the subtree layout exists
// to reduce — differ. An unknown layout fails Run loudly.
func WithShardLayout(l ShardLayout) Option { return func(e *Engine) { e.layout = l } }

// NewEngine builds an engine from options. The zero configuration is a
// sequential run with default IDs, no inputs, and the default round limit.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{ctx: context.Background(), parallelism: 1}
	for _, o := range opts {
		if o != nil {
			o(e)
		}
	}
	return e
}

// Run executes alg on t under the engine's configuration.
func (e *Engine) Run(t *graph.Tree, alg Algorithm) (*Result, error) {
	n := t.N()
	if n == 0 {
		return nil, graph.ErrEmpty
	}
	ids := e.ids
	if ids == nil {
		ids = DefaultIDs(n, 1)
	}
	if len(ids) != n {
		return nil, fmt.Errorf("sim: %d IDs for %d nodes", len(ids), n)
	}
	if e.inputs != nil && len(e.inputs) != n {
		return nil, fmt.Errorf("sim: %d inputs for %d nodes", len(e.inputs), n)
	}
	maxRounds := e.maxRounds
	if maxRounds == 0 {
		maxRounds = 4*n + 64
	}
	switch e.layout {
	case "", LayoutRange, LayoutSubtree:
	default:
		return nil, fmt.Errorf("sim: unknown shard layout %q", e.layout)
	}
	if shards := e.shards; shards > 1 || shards < 0 {
		if shards < 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		if shards > n {
			shards = n
		}
		if shards > 1 {
			return e.runSharded(t, alg, ids, maxRounds, shards)
		}
	}
	workers := e.parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 { // the zero value is the sequential backend
		workers = 1
	}
	if workers > n {
		workers = n
	}

	slots := 2 * t.M()
	r := &run{
		alg:       alg,
		ctx:       e.ctx,
		maxRounds: maxRounds,
		workers:   workers,
		off:       t.Offsets(),
		nbrs:      t.AdjacencyRaw(),
		rev:       reverseSlots(t),
		machines:  make([]Machine, n),
		done:      make([]bool, n),
		frozen:    make([]any, n),
		inbox:     make([]any, slots),
		next:      make([]any, slots),
		active:    make([]int32, n),
		res: &Result{
			Rounds:  make([]int, n),
			Outputs: make([]any, n),
		},
	}
	if workers > 1 {
		r.stats = make([]rangeStats, workers)
	}
	for v := 0; v < n; v++ {
		var input any
		if e.inputs != nil {
			input = e.inputs[v]
		}
		r.active[v] = int32(v)
		r.machines[v] = alg.NewMachine(NodeInfo{
			ID:     ids[v],
			Degree: t.Degree(v),
			N:      n,
			Input:  input,
		})
	}
	return r.execute()
}

// rangeStats accumulates what one worker observed over its slice of the
// frontier in one round.
type rangeStats struct {
	kept  int // frontier entries surviving the round (compacted in place)
	steps int64
	msgs  int64
	err   error
}

// run is the mutable state of one execution, kept in struct-of-arrays form:
// per-node facts (machines, done, frozen) are flat arrays indexed by node,
// and all message state lives in two flat arrays indexed by directed-edge
// slot — port p of node v is slot off[v]+p, so the receive window of v is
// the contiguous range inbox[off[v]:off[v+1]] and a round is a linear sweep
// over contiguous memory.
//
// active is the frontier: the ascending list of not-yet-terminated nodes. A
// round touches only active entries; stepRange compacts survivors in place,
// so terminated nodes cost nothing from the round after their termination
// on. Frozen-output redelivery is pulled by the live side (pullRange fills a
// stepping node's empty inbox slots from terminated neighbors) rather than
// pushed by the terminated side, which is what lets the dead set drop out of
// the per-round cost entirely.
type run struct {
	alg       Algorithm
	ctx       context.Context
	maxRounds int
	workers   int

	off  []int32 // CSR offsets (shared with the tree; read-only)
	nbrs []int32 // CSR neighbors: nbrs[off[v]+p] is the p-th neighbor of v
	rev  []int32 // rev[e] = flat slot of the reverse directed edge

	machines []Machine
	done     []bool
	// frozen[v] caches the boxed Terminated{Output} interface value created
	// once when v terminates, so every later pull of it is allocation-free.
	frozen []any
	inbox  []any   // flat receive slots, len 2*M
	next   []any   // flat send slots for the following round, len 2*M
	active []int32 // frontier: undecided nodes, ascending, compacted in place
	nDone  int     // terminated so far; pull phases are skipped while 0
	res    *Result

	// Parallel backend only: the persistent worker pool. Workers live for
	// the whole run (no per-round goroutine spawning); the coordinator
	// broadcasts one command per phase and collects one ack per dispatched
	// worker. stats[w] is written only by worker w and read by the
	// coordinator after the round barrier.
	stats []rangeStats
	cmds  []chan poolCmd
	ack   chan struct{}
}

// poolCmd is one phase of work for a pool worker: the pull or step phase of
// a round, over the frontier slice [lo, hi).
type poolCmd struct {
	pull   bool
	round  int
	lo, hi int
}

// worker is the body of one persistent pool goroutine: it performs phases
// until the coordinator closes its command channel.
func (r *run) worker(w int) {
	for c := range r.cmds[w] {
		if c.pull {
			r.pullRange(c.lo, c.hi)
		} else {
			r.stats[w] = r.stepRange(c.round, c.lo, c.hi)
		}
		r.ack <- struct{}{}
	}
}

func (r *run) execute() (*Result, error) {
	if r.workers > 1 {
		r.ack = make(chan struct{}, r.workers)
		r.cmds = make([]chan poolCmd, r.workers)
		for w := range r.cmds {
			r.cmds[w] = make(chan poolCmd)
			go r.worker(w)
		}
		defer func() {
			for _, c := range r.cmds {
				close(c)
			}
		}()
	}
	for round := 0; ; round++ {
		if len(r.active) == 0 {
			r.res.TotalRounds = round
			return r.res, nil
		}
		if round >= r.maxRounds {
			return nil, fmt.Errorf("%w: algorithm %q, n=%d, limit=%d",
				ErrRoundLimit, r.alg.Name(), len(r.machines), r.maxRounds)
		}
		if err := r.ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: algorithm %q canceled at round %d: %w",
				r.alg.Name(), round, err)
		}
		st := r.round(round)
		if st.err != nil {
			return nil, st.err
		}
		r.res.Messages += st.msgs
		r.res.Steps += st.steps
		r.inbox, r.next = r.next, r.inbox
	}
}

// round executes one synchronous round over the frontier: a pull phase
// (filling live nodes' empty inbox slots from terminated neighbors — skipped
// entirely while nothing has terminated) and a step phase, then compacts the
// frontier. The parallel backend splits both phases into contiguous frontier
// chunks across the pool, with a barrier between them: the pull phase reads
// done/frozen state that the step phase writes, so they must not overlap.
// Stats and errors merge lowest-chunk-first, which keeps the reported error
// deterministic (the same node order the sequential backend fails in).
func (r *run) round(round int) rangeStats {
	n := len(r.active)
	if r.workers <= 1 {
		if r.nDone > 0 {
			r.pullRange(0, n)
		}
		st := r.stepRange(round, 0, n)
		if st.err == nil {
			r.nDone += n - st.kept
			r.active = r.active[:st.kept]
		}
		return st
	}
	chunk := (n + r.workers - 1) / r.workers
	used := (n + chunk - 1) / chunk
	if r.nDone > 0 {
		r.dispatch(poolCmd{pull: true}, n, chunk, used)
	}
	r.dispatch(poolCmd{round: round}, n, chunk, used)
	var total rangeStats
	for w := 0; w < used; w++ {
		total.steps += r.stats[w].steps
		total.msgs += r.stats[w].msgs
		if total.err == nil {
			total.err = r.stats[w].err
		}
	}
	if total.err != nil {
		return total
	}
	// Merge the per-chunk in-place compactions into one contiguous frontier,
	// lowest chunk first: each worker left its survivors at the front of its
	// chunk, so the merge is at most one forward copy per chunk and the
	// frontier stays in ascending node order.
	write := 0
	for w := 0; w < used; w++ {
		lo, kept := w*chunk, r.stats[w].kept
		if write != lo {
			copy(r.active[write:write+kept], r.active[lo:lo+kept])
		}
		write += kept
	}
	r.nDone += n - write
	r.active = r.active[:write]
	total.kept = write
	return total
}

// dispatch broadcasts one phase over the first `used` workers, splitting the
// frontier prefix [0, n) into contiguous chunks, and waits for all acks — the
// intra-round barrier between the pull and step phases.
func (r *run) dispatch(c poolCmd, n, chunk, used int) {
	for w := 0; w < used; w++ {
		c.lo = w * chunk
		c.hi = c.lo + chunk
		if c.hi > n {
			c.hi = n
		}
		r.cmds[w] <- c
	}
	for w := 0; w < used; w++ {
		<-r.ack
	}
}

// pullRange fills the empty inbox slots of the frontier nodes in active[lo:hi)
// from their terminated neighbors' frozen outputs — the pull form of frozen
// redelivery. A non-nil slot is a real message (possibly sent in the
// neighbor's terminating round) and takes precedence. The phase reads only
// done/frozen state from completed rounds — the step phase runs behind a
// barrier — and writes only the receive windows of the range's own nodes, so
// parallel pulls are race-free.
func (r *run) pullRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		v := r.active[i]
		for e := r.off[v]; e < r.off[v+1]; e++ {
			if r.inbox[e] == nil {
				if u := r.nbrs[e]; r.done[u] {
					r.inbox[e] = r.frozen[u]
				}
			}
		}
	}
}

// stepRange runs one round for the frontier nodes in active[lo:hi),
// compacting survivors to the front of the range. Each node's receive window
// is a subslice of the flat inbox, consumed in place (clear-and-swap: the
// cleared window becomes the node's receive window after the swap), so no
// separate clearing pass over all ports is needed and steady-state rounds
// allocate nothing. In the parallel backend the frontier chunks hold
// disjoint nodes, so their slot windows are disjoint too, and every
// next[rev[e]] write has a single writer (the owner of edge slot e).
func (r *run) stepRange(round, lo, hi int) rangeStats {
	var st rangeStats
	keep := lo
	for i := lo; i < hi; i++ {
		v := int(r.active[i])
		base, end := r.off[v], r.off[v+1]
		recv := r.inbox[base:end:end]
		send, fin := r.machines[v].Step(round, recv)
		st.steps++
		deg := int(end - base)
		for p := deg; p < len(send); p++ {
			if send[p] != nil {
				st.err = fmt.Errorf("%w: algorithm %q node %d port %d degree %d",
					ErrBadPort, r.alg.Name(), v, p, deg)
				st.kept = keep - lo
				return st
			}
		}
		for p := 0; p < len(send) && p < deg; p++ {
			if send[p] == nil {
				continue
			}
			r.next[r.rev[int(base)+p]] = send[p]
			st.msgs++
		}
		// Clear only after the sends are copied out: a machine may return its
		// recv slice as send.
		clearAny(recv)
		if !fin {
			r.active[keep] = int32(v)
			keep++
			continue
		}
		r.done[v] = true
		r.res.Rounds[v] = round
		out := r.machines[v].Output()
		if out == nil {
			st.err = fmt.Errorf("%w: algorithm %q node %d",
				ErrNilOutput, r.alg.Name(), v)
			st.kept = keep - lo
			return st
		}
		r.res.Outputs[v] = out
		// From the next round on, still-active neighbors observe the frozen
		// output by pulling it; a final message sent in the terminating round
		// stays in its slot and takes precedence.
		r.frozen[v] = Terminated{Output: out}
	}
	st.kept = keep - lo
	return st
}
