package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Engine executes LOCAL algorithms. It is configured once via functional
// options and can then run any number of (tree, algorithm) pairs; every run
// with the same options, IDs, and inputs is deterministic, independent of the
// parallelism level.
//
// The parallel backend steps the nodes of a single round across a worker
// pool. The LOCAL model's synchronous-round barrier makes this
// semantics-preserving: within a round, node v only reads its own inbox
// (written during the previous round) and only writes the slots
// next[u][port-back-to-v], which no other node writes. Rounds, outputs, and
// message counts are therefore bit-identical between sequential and parallel
// executions.
//
// The sharded backend (WithShards) instead partitions the tree into
// contiguous node-range shards with private state, exchanging only
// cross-shard boundary messages at the round barrier; see shard.go. It is
// equally bit-identical to the sequential backend.
type Engine struct {
	ids         []uint64
	inputs      []any
	maxRounds   int
	ctx         context.Context
	parallelism int
	shards      int
}

// Option configures an Engine.
type Option func(*Engine)

// WithIDs assigns the identifier of each node. If unset, DefaultIDs(n, 1) is
// used.
func WithIDs(ids []uint64) Option { return func(e *Engine) { e.ids = ids } }

// WithInputs assigns each node's LCL input label (may be nil).
func WithInputs(inputs []any) Option { return func(e *Engine) { e.inputs = inputs } }

// WithMaxRounds aborts a run if some node has not terminated after this many
// rounds; 0 means 4*n + 64 (a generous bound for linear-time algorithms).
func WithMaxRounds(r int) Option { return func(e *Engine) { e.maxRounds = r } }

// WithContext attaches a context checked at every round barrier; when it is
// canceled the run returns promptly with an error wrapping ctx.Err().
func WithContext(ctx context.Context) Option {
	return func(e *Engine) {
		if ctx != nil {
			e.ctx = ctx
		}
	}
}

// WithParallelism sets the number of workers stepping nodes within a round.
// 0 (the zero value) and 1 select the sequential backend; n < 0 selects
// GOMAXPROCS workers. It applies to the unsharded backend only; under
// WithShards(k > 1) the shards themselves are the units of concurrency.
func WithParallelism(n int) Option { return func(e *Engine) { e.parallelism = n } }

// WithShards partitions the tree into k contiguous node-range shards, each
// with its own machines and message buffers, run as independent per-round
// executors that exchange only cross-shard boundary messages through an
// in-memory bus between rounds (see shard.go). 0 and 1 select the unsharded
// backends; k < 0 selects GOMAXPROCS shards; k > n is capped at n. Rounds,
// outputs, and message counts are bit-identical to the sequential backend at
// every shard count; sharded runs additionally report per-shard statistics
// in Result.Shards.
func WithShards(k int) Option { return func(e *Engine) { e.shards = k } }

// NewEngine builds an engine from options. The zero configuration is a
// sequential run with default IDs, no inputs, and the default round limit.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{ctx: context.Background(), parallelism: 1}
	for _, o := range opts {
		if o != nil {
			o(e)
		}
	}
	return e
}

// Run executes alg on t under the engine's configuration.
func (e *Engine) Run(t *graph.Tree, alg Algorithm) (*Result, error) {
	n := t.N()
	if n == 0 {
		return nil, graph.ErrEmpty
	}
	ids := e.ids
	if ids == nil {
		ids = DefaultIDs(n, 1)
	}
	if len(ids) != n {
		return nil, fmt.Errorf("sim: %d IDs for %d nodes", len(ids), n)
	}
	if e.inputs != nil && len(e.inputs) != n {
		return nil, fmt.Errorf("sim: %d inputs for %d nodes", len(e.inputs), n)
	}
	maxRounds := e.maxRounds
	if maxRounds == 0 {
		maxRounds = 4*n + 64
	}
	if shards := e.shards; shards > 1 || shards < 0 {
		if shards < 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		if shards > n {
			shards = n
		}
		if shards > 1 {
			return e.runSharded(t, alg, ids, maxRounds, shards)
		}
	}
	workers := e.parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 { // the zero value is the sequential backend
		workers = 1
	}
	if workers > n {
		workers = n
	}

	slots := 2 * t.M()
	r := &run{
		alg:       alg,
		ctx:       e.ctx,
		maxRounds: maxRounds,
		workers:   workers,
		off:       t.Offsets(),
		nbrs:      t.AdjacencyRaw(),
		rev:       reverseSlots(t),
		machines:  make([]Machine, n),
		done:      make([]bool, n),
		frozen:    make([]any, n),
		inbox:     make([]any, slots),
		next:      make([]any, slots),
		res: &Result{
			Rounds:  make([]int, n),
			Outputs: make([]any, n),
		},
	}
	if workers > 1 {
		r.stats = make([]rangeStats, workers)
	}
	for v := 0; v < n; v++ {
		var input any
		if e.inputs != nil {
			input = e.inputs[v]
		}
		r.machines[v] = alg.NewMachine(NodeInfo{
			ID:     ids[v],
			Degree: t.Degree(v),
			N:      n,
			Input:  input,
		})
	}
	return r.execute()
}

// rangeStats accumulates what one worker observed over its node range.
type rangeStats struct {
	fins int
	msgs int64
	err  error
}

// run is the mutable state of one execution, kept in struct-of-arrays form:
// per-node facts (machines, done, frozen) are flat arrays indexed by node,
// and all message state lives in two flat arrays indexed by directed-edge
// slot — port p of node v is slot off[v]+p, so the receive window of v is
// the contiguous range inbox[off[v]:off[v+1]] and a round is a linear sweep
// over contiguous memory.
type run struct {
	alg       Algorithm
	ctx       context.Context
	maxRounds int
	workers   int

	off  []int32 // CSR offsets (shared with the tree; read-only)
	nbrs []int32 // CSR neighbors: nbrs[off[v]+p] is the p-th neighbor of v
	rev  []int32 // rev[e] = flat slot of the reverse directed edge

	machines []Machine
	done     []bool
	// frozen[v] caches the boxed Terminated{Output} interface value created
	// once when v terminates, so redelivering it every subsequent round is
	// allocation-free.
	frozen []any
	inbox  []any // flat receive slots, len 2*M
	next   []any // flat send slots for the following round, len 2*M
	res    *Result
	stats  []rangeStats // per-worker, parallel backend only
}

func (r *run) execute() (*Result, error) {
	remaining := len(r.machines)
	// Bind the phase method values once: creating them inside the loop would
	// allocate two closures per round.
	step, redeliver := r.stepRange, r.redeliverRange
	for round := 0; ; round++ {
		if remaining == 0 {
			r.res.TotalRounds = round
			return r.res, nil
		}
		if round > r.maxRounds {
			return nil, fmt.Errorf("%w: algorithm %q, n=%d, limit=%d",
				ErrRoundLimit, r.alg.Name(), len(r.machines), r.maxRounds)
		}
		if err := r.ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: algorithm %q canceled at round %d: %w",
				r.alg.Name(), round, err)
		}
		st := r.forEach(round, step)
		if st.err != nil {
			return nil, st.err
		}
		remaining -= st.fins
		r.res.Messages += st.msgs
		if st := r.forEach(round, redeliver); st.err != nil {
			return nil, st.err
		}
		r.inbox, r.next = r.next, r.inbox
	}
}

// forEach applies fn to [0, n) either inline (sequential backend) or split
// into contiguous chunks across the worker pool, and merges the per-range
// stats. Worker errors are merged lowest-range-first so the reported error is
// deterministic.
func (r *run) forEach(round int, fn func(round, lo, hi int) rangeStats) rangeStats {
	n := len(r.machines)
	if r.workers <= 1 {
		return fn(round, 0, n)
	}
	chunk := (n + r.workers - 1) / r.workers
	var wg sync.WaitGroup
	used := 0
	for w := 0; w < r.workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		used++
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r.stats[w] = fn(round, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total rangeStats
	for w := 0; w < used; w++ {
		total.fins += r.stats[w].fins
		total.msgs += r.stats[w].msgs
		if total.err == nil {
			total.err = r.stats[w].err
		}
	}
	return total
}

// stepRange runs one round for the undecided nodes in [lo, hi). Each node's
// receive window is a subslice of the flat inbox, consumed in place
// (clear-and-swap: the cleared window becomes the node's receive window
// after the swap), so no separate clearing pass over all ports is needed
// and steady-state rounds allocate nothing. In the parallel backend the
// node ranges are disjoint, so the slot ranges [off[lo], off[hi]) are
// disjoint too, and every next[rev[e]] write has a single writer (the owner
// of edge slot e).
func (r *run) stepRange(round, lo, hi int) rangeStats {
	var st rangeStats
	for v := lo; v < hi; v++ {
		if r.done[v] {
			continue
		}
		base, end := r.off[v], r.off[v+1]
		recv := r.inbox[base:end:end]
		send, fin := r.machines[v].Step(round, recv)
		deg := int(end - base)
		for p := 0; p < len(send) && p < deg; p++ {
			if send[p] == nil {
				continue
			}
			r.next[r.rev[int(base)+p]] = send[p]
			st.msgs++
		}
		// Clear only after the sends are copied out: a machine may return its
		// recv slice as send.
		clearAny(recv)
		if fin {
			r.done[v] = true
			st.fins++
			r.res.Rounds[v] = round
			out := r.machines[v].Output()
			if out == nil {
				st.err = fmt.Errorf("%w: algorithm %q node %d",
					ErrNilOutput, r.alg.Name(), v)
				return st
			}
			r.res.Outputs[v] = out
			r.frozen[v] = Terminated{Output: out}
			// From the next round on, neighbors observe the frozen output. A
			// final message sent in the terminating round takes precedence.
			for e := base; e < end; e++ {
				if slot := &r.next[r.rev[e]]; *slot == nil {
					*slot = r.frozen[v]
				}
			}
		}
	}
	return st
}

// redeliverRange keeps the frozen output of every terminated node in [lo, hi)
// visible to its still-active neighbors, at zero message cost and zero
// allocation (the boxed Terminated value is cached in frozen[v]).
func (r *run) redeliverRange(_, lo, hi int) rangeStats {
	for v := lo; v < hi; v++ {
		if !r.done[v] {
			continue
		}
		fz := r.frozen[v]
		for e := r.off[v]; e < r.off[v+1]; e++ {
			if r.done[r.nbrs[e]] {
				continue
			}
			if slot := &r.next[r.rev[e]]; *slot == nil {
				*slot = fz
			}
		}
	}
	return rangeStats{}
}
