package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
)

// coreResult strips the per-shard statistics, leaving the fields the
// equivalence contract covers: Rounds, Outputs, TotalRounds, Messages.
func coreResult(r *Result) Result {
	c := *r
	c.Shards = nil
	return c
}

// shardShapes builds the adversarial boundary shapes of the equivalence
// sweep: paths (boundaries cut one edge), stars (every leaf's edge crosses
// once the center's range ends), caterpillars (legs straddle spine cuts),
// hierarchical lower-bound trees (deep attachment structure), and a balanced
// tree (wide fan-out near the cut).
func shardShapes(t *testing.T) map[string]*graph.Tree {
	t.Helper()
	shapes := map[string]*graph.Tree{}
	add := func(name string, tr *graph.Tree, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		shapes[name] = tr
	}
	p, err := graph.BuildPath(257)
	add("path257", p, err)
	s, err := graph.BuildStar(120)
	add("star120", s, err)
	c, err := graph.BuildCaterpillar(19, 6)
	add("caterpillar19x6", c, err)
	h, err := graph.BuildHierarchical([]int{5, 11})
	if err != nil {
		t.Fatal(err)
	}
	shapes["hierarchical5x11"] = h.Tree
	b, err := graph.BuildBalanced(4, 200)
	add("balanced4x200", b, err)
	return shapes
}

// TestShardedEquivalence sweeps shard counts, both shard layouts, and
// adversarial boundary shapes: every (shape, algorithm, k, layout)
// combination must reproduce the sequential Rounds, Outputs, TotalRounds,
// and Messages exactly. maxIDAlg exercises the frozen-output mirror
// (terminated boundary nodes keep informing remote neighbors); echoAlias
// exercises the inbox clear-after-queue ordering across the bus; the subtree
// layout additionally exercises the permuted execution path end to end
// (results must come back in construction numbering).
func TestShardedEquivalence(t *testing.T) {
	algs := []Algorithm{tickAlg{rounds: 6}, echoAlias{rounds: 9}, maxIDAlg{}}
	for name, tr := range shardShapes(t) {
		ids := DefaultIDs(tr.N(), 42)
		for _, alg := range algs {
			seq, err := NewEngine(WithIDs(ids)).Run(tr, alg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, alg.Name(), err)
			}
			for _, k := range []int{1, 2, 3, 4, 7, 16, tr.N(), tr.N() + 5, -1} {
				for _, layout := range []ShardLayout{LayoutRange, LayoutSubtree} {
					got, err := NewEngine(WithIDs(ids), WithShards(k), WithShardLayout(layout)).Run(tr, alg)
					if err != nil {
						t.Fatalf("%s/%s shards=%d layout=%s: %v", name, alg.Name(), k, layout, err)
					}
					if !reflect.DeepEqual(coreResult(seq), coreResult(got)) {
						t.Fatalf("%s/%s shards=%d layout=%s diverges from sequential", name, alg.Name(), k, layout)
					}
				}
			}
		}
	}
}

// inputEchoAlg terminates immediately, outputting the node's LCL input — the
// probe that catches a layout permuting inputs and outputs inconsistently.
type inputEchoAlg struct{}

func (inputEchoAlg) Name() string { return "input-echo" }
func (inputEchoAlg) NewMachine(info NodeInfo) Machine {
	return inputEchoMachine{input: info.Input}
}

type inputEchoMachine struct{ input any }

func (inputEchoMachine) Step(int, []any) ([]any, bool) { return nil, true }
func (m inputEchoMachine) Output() any                 { return m.input }

// TestShardLayoutPermutesInputs pins the inverse-permutation contract for
// WithInputs: under the subtree layout each machine must still receive its
// own node's input, and outputs must land back at construction indices.
func TestShardLayoutPermutesInputs(t *testing.T) {
	for name, tr := range shardShapes(t) {
		n := tr.N()
		inputs := make([]any, n)
		for v := range inputs {
			inputs[v] = v * 10
		}
		res, err := NewEngine(WithInputs(inputs), WithShards(4), WithShardLayout(LayoutSubtree)).Run(tr, inputEchoAlg{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := 0; v < n; v++ {
			if res.Outputs[v] != v*10 {
				t.Fatalf("%s: output of node %d is %v, want %d", name, v, res.Outputs[v], v*10)
			}
		}
	}
}

// TestShardCountResolution pins the shard-count contract on every layout:
// WithShards(k) always resolves to exactly min(k, n) non-empty shards
// covering all n nodes. Before the balanced split, ceil-chunking silently
// produced fewer shards than requested (n=5, k=4 gave ranges 2+2+1 — three
// shards) and clamping hid the deviation; the balanced cuts make the
// resolved count exact, and this test makes any regression loud.
func TestShardCountResolution(t *testing.T) {
	shapes := map[string]*graph.Tree{"path5": mustPath(t, 5), "path10": mustPath(t, 10)}
	for name, tr := range shardShapes(t) {
		shapes[name] = tr
	}
	for name, tr := range shapes {
		n := tr.N()
		for _, k := range []int{2, 3, 4, 7, n - 1, n, n + 1, n + 5} {
			if k < 2 {
				continue
			}
			want := k
			if want > n {
				want = n
			}
			for _, layout := range []ShardLayout{LayoutRange, LayoutSubtree} {
				res, err := NewEngine(WithShards(k), WithShardLayout(layout)).Run(tr, tickAlg{rounds: 2})
				if err != nil {
					t.Fatalf("%s shards=%d layout=%s: %v", name, k, layout, err)
				}
				if len(res.Shards) != want {
					t.Fatalf("%s shards=%d layout=%s: resolved to %d shards, want %d",
						name, k, layout, len(res.Shards), want)
				}
				total := 0
				for _, s := range res.Shards {
					if s.Nodes < 1 {
						t.Fatalf("%s shards=%d layout=%s: shard %d is empty", name, k, layout, s.Shard)
					}
					total += s.Nodes
				}
				if total != n {
					t.Fatalf("%s shards=%d layout=%s: shards cover %d of %d nodes", name, k, layout, total, n)
				}
			}
		}
	}
}

// TestUnknownShardLayout: a typo'd layout must fail loudly, not silently
// fall back to the range split.
func TestUnknownShardLayout(t *testing.T) {
	if _, err := NewEngine(WithShards(2), WithShardLayout("zigzag")).Run(mustPath(t, 8), tickAlg{rounds: 1}); err == nil {
		t.Fatal("unknown layout accepted silently")
	}
}

// TestSubtreeLayoutReducesBoundary is the boundary-edge regression pin on
// the engine itself: on the shapes whose construction numbering scatters
// subtrees (caterpillar, hierarchical), the subtree layout's ShardStats must
// report at least 30% fewer boundary edges than the range layout at every
// differential shard count — and never more on any shape. The reduction is
// asserted on what the shards actually executed, not on the partitioner's
// claim: ShardStats.BoundaryEdges is the objective function made visible.
func TestSubtreeLayoutReducesBoundary(t *testing.T) {
	boundary := func(tr *graph.Tree, k int, layout ShardLayout) int {
		t.Helper()
		res, err := NewEngine(WithShards(k), WithShardLayout(layout)).Run(tr, tickAlg{rounds: 2})
		if err != nil {
			t.Fatalf("shards=%d layout=%s: %v", k, layout, err)
		}
		total := 0
		for _, s := range res.Shards {
			total += s.BoundaryEdges // each boundary edge appears in both incident shards
		}
		return total
	}
	shapes := shardShapes(t)
	for name, tr := range shapes {
		mustReduce := name == "caterpillar19x6" || name == "hierarchical5x11"
		for _, k := range []int{2, 4, 7} {
			rangeB := boundary(tr, k, LayoutRange)
			subtreeB := boundary(tr, k, LayoutSubtree)
			if subtreeB > rangeB {
				t.Errorf("%s shards=%d: subtree layout has %d boundary-edge endpoints, range %d — layout made it worse",
					name, k, subtreeB, rangeB)
			}
			if !mustReduce {
				continue
			}
			reduction := 1 - float64(subtreeB)/float64(rangeB)
			t.Logf("%s shards=%d: boundary edges %d -> %d (%.0f%% reduction)", name, k, rangeB/2, subtreeB/2, 100*reduction)
			if reduction < 0.30 {
				t.Errorf("%s shards=%d: subtree layout reduces boundary edges by only %.0f%% (%d -> %d), want >= 30%%",
					name, k, 100*reduction, rangeB/2, subtreeB/2)
			}
		}
	}
}

// lastWordAlg is the directed final-round boundary probe: node 0 counts down
// `rounds` rounds and, in its terminating round, sends the string "last-word"
// to every neighbor; every other node terminates one round later and outputs
// exactly what it received from port 0 in that final round. On a two-node
// range split the 0→1 edge is a shard boundary, so node 1's output is correct
// only if the bus delivers (a) the final-round real message and (b) gives it
// precedence over node 0's simultaneous frozen-output fill. An off-by-one
// exchange (deliver before the terminating round's sends, or fill first)
// makes node 1 output the frozen Terminated value or nil instead.
type lastWordAlg struct{ rounds int }

func (a lastWordAlg) Name() string { return "last-word" }
func (a lastWordAlg) NewMachine(info NodeInfo) Machine {
	return &lastWordMachine{rounds: a.rounds, info: info}
}

type lastWordMachine struct {
	rounds int
	info   NodeInfo
	heard  any
}

func (m *lastWordMachine) Step(round int, recv []any) ([]any, bool) {
	if m.info.ID == 1 { // the speaker (SequentialIDs: node 0)
		if round < m.rounds {
			return nil, false
		}
		send := make([]any, m.info.Degree)
		for i := range send {
			send[i] = "last-word"
		}
		return send, true
	}
	if round <= m.rounds { // listeners wait out the speaker's countdown
		return nil, false
	}
	m.heard = recv[0]
	return nil, true
}

func (m *lastWordMachine) Output() any {
	if m.info.ID == 1 {
		return "spoke"
	}
	if m.heard == nil {
		return "heard nothing"
	}
	return m.heard
}

// TestShardBoundaryFinalRoundMessage pins the cross-boundary exchange of the
// terminating round: the listener across the shard cut must observe the
// speaker's final real message, not its frozen output and not nothing.
func TestShardBoundaryFinalRoundMessage(t *testing.T) {
	tr := mustPath(t, 2)
	ids := SequentialIDs(2) // node 0 is the speaker
	const rounds = 5
	for _, k := range []int{1, 2} {
		for _, layout := range []ShardLayout{LayoutRange, LayoutSubtree} {
			res, err := NewEngine(WithIDs(ids), WithShards(k), WithShardLayout(layout)).Run(tr, lastWordAlg{rounds: rounds})
			if err != nil {
				t.Fatalf("shards=%d layout=%s: %v", k, layout, err)
			}
			if got := res.Outputs[1]; got != "last-word" {
				t.Fatalf("shards=%d layout=%s: listener output %v, want the final-round message", k, layout, got)
			}
			if res.Rounds[0] != rounds || res.Rounds[1] != rounds+1 {
				t.Fatalf("shards=%d layout=%s: rounds = %v", k, layout, res.Rounds)
			}
		}
	}
	// The same probe with the listener across a 3-shard cut of a longer path:
	// every interior listener hears its port-0 neighbor's frozen output (the
	// neighbor toward node 0 terminates in the same round), while node 1 —
	// adjacent to the speaker — still hears the real message first.
	tr = mustPath(t, 6)
	res, err := NewEngine(WithIDs(SequentialIDs(6)), WithShards(3)).Run(tr, lastWordAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEngine(WithIDs(SequentialIDs(6))).Run(tr, lastWordAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coreResult(seq), coreResult(res)) {
		t.Fatalf("sharded outputs %v diverge from sequential %v", res.Outputs, seq.Outputs)
	}
}

// TestShardStats pins the per-shard accounting on a 10-node path split in
// two: 5 nodes each, one boundary edge per shard, and — under
// tickAlg{rounds: R} — exactly R real messages crossing in each direction.
func TestShardStats(t *testing.T) {
	const n, rounds = 10, 3
	tr := mustPath(t, n)
	res, err := NewEngine(WithIDs(DefaultIDs(n, 1)), WithShards(2)).Run(tr, tickAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	// tickAlg{rounds: R} steps every node in rounds 0..R, so each 5-node
	// shard performs 5*(R+1) machine steps.
	want := []ShardStats{
		{Shard: 0, Nodes: 5, BoundaryEdges: 1, MessagesCrossed: rounds, ActiveRounds: rounds + 1, Steps: 5 * (rounds + 1)},
		{Shard: 1, Nodes: 5, BoundaryEdges: 1, MessagesCrossed: rounds, ActiveRounds: rounds + 1, Steps: 5 * (rounds + 1)},
	}
	if !reflect.DeepEqual(res.Shards, want) {
		t.Fatalf("Shards = %+v, want %+v", res.Shards, want)
	}
	// Unsharded runs must not report shard statistics.
	res, err = NewEngine(WithIDs(DefaultIDs(n, 1))).Run(tr, tickAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != nil {
		t.Fatalf("unsharded run reports Shards = %+v", res.Shards)
	}
}

// TestShardedErrorPaths: the sharded backend must honor the round limit,
// context cancellation, and the nil-output contract with the same sentinel
// errors as the sequential backend.
func TestShardedErrorPaths(t *testing.T) {
	tr := mustPath(t, 64)
	if _, err := NewEngine(WithShards(4), WithMaxRounds(3)).Run(tr, forever{}); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("round limit: got %v, want ErrRoundLimit", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewEngine(WithShards(4), WithContext(ctx), WithMaxRounds(1<<30)).Run(tr, forever{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation: got %v, want wrapped context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", el)
	}
	cancel()
	if _, err := NewEngine(WithShards(4)).Run(tr, nilOutputAlg{}); !errors.Is(err, ErrNilOutput) {
		t.Fatalf("nil output: got %v, want ErrNilOutput", err)
	}
}

// nilOutputAlg terminates immediately with a nil output on every node.
type nilOutputAlg struct{}

func (nilOutputAlg) Name() string                { return "nil-output" }
func (nilOutputAlg) NewMachine(NodeInfo) Machine { return nilOutputMachine{} }

type nilOutputMachine struct{}

func (nilOutputMachine) Step(int, []any) ([]any, bool) { return nil, true }
func (nilOutputMachine) Output() any                   { return nil }

// BenchmarkShardedEngine measures the boundary-traffic overhead of the
// sharded backend against the sequential baseline on the same workload:
// tickAlg floods every edge every round, so each additional shard adds two
// boundary edges' worth of bus traffic per round on a path.
func BenchmarkShardedEngine(b *testing.B) {
	const n, rounds = 4096, 32
	tr, err := graph.BuildPath(n)
	if err != nil {
		b.Fatal(err)
	}
	ids := DefaultIDs(n, 1)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			eng := NewEngine(WithIDs(ids), WithShards(k))
			b.ReportAllocs()
			b.ResetTimer()
			var crossed int64
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(tr, tickAlg{rounds: rounds})
				if err != nil {
					b.Fatal(err)
				}
				crossed = 0
				for _, s := range res.Shards {
					crossed += s.MessagesCrossed
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n*rounds), "ns/node-round")
			b.ReportMetric(float64(crossed), "boundary-msgs/run")
		})
	}
}
