package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
)

// coreResult strips the per-shard statistics, leaving the fields the
// equivalence contract covers: Rounds, Outputs, TotalRounds, Messages.
func coreResult(r *Result) Result {
	c := *r
	c.Shards = nil
	return c
}

// shardShapes builds the adversarial boundary shapes of the equivalence
// sweep: paths (boundaries cut one edge), stars (every leaf's edge crosses
// once the center's range ends), caterpillars (legs straddle spine cuts),
// hierarchical lower-bound trees (deep attachment structure), and a balanced
// tree (wide fan-out near the cut).
func shardShapes(t *testing.T) map[string]*graph.Tree {
	t.Helper()
	shapes := map[string]*graph.Tree{}
	add := func(name string, tr *graph.Tree, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		shapes[name] = tr
	}
	p, err := graph.BuildPath(257)
	add("path257", p, err)
	s, err := graph.BuildStar(120)
	add("star120", s, err)
	c, err := graph.BuildCaterpillar(19, 6)
	add("caterpillar19x6", c, err)
	h, err := graph.BuildHierarchical([]int{5, 11})
	if err != nil {
		t.Fatal(err)
	}
	shapes["hierarchical5x11"] = h.Tree
	b, err := graph.BuildBalanced(4, 200)
	add("balanced4x200", b, err)
	return shapes
}

// TestShardedEquivalence sweeps shard counts and adversarial boundary shapes:
// every (shape, algorithm, k) combination must reproduce the sequential
// Rounds, Outputs, TotalRounds, and Messages exactly. maxIDAlg exercises the
// frozen-output mirror (terminated boundary nodes keep informing remote
// neighbors); echoAlias exercises the inbox clear-after-queue ordering across
// the bus.
func TestShardedEquivalence(t *testing.T) {
	algs := []Algorithm{tickAlg{rounds: 6}, echoAlias{rounds: 9}, maxIDAlg{}}
	for name, tr := range shardShapes(t) {
		ids := DefaultIDs(tr.N(), 42)
		for _, alg := range algs {
			seq, err := NewEngine(WithIDs(ids)).Run(tr, alg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, alg.Name(), err)
			}
			for _, k := range []int{1, 2, 3, 4, 7, 16, tr.N(), tr.N() + 5, -1} {
				got, err := NewEngine(WithIDs(ids), WithShards(k)).Run(tr, alg)
				if err != nil {
					t.Fatalf("%s/%s shards=%d: %v", name, alg.Name(), k, err)
				}
				if !reflect.DeepEqual(coreResult(seq), coreResult(got)) {
					t.Fatalf("%s/%s shards=%d diverges from sequential", name, alg.Name(), k)
				}
			}
		}
	}
}

// lastWordAlg is the directed final-round boundary probe: node 0 counts down
// `rounds` rounds and, in its terminating round, sends the string "last-word"
// to every neighbor; every other node terminates one round later and outputs
// exactly what it received from port 0 in that final round. On a two-node
// range split the 0→1 edge is a shard boundary, so node 1's output is correct
// only if the bus delivers (a) the final-round real message and (b) gives it
// precedence over node 0's simultaneous frozen-output fill. An off-by-one
// exchange (deliver before the terminating round's sends, or fill first)
// makes node 1 output the frozen Terminated value or nil instead.
type lastWordAlg struct{ rounds int }

func (a lastWordAlg) Name() string { return "last-word" }
func (a lastWordAlg) NewMachine(info NodeInfo) Machine {
	return &lastWordMachine{rounds: a.rounds, info: info}
}

type lastWordMachine struct {
	rounds int
	info   NodeInfo
	heard  any
}

func (m *lastWordMachine) Step(round int, recv []any) ([]any, bool) {
	if m.info.ID == 1 { // the speaker (SequentialIDs: node 0)
		if round < m.rounds {
			return nil, false
		}
		send := make([]any, m.info.Degree)
		for i := range send {
			send[i] = "last-word"
		}
		return send, true
	}
	if round <= m.rounds { // listeners wait out the speaker's countdown
		return nil, false
	}
	m.heard = recv[0]
	return nil, true
}

func (m *lastWordMachine) Output() any {
	if m.info.ID == 1 {
		return "spoke"
	}
	if m.heard == nil {
		return "heard nothing"
	}
	return m.heard
}

// TestShardBoundaryFinalRoundMessage pins the cross-boundary exchange of the
// terminating round: the listener across the shard cut must observe the
// speaker's final real message, not its frozen output and not nothing.
func TestShardBoundaryFinalRoundMessage(t *testing.T) {
	tr := mustPath(t, 2)
	ids := SequentialIDs(2) // node 0 is the speaker
	const rounds = 5
	for _, k := range []int{1, 2} {
		res, err := NewEngine(WithIDs(ids), WithShards(k)).Run(tr, lastWordAlg{rounds: rounds})
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if got := res.Outputs[1]; got != "last-word" {
			t.Fatalf("shards=%d: listener output %v, want the final-round message", k, got)
		}
		if res.Rounds[0] != rounds || res.Rounds[1] != rounds+1 {
			t.Fatalf("shards=%d: rounds = %v", k, res.Rounds)
		}
	}
	// The same probe with the listener across a 3-shard cut of a longer path:
	// every interior listener hears its port-0 neighbor's frozen output (the
	// neighbor toward node 0 terminates in the same round), while node 1 —
	// adjacent to the speaker — still hears the real message first.
	tr = mustPath(t, 6)
	res, err := NewEngine(WithIDs(SequentialIDs(6)), WithShards(3)).Run(tr, lastWordAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEngine(WithIDs(SequentialIDs(6))).Run(tr, lastWordAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coreResult(seq), coreResult(res)) {
		t.Fatalf("sharded outputs %v diverge from sequential %v", res.Outputs, seq.Outputs)
	}
}

// TestShardStats pins the per-shard accounting on a 10-node path split in
// two: 5 nodes each, one boundary edge per shard, and — under
// tickAlg{rounds: R} — exactly R real messages crossing in each direction.
func TestShardStats(t *testing.T) {
	const n, rounds = 10, 3
	tr := mustPath(t, n)
	res, err := NewEngine(WithIDs(DefaultIDs(n, 1)), WithShards(2)).Run(tr, tickAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	// tickAlg{rounds: R} steps every node in rounds 0..R, so each 5-node
	// shard performs 5*(R+1) machine steps.
	want := []ShardStats{
		{Shard: 0, Nodes: 5, BoundaryEdges: 1, MessagesCrossed: rounds, ActiveRounds: rounds + 1, Steps: 5 * (rounds + 1)},
		{Shard: 1, Nodes: 5, BoundaryEdges: 1, MessagesCrossed: rounds, ActiveRounds: rounds + 1, Steps: 5 * (rounds + 1)},
	}
	if !reflect.DeepEqual(res.Shards, want) {
		t.Fatalf("Shards = %+v, want %+v", res.Shards, want)
	}
	// Unsharded runs must not report shard statistics.
	res, err = NewEngine(WithIDs(DefaultIDs(n, 1))).Run(tr, tickAlg{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != nil {
		t.Fatalf("unsharded run reports Shards = %+v", res.Shards)
	}
}

// TestShardedErrorPaths: the sharded backend must honor the round limit,
// context cancellation, and the nil-output contract with the same sentinel
// errors as the sequential backend.
func TestShardedErrorPaths(t *testing.T) {
	tr := mustPath(t, 64)
	if _, err := NewEngine(WithShards(4), WithMaxRounds(3)).Run(tr, forever{}); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("round limit: got %v, want ErrRoundLimit", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewEngine(WithShards(4), WithContext(ctx), WithMaxRounds(1<<30)).Run(tr, forever{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation: got %v, want wrapped context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", el)
	}
	cancel()
	if _, err := NewEngine(WithShards(4)).Run(tr, nilOutputAlg{}); !errors.Is(err, ErrNilOutput) {
		t.Fatalf("nil output: got %v, want ErrNilOutput", err)
	}
}

// nilOutputAlg terminates immediately with a nil output on every node.
type nilOutputAlg struct{}

func (nilOutputAlg) Name() string                { return "nil-output" }
func (nilOutputAlg) NewMachine(NodeInfo) Machine { return nilOutputMachine{} }

type nilOutputMachine struct{}

func (nilOutputMachine) Step(int, []any) ([]any, bool) { return nil, true }
func (nilOutputMachine) Output() any                   { return nil }

// BenchmarkShardedEngine measures the boundary-traffic overhead of the
// sharded backend against the sequential baseline on the same workload:
// tickAlg floods every edge every round, so each additional shard adds two
// boundary edges' worth of bus traffic per round on a path.
func BenchmarkShardedEngine(b *testing.B) {
	const n, rounds = 4096, 32
	tr, err := graph.BuildPath(n)
	if err != nil {
		b.Fatal(err)
	}
	ids := DefaultIDs(n, 1)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			eng := NewEngine(WithIDs(ids), WithShards(k))
			b.ReportAllocs()
			b.ResetTimer()
			var crossed int64
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(tr, tickAlg{rounds: rounds})
				if err != nil {
					b.Fatal(err)
				}
				crossed = 0
				for _, s := range res.Shards {
					crossed += s.MessagesCrossed
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n*rounds), "ns/node-round")
			b.ReportMetric(float64(crossed), "boundary-msgs/run")
		})
	}
}
