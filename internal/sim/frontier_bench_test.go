package sim

// BenchmarkEngineFrontier measures round scheduling on early-termination
// workloads — instances where almost every node terminates in the first
// round or two while a small frontier runs on, the regime whose cost the
// node-averaged complexity of the paper actually describes. A full-sweep
// scheduler pays Θ(n) per round regardless; the frontier scheduler's cost
// collapses with the live set, which is the whole point of the rewrite.
//
// This file is deliberately self-contained on the long-standing public
// engine surface (NewEngine, WithIDs, WithInputs, Run, Terminated), so the
// identical file compiles against the pre-frontier engine too: the
// before/after columns of BENCH_engine.json come from `go test -c` binaries
// of the two trees run interleaved, per the methodology note there.

import (
	"testing"

	"repro/internal/graph"
)

// holdoutAlg terminates node v in round input(v) without ever sending: the
// pure scheduling workload. With one node held out for R rounds and every
// other input 0, the frontier is a single node from round 1 on.
type holdoutAlg struct{}

func (holdoutAlg) Name() string { return "holdout" }
func (holdoutAlg) NewMachine(info NodeInfo) Machine {
	deadline, _ := info.Input.(int)
	return &holdoutMachine{deadline: deadline}
}

type holdoutMachine struct {
	deadline int
	round    int
}

func (m *holdoutMachine) Step(round int, recv []any) ([]any, bool) {
	m.round = round
	return nil, round >= m.deadline
}

func (m *holdoutMachine) Output() any { return m.round }

// rakeAlg is the classic rake: a node terminates once at most one of its
// ports is still unterminated, so leaves drop off immediately and a
// termination wave moves inward — on a path, from both endpoints; on a
// caterpillar, the legs vanish in round 0 and the spine rakes end-to-end.
type rakeAlg struct{}

func (rakeAlg) Name() string { return "rake" }
func (rakeAlg) NewMachine(info NodeInfo) Machine {
	return &rakeMachine{doneSeen: make([]bool, info.Degree)}
}

type rakeMachine struct {
	doneSeen []bool
	send     []any
	round    int
}

func (m *rakeMachine) Step(round int, recv []any) ([]any, bool) {
	for p, msg := range recv {
		if _, ok := msg.(Terminated); ok {
			m.doneSeen[p] = true
		}
	}
	live := 0
	for _, d := range m.doneSeen {
		if !d {
			live++
		}
	}
	if live <= 1 {
		m.round = round
		return nil, true
	}
	if m.send == nil {
		m.send = make([]any, len(m.doneSeen))
		for p := range m.send {
			m.send[p] = "alive"
		}
	}
	return m.send, false
}

func (m *rakeMachine) Output() any { return m.round }

func BenchmarkEngineFrontier(b *testing.B) {
	star, err := graph.BuildStar(4096)
	if err != nil {
		b.Fatal(err)
	}
	holdout := make([]any, star.N())
	for v := range holdout {
		holdout[v] = 0
	}
	holdout[0] = 512 // the center outlives every leaf by 512 rounds
	path, err := graph.BuildPath(4096)
	if err != nil {
		b.Fatal(err)
	}
	// Endpoint holdout on a path: from round 1 on the frontier is a single
	// degree-1 node, so per-round frontier cost is O(1) versus the full
	// sweep's Θ(n) — the cleanest proportional-to-live-work case (the star's
	// lone survivor still owns n-1 ports, which any delivery must touch).
	pathHoldout := make([]any, path.N())
	for v := range pathHoldout {
		pathHoldout[v] = 0
	}
	pathHoldout[0] = 3072
	cat, err := graph.BuildCaterpillar(129, 30)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		tree   *graph.Tree
		alg    Algorithm
		inputs []any
	}{
		{"star4096-holdout512", star, holdoutAlg{}, holdout},
		{"path4096-holdout3072", path, holdoutAlg{}, pathHoldout},
		{"path4096-rake", path, rakeAlg{}, nil},
		{"caterpillar129x30-rake", cat, rakeAlg{}, nil},
	}
	for _, c := range cases {
		n := c.tree.N()
		ids := DefaultIDs(n, 1)
		b.Run(c.name, func(b *testing.B) {
			eng := NewEngine(WithIDs(ids), WithInputs(c.inputs))
			b.ReportAllocs()
			b.ResetTimer()
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(c.tree, c.alg)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.TotalRounds
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n*rounds), "ns/node-round")
		})
	}
}
