package sim

// Differential validation of active-frontier scheduling: a retained
// full-sweep reference engine (the seed's push-redelivery semantics, written
// as simply as possible) is run against every backend on shapes and
// termination orders chosen to stress the frontier machinery — the star
// whose center outlives every leaf, the path drained by a left-to-right
// termination wave, the caterpillar whose legs die instantly while the spine
// runs on, and seeded random trees with pseudorandom per-node deadlines.
// probeAlg hashes every (round, port, message) observation into each node's
// output, so any deviation in what a machine receives — a missed frozen
// fill, a double delivery, a final-round precedence flip — changes Outputs
// and fails the DeepEqual.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// fullSweepRun is the reference oracle: a Θ(n) -per-round engine that steps
// every non-done node in index order and pushes frozen outputs into empty
// next-round slots after each round, mirroring the pre-frontier engine. It
// counts Steps exactly like the real backends (one per Machine.Step call)
// and applies the fixed round-limit rule (an algorithm needing exactly
// maxRounds executed rounds succeeds; maxRounds+1 fails).
func fullSweepRun(t *graph.Tree, alg Algorithm, ids []uint64, inputs []any, maxRounds int) (*Result, error) {
	n := t.N()
	machines := make([]Machine, n)
	done := make([]bool, n)
	frozen := make([]any, n)
	inbox := make([][]any, n)
	next := make([][]any, n)
	for v := 0; v < n; v++ {
		var input any
		if inputs != nil {
			input = inputs[v]
		}
		machines[v] = alg.NewMachine(NodeInfo{ID: ids[v], Degree: t.Degree(v), N: n, Input: input})
		inbox[v] = make([]any, t.Degree(v))
		next[v] = make([]any, t.Degree(v))
	}
	// portBack[v][p] is the port of neighbor nbrs[v][p] leading back to v.
	portBack := make([][]int, n)
	for v := 0; v < n; v++ {
		portBack[v] = make([]int, t.Degree(v))
		for p, u := range t.Neighbors(v) {
			for q, w := range t.Neighbors(u) {
				if w == v {
					portBack[v][p] = q
				}
			}
		}
	}
	res := &Result{Rounds: make([]int, n), Outputs: make([]any, n)}
	remaining := n
	for round := 0; ; round++ {
		if remaining == 0 {
			res.TotalRounds = round
			return res, nil
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("%w: oracle limit=%d", ErrRoundLimit, maxRounds)
		}
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			send, fin := machines[v].Step(round, inbox[v])
			res.Steps++
			for p := 0; p < len(send) && p < t.Degree(v); p++ {
				if send[p] != nil {
					next[t.Neighbors(v)[p]][portBack[v][p]] = send[p]
					res.Messages++
				}
			}
			clearAny(inbox[v])
			if fin {
				done[v] = true
				remaining--
				res.Rounds[v] = round
				res.Outputs[v] = machines[v].Output()
				frozen[v] = Terminated{Output: machines[v].Output()}
			}
		}
		// Push redelivery: every terminated node refills its neighbors' empty
		// slots for the next round (real messages take precedence).
		for v := 0; v < n; v++ {
			if !done[v] {
				continue
			}
			for p, u := range t.Neighbors(v) {
				if done[u] {
					continue
				}
				if slot := &next[u][portBack[v][p]]; *slot == nil {
					*slot = frozen[v]
				}
			}
		}
		inbox, next = next, inbox
	}
}

// probeAlg terminates node v in round deadline(v) (taken from the node's
// input), sends a distinct tagged message on every port in every round up to
// and including the terminating one, and outputs an FNV hash of every
// (round, port, message) it observed. Frozen Terminated values, real
// messages, and nil slots all hash differently, so the output is a
// transcript digest: two engines agree on Outputs iff every machine saw
// byte-identical receive slices in every round.
type probeAlg struct{}

func (probeAlg) Name() string { return "probe" }
func (probeAlg) NewMachine(info NodeInfo) Machine {
	return &probeMachine{info: info, deadline: info.Input.(int), h: fnv.New64a()}
}

type probeMachine struct {
	info     NodeInfo
	deadline int
	h        interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
	send []any
}

func (m *probeMachine) Step(round int, recv []any) ([]any, bool) {
	for p, msg := range recv {
		if msg != nil {
			fmt.Fprintf(m.h, "r%d p%d %v;", round, p, msg)
		}
	}
	if m.send == nil {
		m.send = make([]any, m.info.Degree)
	}
	for p := range m.send {
		m.send[p] = fmt.Sprintf("id%d r%d", m.info.ID, round)
	}
	return m.send, round >= m.deadline
}

func (m *probeMachine) Output() any { return m.h.Sum64() }

// frontierShapes builds the adversarial (tree, deadline) instances of the
// differential sweep. Deadlines are per-node inputs interpreted by probeAlg.
func frontierShapes(t *testing.T) map[string]struct {
	tree      *graph.Tree
	deadlines []any
} {
	t.Helper()
	out := map[string]struct {
		tree      *graph.Tree
		deadlines []any
	}{}
	add := func(name string, tr *graph.Tree, err error, deadline func(v int) int) {
		t.Helper()
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		ds := make([]any, tr.N())
		for v := range ds {
			ds[v] = deadline(v)
		}
		out[name] = struct {
			tree      *graph.Tree
			deadlines []any
		}{tr, ds}
	}
	// Star, center (node 0) last: every leaf terminates in round 0 and the
	// frontier is a single node for 40 rounds — the paper's extreme regime.
	s, err := graph.BuildStar(90)
	add("star-center-last", s, err, func(v int) int {
		if v == 0 {
			return 40
		}
		return 0
	})
	// Path drained left to right: node v terminates in round v, so the
	// frontier is a shrinking suffix sweeping across every shard boundary.
	p, err := graph.BuildPath(97)
	add("path-endpoint-wave", p, err, func(v int) int { return v })
	// Caterpillar: legs die immediately, the spine counts down at different
	// rates — mixed-degree nodes with long-dead neighbors.
	c, err := graph.BuildCaterpillar(17, 5)
	add("caterpillar-spine-last", c, err, func(v int) int {
		if v < 17 { // spine nodes come first in the builder's layout
			return 3 + (v*7)%13
		}
		return 0
	})
	// Seeded random trees with pseudorandom deadlines: no structure for the
	// scheduler to get accidentally right.
	g, err := graph.BuildGaltonWatson(150, 4, 7)
	add("gw-random", g, err, func(v int) int { return (v*2654435761 + 13) % 19 })
	return out
}

// TestFrontierMatchesFullSweepOracle is the differential suite: on every
// shape, the sequential, parallel, and sharded frontier backends must
// reproduce the full-sweep oracle's Rounds, Outputs, TotalRounds, Messages,
// and Steps exactly.
func TestFrontierMatchesFullSweepOracle(t *testing.T) {
	for name, shape := range frontierShapes(t) {
		ids := DefaultIDs(shape.tree.N(), 11)
		want, err := fullSweepRun(shape.tree, probeAlg{}, ids, shape.deadlines, 4*shape.tree.N()+64)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		backends := map[string]*Engine{
			"sequential":      NewEngine(WithIDs(ids), WithInputs(shape.deadlines)),
			"parallel2":       NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithParallelism(2)),
			"parallelN":       NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithParallelism(-1)),
			"shards2":         NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithShards(2)),
			"shards3":         NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithShards(3)),
			"shards7":         NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithShards(7)),
			"shards2-subtree": NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithShards(2), WithShardLayout(LayoutSubtree)),
			"shards3-subtree": NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithShards(3), WithShardLayout(LayoutSubtree)),
			"shards7-subtree": NewEngine(WithIDs(ids), WithInputs(shape.deadlines), WithShards(7), WithShardLayout(LayoutSubtree)),
		}
		for bname, eng := range backends {
			got, err := eng.Run(shape.tree, probeAlg{})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, bname, err)
			}
			if !reflect.DeepEqual(*want, coreResult(got)) {
				t.Errorf("%s/%s diverges from full-sweep oracle:\n got %+v\nwant %+v",
					name, bname, coreResult(got), *want)
			}
		}
	}
}

// TestFrontierFinalMessagePrecedence re-runs the last-word probe (a
// terminating node's final real message must beat its frozen output) on the
// parallel backend; shard_test.go covers the sharded bus.
func TestFrontierFinalMessagePrecedence(t *testing.T) {
	tr := mustPath(t, 2)
	for _, workers := range []int{1, 2, -1} {
		res, err := NewEngine(WithIDs(SequentialIDs(2)), WithParallelism(workers)).
			Run(tr, lastWordAlg{rounds: 5})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := res.Outputs[1]; got != "last-word" {
			t.Fatalf("workers=%d: listener output %v, want the final-round message", workers, got)
		}
	}
}

// badPortAlg sends a non-nil message on port Degree — one beyond the last
// valid port — in round `at`. Before the frontier rewrite such sends were
// silently truncated.
type badPortAlg struct{ at int }

func (badPortAlg) Name() string { return "bad-port" }
func (a badPortAlg) NewMachine(info NodeInfo) Machine {
	return &badPortMachine{info: info, at: a.at}
}

type badPortMachine struct {
	info NodeInfo
	at   int
}

func (m *badPortMachine) Step(round int, recv []any) ([]any, bool) {
	send := make([]any, m.info.Degree+1)
	if round >= m.at {
		send[m.info.Degree] = "overflow"
	}
	return send, false
}

func (m *badPortMachine) Output() any { return "unreachable" }

// TestBadPortRejected: a send on a port beyond the degree must fail loudly
// with ErrBadPort on every backend, while an over-long send slice whose
// excess entries are all nil stays legal (nil means "no message").
func TestBadPortRejected(t *testing.T) {
	tr := mustPath(t, 12)
	for bname, eng := range map[string]*Engine{
		"sequential": NewEngine(),
		"parallel":   NewEngine(WithParallelism(3)),
		"sharded":    NewEngine(WithShards(3)),
	} {
		_, err := eng.Run(tr, badPortAlg{at: 2})
		if !errors.Is(err, ErrBadPort) {
			t.Fatalf("%s: got %v, want ErrBadPort", bname, err)
		}
	}
	// The nil-padded variant must run clean: badPortAlg with a never-reached
	// trigger round returns Degree+1-length slices with a nil tail forever,
	// so cap the run with tickAlg instead — a machine returning a longer
	// all-nil-tail slice is what nilTailAlg pins.
	if _, err := NewEngine().Run(tr, nilTailAlg{rounds: 3}); err != nil {
		t.Fatalf("nil tail beyond degree must be legal, got %v", err)
	}
}

// nilTailAlg returns send slices longer than the degree with nil excess
// entries — legal by the Machine contract ("missing entries mean no
// message").
type nilTailAlg struct{ rounds int }

func (nilTailAlg) Name() string { return "nil-tail" }
func (a nilTailAlg) NewMachine(info NodeInfo) Machine {
	return &nilTailMachine{deg: info.Degree, rounds: a.rounds}
}

type nilTailMachine struct{ deg, rounds int }

func (m *nilTailMachine) Step(round int, recv []any) ([]any, bool) {
	send := make([]any, m.deg+4)
	for p := 0; p < m.deg; p++ {
		send[p] = "tick"
	}
	return send, round >= m.rounds
}

func (m *nilTailMachine) Output() any { return "ok" }

// TestRoundLimitExact pins the fixed off-by-one: tickAlg{rounds: R} needs
// exactly R+1 executed rounds (0..R), so WithMaxRounds(R+1) succeeds and
// WithMaxRounds(R) — under which the algorithm needs maxRounds+1 rounds —
// fails. The seed engine allowed maxRounds+1 rounds through.
func TestRoundLimitExact(t *testing.T) {
	const R = 3
	tr := mustPath(t, 10)
	for bname, mk := range map[string]func(maxRounds int) *Engine{
		"sequential": func(m int) *Engine { return NewEngine(WithMaxRounds(m)) },
		"parallel":   func(m int) *Engine { return NewEngine(WithMaxRounds(m), WithParallelism(2)) },
		"sharded":    func(m int) *Engine { return NewEngine(WithMaxRounds(m), WithShards(2)) },
	} {
		res, err := mk(R+1).Run(tr, tickAlg{rounds: R})
		if err != nil {
			t.Fatalf("%s: algorithm needing exactly maxRounds rounds must succeed: %v", bname, err)
		}
		if res.TotalRounds != R+1 {
			t.Fatalf("%s: TotalRounds = %d, want %d", bname, res.TotalRounds, R+1)
		}
		if _, err := mk(R).Run(tr, tickAlg{rounds: R}); !errors.Is(err, ErrRoundLimit) {
			t.Fatalf("%s: algorithm needing maxRounds+1 rounds must fail, got %v", bname, err)
		}
	}
}

// TestStepsInvariant: Steps counts one unit per Machine.Step call, so it
// always equals SumRounds() + n, identically on every backend, and the
// sharded per-shard Steps sum to it.
func TestStepsInvariant(t *testing.T) {
	tr, err := graph.BuildCaterpillar(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.N()
	ids := DefaultIDs(n, 5)
	for bname, eng := range map[string]*Engine{
		"sequential": NewEngine(WithIDs(ids)),
		"parallel":   NewEngine(WithIDs(ids), WithParallelism(4)),
		"sharded":    NewEngine(WithIDs(ids), WithShards(4)),
	} {
		res, err := eng.Run(tr, maxIDAlg{})
		if err != nil {
			t.Fatalf("%s: %v", bname, err)
		}
		if want := res.SumRounds() + int64(n); res.Steps != want {
			t.Fatalf("%s: Steps = %d, want SumRounds+n = %d", bname, res.Steps, want)
		}
		if res.Shards != nil {
			var sum int64
			for _, s := range res.Shards {
				sum += s.Steps
			}
			if sum != res.Steps {
				t.Fatalf("%s: per-shard steps sum to %d, Result.Steps = %d", bname, sum, res.Steps)
			}
		}
	}
}
