// Package coloring implements the distributed symmetry-breaking primitives
// the paper's algorithms rely on: Linial-style iterated color reduction
// (3-coloring paths, and more generally (Δ+1)-coloring bounded-degree trees,
// in O(log* n) rounds, [Lin92]) and 2-coloring of paths by propagation in
// Θ(n) rounds. Both are implemented as honest LOCAL machines for package sim
// and as reusable sub-machines for the composite algorithms of the paper.
package coloring

import "math"

// LogStar2 returns log*_2(x): the number of times log2 must be applied to x
// before the result is at most 1. LogStar2(x) = 0 for x <= 1.
func LogStar2(x float64) int {
	count := 0
	for x > 1 {
		x = math.Log2(x)
		count++
		if count > 128 {
			return count
		}
	}
	return count
}

// LogStarInt is LogStar2 on integers.
func LogStarInt(n int) int { return LogStar2(float64(n)) }

// IsPrime reports whether p is prime (trial division; used only on tiny
// palette parameters).
func IsPrime(p int) bool {
	if p < 2 {
		return false
	}
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime strictly greater than x.
func NextPrime(x int) int {
	p := x + 1
	for !IsPrime(p) {
		p++
	}
	return p
}
