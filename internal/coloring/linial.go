package coloring

import (
	"fmt"
	"math"
)

// Reducer is the Linial iterated color-reduction engine for one node, usable
// standalone or as a sub-machine inside composite algorithms.
//
// It starts from the node's unique identifier (a proper "2^63-coloring") and,
// in each communication round, exchanges current colors with its active
// neighbors. Palette sizes shrink according to a deterministic schedule that
// depends only on (Δ, ID-space size), so all nodes operate in lockstep with
// no extra coordination:
//
//  1. Reduction rounds: with palette size m, colors are identified with
//     polynomials of degree ≤ d over F_q (q prime, q > d·Δ, q^{d+1} ≥ m).
//     The set S_c = {(x, p_c(x)) : x ∈ F_q} of a color intersects any other
//     color's set in ≤ d points, so the ≤ Δ neighbor sets cover ≤ dΔ < q
//     points of S_c and the node can pick an uncovered point as its new
//     color in [q²]. Adjacent nodes pick distinct points (the node's point
//     avoids the neighbor's whole set; the neighbor's point lies in it).
//  2. Greedy rounds: once the palette stops shrinking (size m*, a constant
//     depending only on Δ), color classes m*-1, m*-2, ..., Δ+1 recolor one
//     per round to the smallest free color in {0..Δ}.
//
// Total rounds: O(log* n) + O(Δ²). The final palette is {0..Δ}: 3 colors on
// paths.
type Reducer struct {
	delta    int
	schedule []paletteStep
	phase    int // index into schedule (reduction), then greedy countdown
	greedyC  int // current color class being eliminated; < 0 when finished
	color    int64
	done     bool
}

type paletteStep struct {
	m int64 // palette size before this step
	d int   // polynomial degree
	q int64 // field size
}

// PaletteSchedule computes the deterministic palette-size schedule for a
// given maximum degree and ID-space size (2^63 by default). The last entry's
// q² is the fixpoint palette size m*.
func PaletteSchedule(delta int, idSpace float64) ([]paletteStep, int64, error) {
	if delta < 1 {
		return nil, 0, fmt.Errorf("coloring: delta %d < 1", delta)
	}
	var steps []paletteStep
	m := idSpace
	mInt := func(x float64) int64 {
		if x > math.MaxInt64/2 {
			return math.MaxInt64 / 2
		}
		return int64(x)
	}
	cur := mInt(m)
	for i := 0; i < 64; i++ {
		d, q, ok := choosePoly(cur, delta)
		if !ok {
			break
		}
		next := q * q
		if next >= cur {
			break // fixpoint reached
		}
		steps = append(steps, paletteStep{m: cur, d: d, q: q})
		cur = next
	}
	return steps, cur, nil
}

// choosePoly picks the smallest degree d (and corresponding prime q > dΔ)
// such that q^{d+1} >= m. It returns ok=false if no progress is possible.
func choosePoly(m int64, delta int) (d int, q int64, ok bool) {
	for d = 1; d <= 64; d++ {
		qi := int64(NextPrime(d * delta))
		// Check qi^{d+1} >= m without overflow.
		pow := int64(1)
		reached := false
		for e := 0; e < d+1; e++ {
			if pow > m/qi+1 {
				reached = true
				break
			}
			pow *= qi
			if pow >= m {
				reached = true
				break
			}
		}
		if reached {
			return d, qi, true
		}
	}
	return 0, 0, false
}

// NewReducer creates a reduction engine seeded with the node's identifier.
// idSpace is the size of the ID space (use float64(1<<63) for 63-bit IDs).
func NewReducer(id uint64, delta int, idSpace float64) (*Reducer, error) {
	steps, fix, err := PaletteSchedule(delta, idSpace)
	if err != nil {
		return nil, err
	}
	r := &Reducer{
		delta:    delta,
		schedule: steps,
		greedyC:  int(fix) - 1,
		color:    int64(id),
	}
	if len(steps) == 0 && fix <= int64(delta)+1 {
		r.done = true
	}
	return r, nil
}

// Color returns the node's current color. After Done() reports true this is
// the final color in {0..Δ}.
func (r *Reducer) Color() int64 { return r.color }

// Done reports whether the reduction has finished.
func (r *Reducer) Done() bool { return r.done }

// Rounds returns the total number of communication rounds the schedule
// takes; identical on every node.
func (r *Reducer) Rounds() int {
	greedy := r.greedyC - r.delta // classes m*-1 .. Δ+1, one round each
	if greedy < 0 {
		greedy = 0
	}
	return len(r.schedule) + greedy
}

// Advance performs one lockstep round given the current colors of the active
// neighbors (entries < 0 are ignored: masked ports / non-participants). It
// returns an error only on violated invariants (duplicate neighbor color),
// which would indicate an improper input coloring.
func (r *Reducer) Advance(neighborColors []int64) error {
	if r.done {
		return nil
	}
	if r.phase < len(r.schedule) {
		step := r.schedule[r.phase]
		nc, err := reduceOnce(r.color, neighborColors, step, r.delta)
		if err != nil {
			return err
		}
		r.color = nc
		r.phase++
		if r.phase == len(r.schedule) && r.greedyC <= r.delta {
			r.done = true
		}
		return nil
	}
	// Greedy elimination of color class r.greedyC.
	if r.color == int64(r.greedyC) {
		used := make(map[int64]bool, r.delta)
		for _, c := range neighborColors {
			if c >= 0 {
				used[c] = true
			}
		}
		for c := int64(0); ; c++ {
			if !used[c] {
				r.color = c
				break
			}
		}
	}
	r.greedyC--
	if r.greedyC <= r.delta {
		r.done = true
	}
	return nil
}

// reduceOnce applies one polynomial reduction step.
func reduceOnce(color int64, neighbors []int64, step paletteStep, delta int) (int64, error) {
	q := step.q
	// Forbidden points: the union of neighbor color sets, restricted to the
	// points we might pick. For each x in F_q our candidate point is
	// (x, p_color(x)); it is covered by neighbor c' iff p_{c'}(x) equals
	// p_color(x).
	coeffs := polyCoeffs(color, step.d, q)
	var nbrCoeffs [][]int64
	for _, c := range neighbors {
		if c < 0 {
			continue
		}
		if c == color {
			return 0, fmt.Errorf("coloring: neighbor has identical color %d (improper input coloring)", c)
		}
		nbrCoeffs = append(nbrCoeffs, polyCoeffs(c, step.d, q))
	}
	if len(nbrCoeffs) > delta {
		return 0, fmt.Errorf("coloring: %d active neighbors exceeds delta %d", len(nbrCoeffs), delta)
	}
	for x := int64(0); x < q; x++ {
		y := polyEval(coeffs, x, q)
		covered := false
		for _, nb := range nbrCoeffs {
			if polyEval(nb, x, q) == y {
				covered = true
				break
			}
		}
		if !covered {
			return x*q + y, nil
		}
	}
	// Cannot happen: ≤ dΔ < q covered points.
	return 0, fmt.Errorf("coloring: no uncovered point for color %d (q=%d, d=%d)", color, q, step.d)
}

// polyCoeffs writes color in base q as d+1 coefficients.
func polyCoeffs(color int64, d int, q int64) []int64 {
	coeffs := make([]int64, d+1)
	for i := 0; i <= d; i++ {
		coeffs[i] = color % q
		color /= q
	}
	return coeffs
}

// polyEval evaluates the polynomial at x over F_q (Horner).
func polyEval(coeffs []int64, x, q int64) int64 {
	var acc int64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*x + coeffs[i]) % q
	}
	return acc
}
