package coloring

import (
	"repro/internal/sim"
)

// IDSpace63 is the default identifier-space size used by the palette
// schedule (63-bit identifiers).
const IDSpace63 = float64(1 << 63)

// LinialAlgorithm is a sim.Algorithm computing a proper (Δ+1)-coloring of
// the whole graph in O(log* n) + O(Δ²) rounds. Delta must be an upper bound
// on the maximum degree.
type LinialAlgorithm struct {
	Delta int
}

var _ sim.Algorithm = LinialAlgorithm{}

// Name implements sim.Algorithm.
func (a LinialAlgorithm) Name() string { return "linial-coloring" }

// NewMachine implements sim.Algorithm.
func (a LinialAlgorithm) NewMachine(info sim.NodeInfo) sim.Machine {
	r, err := NewReducer(info.ID, a.Delta, IDSpace63)
	if err != nil {
		// Construction can only fail on delta < 1, a static misuse.
		panic(err)
	}
	return &linialMachine{info: info, reducer: r}
}

type linialMachine struct {
	info    sim.NodeInfo
	reducer *Reducer
}

// colorMsg carries a node's current color.
type colorMsg struct{ color int64 }

func (m *linialMachine) Step(round int, recv []any) ([]any, bool) {
	if round > 0 {
		nbr := make([]int64, len(recv))
		for i, msg := range recv {
			nbr[i] = -1
			if cm, ok := msg.(colorMsg); ok {
				nbr[i] = cm.color
			}
		}
		if err := m.reducer.Advance(nbr); err != nil {
			// Invariant violation inside a deterministic lockstep schedule is
			// a programming error, not a runtime condition.
			panic(err)
		}
		if m.reducer.Done() {
			return nil, true
		}
	}
	send := make([]any, m.info.Degree)
	for i := range send {
		send[i] = colorMsg{color: m.reducer.Color()}
	}
	return send, false
}

func (m *linialMachine) Output() any { return m.reducer.Color() }

// TwoColorPathAlgorithm 2-colors a path graph in Θ(n) worst-case rounds:
// each endpoint floods its identifier and a hop counter; a node terminates
// once it has heard from both endpoints, coloring itself by the parity of
// its distance to the endpoint with the smaller identifier. All nodes agree
// on the orientation, so the coloring is proper; every node needs
// max(d_left, d_right) rounds, so both worst-case and node-averaged cost are
// Θ(n) — the paper's Corollary 60 regime.
type TwoColorPathAlgorithm struct{}

var _ sim.Algorithm = TwoColorPathAlgorithm{}

// Name implements sim.Algorithm.
func (TwoColorPathAlgorithm) Name() string { return "two-color-path" }

// NewMachine implements sim.Algorithm.
func (TwoColorPathAlgorithm) NewMachine(info sim.NodeInfo) sim.Machine {
	return &twoColorMachine{info: info}
}

// endpointMsg carries an endpoint's ID and the hop distance travelled so
// far.
type endpointMsg struct {
	id   uint64
	dist int
}

type twoColorMachine struct {
	info sim.NodeInfo
	// ends[p] is the endpoint info learned from the direction of port p.
	ends  []endpointMsg
	known []bool
	sent  []bool
	out   int64
}

func (m *twoColorMachine) Step(round int, recv []any) ([]any, bool) {
	if m.ends == nil {
		m.ends = make([]endpointMsg, m.info.Degree)
		m.known = make([]bool, m.info.Degree)
		m.sent = make([]bool, m.info.Degree)
	}
	for p, msg := range recv {
		if em, ok := msg.(endpointMsg); ok && !m.known[p] {
			m.ends[p] = em
			m.known[p] = true
		}
	}
	switch m.info.Degree {
	case 0:
		m.out = 0
		return nil, true
	case 1:
		// Endpoint: announce self once, then wait for the other endpoint.
		var send []any
		if !m.sent[0] {
			send = []any{endpointMsg{id: m.info.ID, dist: 1}}
			m.sent[0] = true
		}
		if m.known[0] {
			m.out = m.colorFrom(endpointMsg{id: m.info.ID, dist: 0}, m.ends[0])
			return send, true
		}
		return send, false
	default: // degree 2 interior node
		send := make([]any, 2)
		for p := 0; p < 2; p++ {
			other := 1 - p
			if m.known[other] && !m.sent[p] {
				send[p] = endpointMsg{id: m.ends[other].id, dist: m.ends[other].dist + 1}
				m.sent[p] = true
			}
		}
		if m.known[0] && m.known[1] {
			m.out = m.colorFrom(m.ends[0], m.ends[1])
			return send, true
		}
		return send, false
	}
}

// colorFrom colors by parity of the distance to the smaller-ID endpoint.
func (m *twoColorMachine) colorFrom(a, b endpointMsg) int64 {
	ref := a
	if b.id < a.id {
		ref = b
	}
	return int64(ref.dist % 2)
}

func (m *twoColorMachine) Output() any { return m.out }

// VerifyProperColoring checks that no edge of the graph has equal colors at
// its endpoints. colors[v] is the color of node v.
type edgeLister interface {
	Edges() [][2]int
}

// VerifyProperColoring reports the first monochromatic edge, or ok.
func VerifyProperColoring(g edgeLister, colors []int64) (ok bool, badU, badV int) {
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			return false, e[0], e[1]
		}
	}
	return true, -1, -1
}
