package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestLogStar2(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1 << 62, 5},
	}
	for _, tc := range cases {
		if got := LogStar2(tc.x); got != tc.want {
			t.Errorf("LogStar2(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestPrimes(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 29, 97}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	composites := []int{0, 1, 4, 9, 15, 91}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
	if NextPrime(4) != 5 || NextPrime(5) != 7 || NextPrime(24) != 29 {
		t.Error("NextPrime wrong")
	}
}

func TestPaletteScheduleShrinksToConstant(t *testing.T) {
	steps, fix, err := PaletteSchedule(2, IDSpace63)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no reduction steps for 63-bit IDs")
	}
	// The schedule must be strictly decreasing and end at a constant
	// (independent of n) palette.
	prev := steps[0].m
	for _, s := range steps[1:] {
		if s.m >= prev {
			t.Fatalf("palette not shrinking: %d -> %d", prev, s.m)
		}
		prev = s.m
	}
	if fix > 100 {
		t.Fatalf("fixpoint palette %d too large", fix)
	}
	// log* flavor: the number of steps is tiny.
	if len(steps) > 10 {
		t.Fatalf("schedule has %d steps, want O(log* n) ~ <= 10", len(steps))
	}
}

func TestReducerRoundsMatchesSchedule(t *testing.T) {
	r, err := NewReducer(12345, 2, IDSpace63)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds() <= 0 || r.Rounds() > 60 {
		t.Fatalf("Rounds() = %d, want small positive", r.Rounds())
	}
}

func runColoring(t *testing.T, tr *graph.Tree, delta int, seed uint64) *sim.Result {
	t.Helper()
	res, err := sim.Run(tr, LinialAlgorithm{Delta: delta}, sim.Config{
		IDs: sim.DefaultIDs(tr.N(), seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func colorsOf(res *sim.Result) []int64 {
	out := make([]int64, len(res.Outputs))
	for i, o := range res.Outputs {
		out[i] = o.(int64)
	}
	return out
}

func TestLinialColorsPathWith3Colors(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		tr, err := graph.BuildPath(n)
		if err != nil {
			t.Fatal(err)
		}
		res := runColoring(t, tr, 2, uint64(n))
		colors := colorsOf(res)
		for v, c := range colors {
			if c < 0 || c > 2 {
				t.Fatalf("n=%d: node %d color %d outside {0,1,2}", n, v, c)
			}
		}
		if ok, u, v := VerifyProperColoring(tr, colors); !ok {
			t.Fatalf("n=%d: edge {%d,%d} monochromatic", n, u, v)
		}
	}
}

func TestLinialWorstCaseRoundsAreLogStarish(t *testing.T) {
	// Round count must be essentially flat in n (O(log* n) + O(Δ²)).
	var r100, r100k int
	for _, n := range []int{100, 100000} {
		tr, err := graph.BuildPath(n)
		if err != nil {
			t.Fatal(err)
		}
		res := runColoring(t, tr, 2, 99)
		if n == 100 {
			r100 = res.TotalRounds
		} else {
			r100k = res.TotalRounds
		}
	}
	if r100k > r100+5 {
		t.Fatalf("rounds grew from %d (n=100) to %d (n=100000); not log*-like", r100, r100k)
	}
	if r100k > 80 {
		t.Fatalf("rounds = %d, want < 80", r100k)
	}
}

func TestLinialColorsTreesWithDeltaPlus1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		// Random tree with degree cap 5.
		n := 50 + rng.Intn(200)
		b := graph.NewBuilder(n)
		b.AddNode()
		deg := make([]int, n)
		for v := 1; v < n; v++ {
			b.AddNode()
			for {
				u := rng.Intn(v)
				if deg[u] < 4 {
					if err := b.AddEdge(v, u); err != nil {
						t.Fatal(err)
					}
					deg[u]++
					deg[v]++
					break
				}
			}
		}
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		res := runColoring(t, tr, 5, uint64(trial+1))
		colors := colorsOf(res)
		for _, c := range colors {
			if c < 0 || c > 5 {
				t.Fatalf("color %d outside {0..5}", c)
			}
		}
		if ok, u, v := VerifyProperColoring(tr, colors); !ok {
			t.Fatalf("trial %d: edge {%d,%d} monochromatic", trial, u, v)
		}
	}
}

func TestQuickLinialProperOnRandomPathsAndSeeds(t *testing.T) {
	f := func(seed uint64, sz uint16) bool {
		n := 2 + int(sz)%500
		tr, err := graph.BuildPath(n)
		if err != nil {
			return false
		}
		res, err := sim.Run(tr, LinialAlgorithm{Delta: 2}, sim.Config{
			IDs: sim.DefaultIDs(n, seed|1),
		})
		if err != nil {
			return false
		}
		ok, _, _ := VerifyProperColoring(tr, colorsOf(res))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoColorPathProper(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 50, 501} {
		tr, err := graph.BuildPath(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr, TwoColorPathAlgorithm{}, sim.Config{
			IDs: sim.DefaultIDs(n, uint64(n)*3+1),
		})
		if err != nil {
			t.Fatal(err)
		}
		colors := colorsOf(res)
		for _, c := range colors {
			if c != 0 && c != 1 {
				t.Fatalf("n=%d: non-binary color %d", n, c)
			}
		}
		if ok, u, v := VerifyProperColoring(tr, colors); !ok {
			t.Fatalf("n=%d: edge {%d,%d} monochromatic", n, u, v)
		}
	}
}

func TestTwoColorPathIsLinearNodeAveraged(t *testing.T) {
	// Corollary 60 regime: node-averaged complexity of 2-coloring a path is
	// Θ(n). Check the ratio avg/n stays in a constant band as n grows.
	ratios := make([]float64, 0, 3)
	for _, n := range []int{200, 400, 800} {
		tr, err := graph.BuildPath(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr, TwoColorPathAlgorithm{}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, res.NodeAveraged()/float64(n))
	}
	for _, r := range ratios {
		// Every node waits max(dL,dR) >= n/2; averaged over the path the sum
		// of max distances is 3n²/4, so the ratio is about 0.75.
		if r < 0.5 || r > 1.1 {
			t.Fatalf("node-averaged/n = %v, want within [0.5, 1.1]", r)
		}
	}
}

func TestReducerMaskedNeighbors(t *testing.T) {
	// Two adjacent nodes reduce in lockstep with a third port masked (-1).
	r1, err := NewReducer(100, 2, IDSpace63)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReducer(200, 2, IDSpace63)
	if err != nil {
		t.Fatal(err)
	}
	for !r1.Done() || !r2.Done() {
		c1, c2 := r1.Color(), r2.Color()
		if err := r1.Advance([]int64{c2, -1}); err != nil {
			t.Fatal(err)
		}
		if err := r2.Advance([]int64{c1, -1}); err != nil {
			t.Fatal(err)
		}
	}
	if r1.Color() == r2.Color() {
		t.Fatalf("adjacent nodes share final color %d", r1.Color())
	}
	if r1.Color() > 2 || r2.Color() > 2 {
		t.Fatalf("final colors (%d,%d) exceed 2", r1.Color(), r2.Color())
	}
}

func TestReducerRejectsImproperInput(t *testing.T) {
	r, err := NewReducer(100, 2, IDSpace63)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Advance([]int64{100}); err == nil {
		t.Fatal("want error for identical neighbor color")
	}
}
