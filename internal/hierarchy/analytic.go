package hierarchy

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
)

// Execution is the outcome of running the generic algorithm: per-node output
// labels and termination rounds. It is produced both by the simulator (via
// sim.Run + CollectExecution) and by RunAnalytic; the two agree exactly
// (asserted by tests), which lets parameter sweeps use the analytic path on
// instances far beyond what message-level simulation can reach.
type Execution struct {
	Out    []Label
	Rounds []int
}

// NodeAveraged returns (1/n) * sum_v T_v.
func (e *Execution) NodeAveraged() float64 {
	if len(e.Rounds) == 0 {
		return 0
	}
	var sum int64
	for _, t := range e.Rounds {
		sum += int64(t)
	}
	return float64(sum) / float64(len(e.Rounds))
}

// SumRounds returns sum_v T_v.
func (e *Execution) SumRounds() int64 {
	var sum int64
	for _, t := range e.Rounds {
		sum += int64(t)
	}
	return sum
}

// RunAnalytic executes the generic algorithm's decision logic centrally,
// charging every node exactly the termination round the LOCAL simulation
// would charge it (see Schedule for the round structure).
func RunAnalytic(t *graph.Tree, levels []int, sched *Schedule, ids []uint64) (*Execution, error) {
	n := t.N()
	if len(levels) != n || len(ids) != n {
		return nil, fmt.Errorf("hierarchy: levels/ids length mismatch (n=%d)", n)
	}
	k := sched.params.Problem.K
	ex := &Execution{
		Out:    make([]Label, n),
		Rounds: make([]int, n),
	}
	decided := make([]bool, n)

	decide := func(v int, lab Label, round int) {
		ex.Out[v] = lab
		ex.Rounds[v] = round
		decided[v] = true
	}

	// Round 0: level-(k+1) nodes output E immediately.
	for v := 0; v < n; v++ {
		if levels[v] == k+1 {
			decide(v, LabelE, 0)
		}
	}

	// relaxExempt assigns E to every eligible node at its earliest legal
	// round; chains have length <= k, so iterating to fixpoint is cheap.
	relaxExempt := func() {
		for changed := true; changed; {
			changed = false
			for v := 0; v < n; v++ {
				l := levels[v]
				if decided[v] || l < 2 || l > k {
					continue
				}
				round, ok := exemptRound(t, levels, ex, decided, v, k)
				if ok {
					decide(v, LabelE, round)
					changed = true
				}
			}
		}
	}
	relaxExempt()

	// Phases 1..k-1.
	for i := 1; i < k; i++ {
		start := sched.Start(i)
		decision := sched.DecisionRound(i)
		gamma := sched.params.Gammas[i-1]
		for _, seg := range activeSegments(t, levels, decided, i) {
			if len(seg) >= gamma {
				for _, v := range seg {
					decide(v, LabelD, decision)
				}
				continue
			}
			colorSegment(seg, ids, func(_, v int, lab Label) { decide(v, lab, decision) })
		}
		_ = start
		relaxExempt()
	}

	// Phase k.
	startK := sched.Start(k)
	for _, seg := range activeSegments(t, levels, decided, k) {
		if sched.params.Problem.Variant == Coloring25 {
			last := len(seg) - 1
			colorSegment(seg, ids, func(pos, v int, lab Label) {
				// T_v = startK + max(distance to either end).
				far := pos
				if last-pos > far {
					far = last - pos
				}
				decide(v, lab, startK+far)
			})
			continue
		}
		colors, rounds, err := runLinialSegment(seg, ids)
		if err != nil {
			return nil, err
		}
		for j, v := range seg {
			decide(v, triColor(colors[j]), startK+rounds)
		}
	}
	relaxExempt()

	for v := 0; v < n; v++ {
		if !decided[v] {
			return nil, fmt.Errorf("hierarchy: analytic run left node %d (level %d) undecided",
				v, levels[v])
		}
	}
	return ex, nil
}

// exemptRound computes whether undecided node v (level 2..k) is eligible for
// E given the current decisions, and at which round the simulation would
// take it.
func exemptRound(t *graph.Tree, levels []int, ex *Execution, decided []bool, v, k int) (int, bool) {
	l := levels[v]
	enabler := -1
	maxLower := 0
	for _, w := range t.NeighborsRaw(v) {
		u := int(w)
		if levels[u] >= l {
			continue
		}
		if l == k {
			if !decided[u] {
				return 0, false
			}
			if ex.Out[u] == LabelD {
				return 0, false
			}
			if ex.Rounds[u] > maxLower {
				maxLower = ex.Rounds[u]
			}
		}
		if decided[u] && (ex.Out[u].IsBiColor() || ex.Out[u] == LabelE) {
			if enabler == -1 || ex.Rounds[u] < enabler {
				enabler = ex.Rounds[u]
			}
		}
	}
	if enabler == -1 {
		return 0, false
	}
	if l == k {
		// The level-k check needs all lower neighbors' outputs visible.
		if maxLower > enabler {
			return maxLower + 1, true
		}
	}
	return enabler + 1, true
}

// activeSegments returns the maximal paths of undecided level-l nodes, each
// ordered along the path.
func activeSegments(t *graph.Tree, levels []int, decided []bool, l int) [][]int {
	n := t.N()
	seen := make([]bool, n)
	var segs [][]int
	activeDeg := func(v int) (d int, nbs [2]int) {
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if levels[u] == l && !decided[u] {
				if d < 2 {
					nbs[d] = u
				}
				d++
			}
		}
		return d, nbs
	}
	for v := 0; v < n; v++ {
		if levels[v] != l || decided[v] || seen[v] {
			continue
		}
		d, _ := activeDeg(v)
		if d == 2 {
			continue // interior; will be picked up from an endpoint
		}
		// Walk from the endpoint (or isolated node).
		seg := []int{v}
		seen[v] = true
		prev, cur := -1, v
		for {
			dd, nbs := activeDeg(cur)
			next := -1
			for j := 0; j < dd && j < 2; j++ {
				if nbs[j] != prev {
					next = nbs[j]
					break
				}
			}
			if next == -1 {
				break
			}
			seg = append(seg, next)
			seen[next] = true
			prev, cur = cur, next
		}
		segs = append(segs, seg)
	}
	return segs
}

// colorSegment 2-colors an ordered segment by parity of the distance to the
// smaller-ID endpoint, matching genericMachine.decidePath. assign receives
// the position of the node within the segment and the node index.
func colorSegment(seg []int, ids []uint64, assign func(pos, v int, lab Label)) {
	refFromStart := true
	if len(seg) > 1 && ids[seg[len(seg)-1]] < ids[seg[0]] {
		refFromStart = false
	}
	for j, v := range seg {
		d := j
		if !refFromStart {
			d = len(seg) - 1 - j
		}
		if d%2 == 0 {
			assign(j, v, LabelW)
		} else {
			assign(j, v, LabelB)
		}
	}
}

// runLinialSegment runs the Linial reducers of a segment in lockstep
// centrally, mirroring the simulated message exchange, and returns the final
// palette-{0,1,2} colors and the common number of Advance rounds.
func runLinialSegment(seg []int, ids []uint64) ([]int64, int, error) {
	m := len(seg)
	reducers := make([]*coloring.Reducer, m)
	for j, v := range seg {
		r, err := coloring.NewReducer(ids[v], 2, coloring.IDSpace63)
		if err != nil {
			return nil, 0, err
		}
		reducers[j] = r
	}
	rounds := 0
	for !reducers[0].Done() {
		snapshot := make([]int64, m)
		for j := range reducers {
			snapshot[j] = reducers[j].Color()
		}
		for j := range reducers {
			nbr := make([]int64, 0, 2)
			if j > 0 {
				nbr = append(nbr, snapshot[j-1])
			}
			if j < m-1 {
				nbr = append(nbr, snapshot[j+1])
			}
			if err := reducers[j].Advance(nbr); err != nil {
				return nil, 0, err
			}
		}
		rounds++
	}
	colors := make([]int64, m)
	for j := range reducers {
		colors[j] = reducers[j].Color()
	}
	return colors, rounds, nil
}

// CollectExecution converts a simulator result whose outputs are Labels into
// an Execution.
func CollectExecution(outputs []any, rounds []int) (*Execution, error) {
	ex := &Execution{
		Out:    make([]Label, len(outputs)),
		Rounds: append([]int(nil), rounds...),
	}
	for v, o := range outputs {
		lab, ok := o.(Label)
		if !ok {
			return nil, fmt.Errorf("hierarchy: node %d output %T, want Label", v, o)
		}
		ex.Out[v] = lab
	}
	return ex, nil
}
