// Package hierarchy implements the k-hierarchical 2½- and 3½-coloring LCLs
// (Definitions 8 and 9 of the paper), an independent verifier for their
// constraints, and the generic phase algorithm of Section 4.1 — both as an
// honest LOCAL state machine (package sim) and as an analytic round-accounting
// mirror that produces identical outputs and termination rounds without
// simulating message passing (used for large parameter sweeps; tests assert
// the two agree exactly).
package hierarchy

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Label is an output label of the hierarchical coloring problems.
type Label uint8

// Output labels (Definitions 8 and 9). LabelNone is the "no output yet"
// sentinel and never a valid final output.
const (
	LabelNone Label = iota
	LabelW          // White (2-coloring color)
	LabelB          // Black (2-coloring color)
	LabelE          // Exempt
	LabelD          // Decline
	LabelR          // Red (3-coloring color, 3½ only)
	LabelG          // Green (3-coloring color, 3½ only)
	LabelY          // Yellow (3-coloring color, 3½ only)
)

var labelNames = [...]string{"none", "W", "B", "E", "D", "R", "G", "Y"}

// String returns the paper's name for the label.
func (l Label) String() string {
	if int(l) < len(labelNames) {
		return labelNames[l]
	}
	return fmt.Sprintf("Label(%d)", uint8(l))
}

// IsTriColor reports whether l is one of the 3-coloring colors R, G, Y.
func (l Label) IsTriColor() bool { return l == LabelR || l == LabelG || l == LabelY }

// IsBiColor reports whether l is one of the 2-coloring colors W, B.
func (l Label) IsBiColor() bool { return l == LabelW || l == LabelB }

// Variant selects between the 2½- and 3½-coloring families.
type Variant uint8

// The two problem families.
const (
	Coloring25 Variant = iota + 1 // k-hierarchical 2½-coloring (Definition 8)
	Coloring35                    // k-hierarchical 3½-coloring (Definition 9)
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Coloring25:
		return "2.5-coloring"
	case Coloring35:
		return "3.5-coloring"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Problem is a k-hierarchical Z-coloring instance description.
type Problem struct {
	K       int
	Variant Variant
}

// Validate checks the problem parameters.
func (p Problem) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("hierarchy: k = %d < 1", p.K)
	}
	if p.Variant != Coloring25 && p.Variant != Coloring35 {
		return fmt.Errorf("hierarchy: unknown variant %d", p.Variant)
	}
	return nil
}

// ErrInvalidOutput is wrapped by all verifier failures.
var ErrInvalidOutput = errors.New("output violates problem constraints")

// violation builds a verifier error.
func violation(v int, format string, args ...any) error {
	return fmt.Errorf("%w: node %d: %s", ErrInvalidOutput, v, fmt.Sprintf(format, args...))
}

// Verify checks an output labeling against the constraints of Definition 8
// (2½) or Definition 9 (3½). levels must be the Definition-8 levels (use
// graph.ComputeLevels(t, p.K)). It returns nil iff the labeling is valid.
func (p Problem) Verify(t *graph.Tree, levels []int, out []Label) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(levels) != t.N() || len(out) != t.N() {
		return fmt.Errorf("hierarchy: levels/out length mismatch (n=%d)", t.N())
	}
	k := p.K
	for v := 0; v < t.N(); v++ {
		l, lab := levels[v], out[v]
		if lab == LabelNone {
			return violation(v, "no output")
		}
		// Label alphabet restrictions.
		if p.Variant == Coloring25 && lab.IsTriColor() {
			return violation(v, "label %v not in 2½ alphabet", lab)
		}
		if p.Variant == Coloring35 && l < k && lab.IsTriColor() {
			return violation(v, "level %d < k uses 3-coloring label %v", l, lab)
		}
		switch {
		case l == 1 && lab == LabelE:
			return violation(v, "level 1 labeled E")
		case l == k+1 && lab != LabelE:
			return violation(v, "level k+1 labeled %v, must be E", lab)
		}
		if l == k {
			if lab == LabelD {
				return violation(v, "level k labeled D")
			}
			if p.Variant == Coloring35 && lab.IsBiColor() {
				return violation(v, "level k labeled %v in 3½-coloring", lab)
			}
		}
		// Exempt rule. For levels 2..k-1: E iff adjacent to a lower-level
		// node labeled W, B, or E. For level k, Definitions 8/9 additionally
		// say a node "may output E only if its lower level neighbours did
		// not output D"; read together with the iff-rule, the consistent
		// interpretation (the one the paper's constructions exercise, where
		// each node has a single lower-level pendant) is:
		//   level-k node is E iff (some lower neighbor is W/B/E) and (no
		//   lower neighbor is D).
		if l >= 2 && l <= k {
			hasLowerColored, hasLowerDeclined := false, false
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if levels[u] >= l {
					continue
				}
				if out[u].IsBiColor() || out[u] == LabelE {
					hasLowerColored = true
				}
				if out[u] == LabelD {
					hasLowerDeclined = true
				}
			}
			wantE := hasLowerColored
			if l == k {
				wantE = hasLowerColored && !hasLowerDeclined
			}
			if (lab == LabelE) != wantE {
				return violation(v, "level %d exempt rule violated (label %v, lower-colored=%v, lower-declined=%v)",
					l, lab, hasLowerColored, hasLowerDeclined)
			}
		}
		// W/B nodes: no same-level neighbor with the same color or D.
		if lab.IsBiColor() {
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if levels[u] == l && (out[u] == lab || out[u] == LabelD) {
					return violation(v, "label %v conflicts with same-level neighbor %d (%v)",
						lab, u, out[u])
				}
			}
		}
		// 3-coloring properness: adjacent nodes must not share an R/G/Y
		// label (Definition 9; only level-k nodes can carry these labels).
		if lab.IsTriColor() {
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if out[u] == lab {
					return violation(v, "3-color %v repeated on neighbor %d", lab, u)
				}
			}
		}
	}
	return nil
}
