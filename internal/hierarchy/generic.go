package hierarchy

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/sim"
)

// Params configures the generic algorithm of Section 4.1.
type Params struct {
	Problem Problem
	// Gammas holds γ_1..γ_{k-1}: the path-length thresholds of phases
	// 1..k-1 (Gammas[i-1] = γ_i). Must all be >= 1. Empty for k = 1.
	Gammas []int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Problem.Validate(); err != nil {
		return err
	}
	if len(p.Gammas) != p.Problem.K-1 {
		return fmt.Errorf("hierarchy: %d gammas for k=%d (want k-1)", len(p.Gammas), p.Problem.K)
	}
	for i, g := range p.Gammas {
		if g < 1 {
			return fmt.Errorf("hierarchy: γ_%d = %d < 1", i+1, g)
		}
	}
	return nil
}

// Schedule is the global round schedule of the generic algorithm, common
// knowledge to all nodes (it depends only on the parameters):
//
//	round 0:                 level exchange; level-(k+1) nodes output E.
//	phase i (i = 1..k-1):    rounds [Start(i), Start(i)+2γ_i]; level-i nodes
//	                         explore their same-level active path and decide
//	                         (D or a 2-coloring) exactly at Start(i)+2γ_i.
//	                         The following k rounds absorb the E-propagation
//	                         chains before the next phase begins.
//	phase k:                 starts at Start(k); remaining level-k nodes
//	                         2-color (2½, Θ(segment length)) or 3-color (3½,
//	                         Linial, O(log* n)) their active segments.
//
// E-checks run in every round on every active node, so an Exempt output is
// taken at the earliest legal round regardless of phase boundaries.
type Schedule struct {
	params Params
	start  []int // start[i-1] = Start(i)
}

// NewSchedule validates params and precomputes phase starts.
func NewSchedule(params Params) (*Schedule, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	k := params.Problem.K
	start := make([]int, k)
	s := 1
	for i := 1; i < k; i++ {
		start[i-1] = s
		s += 2*params.Gammas[i-1] + k + 1
	}
	start[k-1] = s
	return &Schedule{params: params, start: start}, nil
}

// Start returns the first round of phase i (1-based).
func (s *Schedule) Start(i int) int { return s.start[i-1] }

// DecisionRound returns the round at which level-i (i < k) path nodes decide.
func (s *Schedule) DecisionRound(i int) int {
	return s.start[i-1] + 2*s.params.Gammas[i-1]
}

// Generic is the sim.Algorithm implementing Section 4.1. Each node's input
// must be its Definition-8 level (an int), as computed by
// graph.ComputeLevels; the paper treats the level computation as a constant
// (O(k)-round) preamble.
type Generic struct {
	Schedule *Schedule
}

var _ sim.Algorithm = Generic{}

// Name implements sim.Algorithm.
func (g Generic) Name() string {
	return fmt.Sprintf("generic-%v-k%d", g.Schedule.params.Problem.Variant, g.Schedule.params.Problem.K)
}

// NewMachine implements sim.Algorithm.
func (g Generic) NewMachine(info sim.NodeInfo) sim.Machine {
	level, ok := info.Input.(int)
	if !ok {
		panic(fmt.Sprintf("hierarchy: node input must be its level (int), got %T", info.Input))
	}
	return &genericMachine{
		info:     info,
		sched:    g.Schedule,
		level:    level,
		nbrLevel: make([]int, info.Degree),
		nbrOut:   make([]Label, info.Degree),
		nbrDone:  make([]bool, info.Degree),
	}
}

// Message types used by the generic algorithm.
type (
	levelMsg   struct{ level int }
	segmentMsg struct {
		// closed segment info travelling away from an endpoint: length is
		// the number of nodes on that side including the endpoint, endID is
		// the endpoint's identifier.
		length int
		endID  uint64
	}
	linialMsg struct{ color int64 }
)

type genericMachine struct {
	info  sim.NodeInfo
	sched *Schedule
	level int

	nbrLevel []int
	nbrOut   []Label
	nbrDone  []bool

	// exploration state (used during this node's own phase)
	exploreInit bool
	activePorts []int        // same-level active ports (≤ 2)
	sideInfo    []segmentMsg // per active port: info from that direction
	sideKnown   []bool
	sideSent    []bool // per active port: whether a closure was already sent

	// Linial reducer state (3½ phase k)
	reducer      *coloring.Reducer
	linialColors []int64 // last color heard per port (-1 = unknown/masked)

	out Label
}

func (m *genericMachine) Output() any { return m.out }

func (m *genericMachine) Step(round int, recv []any) ([]any, bool) {
	k := m.sched.params.Problem.K
	if round == 0 {
		send := make([]any, m.info.Degree)
		for p := range send {
			send[p] = levelMsg{level: m.level}
		}
		if m.level == k+1 {
			// Definition 8/9: all level-(k+1) nodes must output E; no
			// adjacency condition, so they terminate immediately.
			m.out = LabelE
			return send, true
		}
		return send, false
	}
	m.absorb(recv)

	// E-check (every round): levels 2..k output E as soon as a lower-level
	// neighbor is seen to have output W, B, or E. Level-k nodes must
	// additionally confirm that no lower-level neighbor declined, which
	// requires all lower-level neighbors to have terminated.
	if m.level >= 2 && m.level <= k && m.eligibleForE() {
		m.out = LabelE
		return nil, true
	}

	if m.level < k {
		return m.stepInnerPhase(round)
	}
	return m.stepFinalPhase(round)
}

// absorb folds the received messages into neighbor-tracking state.
func (m *genericMachine) absorb(recv []any) {
	for p, msg := range recv {
		switch v := msg.(type) {
		case levelMsg:
			m.nbrLevel[p] = v.level
		case sim.Terminated:
			if lab, ok := v.Output.(Label); ok {
				m.nbrOut[p] = lab
				m.nbrDone[p] = true
			}
		case segmentMsg:
			m.absorbSegment(p, v)
		case linialMsg:
			m.absorbLinial(p, v)
		}
	}
}

func (m *genericMachine) eligibleForE() bool {
	k := m.sched.params.Problem.K
	hasLowerColored := false
	for p := 0; p < m.info.Degree; p++ {
		if m.nbrLevel[p] == 0 || m.nbrLevel[p] >= m.level {
			continue
		}
		if m.nbrOut[p].IsBiColor() || m.nbrOut[p] == LabelE {
			hasLowerColored = true
		}
		if m.level == k {
			if !m.nbrDone[p] || m.nbrOut[p] == LabelD {
				return false
			}
		}
	}
	return hasLowerColored
}

// stepInnerPhase runs phases 1..k-1 for level-i nodes (i = m.level < k).
func (m *genericMachine) stepInnerPhase(round int) ([]any, bool) {
	i := m.level
	start := m.sched.Start(i)
	decision := m.sched.DecisionRound(i)
	if round < start || round > decision {
		return nil, false
	}
	if round == start {
		m.initExploration()
	}
	send := m.relayClosures()
	if round == decision {
		gamma := m.sched.params.Gammas[i-1]
		m.decidePath(gamma)
		return send, true
	}
	return send, false
}

// initExploration fixes the same-level active ports at phase start; the
// active structure is static during the phase (all other decisions happen at
// earlier phase boundaries).
func (m *genericMachine) initExploration() {
	m.exploreInit = true
	m.activePorts = m.activePorts[:0]
	for p := 0; p < m.info.Degree; p++ {
		if m.nbrLevel[p] == m.level && !m.nbrDone[p] {
			m.activePorts = append(m.activePorts, p)
		}
	}
	m.sideInfo = make([]segmentMsg, len(m.activePorts))
	m.sideKnown = make([]bool, len(m.activePorts))
	m.sideSent = make([]bool, len(m.activePorts))
}

func (m *genericMachine) absorbSegment(port int, msg segmentMsg) {
	for a, p := range m.activePorts {
		if p == port && !m.sideKnown[a] {
			m.sideInfo[a] = msg
			m.sideKnown[a] = true
		}
	}
}

// relayClosures emits, on each active port, the closure information of the
// opposite side as soon as it is known (an absent opposite side means this
// node is an endpoint: it announces itself).
func (m *genericMachine) relayClosures() []any {
	if !m.exploreInit {
		return nil
	}
	var send []any
	emit := func(port int, msg segmentMsg) {
		if send == nil {
			send = make([]any, m.info.Degree)
		}
		send[port] = msg
	}
	switch len(m.activePorts) {
	case 0:
		// Isolated active node: nothing to send.
	case 1:
		if !m.sideSent[0] {
			emit(m.activePorts[0], segmentMsg{length: 1, endID: m.info.ID})
			m.sideSent[0] = true
		}
	case 2:
		for a := 0; a < 2; a++ {
			other := 1 - a
			if m.sideKnown[other] && !m.sideSent[a] {
				emit(m.activePorts[a], segmentMsg{
					length: m.sideInfo[other].length + 1,
					endID:  m.sideInfo[other].endID,
				})
				m.sideSent[a] = true
			}
		}
	}
	return send
}

// segment returns the node's knowledge of its active path: whether both ends
// are known, the total length, and the distance to the smaller-ID endpoint.
func (m *genericMachine) segment() (closed bool, length, distToSmall int) {
	type side struct {
		len int
		id  uint64
	}
	sides := make([]side, 0, 2)
	for a := range m.activePorts {
		if !m.sideKnown[a] {
			return false, 0, 0
		}
		sides = append(sides, side{len: m.sideInfo[a].length, id: m.sideInfo[a].endID})
	}
	// Implicit own-side closure for endpoints/isolated nodes.
	for len(sides) < 2 {
		sides = append(sides, side{len: 0, id: m.info.ID})
	}
	length = sides[0].len + sides[1].len + 1
	small := sides[0]
	if sides[1].id < small.id {
		small = sides[1]
	}
	return true, length, small.len
}

// decidePath implements the phase-i decision: paths of length >= γ_i output
// Decline; shorter paths output a consistent 2-coloring (parity of the
// distance to the smaller-ID endpoint).
func (m *genericMachine) decidePath(gamma int) {
	closed, length, dist := m.segment()
	if !closed || length >= gamma {
		m.out = LabelD
		return
	}
	if dist%2 == 0 {
		m.out = LabelW
	} else {
		m.out = LabelB
	}
}

// stepFinalPhase runs phase k: the remaining level-k nodes either 2-color
// their segments (2½, by endpoint flooding) or 3-color them (3½, Linial).
func (m *genericMachine) stepFinalPhase(round int) ([]any, bool) {
	k := m.sched.params.Problem.K
	start := m.sched.Start(k)
	if round < start {
		return nil, false
	}
	if m.sched.params.Problem.Variant == Coloring25 {
		if round == start {
			m.initExploration()
		}
		send := m.relayClosures()
		if closed, _, dist := m.segment(); closed {
			if dist%2 == 0 {
				m.out = LabelW
			} else {
				m.out = LabelB
			}
			return send, true
		}
		return send, false
	}
	// 3½: Linial 3-coloring on the active segment (Δ = 2), lockstep.
	if round == start {
		m.initExploration()
		r, err := coloring.NewReducer(m.info.ID, 2, coloring.IDSpace63)
		if err != nil {
			panic(err) // static misuse: delta = 2 is always valid
		}
		m.reducer = r
		m.linialColors = make([]int64, m.info.Degree)
		for p := range m.linialColors {
			m.linialColors[p] = -1
		}
	}
	if round > start {
		nbr := make([]int64, 0, len(m.activePorts))
		for _, p := range m.activePorts {
			nbr = append(nbr, m.linialColors[p])
		}
		if err := m.reducer.Advance(nbr); err != nil {
			panic(err) // lockstep invariant violation is a programming error
		}
		if m.reducer.Done() {
			m.out = triColor(m.reducer.Color())
			return nil, true
		}
	}
	send := make([]any, m.info.Degree)
	for _, p := range m.activePorts {
		send[p] = linialMsg{color: m.reducer.Color()}
	}
	return send, false
}

func (m *genericMachine) absorbLinial(port int, msg linialMsg) {
	if m.linialColors != nil {
		m.linialColors[port] = msg.color
	}
}

// triColor maps Linial's {0,1,2} palette to the paper's {R,G,Y}.
func triColor(c int64) Label {
	switch c {
	case 0:
		return LabelR
	case 1:
		return LabelG
	default:
		return LabelY
	}
}
