package hierarchy

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func mustSchedule(t *testing.T, k int, variant Variant, gammas []int) *Schedule {
	t.Helper()
	s, err := NewSchedule(Params{Problem: Problem{K: k, Variant: variant}, Gammas: gammas})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func levelInputs(levels []int) []any {
	in := make([]any, len(levels))
	for i, l := range levels {
		in[i] = l
	}
	return in
}

// runBoth runs the generic algorithm through the simulator and analytically,
// asserts they agree exactly, verifies the output, and returns the
// execution.
func runBoth(t *testing.T, tr *graph.Tree, sched *Schedule, seed uint64) *Execution {
	t.Helper()
	k := sched.params.Problem.K
	levels := graph.ComputeLevels(tr, k)
	ids := sim.DefaultIDs(tr.N(), seed)
	res, err := sim.Run(tr, Generic{Schedule: sched}, sim.Config{
		IDs:       ids,
		Inputs:    levelInputs(levels),
		MaxRounds: 8*tr.N() + 256,
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	simEx, err := CollectExecution(res.Outputs, res.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	anEx, err := RunAnalytic(tr, levels, sched, ids)
	if err != nil {
		t.Fatalf("analytic: %v", err)
	}
	for v := 0; v < tr.N(); v++ {
		if simEx.Out[v] != anEx.Out[v] {
			t.Fatalf("node %d (level %d): sim output %v, analytic %v",
				v, levels[v], simEx.Out[v], anEx.Out[v])
		}
		if simEx.Rounds[v] != anEx.Rounds[v] {
			t.Fatalf("node %d (level %d, out %v): sim round %d, analytic %d",
				v, levels[v], simEx.Out[v], simEx.Rounds[v], anEx.Rounds[v])
		}
	}
	if err := sched.params.Problem.Verify(tr, levels, simEx.Out); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return simEx
}

func TestGenericOnPathK1Both(t *testing.T) {
	for _, variant := range []Variant{Coloring25, Coloring35} {
		for _, n := range []int{1, 2, 3, 9, 40} {
			tr, err := graph.BuildPath(n)
			if err != nil {
				t.Fatal(err)
			}
			sched := mustSchedule(t, 1, variant, nil)
			runBoth(t, tr, sched, uint64(n)*7+uint64(variant))
		}
	}
}

func TestGenericOnHierarchicalK2(t *testing.T) {
	for _, variant := range []Variant{Coloring25, Coloring35} {
		for _, gamma := range []int{2, 3, 5, 10} {
			h, err := graph.BuildHierarchical([]int{6, 8})
			if err != nil {
				t.Fatal(err)
			}
			sched := mustSchedule(t, 2, variant, []int{gamma})
			runBoth(t, h.Tree, sched, uint64(gamma)*13+uint64(variant))
		}
	}
}

func TestGenericOnHierarchicalK3(t *testing.T) {
	for _, variant := range []Variant{Coloring25, Coloring35} {
		h, err := graph.BuildHierarchical([]int{4, 5, 6})
		if err != nil {
			t.Fatal(err)
		}
		sched := mustSchedule(t, 3, variant, []int{3, 4})
		runBoth(t, h.Tree, sched, uint64(variant)*31+5)
	}
}

func TestGenericOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(120)
		b := graph.NewBuilder(n)
		b.AddNode()
		for v := 1; v < n; v++ {
			b.AddNode()
			if err := b.AddEdge(v, rng.Intn(v)); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(3)
		gammas := make([]int, k-1)
		for i := range gammas {
			gammas[i] = 1 + rng.Intn(6)
		}
		variant := Coloring25
		if trial%2 == 1 {
			variant = Coloring35
		}
		sched := mustSchedule(t, k, variant, gammas)
		runBoth(t, tr, sched, uint64(trial)+100)
	}
}

func TestGenericOnCaterpillar(t *testing.T) {
	tr, err := graph.BuildCaterpillar(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Variant{Coloring25, Coloring35} {
		sched := mustSchedule(t, 2, variant, []int{3})
		runBoth(t, tr, sched, uint64(variant))
	}
}

func TestVerifierRejectsBrokenOutputs(t *testing.T) {
	h, err := graph.BuildHierarchical([]int{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	tr := h.Tree
	prob := Problem{K: 2, Variant: Coloring35}
	levels := graph.ComputeLevels(tr, 2)
	sched := mustSchedule(t, 2, Coloring35, []int{3})
	ids := sim.DefaultIDs(tr.N(), 5)
	ex, err := RunAnalytic(tr, levels, sched, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Verify(tr, levels, ex.Out); err != nil {
		t.Fatalf("valid output rejected: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(out []Label) bool // returns false if no applicable node
	}{
		{"level-1 gets E", func(out []Label) bool {
			for v := range out {
				if levels[v] == 1 {
					out[v] = LabelE
					return true
				}
			}
			return false
		}},
		{"level-k gets D", func(out []Label) bool {
			for v := range out {
				if levels[v] == 2 {
					out[v] = LabelD
					return true
				}
			}
			return false
		}},
		{"tri-color below level k", func(out []Label) bool {
			for v := range out {
				if levels[v] == 1 {
					out[v] = LabelR
					return true
				}
			}
			return false
		}},
		{"duplicate 3-color on edge", func(out []Label) bool {
			for _, e := range tr.Edges() {
				if out[e[0]].IsTriColor() && out[e[1]].IsTriColor() {
					out[e[1]] = out[e[0]]
					return true
				}
			}
			return false
		}},
		{"missing output", func(out []Label) bool {
			out[0] = LabelNone
			return true
		}},
	}
	for _, mut := range mutations {
		out := append([]Label(nil), ex.Out...)
		if !mut.mutate(out) {
			continue
		}
		err := prob.Verify(tr, levels, out)
		if err == nil {
			t.Errorf("%s: verifier accepted broken output", mut.name)
		} else if !errors.Is(err, ErrInvalidOutput) {
			t.Errorf("%s: error not wrapped: %v", mut.name, err)
		}
	}
}

func TestVerifierEIffRule(t *testing.T) {
	// A level-2 node adjacent to a 2-colored level-1 path MUST be E.
	h, err := graph.BuildHierarchical([]int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	tr := h.Tree
	levels := graph.ComputeLevels(tr, 2)
	sched := mustSchedule(t, 2, Coloring25, []int{5}) // γ=5 > pendant length 2: paths color
	ids := sim.DefaultIDs(tr.N(), 9)
	ex, err := RunAnalytic(tr, levels, sched, ids)
	if err != nil {
		t.Fatal(err)
	}
	prob := Problem{K: 2, Variant: Coloring25}
	if err := prob.Verify(tr, levels, ex.Out); err != nil {
		t.Fatal(err)
	}
	// Find an E node at level 2 and flip it to W: E-iff must fire.
	flipped := false
	for v := range ex.Out {
		if levels[v] == 2 && ex.Out[v] == LabelE {
			out := append([]Label(nil), ex.Out...)
			out[v] = LabelW
			if prob.Verify(tr, levels, out) == nil {
				t.Fatalf("node %d: removing forced E accepted", v)
			}
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no level-2 E node found; construction assumption broken")
	}
}

func TestLemma13SurvivorBound(t *testing.T) {
	// Lemma 13: after phase i with parameter γ_i, at most O(n'/γ_i) nodes of
	// level > i remain undecided. We check the concrete charging bound from
	// the proof: each surviving level-(i+1) node accounts for >= γ_i/2
	// terminated level-i nodes, so survivors(level>i) <= c * n / γ_i.
	h, err := graph.BuildHierarchical([]int{20, 30})
	if err != nil {
		t.Fatal(err)
	}
	tr := h.Tree
	levels := graph.ComputeLevels(tr, 2)
	gamma := 10
	sched := mustSchedule(t, 2, Coloring25, []int{gamma})
	ids := sim.DefaultIDs(tr.N(), 21)
	ex, err := RunAnalytic(tr, levels, sched, ids)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes that survive phase 1 are those deciding at round >= Start(2).
	survivors := 0
	for v := range ex.Rounds {
		if ex.Rounds[v] >= sched.Start(2) {
			survivors++
		}
	}
	bound := 8 * tr.N() / gamma
	if survivors > bound {
		t.Fatalf("survivors after phase 1 = %d > %d = 8n/γ", survivors, bound)
	}
}

func TestScheduleStartsIncreasing(t *testing.T) {
	sched := mustSchedule(t, 4, Coloring35, []int{2, 4, 8})
	prev := 0
	for i := 1; i <= 4; i++ {
		if sched.Start(i) <= prev {
			t.Fatalf("Start(%d) = %d not increasing", i, sched.Start(i))
		}
		prev = sched.Start(i)
	}
	if sched.DecisionRound(1) != sched.Start(1)+4 {
		t.Fatalf("DecisionRound(1) = %d", sched.DecisionRound(1))
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Problem: Problem{K: 0, Variant: Coloring25}},
		{Problem: Problem{K: 2, Variant: Coloring25}},                         // missing gammas
		{Problem: Problem{K: 2, Variant: Coloring25}, Gammas: []int{0}},       // γ < 1
		{Problem: Problem{K: 2, Variant: Variant(9)}, Gammas: []int{2}},       // bad variant
		{Problem: Problem{K: 3, Variant: Coloring35}, Gammas: []int{1, 2, 3}}, // too many
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	good := Params{Problem: Problem{K: 3, Variant: Coloring35}, Gammas: []int{1, 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
}

func TestLabelString(t *testing.T) {
	if LabelW.String() != "W" || LabelD.String() != "D" || LabelR.String() != "R" {
		t.Fatal("label names wrong")
	}
	if Coloring25.String() != "2.5-coloring" {
		t.Fatal("variant name wrong")
	}
}

func TestAnalyticNodeAveragedMatchesSim(t *testing.T) {
	h, err := graph.BuildHierarchical([]int{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	sched := mustSchedule(t, 2, Coloring35, []int{4})
	ex := runBoth(t, h.Tree, sched, 1234)
	if ex.NodeAveraged() <= 0 {
		t.Fatal("node-averaged complexity should be positive")
	}
	if ex.SumRounds() <= 0 {
		t.Fatal("sum of rounds should be positive")
	}
}
