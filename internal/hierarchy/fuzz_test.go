package hierarchy

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestVerifierTotalOnGarbage: the verifier must reject-or-accept arbitrary
// garbage without panicking, and must always reject labelings containing
// LabelNone or out-of-alphabet values.
func TestVerifierTotalOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h, err := graph.BuildHierarchical([]int{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	levels := graph.ComputeLevels(h.Tree, 2)
	for _, variant := range []Variant{Coloring25, Coloring35} {
		prob := Problem{K: 2, Variant: variant}
		for trial := 0; trial < 300; trial++ {
			out := make([]Label, h.Tree.N())
			for v := range out {
				out[v] = Label(rng.Intn(9)) // includes LabelNone and invalid 8
			}
			err := prob.Verify(h.Tree, levels, out) // must not panic
			hasBad := false
			for _, l := range out {
				if l == LabelNone || l > LabelY {
					hasBad = true
				}
			}
			if hasBad && err == nil {
				t.Fatalf("garbage labeling accepted: %v", out[:10])
			}
		}
	}
}

// TestVerifierCatchesSingleMutations: every single-node mutation of a valid
// output that changes a constrained aspect must be caught or remain valid;
// specifically, flipping a level-1 node to E or a level-k node to D is
// always caught.
func TestVerifierCatchesSingleMutations(t *testing.T) {
	h, err := graph.BuildHierarchical([]int{6, 7})
	if err != nil {
		t.Fatal(err)
	}
	tr := h.Tree
	levels := graph.ComputeLevels(tr, 2)
	prob := Problem{K: 2, Variant: Coloring35}
	sched := mustSchedule(t, 2, Coloring35, []int{4})
	ids := sim.DefaultIDs(tr.N(), 17)
	ex, err := RunAnalytic(tr, levels, sched, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Verify(tr, levels, ex.Out); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tr.N(); v++ {
		switch levels[v] {
		case 1:
			out := append([]Label(nil), ex.Out...)
			out[v] = LabelE
			if prob.Verify(tr, levels, out) == nil {
				t.Fatalf("level-1 node %d flipped to E accepted", v)
			}
		case 2:
			out := append([]Label(nil), ex.Out...)
			out[v] = LabelD
			if prob.Verify(tr, levels, out) == nil {
				t.Fatalf("level-k node %d flipped to D accepted", v)
			}
		}
	}
}

// TestAnalyticMatchesSimUnderManySeeds widens the sim/analytic equivalence
// to many ID assignments (the coloring decisions depend on IDs).
func TestAnalyticMatchesSimUnderManySeeds(t *testing.T) {
	h, err := graph.BuildHierarchical([]int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 20; seed++ {
		sched := mustSchedule(t, 2, Coloring25, []int{3})
		runBoth(t, h.Tree, sched, seed)
	}
}

// TestGenericHandlesStarAndSingleton covers degenerate shapes.
func TestGenericHandlesStarAndSingleton(t *testing.T) {
	star, err := graph.BuildStar(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Variant{Coloring25, Coloring35} {
		sched := mustSchedule(t, 2, variant, []int{2})
		runBoth(t, star, sched, uint64(variant)+50)
	}
	single, err := graph.BuildPath(1)
	if err != nil {
		t.Fatal(err)
	}
	sched := mustSchedule(t, 1, Coloring35, nil)
	runBoth(t, single, sched, 3)
}

// TestLowerBoundDeclineStructure checks the Lemma 20/26 mechanism on the
// lower-bound instance: with γ_1 <= ℓ_1 every level-1 path has length >= γ_1
// and must go all-Decline, forcing the level-2 path to be colored.
func TestLowerBoundDeclineStructure(t *testing.T) {
	lengths := []int{10, 12}
	h, err := graph.BuildHierarchical(lengths)
	if err != nil {
		t.Fatal(err)
	}
	tr := h.Tree
	levels := graph.ComputeLevels(tr, 2)
	sched := mustSchedule(t, 2, Coloring35, []int{10}) // γ1 = ℓ1
	ids := sim.DefaultIDs(tr.N(), 4)
	ex, err := RunAnalytic(tr, levels, sched, ids)
	if err != nil {
		t.Fatal(err)
	}
	declined, colored := 0, 0
	for v := range ex.Out {
		switch {
		case levels[v] == 1 && ex.Out[v] == LabelD:
			declined++
		case levels[v] == 2 && ex.Out[v].IsTriColor():
			colored++
		}
	}
	// Most level-1 nodes decline (up to boundary erosion), and the level-2
	// core must 3-color.
	if declined < tr.N()/2 {
		t.Fatalf("only %d declining level-1 nodes of %d", declined, tr.N())
	}
	if colored < lengths[1]/2 {
		t.Fatalf("only %d colored level-2 nodes", colored)
	}
}

// TestGenericK4 exercises a deeper hierarchy end to end.
func TestGenericK4(t *testing.T) {
	h, err := graph.BuildHierarchical([]int{3, 3, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Variant{Coloring25, Coloring35} {
		sched := mustSchedule(t, 4, variant, []int{2, 2, 3})
		runBoth(t, h.Tree, sched, uint64(variant)*11+1)
	}
}
