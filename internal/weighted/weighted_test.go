package weighted

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/landscape"
	"repro/internal/sim"
)

func prob25(t *testing.T, delta, d, k int) Problem {
	t.Helper()
	p := Problem{Variant: hierarchy.Coloring25, Delta: delta, D: d, K: k}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func prob35(t *testing.T, delta, d, k int) Problem {
	t.Helper()
	p := Problem{Variant: hierarchy.Coloring35, Delta: delta, D: d, K: k}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildInstanceShape(t *testing.T) {
	p := prob25(t, 5, 2, 2)
	inst, err := BuildInstance(p, []int{10, 12}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Tree.MaxDegree() > p.Delta {
		t.Fatalf("max degree %d > Δ=%d", inst.Tree.MaxDegree(), p.Delta)
	}
	nActive := inst.NumActive()
	if nActive != 10*12+12 {
		t.Fatalf("active core %d nodes, want 132", nActive)
	}
	weight := 0
	for _, in := range inst.Inputs {
		if in == InputWeight {
			weight++
		}
	}
	if weight != inst.Tree.N()-nActive {
		t.Fatalf("weight count inconsistent")
	}
	if weight < 400 {
		t.Fatalf("only %d weight nodes for budget 500", weight)
	}
	// Every weight root is adjacent to its level-2 host.
	for root, host := range inst.WeightRoots {
		if !inst.Tree.HasEdge(root, host) {
			t.Fatalf("weight root %d not adjacent to host %d", root, host)
		}
		if inst.Inputs[root] != InputWeight || inst.Inputs[host] != InputActive {
			t.Fatal("weight root / host inputs wrong")
		}
	}
}

func TestBuildInstanceRejectsBadParams(t *testing.T) {
	p := prob25(t, 5, 2, 2)
	if _, err := BuildInstance(p, []int{10}, 100); err == nil {
		t.Error("wrong lengths accepted")
	}
	p1 := Problem{Variant: hierarchy.Coloring25, Delta: 5, D: 2, K: 1}
	if _, err := BuildInstance(p1, []int{10}, 100); err == nil {
		t.Error("k=1 construction accepted")
	}
	bad := Problem{Variant: hierarchy.Coloring25, Delta: 4, D: 2, K: 2}
	if _, err := BuildInstance(bad, []int{4, 4}, 10); err == nil {
		t.Error("Δ < d+3 accepted")
	}
}

func TestSolvePolyOnConstruction(t *testing.T) {
	p := prob25(t, 5, 2, 2)
	inst, err := BuildInstance(p, []int{12, 20}, 800)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 3)
	res, err := SolvePoly(inst.Tree, inst.Inputs, p, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(inst.Tree, inst.Inputs, res.Out); err != nil {
		t.Fatal(err)
	}
	if res.NodeAveraged() <= 0 {
		t.Fatal("node-averaged should be positive")
	}
	// Copy nodes exist: the construction is built to force copying.
	copies := 0
	for _, o := range res.Out {
		if o.Kind == KindCopy {
			copies++
		}
	}
	if copies == 0 {
		t.Fatal("no Copy outputs on the weighted construction")
	}
}

func TestSolvePolyScalingMatchesAlpha1(t *testing.T) {
	// E-T2T3 smoke check: the measured node-averaged complexity of A_poly on
	// the Definition-25 construction grows like n^{α1} — compare the fitted
	// slope over a small sweep with the theory value within a loose band.
	// (The full sweep lives in the benchmark harness.)
	p := prob25(t, 5, 2, 2)
	x, err := landscape.EfficiencyX(p.Delta, p.D)
	if err != nil {
		t.Fatal(err)
	}
	alpha1, err := landscape.Alpha1Poly(x, p.K)
	if err != nil {
		t.Fatal(err)
	}
	alphas, err := landscape.Alphas(landscape.RegimePolynomial, x, p.K)
	if err != nil {
		t.Fatal(err)
	}
	var ns, avgs []float64
	for _, target := range []int{3000, 12000, 48000} {
		// ℓ_1 = n^{α1}, ℓ_2 = n^{1−α1}; weight n/k per level.
		l1 := int(math.Pow(float64(target), alphas[0]))
		l2 := target / (2 * l1)
		inst, err := BuildInstance(p, []int{l1, l2}, target/2)
		if err != nil {
			t.Fatal(err)
		}
		ids := sim.DefaultIDs(inst.Tree.N(), 9)
		res, err := SolvePoly(inst.Tree, inst.Inputs, p, ids)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(inst.Tree, inst.Inputs, res.Out); err != nil {
			t.Fatal(err)
		}
		ns = append(ns, float64(inst.Tree.N()))
		avgs = append(avgs, res.NodeAveraged())
	}
	slope := (math.Log(avgs[len(avgs)-1]) - math.Log(avgs[0])) /
		(math.Log(ns[len(ns)-1]) - math.Log(ns[0]))
	if slope < alpha1-0.2 || slope > alpha1+0.25 {
		t.Fatalf("fitted slope %.3f not near α1 = %.3f (avgs %v at ns %v)",
			slope, alpha1, avgs, ns)
	}
}

func TestSolveLogStarOnConstruction(t *testing.T) {
	p := prob35(t, 7, 3, 2)
	inst, err := BuildInstance(p, []int{8, 30}, 600)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 4)
	res, err := SolveLogStar(inst.Tree, inst.Inputs, p, ids, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(inst.Tree, inst.Inputs, res.Out); err != nil {
		t.Fatal(err)
	}
	copies := 0
	for _, o := range res.Out {
		if o.Kind == KindCopy {
			copies++
		}
	}
	if copies == 0 {
		t.Fatal("no Copy outputs")
	}
}

func TestSolveLogStarRequiresD3(t *testing.T) {
	p := prob35(t, 5, 2, 2)
	inst, err := BuildInstance(p, []int{4, 6}, 50)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 1)
	if _, err := SolveLogStar(inst.Tree, inst.Inputs, p, ids, 8); err == nil {
		t.Fatal("d=2 accepted by SolveLogStar")
	}
}

func TestSolveLogStarWeightSideIsCheap(t *testing.T) {
	// Lemma 56 shape: the weight nodes that never join a Copy set terminate
	// in O(1) node-averaged rounds (geometric decay of the peeling).
	p := prob35(t, 7, 3, 2)
	inst, err := BuildInstance(p, []int{8, 20}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 11)
	res, err := SolveLogStar(inst.Tree, inst.Inputs, p, ids, 8)
	if err != nil {
		t.Fatal(err)
	}
	var declSum, declCount float64
	for v, o := range res.Out {
		if o.Kind == KindDecline {
			declSum += float64(res.Rounds[v])
			declCount++
		}
	}
	if declCount == 0 {
		t.Fatal("no declining weight nodes")
	}
	if avg := declSum / declCount; avg > 20 {
		t.Fatalf("average Decline round %.2f, want O(1)-ish", avg)
	}
}

func randomMixedTree(rng *rand.Rand, n, maxDeg int, weightFrac float64) (*graph.Tree, []NodeInput) {
	b := graph.NewBuilder(n)
	b.AddNode()
	deg := make([]int, n)
	for v := 1; v < n; v++ {
		b.AddNode()
		for {
			u := rng.Intn(v)
			if deg[u] < maxDeg-1 {
				if err := b.AddEdge(v, u); err != nil {
					panic(err)
				}
				deg[u]++
				deg[v]++
				break
			}
		}
	}
	tr := b.MustBuild()
	inputs := make([]NodeInput, n)
	for v := range inputs {
		if rng.Float64() < weightFrac {
			inputs[v] = InputWeight
		}
	}
	return tr, inputs
}

func TestSolvePolyOnRandomMixedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := prob25(t, 6, 2, 2)
	for trial := 0; trial < 10; trial++ {
		tr, inputs := randomMixedTree(rng, 80+rng.Intn(300), p.Delta, 0.5)
		ids := sim.DefaultIDs(tr.N(), uint64(trial+1))
		res, err := SolvePoly(tr, inputs, p, ids)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Verify(tr, inputs, res.Out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveLogStarOnRandomMixedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := prob35(t, 7, 3, 2)
	for trial := 0; trial < 10; trial++ {
		tr, inputs := randomMixedTree(rng, 80+rng.Intn(300), p.Delta, 0.5)
		ids := sim.DefaultIDs(tr.N(), uint64(trial+100))
		res, err := SolveLogStar(tr, inputs, p, ids, 8)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Verify(tr, inputs, res.Out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVerifyRejectsBrokenWeightedOutputs(t *testing.T) {
	p := prob25(t, 5, 2, 2)
	inst, err := BuildInstance(p, []int{6, 8}, 200)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 2)
	res, err := SolvePoly(inst.Tree, inst.Inputs, p, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(inst.Tree, inst.Inputs, res.Out); err != nil {
		t.Fatal(err)
	}
	// Weight root declining next to active violates property 2.
	out := append([]Output(nil), res.Out...)
	for root := range inst.WeightRoots {
		out[root] = Output{Kind: KindDecline}
		break
	}
	if p.Verify(inst.Tree, inst.Inputs, out) == nil {
		t.Error("declining A-weight node accepted")
	}
	// Copy with wrong secondary violates property 5.
	out = append([]Output(nil), res.Out...)
	for root := range inst.WeightRoots {
		if out[root].Kind == KindCopy {
			wrong := hierarchy.LabelW
			if out[root].Label == hierarchy.LabelW {
				wrong = hierarchy.LabelB
			}
			out[root] = Output{Kind: KindCopy, Label: wrong}
			if p.Verify(inst.Tree, inst.Inputs, out) == nil {
				t.Error("mismatched secondary accepted")
			}
			break
		}
	}
	// Active node with weight-kind output.
	out = append([]Output(nil), res.Out...)
	out[0] = Output{Kind: KindDecline}
	if p.Verify(inst.Tree, inst.Inputs, out) == nil {
		t.Error("weight-kind output on active node accepted")
	}
}

func TestCopyWaitsForActive(t *testing.T) {
	// The whole point of the weight machinery: Copy nodes terminate after
	// the active node they copy from.
	p := prob25(t, 5, 2, 2)
	inst, err := BuildInstance(p, []int{10, 14}, 600)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 8)
	res, err := SolvePoly(inst.Tree, inst.Inputs, p, ids)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for root, host := range inst.WeightRoots {
		if res.Out[root].Kind != KindCopy {
			continue
		}
		if res.Rounds[root] <= res.Rounds[host] {
			// The root may copy from a different active neighbor, but the
			// host is its only active neighbor in this construction.
			t.Fatalf("copy root %d terminated at %d, host %d at %d",
				root, res.Rounds[root], host, res.Rounds[host])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no copy roots to check")
	}
}
