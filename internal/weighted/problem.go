// Package weighted implements the paper's primary contribution: the weighted
// LCLs Π^Z_{Δ,d,k} for Z ∈ {2½, 3½} (Definition 22), their verifier, the
// weighted lower-bound construction (Definition 25), and the two upper-bound
// algorithms — A_poly for Π^{2.5} (Section 7.1) and the generic algorithm
// for Π^{3.5} (Section 8.2).
//
// Each node has input Active or Weight. Active components must solve
// k-hierarchical Z-coloring among themselves; weight nodes output Decline,
// Connect, or Copy, where Copy carries a secondary output from the active
// alphabet. The weight machinery forces many weight nodes to wait for the
// active node they are attached to, which lifts the node-averaged complexity
// of the hierarchical problems by a tunable efficiency factor
// x = log(Δ−d−1)/log(Δ−1) — the engine behind the landscape-density
// theorems (Theorems 1–6).
package weighted

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/hierarchy"
)

// NodeInput marks a node Active or Weight.
type NodeInput uint8

// Input labels of Π^Z_{Δ,d,k}.
const (
	InputActive NodeInput = iota
	InputWeight
)

// String names the input.
func (i NodeInput) String() string {
	if i == InputActive {
		return "Active"
	}
	return "Weight"
}

// Kind is the primary output kind of a node.
type Kind uint8

// Output kinds. Active nodes always have KindActive (their payload is the
// hierarchical label); weight nodes have one of the other three.
const (
	KindNone Kind = iota
	KindActive
	KindDecline
	KindConnect
	KindCopy
)

var kindNames = [...]string{"none", "Active", "Decline", "Connect", "Copy"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Output is a node's output: for active nodes, Label is the k-hierarchical
// Z-coloring output; for Copy weight nodes, Label is the secondary output.
type Output struct {
	Kind  Kind
	Label hierarchy.Label
}

// Problem describes an instance family Π^Z_{Δ,d,k}.
type Problem struct {
	// Variant selects 2½ (Coloring25) or 3½ (Coloring35).
	Variant hierarchy.Variant
	// Delta is the maximum-degree bound; must satisfy Delta >= D+3.
	Delta int
	// D is the decline-budget parameter d.
	D int
	// K is the hierarchy depth.
	K int
}

// Validate checks Definition 22's parameter constraints.
func (p Problem) Validate() error {
	if err := (hierarchy.Problem{K: p.K, Variant: p.Variant}).Validate(); err != nil {
		return err
	}
	if p.D < 1 {
		return fmt.Errorf("weighted: d = %d < 1", p.D)
	}
	if p.Delta < p.D+3 {
		return fmt.Errorf("weighted: Δ = %d < d+3 = %d", p.Delta, p.D+3)
	}
	return nil
}

// ErrInvalid wraps all verifier failures.
var ErrInvalid = errors.New("weighted output invalid")

func bad(v int, format string, args ...any) error {
	return fmt.Errorf("%w: node %d: %s", ErrInvalid, v, fmt.Sprintf(format, args...))
}

// Verify checks an output assignment against the five properties of
// Definition 22.
func (p Problem) Verify(t *graph.Tree, inputs []NodeInput, out []Output) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n := t.N()
	if len(inputs) != n || len(out) != n {
		return fmt.Errorf("weighted: inputs/out length mismatch (n=%d)", n)
	}
	// Basic shape.
	for v := 0; v < n; v++ {
		switch inputs[v] {
		case InputActive:
			if out[v].Kind != KindActive {
				return bad(v, "active node has kind %v", out[v].Kind)
			}
		case InputWeight:
			switch out[v].Kind {
			case KindDecline, KindConnect, KindCopy:
			default:
				return bad(v, "weight node has kind %v", out[v].Kind)
			}
		}
	}
	// Property 1: active components solve k-hierarchical Z-coloring.
	activeMask := make([]bool, n)
	for v := 0; v < n; v++ {
		activeMask[v] = inputs[v] == InputActive
	}
	hp := hierarchy.Problem{K: p.K, Variant: p.Variant}
	for _, comp := range graph.InducedComponents(t, activeMask) {
		levels := graph.ComputeLevels(comp.Tree, p.K)
		labels := make([]hierarchy.Label, len(comp.Nodes))
		for i, v := range comp.Nodes {
			labels[i] = out[v].Label
		}
		if err := hp.Verify(comp.Tree, levels, labels); err != nil {
			return fmt.Errorf("%w: active component at node %d: %v", ErrInvalid, comp.Nodes[0], err)
		}
	}
	// Properties 2-5 on weight nodes.
	for v := 0; v < n; v++ {
		if inputs[v] != InputWeight {
			continue
		}
		switch out[v].Kind {
		case KindDecline:
			// Property 2: weight node adjacent to an active node must output
			// Connect or Copy.
			for _, w := range t.NeighborsRaw(v) {
				if inputs[w] == InputActive {
					return bad(v, "declining weight node adjacent to active node %d (property 2)", w)
				}
			}
		case KindConnect:
			// Property 3: at least two neighbors active or Connect.
			support := 0
			for _, w := range t.NeighborsRaw(v) {
				if inputs[w] == InputActive || out[w].Kind == KindConnect {
					support++
				}
			}
			if support < 2 {
				return bad(v, "Connect with %d active/Connect neighbors, need 2 (property 3)", support)
			}
		case KindCopy:
			// Property 4: at most d Decline neighbors.
			declines := 0
			for _, w := range t.NeighborsRaw(v) {
				if out[w].Kind == KindDecline {
					declines++
				}
			}
			if declines > p.D {
				return bad(v, "Copy with %d > d=%d Decline neighbors (property 4)", declines, p.D)
			}
			// Property 5: secondary output matches an active neighbor if one
			// exists, and matches adjacent Copy nodes.
			hasActive := false
			matchesActive := false
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if inputs[u] == InputActive {
					hasActive = true
					if out[u].Label == out[v].Label {
						matchesActive = true
					}
				}
				if inputs[u] == InputWeight && out[u].Kind == KindCopy &&
					out[u].Label != out[v].Label {
					return bad(v, "adjacent Copy nodes with secondary %v vs %v (property 5)",
						out[v].Label, out[u].Label)
				}
			}
			if hasActive && !matchesActive {
				return bad(v, "Copy secondary %v matches no active neighbor (property 5)", out[v].Label)
			}
		}
	}
	return nil
}
