package weighted

import (
	"fmt"

	"repro/internal/graph"
)

// Instance is a concrete input for Π^Z_{Δ,d,k}: a tree plus Active/Weight
// input labels, with construction metadata.
type Instance struct {
	Problem Problem
	Tree    *graph.Tree
	Inputs  []NodeInput
	// Hier is the active-core construction metadata (indices of the active
	// nodes coincide with the hierarchical graph's node indices).
	Hier *graph.Hierarchical
	// WeightRoots maps the root of each attached weight tree to its host
	// active node.
	WeightRoots map[int]int
}

// NumActive returns the number of active nodes.
func (in *Instance) NumActive() int { return in.Hier.Tree.N() }

// BuildInstance builds the weighted lower-bound construction of
// Definition 25 (Figure 4): the k-hierarchical lower-bound graph with path
// lengths `lengths` forms the active core; for every construction level
// i = 2..k, weightPerLevel weight nodes are distributed evenly among the
// level-i nodes as balanced Δ-regular trees, one per node.
func BuildInstance(p Problem, lengths []int, weightPerLevel int) (*Instance, error) {
	if p.K >= 2 && len(lengths) != p.K {
		return nil, fmt.Errorf("weighted: %d lengths for k=%d", len(lengths), p.K)
	}
	if err := validateInstanceParams(p, weightPerLevel); err != nil {
		return nil, err
	}
	h, err := graph.BuildHierarchical(lengths)
	if err != nil {
		return nil, err
	}
	return BuildInstanceFrom(p, h, weightPerLevel)
}

// BuildInstanceFrom builds the Definition-25 construction around a prebuilt
// hierarchical core. The instance keeps a reference to h (as Instance.Hier)
// but never modifies it, so one core — e.g. a cached graph.Hierarchical from
// internal/inst — can back many composite instances with different weight
// budgets or problem parameters.
func BuildInstanceFrom(p Problem, h *graph.Hierarchical, weightPerLevel int) (*Instance, error) {
	if err := validateInstanceParams(p, weightPerLevel); err != nil {
		return nil, err
	}
	if h.K != p.K {
		return nil, fmt.Errorf("weighted: %d-level core for k=%d", h.K, p.K)
	}
	nActive := h.Tree.N()
	b := graph.NewBuilder(nActive + (p.K-1)*weightPerLevel)
	b.AddNodes(nActive)
	for _, e := range h.Tree.Edges() {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	roots := make(map[int]int)
	for level := 2; level <= p.K; level++ {
		hosts := hostsOfLevel(h, level)
		if len(hosts) == 0 {
			continue
		}
		per := weightPerLevel / len(hosts)
		if per < 1 {
			per = 1
		}
		for _, host := range hosts {
			root, err := attachBalanced(b, host, p.Delta, per)
			if err != nil {
				return nil, err
			}
			roots[root] = host
		}
	}
	tree, err := b.Build()
	if err != nil {
		return nil, err
	}
	inputs := make([]NodeInput, tree.N())
	for v := nActive; v < tree.N(); v++ {
		inputs[v] = InputWeight
	}
	return &Instance{
		Problem:     p,
		Tree:        tree,
		Inputs:      inputs,
		Hier:        h,
		WeightRoots: roots,
	}, nil
}

// validateInstanceParams holds the checks shared by BuildInstance and
// BuildInstanceFrom.
func validateInstanceParams(p Problem, weightPerLevel int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.K < 2 {
		return fmt.Errorf("weighted: construction needs k >= 2, got %d", p.K)
	}
	if weightPerLevel < 0 {
		return fmt.Errorf("weighted: negative weight budget %d", weightPerLevel)
	}
	return nil
}

func hostsOfLevel(h *graph.Hierarchical, level int) []int {
	var hosts []int
	for _, path := range h.Paths[level-1] {
		hosts = append(hosts, path...)
	}
	return hosts
}

// attachBalanced adds a balanced tree of `size` weight nodes with maximum
// degree delta (the root keeps one port for the host) and connects its root
// to host. It returns the root's index.
func attachBalanced(b *graph.Builder, host, delta, size int) (int, error) {
	if size < 1 {
		return 0, fmt.Errorf("weighted: balanced attachment of size %d", size)
	}
	first := b.AddNodes(size)
	if err := b.AddEdge(host, first); err != nil {
		return 0, err
	}
	fan := delta - 1
	next := first + 1
	last := first + size - 1
	for v := first; v <= last && next <= last; v++ {
		for c := 0; c < fan && next <= last; c++ {
			if err := b.AddEdge(v, next); err != nil {
				return 0, err
			}
			next++
		}
	}
	return first, nil
}
