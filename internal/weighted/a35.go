package weighted

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/decomp"
	"repro/internal/dfree"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/landscape"
)

// connectRound is the constant round at which the 5-hop Connect
// preprocessing of Section 8.2 completes.
const connectRound = 5

// SolveLogStar runs the generic Π^{3.5}_{Δ,d,k} algorithm of Section 8.2.
//
// Active components execute the hierarchical generic algorithm with
// γ_i = ⌈scale^{α_i}⌉ where the α_i are the optimal log*-regime exponents of
// Lemma 36 for x′ = log(Δ−d+1)/log(Δ−1). In the paper, scale = log* n; since
// log* n is bounded by 5 for any graph that fits in a computer, experiments
// sweep the scale parameter directly (substitution 5 in DESIGN.md).
//
// Weight components follow the adapted fast-decomposition scheme: A-nodes
// within distance 5 Connect; the rest of the component is peeled by
// rake-and-compress (our substitute for [BBK+23a]'s Fast Decomposition
// Algorithm, with a node's termination charged proportionally to its peeling
// iteration — O(1) node-averaged by geometric decay); each remaining A-node
// v owns a domain C(v) that is pruned to a Copy set C′(v) of size
// O(|C(v)|^{x′}) by declining the d−2 heaviest children of every Copy node
// (Lemma 52); Copy nodes wait for v's active neighbor and then flood its
// output.
func SolveLogStar(t *graph.Tree, inputs []NodeInput, p Problem, ids []uint64, scale int) (*Result, error) {
	if p.Variant != hierarchy.Coloring35 {
		return nil, fmt.Errorf("weighted: SolveLogStar requires the 3½ variant, got %v", p.Variant)
	}
	if p.D < 3 {
		return nil, fmt.Errorf("weighted: SolveLogStar requires d >= 3 (Theorem 5), got %d", p.D)
	}
	if scale < 1 {
		return nil, fmt.Errorf("weighted: scale %d < 1", scale)
	}
	n := t.N()
	if len(inputs) != n || len(ids) != n {
		return nil, fmt.Errorf("weighted: inputs/ids length mismatch (n=%d)", n)
	}
	xPrime, err := landscape.EfficiencyXPrime(p.Delta, p.D)
	if err != nil {
		return nil, err
	}
	if xPrime > 1 {
		xPrime = 1
	}
	alphas, err := landscape.Alphas(landscape.RegimeLogStar, xPrime, p.K)
	if err != nil {
		return nil, err
	}
	gammas := make([]int, p.K-1)
	for i, a := range alphas {
		gammas[i] = int(math.Ceil(math.Pow(float64(scale), a)))
		if gammas[i] < 1 {
			gammas[i] = 1
		}
	}
	res := &Result{
		Out:    make([]Output, n),
		Rounds: make([]int, n),
	}
	if err := runActiveComponents(t, inputs, p, ids, gammas, res); err != nil {
		return nil, err
	}
	weightMask := make([]bool, n)
	for v := 0; v < n; v++ {
		weightMask[v] = inputs[v] == InputWeight
	}
	for _, comp := range graph.InducedComponents(t, weightMask) {
		if err := solveWeightComponent35(t, inputs, p, comp, res); err != nil {
			return nil, err
		}
	}
	if err := repairCopyBudget(t, inputs, p, res); err != nil {
		return nil, err
	}
	return res, nil
}

func solveWeightComponent35(t *graph.Tree, inputs []NodeInput, p Problem, comp *graph.Component, res *Result) error {
	m := comp.Tree.N()
	isA := make([]bool, m)
	for i, v := range comp.Nodes {
		for _, w := range t.NeighborsRaw(v) {
			if inputs[w] == InputActive {
				isA[i] = true
				break
			}
		}
	}
	// Step 1: A-nodes within distance 5 of each other Connect the joining
	// path.
	connect := dfree.ShortPathConnect(comp.Tree, isA, connectRound)
	// Step 2: peel the component; the iteration of a node's layer assignment
	// drives its termination round.
	dec, err := decomp.Compute(comp.Tree, decomp.Options{Gamma: 1, Ell: 3})
	if err != nil {
		return err
	}
	declineRound := func(i int) int { return dec.Assign[i].Iter + connectRound }
	// Step 3: domains of the remaining A-nodes (multi-source BFS avoiding
	// Connect nodes; ties to the lower-indexed A-node).
	domain := make([]int, m) // component index of the owning A-node, -1 none
	for i := range domain {
		domain[i] = -1
	}
	var sources []int
	for i := 0; i < m; i++ {
		if isA[i] && !connect[i] {
			sources = append(sources, i)
		}
	}
	sort.Ints(sources)
	queue := make([]int, 0, m)
	for _, s := range sources {
		domain[s] = s
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, w := range comp.Tree.NeighborsRaw(i) {
			j := int(w)
			if domain[j] == -1 && !connect[j] {
				domain[j] = domain[i]
				queue = append(queue, j)
			}
		}
	}
	// Defaults: Connect / Decline.
	for i, v := range comp.Nodes {
		if connect[i] {
			res.Out[v] = Output{Kind: KindConnect}
			res.Rounds[v] = connectRound
		} else {
			res.Out[v] = Output{Kind: KindDecline}
			res.Rounds[v] = declineRound(i)
		}
	}
	// Step 4: per domain, prune to the Copy set C'(v) and flood the active
	// neighbor's output.
	for _, root := range sources {
		copySet := pruneDomain(comp.Tree, domain, root, p.D-2)
		origRoot := comp.Nodes[root]
		bestT := -1
		var bestLabel hierarchy.Label
		for _, w := range t.NeighborsRaw(origRoot) {
			u := int(w)
			if res.Out[u].Kind == KindActive {
				if bestT == -1 || res.Rounds[u] < bestT {
					bestT = res.Rounds[u]
					bestLabel = res.Out[u].Label
				}
			}
		}
		if bestT == -1 {
			return fmt.Errorf("weighted: A-node %d has no active neighbor", origRoot)
		}
		start := declineRound(root)
		if bestT+1 > start {
			start = bestT + 1
		}
		for i, depth := range copySetDepths(comp.Tree, root, copySet) {
			v := comp.Nodes[i]
			res.Out[v] = Output{Kind: KindCopy, Label: bestLabel}
			res.Rounds[v] = start + depth
		}
	}
	return nil
}

// pruneDomain performs the Lemma 52 reassignment on the domain of root:
// starting from root (which must Copy), every Copy node declines its
// `budget` heaviest children within the domain and keeps the rest as Copy,
// yielding a Copy set whose fan-out is at most Δ−1−budget.
func pruneDomain(t *graph.Tree, domain []int, root, budget int) []int {
	if budget < 0 {
		budget = 0
	}
	// BFS tree of the domain rooted at root.
	parent := map[int]int{root: -1}
	order := []int{root}
	queue := []int{root}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, w := range t.NeighborsRaw(i) {
			j := int(w)
			if domain[j] != domain[root] {
				continue
			}
			if _, ok := parent[j]; !ok {
				parent[j] = i
				order = append(order, j)
				queue = append(queue, j)
			}
		}
	}
	size := make(map[int]int, len(order))
	children := make(map[int][]int, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if p := parent[v]; p >= 0 {
			size[p] += size[v]
			children[p] = append(children[p], v)
		}
	}
	copySet := []int{root}
	frontier := []int{root}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		kids := append([]int(nil), children[v]...)
		sort.Slice(kids, func(a, b int) bool { return size[kids[a]] > size[kids[b]] })
		drop := budget
		if drop > len(kids) {
			drop = len(kids)
		}
		for _, c := range kids[drop:] {
			copySet = append(copySet, c)
			frontier = append(frontier, c)
		}
	}
	return copySet
}

// repairCopyBudget demotes Copy nodes that ended up with more than d
// Decline neighbors or with a secondary-label conflict against an adjacent
// Copy node (possible only at domain boundaries in irregular instances;
// never on the paper's constructions). Demoting a weight node that sits next
// to an active node would violate property 2, so that case is an error.
func repairCopyBudget(t *graph.Tree, inputs []NodeInput, p Problem, res *Result) error {
	adjActive := func(v int) bool {
		for _, w := range t.NeighborsRaw(v) {
			if inputs[w] == InputActive {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < t.N(); v++ {
			if res.Out[v].Kind != KindCopy {
				continue
			}
			declines := 0
			conflict := -1
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if res.Out[u].Kind == KindDecline {
					declines++
				}
				if res.Out[u].Kind == KindCopy && res.Out[u].Label != res.Out[v].Label {
					conflict = u
				}
			}
			if declines > p.D {
				if adjActive(v) {
					return fmt.Errorf("weighted: A-node %d exceeds decline budget and cannot be demoted", v)
				}
				res.Out[v] = Output{Kind: KindDecline}
				changed = true
				continue
			}
			if conflict >= 0 {
				victim := v
				if adjActive(v) {
					victim = conflict
				}
				if adjActive(victim) {
					return fmt.Errorf("weighted: adjacent A-nodes %d and %d copy conflicting labels", v, conflict)
				}
				res.Out[victim] = Output{Kind: KindDecline}
				changed = true
			}
		}
	}
	return nil
}
