package weighted

import (
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/sim"
)

// TestVerifierTotalOnGarbage: arbitrary outputs must never panic the
// verifier, and structurally impossible kinds are always rejected.
func TestVerifierTotalOnGarbage(t *testing.T) {
	p := prob25(t, 5, 2, 2)
	inst, err := BuildInstance(p, []int{5, 6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		out := make([]Output, inst.Tree.N())
		for v := range out {
			out[v] = Output{
				Kind:  Kind(rng.Intn(6)),
				Label: hierarchy.Label(rng.Intn(9)),
			}
		}
		err := p.Verify(inst.Tree, inst.Inputs, out) // must not panic
		// An active node with a weight kind (or vice versa) must be caught.
		broken := false
		for v := range out {
			if inst.Inputs[v] == InputActive && out[v].Kind != KindActive {
				broken = true
			}
			if inst.Inputs[v] == InputWeight && out[v].Kind == KindActive {
				broken = true
			}
		}
		if broken && err == nil {
			t.Fatal("kind-mismatched garbage accepted")
		}
	}
}

// TestVerifierCatchesAllDecliningRoots: declining any weight root adjacent
// to an active host is always property-2 violation.
func TestVerifierCatchesAllDecliningRoots(t *testing.T) {
	p := prob25(t, 5, 2, 2)
	inst, err := BuildInstance(p, []int{6, 8}, 300)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 7)
	res, err := SolvePoly(inst.Tree, inst.Inputs, p, ids)
	if err != nil {
		t.Fatal(err)
	}
	for root := range inst.WeightRoots {
		out := append([]Output(nil), res.Out...)
		out[root] = Output{Kind: KindDecline}
		if p.Verify(inst.Tree, inst.Inputs, out) == nil {
			t.Fatalf("declining root %d accepted", root)
		}
	}
}

// TestSolveLogStarDeterministic: identical seeds produce identical
// executions (no hidden global state).
func TestSolveLogStarDeterministic(t *testing.T) {
	p := prob35(t, 7, 3, 2)
	inst, err := BuildInstance(p, []int{6, 10}, 400)
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.DefaultIDs(inst.Tree.N(), 3)
	a, err := SolveLogStar(inst.Tree, inst.Inputs, p, ids, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveLogStar(inst.Tree, inst.Inputs, p, ids, 16)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Out {
		if a.Out[v] != b.Out[v] || a.Rounds[v] != b.Rounds[v] {
			t.Fatalf("node %d differs across identical runs", v)
		}
	}
}

// TestWeighted35CopySetShrinks: Lemma 52 — the Copy set C'(v) within a
// weight tree of w nodes has size O(w^{x'}), strictly sublinear.
func TestWeighted35CopySetShrinks(t *testing.T) {
	p := prob35(t, 7, 3, 2)
	var prevFrac float64 = 1
	for _, budget := range []int{1000, 8000, 64000} {
		inst, err := BuildInstance(p, []int{4, 8}, budget)
		if err != nil {
			t.Fatal(err)
		}
		ids := sim.DefaultIDs(inst.Tree.N(), 5)
		res, err := SolveLogStar(inst.Tree, inst.Inputs, p, ids, 8)
		if err != nil {
			t.Fatal(err)
		}
		weightN, copies := 0, 0
		for v, o := range res.Out {
			if inst.Inputs[v] == InputWeight {
				weightN++
				if o.Kind == KindCopy {
					copies++
				}
			}
		}
		frac := float64(copies) / float64(weightN)
		if frac >= prevFrac {
			t.Fatalf("copy fraction %.4f did not shrink (prev %.4f) at budget %d",
				frac, prevFrac, budget)
		}
		prevFrac = frac
	}
}
