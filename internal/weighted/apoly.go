package weighted

import (
	"fmt"
	"math"

	"repro/internal/dfree"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/landscape"
)

// Result is an execution of a weighted-problem algorithm: per-node outputs
// and termination rounds.
type Result struct {
	Out    []Output
	Rounds []int
}

// NodeAveraged returns (1/n) Σ_v T_v.
func (r *Result) NodeAveraged() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var sum int64
	for _, t := range r.Rounds {
		sum += int64(t)
	}
	return float64(sum) / float64(len(r.Rounds))
}

// MaxRounds returns the worst-case round count.
func (r *Result) MaxRounds() int {
	max := 0
	for _, t := range r.Rounds {
		if t > max {
			max = t
		}
	}
	return max
}

// SolvePoly runs A_poly (Section 7.1) for Π^{2.5}_{Δ,d,k}: active components
// execute the generic phase algorithm with γ_i = ⌈n^{α_i}⌉ (the optimal
// exponents of Lemma 33 for x = log(Δ−1−d)/log(Δ−1)); weight components
// solve the d-free weight problem with Algorithm 𝒜; Copy components flood
// the output of the first active neighbor of their A-node to terminate.
//
// The execution is computed analytically: each node is charged the
// termination round of the corresponding LOCAL algorithm (the hierarchy and
// dfree layers are individually cross-validated against message-level
// simulation in their own packages; see DESIGN.md "dual round accounting").
func SolvePoly(t *graph.Tree, inputs []NodeInput, p Problem, ids []uint64) (*Result, error) {
	if p.Variant != hierarchy.Coloring25 {
		return nil, fmt.Errorf("weighted: SolvePoly requires the 2½ variant, got %v", p.Variant)
	}
	x, err := landscape.EfficiencyX(p.Delta, p.D)
	if err != nil {
		return nil, err
	}
	alphas, err := landscape.Alphas(landscape.RegimePolynomial, x, p.K)
	if err != nil {
		return nil, err
	}
	gammas := make([]int, p.K-1)
	for i, a := range alphas {
		gammas[i] = int(math.Ceil(math.Pow(float64(t.N()), a)))
		if gammas[i] < 1 {
			gammas[i] = 1
		}
	}
	return solveWithDFree(t, inputs, p, ids, gammas)
}

// solveWithDFree is the shared A_poly skeleton, parameterized by the
// active-side γ values.
func solveWithDFree(t *graph.Tree, inputs []NodeInput, p Problem, ids []uint64, gammas []int) (*Result, error) {
	n := t.N()
	if len(inputs) != n || len(ids) != n {
		return nil, fmt.Errorf("weighted: inputs/ids length mismatch (n=%d)", n)
	}
	res := &Result{
		Out:    make([]Output, n),
		Rounds: make([]int, n),
	}
	if err := runActiveComponents(t, inputs, p, ids, gammas, res); err != nil {
		return nil, err
	}

	// Weight components: d-free weight problem via Algorithm 𝒜.
	weightMask := make([]bool, n)
	for v := 0; v < n; v++ {
		weightMask[v] = inputs[v] == InputWeight
	}
	for _, comp := range graph.InducedComponents(t, weightMask) {
		dfInputs := make([]dfree.Input, len(comp.Nodes))
		for i, v := range comp.Nodes {
			for _, w := range t.NeighborsRaw(v) {
				if inputs[w] == InputActive {
					dfInputs[i] = dfree.InputA
					break
				}
			}
		}
		sol, err := dfree.Solve(comp.Tree, dfInputs, p.D)
		if err != nil {
			return nil, err
		}
		base := sol.Rounds
		for i, v := range comp.Nodes {
			switch sol.Out[i] {
			case dfree.OutConnect:
				res.Out[v] = Output{Kind: KindConnect}
				res.Rounds[v] = base
			case dfree.OutDecline:
				res.Out[v] = Output{Kind: KindDecline}
				res.Rounds[v] = base
			}
		}
		for root, set := range sol.CopySets {
			if err := floodCopySet(t, comp, root, set, base, res); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// runActiveComponents runs the hierarchical generic algorithm on every
// active component and records outputs and rounds.
func runActiveComponents(t *graph.Tree, inputs []NodeInput, p Problem, ids []uint64, gammas []int, res *Result) error {
	n := t.N()
	activeMask := make([]bool, n)
	for v := 0; v < n; v++ {
		activeMask[v] = inputs[v] == InputActive
	}
	sched, err := hierarchy.NewSchedule(hierarchy.Params{
		Problem: hierarchy.Problem{K: p.K, Variant: p.Variant},
		Gammas:  gammas,
	})
	if err != nil {
		return err
	}
	for _, comp := range graph.InducedComponents(t, activeMask) {
		levels := graph.ComputeLevels(comp.Tree, p.K)
		compIDs := make([]uint64, len(comp.Nodes))
		for i, v := range comp.Nodes {
			compIDs[i] = ids[v]
		}
		ex, err := hierarchy.RunAnalytic(comp.Tree, levels, sched, compIDs)
		if err != nil {
			return err
		}
		for i, v := range comp.Nodes {
			res.Out[v] = Output{Kind: KindActive, Label: ex.Out[i]}
			res.Rounds[v] = ex.Rounds[i]
		}
	}
	return nil
}

// floodCopySet assigns Copy outputs to a copy component: the A-node root
// adopts the output of its first-terminating active neighbor and floods it
// through the set (one hop per round).
func floodCopySet(t *graph.Tree, comp *graph.Component, root int, set []int, base int, res *Result) error {
	origRoot := comp.Nodes[root]
	bestT := -1
	var bestLabel hierarchy.Label
	for _, w := range t.NeighborsRaw(origRoot) {
		u := int(w)
		if res.Out[u].Kind == KindActive {
			if bestT == -1 || res.Rounds[u] < bestT {
				bestT = res.Rounds[u]
				bestLabel = res.Out[u].Label
			}
		}
	}
	if bestT == -1 {
		return fmt.Errorf("weighted: copy root %d has no active neighbor", origRoot)
	}
	start := base
	if bestT+1 > start {
		start = bestT + 1
	}
	for v, depth := range copySetDepths(comp.Tree, root, set) {
		orig := comp.Nodes[v]
		res.Out[orig] = Output{Kind: KindCopy, Label: bestLabel}
		res.Rounds[orig] = start + depth
	}
	return nil
}

// copySetDepths returns BFS depths from root within the given node set (all
// in component indices).
func copySetDepths(t *graph.Tree, root int, set []int) map[int]int {
	inSet := make(map[int]bool, len(set))
	for _, v := range set {
		inSet[v] = true
	}
	depth := map[int]int{root: 0}
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if inSet[u] {
				if _, ok := depth[u]; !ok {
					depth[u] = depth[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	return depth
}
