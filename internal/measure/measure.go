// Package measure provides the experiment harness: log-log slope fitting
// for exponent recovery and plain-text table formatting for EXPERIMENTS.md
// and the CLI tools.
package measure

import (
	"fmt"
	"math"
	"strings"
)

// Point is one measurement (X = instance scale, Y = measured quantity).
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// FitLogLog fits Y = c · X^slope by least squares on (ln X, ln Y) and
// returns the slope and the multiplicative constant c.
func FitLogLog(points []Point) (slope, c float64) {
	if len(points) < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(points))
	for _, p := range points {
		lx, ly := math.Log(p.X), math.Log(p.Y)
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	c = math.Exp((sy - slope*sx) / n)
	return slope, c
}

// Table is a plain-text table. The field tags make it the JSON table schema
// of the experiment registry (internal/exp) as well.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row built from arbitrary values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = FormatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

// FormatCell renders one cell value the way AddRow stores it: strings pass
// through, float64 uses %.4g, everything else %v. It is exported so that a
// task output serialized across a process boundary (internal/exp's worker
// protocol) can carry pre-formatted cells and reassemble into byte-identical
// tables.
func FormatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprint(v)
	}
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("== " + t.Title + " ==\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("### " + t.Title + "\n\n")
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}
