package measure

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFitLogLogExact(t *testing.T) {
	// Y = 3 * X^0.7 must be recovered exactly.
	var pts []Point
	for _, x := range []float64{10, 100, 1000, 10000} {
		pts = append(pts, Point{X: x, Y: 3 * math.Pow(x, 0.7)})
	}
	slope, c := FitLogLog(pts)
	if math.Abs(slope-0.7) > 1e-9 {
		t.Fatalf("slope = %v, want 0.7", slope)
	}
	if math.Abs(c-3) > 1e-9 {
		t.Fatalf("c = %v, want 3", c)
	}
}

func TestFitLogLogDegenerate(t *testing.T) {
	if s, _ := FitLogLog(nil); s != 0 {
		t.Fatal("empty fit should be 0")
	}
	if s, _ := FitLogLog([]Point{{1, 1}}); s != 0 {
		t.Fatal("single-point fit should be 0")
	}
	// Identical X values: denominator zero.
	if s, _ := FitLogLog([]Point{{5, 1}, {5, 2}}); s != 0 {
		t.Fatal("vertical fit should be 0")
	}
}

func TestQuickFitLogLogRecoversExponent(t *testing.T) {
	f := func(e8 uint8, c8 uint8) bool {
		exp := 0.1 + float64(e8%20)/10 // 0.1 .. 2.0
		c := 1 + float64(c8%50)
		var pts []Point
		for _, x := range []float64{7, 70, 700, 7000} {
			pts = append(pts, Point{X: x, Y: c * math.Pow(x, exp)})
		}
		slope, cc := FitLogLog(pts)
		return math.Abs(slope-exp) < 1e-6 && math.Abs(cc-c) < 1e-4*c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableFormatAligns(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "bbbb", "c"},
	}
	tb.AddRow(1, "x", 2.5)
	tb.AddRow("longer", "y", 0.125)
	out := tb.Format()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "-") {
		t.Fatal("missing separator")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "m", Header: []string{"x", "y"}}
	tb.AddRow(1, 2)
	md := tb.Markdown()
	for _, want := range []string{"### m", "| x | y |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAddRowFormatsFloats(t *testing.T) {
	tb := Table{Header: []string{"v"}}
	tb.AddRow(0.123456789)
	if tb.Rows[0][0] != "0.1235" {
		t.Fatalf("float cell = %q", tb.Rows[0][0])
	}
}
