package graph

// ComputeLevels implements the level computation of Definition 8: repeatedly
// (for i = 1..k) remove, simultaneously, all nodes of degree at most 2 in the
// remaining tree; nodes removed in iteration i have level i, and all nodes
// that survive k iterations have level k+1.
//
// The returned slice maps node index to level in 1..k+1.
func ComputeLevels(t *Tree, k int) []int {
	n := t.N()
	level := make([]int, n)
	deg := make([]int, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = t.Degree(v)
		alive[v] = true
	}
	remaining := n
	for i := 1; i <= k && remaining > 0; i++ {
		var batch []int
		for v := 0; v < n; v++ {
			if alive[v] && deg[v] <= 2 {
				batch = append(batch, v)
			}
		}
		for _, v := range batch {
			level[v] = i
			alive[v] = false
		}
		remaining -= len(batch)
		for _, v := range batch {
			for _, w := range t.NeighborsRaw(v) {
				if alive[w] {
					deg[w]--
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if alive[v] {
			level[v] = k + 1
		}
	}
	return level
}

// LevelSets groups node indices by level (1-based); LevelSets(levels, k)[i]
// holds the nodes of level i+1, for i in 0..k.
func LevelSets(levels []int, k int) [][]int {
	sets := make([][]int, k+1)
	for v, l := range levels {
		sets[l-1] = append(sets[l-1], v)
	}
	return sets
}

// SameLevelPaths returns, for a given level l, the connected components of
// the subgraph induced by nodes of level l, each as an ordered node sequence.
// On the graphs of Definition 8 these components are always paths; if a
// component is not a path the function still returns a DFS ordering of it and
// sets ok=false.
func SameLevelPaths(t *Tree, levels []int, l int) (paths [][]int, ok bool) {
	ok = true
	n := t.N()
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		if levels[v] != l || seen[v] {
			continue
		}
		comp := collectComponent(t, levels, l, v, seen)
		ordered, isPath := orderAsPath(t, levels, l, comp)
		if !isPath {
			ok = false
		}
		paths = append(paths, ordered)
	}
	return paths, ok
}

func collectComponent(t *Tree, levels []int, l, start int, seen []bool) []int {
	var comp []int
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		comp = append(comp, v)
		for _, w := range t.NeighborsRaw(v) {
			if levels[w] == l && !seen[w] {
				seen[w] = true
				stack = append(stack, int(w))
			}
		}
	}
	return comp
}

// orderAsPath orders the nodes of a same-level component as a path if
// possible.
func orderAsPath(t *Tree, levels []int, l int, comp []int) ([]int, bool) {
	if len(comp) == 1 {
		return comp, true
	}
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	sameLevelDeg := func(v int) (d int, nbs []int) {
		for _, w := range t.NeighborsRaw(v) {
			if levels[w] == l && inComp[int(w)] {
				d++
				nbs = append(nbs, int(w))
			}
		}
		return d, nbs
	}
	// Find an endpoint (same-level degree 1).
	end := -1
	for _, v := range comp {
		d, _ := sameLevelDeg(v)
		if d > 2 {
			return comp, false
		}
		if d == 1 && end == -1 {
			end = v
		}
	}
	if end == -1 {
		// Cycle among same-level nodes: impossible in a tree, but be safe.
		return comp, false
	}
	ordered := make([]int, 0, len(comp))
	prev, cur := -1, end
	for {
		ordered = append(ordered, cur)
		_, nbs := sameLevelDeg(cur)
		next := -1
		for _, w := range nbs {
			if w != prev {
				next = w
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}
	return ordered, len(ordered) == len(comp)
}
