package graph

// Seeded random-tree generators for ensemble experiments. Both generators
// are pure functions of their parameters and seed (splitmix64 stream, the
// same mixing discipline as exp.PointSeed and sim.DefaultIDs), so a sampled
// tree is reproducible from its instance key alone — the property the
// instance cache and the multi-process executor rely on to re-derive
// instances worker-side instead of shipping them.

import "fmt"

// splitmix is a splitmix64 pseudo-random stream: tiny state, full-period,
// and statistically solid for instance sampling.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be positive. The tiny
// modulo bias (< 2^-32 for the bounds used here) is irrelevant for instance
// sampling and keeps the generator branch-free.
func (r *splitmix) intn(n int) int { return int(r.next() % uint64(n)) }

// gwAttempts bounds the extinction retries of BuildGaltonWatson before it
// switches to the conditioned offspring law; see the function comment.
const gwAttempts = 64

// BuildGaltonWatson samples a Galton-Watson tree truncated at exactly n
// nodes: starting from a root, every node independently draws a uniform
// number of children in {0, ..., maxChildren} (mean maxChildren/2, so
// maxChildren >= 3 is supercritical) and the process is grown in BFS order
// until n nodes exist. Node indices are BFS order from the root; the
// maximum degree is maxChildren + 1.
//
// A branching process can go extinct before reaching n nodes; extinct
// attempts are discarded and resampled from a re-mixed seed. After
// gwAttempts extinctions (essentially unreachable for supercritical laws at
// moderate n) the offspring law is conditioned to {1, ..., maxChildren},
// which cannot die out, so the function always terminates. The result is a
// pure function of (n, maxChildren, seed).
func BuildGaltonWatson(n, maxChildren int, seed uint64) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: galton-watson size %d", ErrBadParam, n)
	}
	if maxChildren < 2 {
		return nil, fmt.Errorf("%w: galton-watson max children %d < 2", ErrBadParam, maxChildren)
	}
	for attempt := 0; ; attempt++ {
		// Re-mix the seed per attempt so retries draw fresh randomness while
		// the overall result stays a deterministic function of the inputs.
		r := splitmix{s: seed ^ (uint64(attempt) * 0xd1342543de82ef95)}
		minKids := 0
		if attempt >= gwAttempts {
			minKids = 1 // conditioned-on-survival law: guaranteed to reach n
		}
		b := NewBuilder(n)
		b.AddNode()
		queue := make([]int, 1, n)
		queue[0] = 0
		built := 1
		for len(queue) > 0 && built < n {
			v := queue[0]
			queue = queue[1:]
			kids := minKids + r.intn(maxChildren-minKids+1)
			for c := 0; c < kids && built < n; c++ {
				w := b.AddNode()
				if err := b.AddEdge(v, w); err != nil {
					return nil, err
				}
				built++
				queue = append(queue, w)
			}
		}
		if built == n {
			return b.Build()
		}
	}
}

// BuildLadder samples a ladder-heavy tree with exactly n nodes: a spine
// path assembled from alternating segments — "ladder" segments, in which
// every spine node carries one pendant leaf (the caterpillar-like ladder
// shape that phylogenetic tree-shape statistics count), and bare path
// segments — with seeded segment lengths in {1, ..., 8}. Maximum degree is
// 3, making it the bounded-degree counterpart of BuildGaltonWatson's bushy
// samples. The result is a pure function of (n, seed).
func BuildLadder(n int, seed uint64) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: ladder size %d", ErrBadParam, n)
	}
	r := splitmix{s: seed}
	b := NewBuilder(n)
	spine := b.AddNode()
	built := 1
	ladder := true
	for built < n {
		segLen := 1 + r.intn(8)
		for s := 0; s < segLen && built < n; s++ {
			w := b.AddNode()
			if err := b.AddEdge(spine, w); err != nil {
				return nil, err
			}
			spine = w
			built++
			if ladder && built < n {
				leaf := b.AddNode()
				if err := b.AddEdge(spine, leaf); err != nil {
					return nil, err
				}
				built++
			}
		}
		ladder = !ladder
	}
	return b.Build()
}
