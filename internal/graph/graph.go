// Package graph provides the tree substrate used throughout the library.
//
// A Tree is an immutable bounded-degree tree stored in a flat CSR
// (compressed sparse row) layout: one contiguous neighbor array plus an
// offset array, so walking all adjacencies is a linear sweep over one
// allocation instead of a pointer chase through per-node slices.
// Immutability is what lets one built instance be shared freely across
// goroutines, cache entries (package inst), and simulation shards; the CSR
// layout is additionally what makes a node range a *slot* range — the
// directed-edge slots of nodes [lo, hi) occupy the contiguous interval
// [Offsets()[lo], Offsets()[hi]) — which is the property the simulator's
// struct-of-arrays state and shard snapshots are built on. Trees are
// constructed incrementally with a Builder or through the Build* entry
// points covering the paper's instance families and the generic test
// shapes:
//
//   - BuildPath, BuildStar, BuildCaterpillar, BuildBalanced — simple
//     parametric shapes (paths and the balanced Δ-regular weight trees of
//     Lemma 23, plus star/caterpillar test workloads);
//   - BuildHierarchical — the k-hierarchical lower-bound graphs of
//     Definition 18, returned with their construction metadata
//     (per-level paths, construction levels);
//   - BuildGaltonWatson, BuildLadder (random.go) — seeded random tree
//     families for ensemble experiments;
//   - ComputeLevels (levels.go) — the peeling level computation of
//     Definition 8, which solvers and verifiers use instead of the
//     construction levels;
//   - InducedComponents (subgraph.go) — connected components of an induced
//     subgraph, re-indexed as standalone Trees.
//
// Nodes are identified by dense indices 0..N-1. Indices are a property of the
// *construction*, not of the LOCAL model; distributed identifiers are assigned
// separately by the simulator (package sim).
package graph

import (
	"errors"
	"fmt"
)

// Common errors returned by graph construction and validation.
var (
	ErrNotATree      = errors.New("graph is not a tree")
	ErrNotConnected  = errors.New("graph is not connected")
	ErrSelfLoop      = errors.New("self loops are not allowed")
	ErrDuplicateEdge = errors.New("duplicate edge")
	ErrNodeRange     = errors.New("node index out of range")
	ErrEmpty         = errors.New("graph has no nodes")
)

// Tree is an immutable bounded-degree tree in flat CSR form: the neighbors
// of node v are nbr[off[v]:off[v+1]], and port p of v is the directed-edge
// slot off[v]+p in any array indexed by flat slot. The zero value is not
// usable; construct trees with a Builder or one of the Build* helpers.
type Tree struct {
	off    []int32 // CSR offsets, len N()+1; off[0] = 0, off[N()] = 2*m
	nbr    []int32 // flat neighbor array, len 2*m
	m      int     // number of edges
	maxDeg int     // cached max degree (computed once at construction)
}

// newCSR flattens per-node adjacency lists into CSR form. It does not
// validate; Build does.
func newCSR(adj [][]int32, m int) *Tree {
	n := len(adj)
	off := make([]int32, n+1)
	nbr := make([]int32, 0, 2*m)
	maxDeg := 0
	for v, a := range adj {
		off[v] = int32(len(nbr))
		nbr = append(nbr, a...)
		if len(a) > maxDeg {
			maxDeg = len(a)
		}
	}
	off[n] = int32(len(nbr))
	return &Tree{off: off, nbr: nbr, m: m, maxDeg: maxDeg}
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.off) - 1 }

// M returns the number of edges.
func (t *Tree) M() int { return t.m }

// Degree returns the degree of node v.
func (t *Tree) Degree(v int) int { return int(t.off[v+1] - t.off[v]) }

// MaxDegree returns the maximum degree over all nodes (0 for a single
// node). It is cached at construction time — callers in driver hot paths
// may call it freely.
func (t *Tree) MaxDegree() int { return t.maxDeg }

// Offsets returns the CSR offset array (length N()+1): the neighbors of v
// occupy positions Offsets()[v]..Offsets()[v+1] of AdjacencyRaw, and the
// directed-edge slots of a contiguous node range [lo, hi) are the
// contiguous slot interval [Offsets()[lo], Offsets()[hi]) — the property
// the simulator's flat per-port state relies on. Callers must not modify
// the returned slice.
func (t *Tree) Offsets() []int32 { return t.off }

// AdjacencyRaw returns the flat CSR neighbor array (length 2*M()). Entry
// Offsets()[v]+p is the p-th neighbor (port p) of v. Callers must not
// modify the returned slice.
func (t *Tree) AdjacencyRaw() []int32 { return t.nbr }

// Neighbors returns a copy of the neighbor list of v.
func (t *Tree) Neighbors(v int) []int {
	raw := t.nbr[t.off[v]:t.off[v+1]]
	out := make([]int, len(raw))
	for i, u := range raw {
		out[i] = int(u)
	}
	return out
}

// NeighborsRaw returns the neighbor slice of v — a subslice of the shared
// CSR neighbor array. Callers must not modify the returned slice; it is
// exposed for hot paths inside this module.
func (t *Tree) NeighborsRaw(v int) []int32 { return t.nbr[t.off[v]:t.off[v+1]] }

// Neighbor returns the i-th neighbor (port i) of v.
func (t *Tree) Neighbor(v, i int) int { return int(t.nbr[int(t.off[v])+i]) }

// HasEdge reports whether {u,v} is an edge.
func (t *Tree) HasEdge(u, v int) bool {
	for _, w := range t.NeighborsRaw(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Edges returns all edges as pairs (u,v) with u < v.
func (t *Tree) Edges() [][2]int {
	out := make([][2]int, 0, t.m)
	for u := 0; u < t.N(); u++ {
		for _, w := range t.NeighborsRaw(u) {
			if u < int(w) {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// BFS computes hop distances from src. Unreachable nodes get -1 (cannot
// happen on a valid tree).
func (t *Tree) BFS(src int) []int {
	dist := make([]int, t.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, t.N())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.NeighborsRaw(int(v)) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum hop distance from v to any node.
func (t *Tree) Eccentricity(v int) int {
	ecc := 0
	for _, d := range t.BFS(v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the hop diameter of the tree using the classic double-BFS
// (exact on trees).
func (t *Tree) Diameter() int {
	if t.N() == 0 {
		return 0
	}
	dist := t.BFS(0)
	far := argmax(dist)
	dist = t.BFS(far)
	return dist[argmax(dist)]
}

// Ball returns the set of nodes within hop distance r of v, in BFS order.
func (t *Tree) Ball(v, r int) []int {
	dist := make(map[int32]int, 2*r+1)
	dist[int32(v)] = 0
	order := []int{v}
	queue := []int32{int32(v)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == r {
			continue
		}
		for _, w := range t.NeighborsRaw(int(u)) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				order = append(order, int(w))
				queue = append(queue, w)
			}
		}
	}
	return order
}

// IsPathGraph reports whether the tree is a simple path (every node has
// degree at most 2).
func (t *Tree) IsPathGraph() bool { return t.maxDeg <= 2 }

// Validate checks the structural tree invariants: connected, acyclic
// (m == n-1 together with connectivity), no self loops, no duplicate edges.
func (t *Tree) Validate() error {
	n := t.N()
	if n == 0 {
		return ErrEmpty
	}
	if t.m != n-1 {
		return fmt.Errorf("%w: %d nodes but %d edges", ErrNotATree, n, t.m)
	}
	seen := 0
	for _, d := range t.BFS(0) {
		if d >= 0 {
			seen++
		}
	}
	if seen != n {
		return fmt.Errorf("%w: BFS reached %d of %d nodes", ErrNotConnected, seen, n)
	}
	for v := 0; v < n; v++ {
		nbs := t.NeighborsRaw(v)
		mark := make(map[int32]bool, len(nbs))
		for _, w := range nbs {
			if int(w) == v {
				return fmt.Errorf("%w at node %d", ErrSelfLoop, v)
			}
			if mark[w] {
				return fmt.Errorf("%w: {%d,%d}", ErrDuplicateEdge, v, w)
			}
			mark[w] = true
		}
	}
	return nil
}

func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Builder incrementally constructs a Tree. Adjacency is accumulated as
// per-node lists and flattened into the immutable CSR layout by Build.
type Builder struct {
	adj [][]int32
	m   int
}

// NewBuilder returns a Builder with capacity hints for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{adj: make([][]int32, 0, n)}
}

// AddNode appends a new isolated node and returns its index.
func (b *Builder) AddNode() int {
	b.adj = append(b.adj, nil)
	return len(b.adj) - 1
}

// AddNodes appends k new isolated nodes and returns the index of the first.
func (b *Builder) AddNodes(k int) int {
	first := len(b.adj)
	for i := 0; i < k; i++ {
		b.adj = append(b.adj, nil)
	}
	return first
}

// AddEdge connects u and v. It does not check for cycles; Build does.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= len(b.adj) || v >= len(b.adj) {
		return fmt.Errorf("%w: edge {%d,%d} with %d nodes", ErrNodeRange, u, v, len(b.adj))
	}
	if u == v {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
	b.m++
	return nil
}

// N returns the current number of nodes in the builder.
func (b *Builder) N() int { return len(b.adj) }

// AttachPath appends a fresh path of length pathLen (pathLen new nodes) and
// connects its first node to the existing node at. It returns the indices of
// the new path nodes in order (the node adjacent to `at` first).
func (b *Builder) AttachPath(at, pathLen int) ([]int, error) {
	if pathLen <= 0 {
		return nil, nil
	}
	first := b.AddNodes(pathLen)
	nodes := make([]int, pathLen)
	for i := 0; i < pathLen; i++ {
		nodes[i] = first + i
	}
	if err := b.AddEdge(at, nodes[0]); err != nil {
		return nil, err
	}
	for i := 1; i < pathLen; i++ {
		if err := b.AddEdge(nodes[i-1], nodes[i]); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// Build finalizes the tree: flattens the adjacency into CSR form and
// validates the structural invariants.
func (b *Builder) Build() (*Tree, error) {
	t := newCSR(b.adj, b.m)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build for construction code with statically valid inputs;
// it panics on error (program-construction failure, per style guide).
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: MustBuild: %v", err))
	}
	return t
}
