package graph

// Topology-aware shard partitioning: relabel the tree so every subtree
// occupies a contiguous index interval, then place the shard cut points
// where few edges cross. The sharded simulator (internal/sim) always owns
// contiguous node ranges — that is what makes a shard's message state two
// flat slice windows — so the only lever a partitioner has is the node
// numbering itself. A fat preorder (DFS order; SNIPPETS.md 1/3 style)
// provides exactly the property needed: the subtree of any node is one
// contiguous interval, so a cut between two indices severs only the edges
// whose parent-child interval spans it, instead of the accidental crossings
// of the construction numbering.
//
// Partition tries a small deterministic candidate set — preorders with
// light-child-first and heavy-child-first child ordering, the identity
// numbering with window-optimized cuts, and the plain balanced range split —
// and keeps the layout with the fewest boundary edges. Because the range
// split itself is a candidate, the returned layout never has more boundary
// edges than the range layout: the per-shard BoundaryEdges statistic the
// sharded backend reports is provably no worse, and on shapes whose
// construction order scatters subtrees (caterpillars, hierarchical
// lower-bound graphs) it is dramatically better.
//
// Everything here is a pure function of (tree, k): no randomness, fixed tie
// breaks (smallest cut, candidate-list order), so a layout is reproducible
// from the instance alone — the same discipline as the seeded generators.

import "sort"

// Layout is a shard partition of a tree expressed as a node relabeling plus
// cut points over the relabeled index space.
type Layout struct {
	// Perm maps construction index to relabeled index: node v occupies
	// position Perm[v] of the permuted order. A nil Perm is the identity.
	Perm []int32
	// Cuts are the k+1 shard boundaries over relabeled positions: shard i
	// owns positions [Cuts[i], Cuts[i+1]), Cuts[0] = 0, Cuts[k] = n. Cuts are
	// strictly increasing, so every shard is non-empty.
	Cuts []int32
	// BoundaryEdges is the number of tree edges whose endpoints land in
	// different shards, each counted once (a shard-local view counts every
	// such edge in both incident shards).
	BoundaryEdges int
}

// Shards returns the number of shards of the layout.
func (l *Layout) Shards() int { return len(l.Cuts) - 1 }

// Inverse returns the inverse permutation (position -> construction index),
// or nil if the layout's Perm is the identity.
func (l *Layout) Inverse() []int32 {
	if l.Perm == nil {
		return nil
	}
	inv := make([]int32, len(l.Perm))
	for v, p := range l.Perm {
		inv[p] = int32(v)
	}
	return inv
}

// Owners expands the cut points into a per-position shard index: owner[p] is
// the shard owning relabeled position p.
func (l *Layout) Owners() []int32 {
	n := int(l.Cuts[len(l.Cuts)-1])
	owner := make([]int32, n)
	for i := 0; i+1 < len(l.Cuts); i++ {
		for p := l.Cuts[i]; p < l.Cuts[i+1]; p++ {
			owner[p] = int32(i)
		}
	}
	return owner
}

// RangeCuts returns the balanced contiguous split of n nodes into
// exactly min(max(k,1), n) shards: the first n%k shards get ceil(n/k) nodes
// and the rest floor(n/k), so every shard is non-empty — asking for more
// shards than nodes clamps to one node per shard rather than silently
// producing fewer (or empty) shards. This is the sharded backend's "range" layout (and the nominal
// cut positions the subtree layout optimizes around).
func RangeCuts(n, k int) []int32 {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	chunk, rem := n/k, n%k
	cuts := make([]int32, k+1)
	pos := 0
	for i := 1; i <= k; i++ {
		size := chunk
		if i <= rem {
			size++
		}
		pos += size
		cuts[i] = int32(pos)
	}
	return cuts
}

// Partition computes a topology-aware shard layout of t into min(k, n)
// shards (k < 1 is treated as 1): a node permutation under which every
// subtree is a contiguous interval, plus cut points chosen to minimize
// boundary edges within a balance window of ±ceil(n/k)/4 around the balanced
// range split. The returned layout never has more boundary edges than
// RangeCuts with the identity permutation.
func Partition(t *Tree, k int) *Layout {
	n := t.N()
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	parent, order := rootAt(t, 0)
	size := subtreeSizes(t, parent, order)

	best := &Layout{Perm: nil, Cuts: RangeCuts(n, k)}
	best.BoundaryEdges = countBoundary(t, nil, best.Cuts)
	for _, heavyFirst := range []bool{false, true} {
		perm := preorderPerm(t, parent, size, heavyFirst)
		consider(t, best, perm, k)
	}
	// The identity numbering with window-optimized cuts: on shapes whose
	// construction order is already subtree-contiguous (paths, BFS layouts)
	// this keeps the numbering stable while still sliding the cuts off
	// expensive positions.
	consider(t, best, nil, k)
	return best
}

// consider evaluates one candidate permutation with window-optimized cuts
// and replaces best if it strictly reduces the boundary-edge count.
func consider(t *Tree, best *Layout, perm []int32, k int) {
	cuts := chooseCuts(t, perm, k)
	b := countBoundary(t, perm, cuts)
	if b < best.BoundaryEdges {
		best.Perm = perm
		best.Cuts = cuts
		best.BoundaryEdges = b
	}
}

// rootAt computes the parent array and a top-down visit order of t rooted at
// r (parent[r] = -1).
func rootAt(t *Tree, r int) (parent, order []int32) {
	n := t.N()
	parent = make([]int32, n)
	order = make([]int32, 0, n)
	parent[r] = -1
	order = append(order, int32(r))
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, w := range t.NeighborsRaw(int(v)) {
			if w == parent[v] {
				continue
			}
			parent[w] = v
			order = append(order, w)
		}
	}
	return parent, order
}

// subtreeSizes computes the rooted subtree size of every node from a
// top-down visit order (children accumulate into parents bottom-up).
func subtreeSizes(t *Tree, parent, order []int32) []int32 {
	size := make([]int32, t.N())
	for i := range size {
		size[i] = 1
	}
	for i := len(order) - 1; i > 0; i-- {
		v := order[i]
		size[parent[v]] += size[v]
	}
	return size
}

// preorderPerm computes the fat-preorder permutation of t rooted at 0:
// perm[v] is v's DFS preorder position with children visited in subtree-size
// order — heaviest first when heavyFirst, lightest first otherwise — with
// port order as the deterministic tie break. Either way every rooted subtree
// occupies one contiguous interval of positions; the child order only decides
// *which* sibling blocks become adjacent, which is what the cut placement
// exploits (light-first keeps each heavy spine node adjacent to its small
// subtrees, so balanced cuts fall between self-contained blocks).
func preorderPerm(t *Tree, parent, size []int32, heavyFirst bool) []int32 {
	n := t.N()
	perm := make([]int32, n)
	kids := make([]int32, 0, t.MaxDegree())
	stack := make([]int32, 0, 64)
	stack = append(stack, 0)
	next := int32(0)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		perm[v] = next
		next++
		kids = kids[:0]
		for _, w := range t.NeighborsRaw(int(v)) {
			if w != parent[v] {
				kids = append(kids, w)
			}
		}
		sort.SliceStable(kids, func(i, j int) bool {
			if heavyFirst {
				return size[kids[i]] > size[kids[j]]
			}
			return size[kids[i]] < size[kids[j]]
		})
		// Push in reverse so the first child in the chosen order pops first.
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return perm
}

// chooseCuts places k-1 cut points over the permuted positions: each cut i
// searches the window of ±ceil(n/k)/4 positions around its balanced nominal
// position for the cheapest cut — the position c minimizing the number of
// edges whose permuted endpoint interval spans c — clamped so cuts stay
// strictly increasing and every shard keeps at least one node. Smallest
// position wins ties, so the result is deterministic.
func chooseCuts(t *Tree, perm []int32, k int) []int32 {
	n := t.N()
	if k <= 1 {
		return []int32{0, int32(n)}
	}
	// cross[c] = number of edges {u,v} with min(pos) < c <= max(pos): the
	// edges severed by a cut between positions c-1 and c. Built as a
	// difference array over each edge's position interval, then prefix-summed.
	cross := make([]int32, n+1)
	off, nbrs := t.Offsets(), t.AdjacencyRaw()
	for u := 0; u < n; u++ {
		pu := pos(perm, u)
		for e := off[u]; e < off[u+1]; e++ {
			pv := pos(perm, int(nbrs[e]))
			if pu < pv { // count each edge once
				cross[pu+1]++
				cross[pv+1]--
			}
		}
	}
	for c := 1; c <= n; c++ {
		cross[c] += cross[c-1]
	}

	chunk, rem := n/k, n%k
	window := ((n + k - 1) / k) / 4
	cuts := make([]int32, k+1)
	cuts[k] = int32(n)
	nominal := 0
	for i := 1; i < k; i++ {
		size := chunk
		if i <= rem {
			size++
		}
		nominal += size
		lo, hi := nominal-window, nominal+window
		if min := int(cuts[i-1]) + 1; lo < min {
			lo = min
		}
		if max := n - (k - i); hi > max {
			hi = max
		}
		bestC, bestCross := lo, cross[lo]
		for c := lo + 1; c <= hi; c++ {
			if cross[c] < bestCross {
				bestC, bestCross = c, cross[c]
			}
		}
		cuts[i] = int32(bestC)
	}
	return cuts
}

// countBoundary counts the edges of t whose endpoints land in different
// shards under perm (nil = identity) and cuts, each edge counted once.
func countBoundary(t *Tree, perm []int32, cuts []int32) int {
	owner := (&Layout{Cuts: cuts}).Owners()
	n := t.N()
	off, nbrs := t.Offsets(), t.AdjacencyRaw()
	boundary := 0
	for u := 0; u < n; u++ {
		pu := pos(perm, u)
		for e := off[u]; e < off[u+1]; e++ {
			v := int(nbrs[e])
			if u < v && owner[pu] != owner[pos(perm, v)] {
				boundary++
			}
		}
	}
	return boundary
}

// pos returns the permuted position of v (identity when perm is nil).
func pos(perm []int32, v int) int32 {
	if perm == nil {
		return int32(v)
	}
	return perm[v]
}

// PermuteTree relabels t under perm: node v of t becomes node perm[v] of the
// result, with its neighbor list relabeled in place — port p of perm[v]
// leads to perm[t.Neighbor(v, p)], the same port order as the original. The
// permuted tree is therefore the same LOCAL-model network under new indices:
// a simulation over it, with IDs and inputs permuted the same way, observes
// identical per-port message sequences at every node.
func PermuteTree(t *Tree, perm []int32) *Tree {
	n := t.N()
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		raw := t.NeighborsRaw(v)
		row := make([]int32, len(raw))
		for i, w := range raw {
			row[i] = perm[w]
		}
		adj[perm[v]] = row
	}
	return newCSR(adj, t.M())
}
