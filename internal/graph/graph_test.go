package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildPath(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100} {
		p, err := BuildPath(n)
		if err != nil {
			t.Fatalf("BuildPath(%d): %v", n, err)
		}
		if p.N() != n || p.M() != n-1 {
			t.Fatalf("BuildPath(%d): got %d nodes %d edges", n, p.N(), p.M())
		}
		if !p.IsPathGraph() {
			t.Fatalf("BuildPath(%d): not a path graph", n)
		}
		if got := p.Diameter(); got != n-1 {
			t.Fatalf("BuildPath(%d): diameter = %d, want %d", n, got, n-1)
		}
	}
}

func TestBuildPathRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, -1, -10} {
		if _, err := BuildPath(n); err == nil {
			t.Errorf("BuildPath(%d): want error", n)
		}
	}
}

func TestBuildStar(t *testing.T) {
	s, err := BuildStar(7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 6 {
		t.Fatalf("center degree = %d, want 6", s.Degree(0))
	}
	for v := 1; v < 7; v++ {
		if s.Degree(v) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", v, s.Degree(v))
		}
	}
	if s.Diameter() != 2 {
		t.Fatalf("star diameter = %d, want 2", s.Diameter())
	}
}

func TestBuildBalancedRespectsMaxDegree(t *testing.T) {
	for _, tc := range []struct{ delta, size int }{
		{3, 1}, {3, 2}, {3, 10}, {4, 50}, {5, 200}, {8, 1000},
	} {
		tr, err := BuildBalanced(tc.delta, tc.size)
		if err != nil {
			t.Fatalf("BuildBalanced(%d,%d): %v", tc.delta, tc.size, err)
		}
		if tr.N() != tc.size {
			t.Fatalf("size = %d, want %d", tr.N(), tc.size)
		}
		// Root can have delta-1 children (it reserves one port for external
		// attachment); all other nodes have at most delta-1 children plus a
		// parent, i.e. degree at most delta.
		if tr.Degree(0) > tc.delta-1 {
			t.Fatalf("root degree %d > %d", tr.Degree(0), tc.delta-1)
		}
		if tr.MaxDegree() > tc.delta {
			t.Fatalf("max degree %d > delta %d", tr.MaxDegree(), tc.delta)
		}
	}
}

func TestBuildBalancedDepthIsLogarithmic(t *testing.T) {
	tr, err := BuildBalanced(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// fan-out 3, 1000 nodes: depth about log_3(1000) ~ 7.
	if ecc := tr.Eccentricity(0); ecc > 10 {
		t.Fatalf("eccentricity of balanced tree root = %d, want <= 10", ecc)
	}
}

func TestBuildCaterpillar(t *testing.T) {
	c, err := BuildCaterpillar(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 40 {
		t.Fatalf("N = %d, want 40", c.N())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsInvalidEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddNodes(2)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestBuildDetectsDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddNodes(4)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 2, 3)
	// 3 nodes reachable issue: m=2 != n-1=3 -> not a tree.
	if _, err := b.Build(); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBuildDetectsCycle(t *testing.T) {
	b := NewBuilder(3)
	b.AddNodes(3)
	mustEdge(t, b, 0, 1)
	mustEdge(t, b, 1, 2)
	mustEdge(t, b, 2, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func mustEdge(t *testing.T, b *Builder, u, v int) {
	t.Helper()
	if err := b.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestBallRadius(t *testing.T) {
	p, err := BuildPath(11)
	if err != nil {
		t.Fatal(err)
	}
	ball := p.Ball(5, 2)
	if len(ball) != 5 {
		t.Fatalf("ball size = %d, want 5 (nodes 3..7)", len(ball))
	}
	want := map[int]bool{3: true, 4: true, 5: true, 6: true, 7: true}
	for _, v := range ball {
		if !want[v] {
			t.Fatalf("unexpected node %d in ball", v)
		}
	}
}

func TestHierarchicalSizeFormula(t *testing.T) {
	for _, lengths := range [][]int{{5}, {3, 4}, {2, 3, 4}, {5, 5, 5, 5}} {
		h, err := BuildHierarchical(lengths)
		if err != nil {
			t.Fatal(err)
		}
		if h.Tree.N() != HierarchicalSize(lengths) {
			t.Fatalf("lengths %v: N = %d, formula says %d", lengths, h.Tree.N(), HierarchicalSize(lengths))
		}
		if err := h.Tree.Validate(); err != nil {
			t.Fatalf("lengths %v: %v", lengths, err)
		}
	}
}

func TestHierarchicalLevelCounts(t *testing.T) {
	// Corollary 19: |L_i| = prod_{i<=j<=k} ell_j for construction levels.
	lengths := []int{3, 4, 5}
	h, err := BuildHierarchical(lengths)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, l := range h.ConsLevel {
		counts[l]++
	}
	if counts[3] != 5 || counts[2] != 4*5 || counts[1] != 3*4*5 {
		t.Fatalf("construction level counts = %v, want [_, 60, 20, 5]", counts)
	}
}

func TestHierarchicalPeelingLevelsMostlyMatchConstruction(t *testing.T) {
	// Definition 8 peeling should agree with construction levels on all but
	// O(k) boundary nodes per path: path endpoints erode by one node per
	// peeling iteration, so each path end contributes up to k mismatches.
	// The paper's parameters (ell_i = t^{2^{i-1}}) dwarf this erosion.
	lengths := []int{9, 9, 9}
	h, err := BuildHierarchical(lengths)
	if err != nil {
		t.Fatal(err)
	}
	levels := ComputeLevels(h.Tree, 3)
	mismatch := 0
	for v := range levels {
		if levels[v] != int(h.ConsLevel[v]) {
			mismatch++
		}
	}
	// Each path end erodes at most k nodes; allow a generous constant per
	// path.
	numPaths := len(h.Paths[1]) + len(h.Paths[2])
	if mismatch > 8*numPaths {
		t.Fatalf("peeling mismatches construction on %d nodes (paths=%d)", mismatch, numPaths)
	}
	// Middle of the level-3 path must be genuinely level 3.
	top := h.Paths[2][0]
	mid := top[len(top)/2]
	if levels[mid] != 3 {
		t.Fatalf("middle of top path has level %d, want 3", levels[mid])
	}
}

func TestComputeLevelsOnPath(t *testing.T) {
	p, err := BuildPath(20)
	if err != nil {
		t.Fatal(err)
	}
	levels := ComputeLevels(p, 3)
	for v, l := range levels {
		if l != 1 {
			t.Fatalf("node %d on path has level %d, want 1", v, l)
		}
	}
}

func TestComputeLevelsAllAtMostKPlus1(t *testing.T) {
	h, err := BuildHierarchical([]int{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	levels := ComputeLevels(h.Tree, 2)
	for v, l := range levels {
		if l < 1 || l > 3 {
			t.Fatalf("node %d level %d outside [1,3]", v, l)
		}
	}
}

func TestLevelSets(t *testing.T) {
	h, err := BuildHierarchical([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	levels := ComputeLevels(h.Tree, 2)
	sets := LevelSets(levels, 2)
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total != h.Tree.N() {
		t.Fatalf("level sets cover %d of %d nodes", total, h.Tree.N())
	}
}

func TestSameLevelPathsOnHierarchical(t *testing.T) {
	h, err := BuildHierarchical([]int{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	levels := ComputeLevels(h.Tree, 2)
	paths, ok := SameLevelPaths(h.Tree, levels, 1)
	if !ok {
		t.Fatal("level-1 components are not paths")
	}
	// Each pendant path is one component; endpoints of the level-2 path may
	// join level 1, possibly merging with their pendant paths.
	if len(paths) < 4 {
		t.Fatalf("got %d level-1 paths, want >= 4", len(paths))
	}
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			if !h.Tree.HasEdge(p[i-1], p[i]) {
				t.Fatalf("path ordering broken at %v", p)
			}
		}
	}
}

// randomTree builds a random tree on n nodes via a random attachment process.
func randomTree(rng *rand.Rand, n int) *Tree {
	b := NewBuilder(n)
	b.AddNode()
	for v := 1; v < n; v++ {
		b.AddNode()
		if err := b.AddEdge(v, rng.Intn(v)); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

func TestRandomTreesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, 2+rng.Intn(200))
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree %d: %v", i, err)
		}
	}
}

func TestQuickDiameterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%60
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, n)
		// Brute force: max over all BFS.
		want := 0
		for v := 0; v < n; v++ {
			for _, d := range tr.BFS(v) {
				if d > want {
					want = d
				}
			}
		}
		return tr.Diameter() == want
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelsPartitionNodes(t *testing.T) {
	f := func(seed int64, sz uint8, kk uint8) bool {
		n := 2 + int(sz)%150
		k := 1 + int(kk)%4
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, n)
		levels := ComputeLevels(tr, k)
		for _, l := range levels {
			if l < 1 || l > k+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelsMonotoneRemoval(t *testing.T) {
	// Invariant: in the subgraph of nodes with level >= i, every node of
	// level i has degree <= 2 (that is why it was removed at iteration i).
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz)%150
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, n)
		k := 3
		levels := ComputeLevels(tr, k)
		for v := 0; v < n; v++ {
			l := levels[v]
			if l == k+1 {
				continue
			}
			deg := 0
			for _, w := range tr.NeighborsRaw(v) {
				if levels[w] >= l {
					deg++
				}
			}
			if deg > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	p, err := BuildPath(3)
	if err != nil {
		t.Fatal(err)
	}
	nb := p.Neighbors(1)
	nb[0] = 99
	if p.Neighbor(1, 0) == 99 {
		t.Fatal("Neighbors exposed internal storage")
	}
}

func TestEdges(t *testing.T) {
	p, err := BuildPath(4)
	if err != nil {
		t.Fatal(err)
	}
	edges := p.Edges()
	if len(edges) != 3 {
		t.Fatalf("got %d edges, want 3", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized", e)
		}
	}
}
