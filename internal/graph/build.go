package graph

import (
	"errors"
	"fmt"
)

// ErrBadParam indicates an invalid construction parameter.
var ErrBadParam = errors.New("invalid construction parameter")

// BuildPath returns a simple path with n >= 1 nodes, indexed 0..n-1 in path
// order.
func BuildPath(n int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: path length %d", ErrBadParam, n)
	}
	b := NewBuilder(n)
	b.AddNodes(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(i-1, i); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// BuildStar returns a star with one center (index 0) and leaves 1..n-1.
func BuildStar(n int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: star size %d", ErrBadParam, n)
	}
	b := NewBuilder(n)
	b.AddNodes(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(0, i); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// BuildBalanced returns a balanced tree with maximum degree delta and exactly
// size nodes: node 0 is the root with up to delta-1 children and every other
// internal node has up to delta-1 children, filled in BFS order. This is the
// "balanced Δ-regular tree of weight nodes" shape used by Lemma 23 and the
// weighted construction (Definition 25); its root is meant to be attached to
// one further node, bringing the root's total degree to delta.
func BuildBalanced(delta, size int) (*Tree, error) {
	if size < 1 {
		return nil, fmt.Errorf("%w: balanced tree size %d", ErrBadParam, size)
	}
	if delta < 2 {
		return nil, fmt.Errorf("%w: balanced tree degree %d < 2", ErrBadParam, delta)
	}
	b := NewBuilder(size)
	b.AddNodes(size)
	fan := delta - 1
	next := 1
	for v := 0; v < size && next < size; v++ {
		for c := 0; c < fan && next < size; c++ {
			if err := b.AddEdge(v, next); err != nil {
				return nil, err
			}
			next++
		}
	}
	return b.Build()
}

// BuildCaterpillar returns a spine path of spineLen nodes with legLen-node
// legs attached to every spine node. Used as a generic test workload.
func BuildCaterpillar(spineLen, legLen int) (*Tree, error) {
	if spineLen < 1 || legLen < 0 {
		return nil, fmt.Errorf("%w: caterpillar %dx%d", ErrBadParam, spineLen, legLen)
	}
	b := NewBuilder(spineLen * (legLen + 1))
	b.AddNodes(spineLen)
	for i := 1; i < spineLen; i++ {
		if err := b.AddEdge(i-1, i); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spineLen; i++ {
		if _, err := b.AttachPath(i, legLen); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Hierarchical is a k-hierarchical lower-bound graph (Definition 18) together
// with its construction metadata.
type Hierarchical struct {
	Tree *Tree
	// K is the number of levels.
	K int
	// Lengths are the path-length parameters ell_1..ell_k (Lengths[i-1] is
	// ell_i).
	Lengths []int
	// ConsLevel[v] is the construction level of node v: the level of the path
	// v was created in. Construction levels agree with the peeling levels of
	// Definition 8 except possibly at O(1) boundary nodes per path (path
	// endpoints whose degree drops early); solvers and verifiers always use
	// ComputeLevels, this field is for instrumentation.
	ConsLevel []uint8
	// Paths[i-1] lists the node index sequences of the level-i paths in
	// construction order.
	Paths [][][]int
}

// BuildHierarchical builds the k-hierarchical lower-bound graph of
// Definition 18 with parameters lengths = (ell_1, ..., ell_k): start from a
// path of length ell_k (the level-k path); then for i = k-1 down to 1, attach
// to every node of every level-(i+1) path a fresh path of length ell_i.
func BuildHierarchical(lengths []int) (*Hierarchical, error) {
	k := len(lengths)
	if k < 1 {
		return nil, fmt.Errorf("%w: hierarchical needs at least one level", ErrBadParam)
	}
	for i, l := range lengths {
		if l < 1 {
			return nil, fmt.Errorf("%w: ell_%d = %d", ErrBadParam, i+1, l)
		}
	}
	total := totalHierarchicalNodes(lengths)
	b := NewBuilder(total)
	h := &Hierarchical{
		K:       k,
		Lengths: append([]int(nil), lengths...),
		Paths:   make([][][]int, k),
	}
	// Level-k path.
	first := b.AddNodes(lengths[k-1])
	top := make([]int, lengths[k-1])
	for i := range top {
		top[i] = first + i
		if i > 0 {
			if err := b.AddEdge(top[i-1], top[i]); err != nil {
				return nil, err
			}
		}
	}
	h.Paths[k-1] = [][]int{top}
	// Levels k-1 .. 1.
	for i := k - 1; i >= 1; i-- {
		for _, parent := range h.Paths[i] { // level-(i+1) paths live at index i
			for _, v := range parent {
				path, err := b.AttachPath(v, lengths[i-1])
				if err != nil {
					return nil, err
				}
				h.Paths[i-1] = append(h.Paths[i-1], path)
			}
		}
	}
	tree, err := b.Build()
	if err != nil {
		return nil, err
	}
	h.Tree = tree
	h.ConsLevel = make([]uint8, tree.N())
	for i := 0; i < k; i++ {
		for _, p := range h.Paths[i] {
			for _, v := range p {
				h.ConsLevel[v] = uint8(i + 1)
			}
		}
	}
	return h, nil
}

func totalHierarchicalNodes(lengths []int) int {
	k := len(lengths)
	// Number of level-i nodes is prod_{j=i..k} ell_j.
	total := 0
	prod := 1
	for i := k - 1; i >= 0; i-- {
		prod *= lengths[i]
		total += prod
	}
	return total
}

// HierarchicalSize returns the total node count of the lower-bound graph for
// the given length parameters without building it.
func HierarchicalSize(lengths []int) int { return totalHierarchicalNodes(lengths) }
