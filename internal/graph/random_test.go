package graph

import (
	"reflect"
	"testing"
)

// TestGaltonWatsonDeterminism: the generator is a pure function of
// (n, maxChildren, seed) — byte-identical edge lists on repeated calls —
// and distinct seeds actually explore distinct trees.
func TestGaltonWatsonDeterminism(t *testing.T) {
	a, err := BuildGaltonWatson(500, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGaltonWatson(500, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("same seed produced different trees")
	}
	c, err := BuildGaltonWatson(500, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Edges(), c.Edges()) {
		t.Fatal("distinct seeds produced identical trees")
	}
}

// TestLadderDeterminism mirrors TestGaltonWatsonDeterminism for BuildLadder.
func TestLadderDeterminism(t *testing.T) {
	a, err := BuildLadder(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildLadder(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("same seed produced different trees")
	}
	c, err := BuildLadder(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Edges(), c.Edges()) {
		t.Fatal("distinct seeds produced identical trees")
	}
}

// TestRandomTreesAreValid: every sample is a connected tree of exactly the
// requested size (the Builder invariants re-checked explicitly) and
// respects its degree bound: maxChildren+1 for Galton-Watson, 3 for ladder
// trees.
func TestRandomTreesAreValid(t *testing.T) {
	for _, n := range []int{1, 2, 17, 256} {
		for seed := uint64(0); seed < 8; seed++ {
			for _, c := range []int{2, 3, 5} {
				tr, err := BuildGaltonWatson(n, c, seed)
				if err != nil {
					t.Fatalf("gw(n=%d,c=%d,seed=%d): %v", n, c, seed, err)
				}
				if tr.N() != n {
					t.Fatalf("gw(n=%d,c=%d,seed=%d): got %d nodes", n, c, seed, tr.N())
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("gw(n=%d,c=%d,seed=%d): %v", n, c, seed, err)
				}
				if d := tr.MaxDegree(); d > c+1 {
					t.Fatalf("gw(n=%d,c=%d,seed=%d): max degree %d > %d", n, c, seed, d, c+1)
				}
			}
			tr, err := BuildLadder(n, seed)
			if err != nil {
				t.Fatalf("ladder(n=%d,seed=%d): %v", n, seed, err)
			}
			if tr.N() != n {
				t.Fatalf("ladder(n=%d,seed=%d): got %d nodes", n, seed, tr.N())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("ladder(n=%d,seed=%d): %v", n, seed, err)
			}
			if d := tr.MaxDegree(); d > 3 {
				t.Fatalf("ladder(n=%d,seed=%d): max degree %d > 3", n, seed, d)
			}
		}
	}
}

// TestGaltonWatsonShapeSanity: under the uniform {0..3} offspring law
// roughly a quarter of the nodes draw zero children, so across an ensemble
// the leaf fraction must sit well away from both the path extreme (~0) and
// the star extreme (~1). The band is deliberately wide — this guards the
// offspring law's wiring, not its exact distribution.
func TestGaltonWatsonShapeSanity(t *testing.T) {
	const n, c, seeds = 2000, 3, 24
	leaves, total := 0, 0
	for seed := uint64(1); seed <= seeds; seed++ {
		tr, err := BuildGaltonWatson(n, c, seed)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < tr.N(); v++ {
			if tr.Degree(v) == 1 {
				leaves++
			}
			total++
		}
	}
	frac := float64(leaves) / float64(total)
	if frac < 0.15 || frac > 0.60 {
		t.Fatalf("ensemble leaf fraction %.3f outside sanity band [0.15, 0.60]", frac)
	}
}

// TestGaltonWatsonConditionedFallback: the documented guarantee is that the
// generator terminates for every parameter combination, including the
// critical law maxChildren=2 (mean offspring exactly 1) where extinctions
// are common; exercise a spread of seeds to cross the retry path.
func TestGaltonWatsonConditionedFallback(t *testing.T) {
	for seed := uint64(0); seed < 16; seed++ {
		tr, err := BuildGaltonWatson(300, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		if tr.N() != 300 {
			t.Fatalf("seed %d: got %d nodes", seed, tr.N())
		}
	}
}
