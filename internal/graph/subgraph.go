package graph

// Component is a connected induced subgraph, re-indexed as its own Tree.
type Component struct {
	// Tree is the component with nodes re-indexed 0..len(Nodes)-1.
	Tree *Tree
	// Nodes maps component indices back to indices of the parent graph.
	Nodes []int
	// index maps parent-graph indices to component indices (sized to the
	// component, not the parent graph).
	index map[int]int
}

// IndexOf returns the component index of a parent-graph node, or -1 if the
// node is not part of the component.
func (c *Component) IndexOf(parent int) int {
	if i, ok := c.index[parent]; ok {
		return i
	}
	return -1
}

// InducedComponents returns the connected components of the subgraph of t
// induced by the nodes with mask[v] == true.
func InducedComponents(t *Tree, mask []bool) []*Component {
	n := t.N()
	seen := make([]bool, n)
	var comps []*Component
	for s := 0; s < n; s++ {
		if !mask[s] || seen[s] {
			continue
		}
		// BFS within the mask.
		var nodes []int
		seen[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nodes = append(nodes, v)
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if mask[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		index := make(map[int]int, len(nodes))
		for i, v := range nodes {
			index[v] = i
		}
		b := NewBuilder(len(nodes))
		b.AddNodes(len(nodes))
		for i, v := range nodes {
			for _, w := range t.NeighborsRaw(v) {
				u := int(w)
				if j, ok := index[u]; ok && mask[u] && j > i {
					if err := b.AddEdge(i, j); err != nil {
						// Unreachable: indices are in range and distinct.
						panic(err)
					}
				}
			}
		}
		tree, err := b.Build()
		if err != nil {
			// Unreachable: an induced connected subgraph of a tree is a tree.
			panic(err)
		}
		comps = append(comps, &Component{Tree: tree, Nodes: nodes, index: index})
	}
	return comps
}
