package graph

import (
	"fmt"
	"testing"
)

// partitionShapes is the shape zoo the partitioner properties are checked
// over: adversarial constructions plus seeded random families.
func partitionShapes(t *testing.T) map[string]*Tree {
	t.Helper()
	shapes := map[string]*Tree{}
	add := func(name string, tr *Tree, err error) {
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		shapes[name] = tr
	}
	p1, err := BuildPath(1)
	add("single", p1, err)
	p2, err := BuildPath(2)
	add("edge", p2, err)
	path, err := BuildPath(257)
	add("path257", path, err)
	star, err := BuildStar(120)
	add("star120", star, err)
	cat, err := BuildCaterpillar(19, 6)
	add("caterpillar19x6", cat, err)
	hier, err := BuildHierarchical([]int{5, 11})
	if err != nil {
		t.Fatalf("build hierarchical: %v", err)
	}
	shapes["hierarchical5x11"] = hier.Tree
	bal, err := BuildBalanced(4, 200)
	add("balanced4x200", bal, err)
	for _, seed := range []uint64{1, 42} {
		gw, err := BuildGaltonWatson(163, 4, seed)
		add(fmt.Sprintf("gw163-seed%d", seed), gw, err)
		lad, err := BuildLadder(144, seed)
		add(fmt.Sprintf("ladder144-seed%d", seed), lad, err)
	}
	return shapes
}

// checkLayout asserts every structural property a Layout must satisfy for
// tree tr at requested shard count k, recomputing the boundary-edge count
// by brute force. It returns the layout for further shape-specific checks.
func checkLayout(t *testing.T, tr *Tree, k int, l *Layout) {
	t.Helper()
	n := tr.N()
	want := k
	if want > n {
		want = n
	}
	if want < 1 {
		want = 1
	}
	if got := l.Shards(); got != want {
		t.Fatalf("Shards() = %d, want %d (n=%d, k=%d)", got, want, n, k)
	}

	// Cuts: strictly increasing from 0 to n — every shard non-empty.
	if l.Cuts[0] != 0 || l.Cuts[len(l.Cuts)-1] != int32(n) {
		t.Fatalf("cuts %v do not span [0, %d]", l.Cuts, n)
	}
	for i := 1; i < len(l.Cuts); i++ {
		if l.Cuts[i] <= l.Cuts[i-1] {
			t.Fatalf("cuts %v not strictly increasing at %d", l.Cuts, i)
		}
	}

	// Perm: nil, or a valid permutation of 0..n-1.
	if l.Perm != nil {
		if len(l.Perm) != n {
			t.Fatalf("perm length %d, want %d", len(l.Perm), n)
		}
		seen := make([]bool, n)
		for v, p := range l.Perm {
			if p < 0 || int(p) >= n || seen[p] {
				t.Fatalf("perm[%d] = %d is not a fresh position in [0,%d)", v, p, n)
			}
			seen[p] = true
		}
		inv := l.Inverse()
		for v := range l.Perm {
			if int(inv[l.Perm[v]]) != v {
				t.Fatalf("Inverse()[Perm[%d]] = %d", v, inv[l.Perm[v]])
			}
		}
	} else if l.Inverse() != nil {
		t.Fatalf("identity layout returned non-nil Inverse()")
	}

	// BoundaryEdges equals an independent brute-force recount.
	owner := l.Owners()
	if len(owner) != n {
		t.Fatalf("Owners() length %d, want %d", len(owner), n)
	}
	ownerOf := func(v int) int32 {
		if l.Perm != nil {
			return owner[l.Perm[v]]
		}
		return owner[v]
	}
	brute := 0
	for _, e := range tr.Edges() {
		if ownerOf(e[0]) != ownerOf(e[1]) {
			brute++
		}
	}
	if brute != l.BoundaryEdges {
		t.Fatalf("BoundaryEdges = %d, brute-force recount = %d", l.BoundaryEdges, brute)
	}

	// Never worse than the balanced range split.
	rangeBoundary := 0
	rc := RangeCuts(n, k)
	rOwner := (&Layout{Cuts: rc}).Owners()
	for _, e := range tr.Edges() {
		if rOwner[e[0]] != rOwner[e[1]] {
			rangeBoundary++
		}
	}
	if l.BoundaryEdges > rangeBoundary {
		t.Fatalf("BoundaryEdges = %d exceeds range layout's %d", l.BoundaryEdges, rangeBoundary)
	}
}

func TestPartitionProperties(t *testing.T) {
	for name, tr := range partitionShapes(t) {
		for _, k := range []int{1, 2, 3, 4, 7, 16, tr.N(), tr.N() + 5} {
			l := Partition(tr, k)
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				checkLayout(t, tr, k, l)
			})
		}
	}
}

// TestPreorderSubtreeIntervals pins the fat-preorder property directly:
// under either child order, every rooted subtree occupies one contiguous
// interval of positions whose width is the subtree size.
func TestPreorderSubtreeIntervals(t *testing.T) {
	for name, tr := range partitionShapes(t) {
		parent, order := rootAt(tr, 0)
		size := subtreeSizes(tr, parent, order)
		for _, heavyFirst := range []bool{false, true} {
			perm := preorderPerm(tr, parent, size, heavyFirst)
			minP := make([]int32, tr.N())
			maxP := make([]int32, tr.N())
			copy(minP, perm)
			copy(maxP, perm)
			for i := len(order) - 1; i > 0; i-- {
				v, p := order[i], parent[order[i]]
				if minP[v] < minP[p] {
					minP[p] = minP[v]
				}
				if maxP[v] > maxP[p] {
					maxP[p] = maxP[v]
				}
			}
			for v := 0; v < tr.N(); v++ {
				if maxP[v]-minP[v]+1 != size[v] {
					t.Fatalf("%s heavyFirst=%v: subtree of %d spans [%d,%d] but has %d nodes",
						name, heavyFirst, v, minP[v], maxP[v], size[v])
				}
				if perm[v] != minP[v] {
					t.Fatalf("%s heavyFirst=%v: node %d at position %d is not first in its subtree interval [%d,%d]",
						name, heavyFirst, v, perm[v], minP[v], maxP[v])
				}
			}
		}
	}
}

func TestRangeCuts(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		want []int32
	}{
		{10, 2, []int32{0, 5, 10}},
		{10, 3, []int32{0, 4, 7, 10}},
		{5, 4, []int32{0, 2, 3, 4, 5}}, // ceil-chunking would yield 3 shards (2,2,1)
		{5, 7, []int32{0, 1, 2, 3, 4, 5}},
		{1, 1, []int32{0, 1}},
		{3, 0, []int32{0, 3}},
	} {
		got := RangeCuts(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("RangeCuts(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("RangeCuts(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
			}
		}
	}
}

// TestPartitionReducesBoundary pins the regression the subtree layout
// exists for: on shapes whose construction numbering scatters subtrees, the
// partitioned layout cuts boundary edges by well over the 30% acceptance
// floor, at every shard count the differential suite runs.
func TestPartitionReducesBoundary(t *testing.T) {
	shapes := partitionShapes(t)
	for _, name := range []string{"caterpillar19x6", "hierarchical5x11"} {
		tr := shapes[name]
		for _, k := range []int{2, 4, 7} {
			rangeBoundary := countBoundary(tr, nil, RangeCuts(tr.N(), k))
			l := Partition(tr, k)
			if rangeBoundary == 0 {
				t.Fatalf("%s k=%d: range layout has no boundary edges", name, k)
			}
			reduction := 1 - float64(l.BoundaryEdges)/float64(rangeBoundary)
			t.Logf("%s k=%d: boundary %d -> %d (%.0f%% reduction)", name, k, rangeBoundary, l.BoundaryEdges, 100*reduction)
			if reduction < 0.30 {
				t.Errorf("%s k=%d: subtree layout reduces boundary edges by %.0f%% (%d -> %d), want >= 30%%",
					name, k, 100*reduction, rangeBoundary, l.BoundaryEdges)
			}
		}
	}
}

func TestPermuteTree(t *testing.T) {
	for name, tr := range partitionShapes(t) {
		l := Partition(tr, 4)
		perm := l.Perm
		if perm == nil { // identity won; permute by a preorder anyway
			parent, order := rootAt(tr, 0)
			perm = preorderPerm(tr, parent, subtreeSizes(tr, parent, order), false)
		}
		pt := PermuteTree(tr, perm)
		if err := pt.Validate(); err != nil {
			t.Fatalf("%s: permuted tree invalid: %v", name, err)
		}
		if pt.N() != tr.N() || pt.M() != tr.M() || pt.MaxDegree() != tr.MaxDegree() {
			t.Fatalf("%s: permuted tree shape mismatch", name)
		}
		for v := 0; v < tr.N(); v++ {
			if pt.Degree(int(perm[v])) != tr.Degree(v) {
				t.Fatalf("%s: degree of %d changed under permutation", name, v)
			}
			for p := 0; p < tr.Degree(v); p++ {
				if got, want := pt.Neighbor(int(perm[v]), p), int(perm[tr.Neighbor(v, p)]); got != want {
					t.Fatalf("%s: port %d of node %d maps to %d, want %d", name, p, v, got, want)
				}
			}
		}
	}
}

// FuzzPartition drives the partitioner over seeded Galton-Watson and ladder
// trees and rechecks every structural property on each. The seed corpus
// covers both families at several sizes and shard counts; the fuzzer then
// explores the (family, size, seed, shards) space.
func FuzzPartition(f *testing.F) {
	f.Add(true, 50, uint64(1), 3)
	f.Add(true, 163, uint64(42), 7)
	f.Add(false, 50, uint64(1), 4)
	f.Add(false, 144, uint64(7), 2)
	f.Add(true, 1, uint64(0), 1)
	f.Add(false, 9, uint64(3), 16)
	f.Fuzz(func(t *testing.T, gw bool, n int, seed uint64, k int) {
		if n < 1 || n > 2048 || k < -4 || k > 64 {
			t.Skip()
		}
		var tr *Tree
		var err error
		if gw {
			tr, err = BuildGaltonWatson(n, 4, seed)
		} else {
			tr, err = BuildLadder(n, seed)
		}
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		checkLayout(t, tr, k, Partition(tr, k))
	})
}
