package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedComponentsSplitsCaterpillar(t *testing.T) {
	// Mask out the spine of a caterpillar: each leg becomes its own
	// component.
	c, err := BuildCaterpillar(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, c.N())
	for v := 5; v < c.N(); v++ { // spine nodes are 0..4
		mask[v] = true
	}
	comps := InducedComponents(c, mask)
	if len(comps) != 5 {
		t.Fatalf("got %d components, want 5", len(comps))
	}
	for _, comp := range comps {
		if comp.Tree.N() != 3 {
			t.Fatalf("component size %d, want 3", comp.Tree.N())
		}
		if err := comp.Tree.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInducedComponentsIndexRoundTrip(t *testing.T) {
	p, err := BuildPath(10)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, 10)
	for _, v := range []int{2, 3, 4, 7, 8} {
		mask[v] = true
	}
	comps := InducedComponents(p, mask)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	for _, comp := range comps {
		for i, v := range comp.Nodes {
			if comp.IndexOf(v) != i {
				t.Fatalf("IndexOf(%d) = %d, want %d", v, comp.IndexOf(v), i)
			}
		}
	}
	// Nodes outside the mask map to -1.
	if comps[0].IndexOf(0) != -1 {
		t.Fatal("IndexOf of unmasked node should be -1")
	}
}

func TestInducedComponentsEmptyMask(t *testing.T) {
	p, err := BuildPath(5)
	if err != nil {
		t.Fatal(err)
	}
	if comps := InducedComponents(p, make([]bool, 5)); len(comps) != 0 {
		t.Fatalf("got %d components for empty mask", len(comps))
	}
}

func TestQuickInducedComponentsPartition(t *testing.T) {
	// Components partition the masked nodes, edges are preserved exactly,
	// and every component is a valid tree.
	f := func(seed int64, bits uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		tr := randomTree(rng, n)
		mask := make([]bool, n)
		covered := 0
		for v := 0; v < n; v++ {
			if bits>>(uint(v)%64)&1 == 1 || rng.Intn(3) == 0 {
				mask[v] = true
				covered++
			}
		}
		comps := InducedComponents(tr, mask)
		seen := make(map[int]bool)
		total := 0
		for _, comp := range comps {
			if comp.Tree.Validate() != nil {
				return false
			}
			total += len(comp.Nodes)
			for i, v := range comp.Nodes {
				if seen[v] || !mask[v] {
					return false
				}
				seen[v] = true
				// Edge preservation: neighbors within the component match
				// masked neighbors in the parent.
				for _, w := range tr.NeighborsRaw(v) {
					u := int(w)
					j := comp.IndexOf(u)
					if mask[u] && sameComponent(comp, u) && j >= 0 {
						if !comp.Tree.HasEdge(i, j) {
							return false
						}
					}
				}
			}
		}
		return total == covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func sameComponent(c *Component, parent int) bool { return c.IndexOf(parent) >= 0 }
