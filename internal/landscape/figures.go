package landscape

// Entry is one region of the node-averaged complexity landscape of LCLs on
// bounded-degree trees.
type Entry struct {
	// Region describes the complexity range.
	Region string
	// Status is one of "class" (nonempty complexity class), "gap" (no LCL
	// has a complexity in this range), or "dense" (infinitely many classes).
	Status string
	// Source cites the theorem establishing the entry.
	Source string
	// New reports whether the entry is a contribution of this paper
	// (Figure 2) rather than prior work (Figure 1).
	New bool
}

// Figure1 returns the landscape as known before the paper (Figure 1):
// deterministic node-averaged complexities of LCLs on bounded-degree trees.
func Figure1() []Entry {
	return []Entry{
		{Region: "Θ(1)", Status: "class", Source: "trivial problems"},
		{Region: "ω(1) – o(log* n)", Status: "unknown", Source: "open before this paper"},
		{Region: "Θ(log* n)", Status: "class", Source: "[BBK+23b]: e.g. 3-coloring"},
		{Region: "ω(log* n) – n^{o(1)}", Status: "gap", Source: "[BBK+23b]"},
		{Region: "n^{Θ(1)}: Θ(n^{1/(2k−1)})", Status: "class", Source: "[BBK+23b]: k-hier. 2½-coloring"},
		{Region: "between the Θ(n^{1/(2k−1)}) points", Status: "unknown", Source: "open before this paper"},
		{Region: "Θ(n)", Status: "class", Source: "e.g. 2-coloring"},
	}
}

// Figure2 returns the completed landscape (Figure 2), including the paper's
// contributions.
func Figure2() []Entry {
	return []Entry{
		{Region: "Θ(1)", Status: "class", Source: "trivial problems"},
		{Region: "ω(1) – (log* n)^{o(1)}", Status: "gap", Source: "Theorem 7", New: true},
		{Region: "(log* n)^{Θ(1)} – O(log* n)", Status: "dense", Source: "Theorems 4–6 (Π^{3.5}_{Δ,d,k})", New: true},
		{Region: "Θ(log* n)", Status: "class", Source: "[BBK+23b]"},
		{Region: "ω(log* n) – n^{o(1)}", Status: "gap", Source: "[BBK+23b]"},
		{Region: "n^{Θ(1)} – O(√n)", Status: "dense", Source: "Theorems 1–3 (Π^{2.5}_{Δ,d,k})", New: true},
		{Region: "Θ(√n)", Status: "class", Source: "Lemma 69 (weight-augmented 2½-coloring)", New: true},
		{Region: "ω(√n) – o(n)", Status: "gap", Source: "Corollary 60", New: true},
		{Region: "Θ(n)", Status: "class", Source: "e.g. 2-coloring"},
	}
}

// ClassPoint is a concrete achievable node-averaged complexity.
type ClassPoint struct {
	Exponent float64 // complexity is n^Exponent (poly) or (log* n)^Exponent
	Delta    int
	D        int
	K        int
	Regime   Regime
}

// SampleDensityPoints returns count achievable exponents evenly spread in
// (lo, hi) for the given regime, each witnessed by concrete (Δ, d, k)
// parameters — an executable rendering of the red "infinitely dense" bars of
// Figure 2.
func SampleDensityPoints(regime Regime, lo, hi float64, count int) ([]ClassPoint, error) {
	if count < 1 {
		return nil, ErrBadParam
	}
	pts := make([]ClassPoint, 0, count)
	width := (hi - lo) / float64(count)
	for i := 0; i < count; i++ {
		a := lo + float64(i)*width
		b := a + width
		switch regime {
		case RegimePolynomial:
			p, err := FindPolyParams(a, b)
			if err != nil {
				return nil, err
			}
			pts = append(pts, ClassPoint{
				Exponent: p.C, Delta: p.Delta, D: p.D, K: p.K, Regime: regime,
			})
		case RegimeLogStar:
			p, err := FindLogStarParams(a, b, width/4)
			if err != nil {
				return nil, err
			}
			pts = append(pts, ClassPoint{
				Exponent: p.C, Delta: p.Delta, D: p.D, K: p.K, Regime: regime,
			})
		default:
			return nil, ErrBadParam
		}
	}
	return pts, nil
}
