package landscape

import (
	"fmt"
	"math"
)

// Rational is a fraction a/b in lowest terms.
type Rational struct {
	A, B int64
}

// Float returns the value a/b.
func (r Rational) Float() float64 { return float64(r.A) / float64(r.B) }

// String formats the fraction.
func (r Rational) String() string { return fmt.Sprintf("%d/%d", r.A, r.B) }

// SimplestRationalIn returns the rational with the smallest denominator in
// the open interval (lo, hi), via Stern–Brocot descent. Requires lo < hi.
func SimplestRationalIn(lo, hi float64) (Rational, error) {
	if !(lo < hi) {
		return Rational{}, fmt.Errorf("%w: empty interval (%v, %v)", ErrBadParam, lo, hi)
	}
	// Walk the Stern–Brocot tree: invariant lo < hi, find simplest a/b with
	// lo < a/b < hi.
	var la, lb, ra, rb int64 = 0, 1, 1, 0 // 0/1 and 1/0 bracket all positives
	for iter := 0; iter < 10000; iter++ {
		ma, mb := la+ra, lb+rb
		v := float64(ma) / float64(mb)
		switch {
		case v <= lo:
			// Move right; accelerate by stepping as far as possible.
			step := int64((lo*float64(mb) - float64(ma)) / (float64(ra) - lo*float64(rb)))
			if step > 0 {
				ma += step * ra
				mb += step * rb
			}
			la, lb = ma, mb
		case v >= hi:
			step := int64((float64(ma) - hi*float64(mb)) / (hi*float64(lb) - float64(la)))
			if step > 0 {
				ma += step * la
				mb += step * lb
			}
			ra, rb = ma, mb
		default:
			return Rational{A: ma, B: mb}, nil
		}
	}
	return Rational{}, fmt.Errorf("%w: no rational found in (%v, %v)", ErrBadParam, lo, hi)
}

// PolyParams is the outcome of the Theorem 1 / Lemma 58 parameter search: an
// LCL Π^{2.5}_{Δ,d,k} whose node-averaged complexity Θ(n^C) has exponent C
// inside the requested interval.
type PolyParams struct {
	Delta, D, K int
	X           Rational // efficiency factor x = log(Δ−d−1)/log(Δ−1)
	C           float64  // the achieved exponent α_1(x)
}

// FindPolyParams implements Lemma 58's constructive step: given
// 0 < r1 < r2 <= 1/2, it returns constants (Δ, d, k) with Δ >= d+3 such that
// Π^{2.5}_{Δ,d,k} has node-averaged complexity Θ(n^c) for some c in
// [r1, r2]. Following the lemma, x is chosen rational p/q and realized by
// Δ = 2^q + 1, d = 2^q − 2^p.
func FindPolyParams(r1, r2 float64) (PolyParams, error) {
	if !(0 < r1 && r1 < r2 && r2 <= 0.5) {
		return PolyParams{}, fmt.Errorf("%w: need 0 < r1 < r2 <= 1/2, got (%v, %v)",
			ErrBadParam, r1, r2)
	}
	// Choose k so that [1/(2^k−1), 1/k] ∩ (r1, r2) is nonempty: the smallest
	// k with 1/(2^k−1) < r2 works whenever also r1 < 1/k.
	for k := 2; k <= 62; k++ {
		low := 1 / (math.Pow(2, float64(k)) - 1)
		high := 1 / float64(k)
		lo := math.Max(r1, low)
		hi := math.Min(r2, high)
		if !(lo < hi) {
			continue
		}
		x1, err := InverseAlpha1(RegimePolynomial, lo, k)
		if err != nil {
			continue
		}
		x2, err := InverseAlpha1(RegimePolynomial, hi, k)
		if err != nil {
			continue
		}
		if !(x1 < x2) {
			continue
		}
		frac, err := SimplestRationalIn(x1, x2)
		if err != nil {
			continue
		}
		if frac.B > 20 {
			// Δ = 2^B + 1 must stay a usable integer degree bound.
			continue
		}
		delta := int64(1)<<uint(frac.B) + 1
		d := int64(1)<<uint(frac.B) - int64(1)<<uint(frac.A)
		c, err := Alpha1Poly(frac.Float(), k)
		if err != nil {
			return PolyParams{}, err
		}
		return PolyParams{Delta: int(delta), D: int(d), K: k, X: frac, C: c}, nil
	}
	return PolyParams{}, fmt.Errorf("%w: no parameters found for (%v, %v)", ErrBadParam, r1, r2)
}

// LogStarParams is the outcome of the Theorem 6 parameter search: an LCL
// Π^{3.5}_{Δ,d,k} with node-averaged complexity between Ω((log* n)^C) and
// O((log* n)^{CUpper}) where CUpper <= C + ε.
type LogStarParams struct {
	Delta, D, K int
	X           Rational // target efficiency factor (exactly log(Δ−d−1)/log(Δ−1))
	XPrime      float64  // achieved upper-bound factor log(Δ−d+1)/log(Δ−1)
	C           float64  // lower-bound exponent α_1(x)
	CUpper      float64  // upper-bound exponent α_1(x′)
}

// FindLogStarParams implements Theorem 6's constructive step: given
// 0 < r1 < r2 < 1 and ε > 0, it returns (Δ, d, k) such that
// Π^{3.5}_{Δ,d,k} has node-averaged complexity between Ω((log* n)^c) and
// O((log* n)^{c+ε}) with r1 <= c <= r2. Lemma 62: for x = a/b, take
// Δ = 2^{cb} + 1, d = 2^{cb} − 2^{ca} with the multiplier c large enough
// that x′ − x = log(2^{ca}+2)/(cb·log 2) − a/b < δ.
func FindLogStarParams(r1, r2, eps float64) (LogStarParams, error) {
	if !(0 < r1 && r1 < r2 && r2 < 1) || eps <= 0 {
		return LogStarParams{}, fmt.Errorf("%w: need 0 < r1 < r2 < 1 and ε > 0, got (%v, %v, %v)",
			ErrBadParam, r1, r2, eps)
	}
	for k := 2; k <= 62; k++ {
		// α_1 for the log* regime ranges over [1/2^{k-1}, 1] (Lemma 61).
		low := 1 / math.Pow(2, float64(k-1))
		lo := math.Max(r1, low)
		hi := r2
		if !(lo < hi) {
			continue
		}
		x1, err := InverseAlpha1(RegimeLogStar, lo, k)
		if err != nil {
			continue
		}
		x2, err := InverseAlpha1(RegimeLogStar, hi, k)
		if err != nil {
			continue
		}
		if !(x1 < x2) {
			continue
		}
		frac, err := SimplestRationalIn(x1, x2)
		if err != nil {
			continue
		}
		c := frac.Float()
		target, err := Alpha1LogStar(c, k)
		if err != nil {
			continue
		}
		// ε′ = min(ε, (r2 − α_1(x))/2): keep the upper bound inside (…, r2].
		epsEff := math.Min(eps, (hi-target)/2)
		if epsEff <= 0 {
			epsEff = eps
		}
		// Grow the Lemma-62 multiplier until x′ − x is small enough that
		// α_1(x′) <= α_1(x) + ε′.
		for mult := int64(1); mult*frac.B <= 40; mult++ {
			a, b := mult*frac.A, mult*frac.B
			delta := int64(1)<<uint(b) + 1
			d := delta - 1 - int64(1)<<uint(a)
			if d < 1 || delta < d+3 {
				continue
			}
			xPrime, err := EfficiencyXPrime(int(delta), int(d))
			if err != nil {
				continue
			}
			cUpper, err := Alpha1LogStar(math.Min(xPrime, 1), k)
			if err != nil {
				continue
			}
			if cUpper <= target+epsEff {
				return LogStarParams{
					Delta:  int(delta),
					D:      int(d),
					K:      k,
					X:      frac,
					XPrime: xPrime,
					C:      target,
					CUpper: cUpper,
				}, nil
			}
		}
	}
	return LogStarParams{}, fmt.Errorf("%w: no parameters found for (%v, %v, ε=%v)",
		ErrBadParam, r1, r2, eps)
}
