// Package landscape implements the complexity-landscape mathematics of the
// paper: the optimal exponents α_1(x) for the weighted problems in the
// polynomial regime (Lemma 33) and the log* regime (Lemma 36), the
// efficiency factors x = log(Δ−d−1)/log(Δ−1) and x′ = log(Δ−d+1)/log(Δ−1),
// the parameter searches behind the density theorems (Theorem 1 via
// Lemma 58, Theorem 6 via Lemma 62), and the landscape tables of Figures 1
// and 2.
package landscape

import (
	"errors"
	"fmt"
	"math"
)

// Regime distinguishes the two density regions of the landscape.
type Regime uint8

// The two regimes in which the paper proves infinite density.
const (
	RegimePolynomial Regime = iota + 1 // node-averaged complexity Θ(n^c)
	RegimeLogStar                      // node-averaged complexity ~ (log* n)^c
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimePolynomial:
		return "polynomial"
	case RegimeLogStar:
		return "log*"
	default:
		return fmt.Sprintf("Regime(%d)", uint8(r))
	}
}

// ErrBadParam indicates invalid landscape parameters.
var ErrBadParam = errors.New("invalid landscape parameter")

// EfficiencyX returns x = log(Δ−d−1)/log(Δ−1), the weight-efficiency factor
// of Lemma 23 (lower bounds and the polynomial-regime upper bound).
func EfficiencyX(delta, d int) (float64, error) {
	if err := checkDeltaD(delta, d); err != nil {
		return 0, err
	}
	return math.Log(float64(delta-d-1)) / math.Log(float64(delta-1)), nil
}

// EfficiencyXPrime returns x′ = log(Δ−d+1)/log(Δ−1), the slightly worse
// efficiency factor achieved by the log*-regime upper bound (Theorem 5).
func EfficiencyXPrime(delta, d int) (float64, error) {
	if err := checkDeltaD(delta, d); err != nil {
		return 0, err
	}
	return math.Log(float64(delta-d+1)) / math.Log(float64(delta-1)), nil
}

func checkDeltaD(delta, d int) error {
	if d < 1 {
		return fmt.Errorf("%w: d = %d < 1", ErrBadParam, d)
	}
	if delta < d+3 {
		return fmt.Errorf("%w: Δ = %d < d+3 = %d", ErrBadParam, delta, d+3)
	}
	return nil
}

// Alpha1Poly returns α_1(x) = 1 / Σ_{j=0}^{k-1} (2−x)^j, the optimal
// polynomial-regime exponent (Lemma 33): Π^{2.5}_{Δ,d,k} has node-averaged
// complexity Θ(n^{α_1(x)}).
func Alpha1Poly(x float64, k int) (float64, error) {
	if err := checkXK(x, k); err != nil {
		return 0, err
	}
	sum := 0.0
	pow := 1.0
	for j := 0; j < k; j++ {
		sum += pow
		pow *= 2 - x
	}
	return 1 / sum, nil
}

// Alpha1LogStar returns α_1(x) = 1 / (1 + (1−x) Σ_{j=0}^{k-2} (2−x)^j), the
// optimal log*-regime exponent (Lemma 36): Π^{3.5}_{Δ,d,k} has node-averaged
// complexity between Ω((log* n)^{α_1(x)}) and O((log* n)^{α_1(x′)}).
func Alpha1LogStar(x float64, k int) (float64, error) {
	if err := checkXK(x, k); err != nil {
		return 0, err
	}
	sum := 0.0
	pow := 1.0
	for j := 0; j <= k-2; j++ {
		sum += pow
		pow *= 2 - x
	}
	return 1 / (1 + (1-x)*sum), nil
}

func checkXK(x float64, k int) error {
	if k < 1 {
		return fmt.Errorf("%w: k = %d < 1", ErrBadParam, k)
	}
	if x < 0 || x > 1 {
		return fmt.Errorf("%w: x = %v outside [0,1]", ErrBadParam, x)
	}
	return nil
}

// Alphas returns the optimal per-level exponents α_1..α_{k-1} of the
// optimisation problems in Sections 6.1/6.2: α_1 = Alpha1(x,k) (per regime)
// and α_i = (2−x)·α_{i−1} (Lemmas 33 and 36 share the recurrence).
func Alphas(regime Regime, x float64, k int) ([]float64, error) {
	var a1 float64
	var err error
	switch regime {
	case RegimePolynomial:
		a1, err = Alpha1Poly(x, k)
	case RegimeLogStar:
		a1, err = Alpha1LogStar(x, k)
	default:
		return nil, fmt.Errorf("%w: regime %v", ErrBadParam, regime)
	}
	if err != nil {
		return nil, err
	}
	out := make([]float64, k-1)
	cur := a1
	for i := 0; i < k-1; i++ {
		out[i] = cur
		cur *= 2 - x
	}
	return out, nil
}

// ExponentsPoly returns the k exponents B_1..B_k of the polynomial-regime
// optimisation problem for the given α vector:
//
//	B_i = (x−1)·Σ_{j<i} α_j + α_i      (i < k)
//	B_k = 1 + (x−2)·Σ_{j<k} α_j
//
// At the optimum (Alphas) all B_i are equal to α_1 (Lemma 33); tests verify
// this.
func ExponentsPoly(alphas []float64, x float64) []float64 {
	k := len(alphas) + 1
	out := make([]float64, k)
	prefix := 0.0
	for i := 1; i < k; i++ {
		out[i-1] = (x-1)*prefix + alphas[i-1]
		prefix += alphas[i-1]
	}
	out[k-1] = 1 + (x-2)*prefix
	return out
}

// ExponentsLogStar returns the k exponents of the log*-regime optimisation
// problem (Section 6.2):
//
//	B_i = (x−1)·Σ_{j<i} α_j + α_i      (i < k)
//	B_k = 1 + (x−1)·Σ_{j<k} α_j
func ExponentsLogStar(alphas []float64, x float64) []float64 {
	k := len(alphas) + 1
	out := make([]float64, k)
	prefix := 0.0
	for i := 1; i < k; i++ {
		out[i-1] = (x-1)*prefix + alphas[i-1]
		prefix += alphas[i-1]
	}
	out[k-1] = 1 + (x-1)*prefix
	return out
}

// InverseAlpha1 computes x = α_1^{-1}(target) for the given regime and k by
// bisection; α_1 is continuous and strictly increasing on [0,1]
// (Lemmas 57/61), so the inverse is well defined for targets in
// [α_1(0), α_1(1)] = [1/(2^k−1), 1/k].
func InverseAlpha1(regime Regime, target float64, k int) (float64, error) {
	f := func(x float64) float64 {
		var v float64
		switch regime {
		case RegimePolynomial:
			v, _ = Alpha1Poly(x, k)
		default:
			v, _ = Alpha1LogStar(x, k)
		}
		return v
	}
	lo, hi := 0.0, 1.0
	if target < f(lo)-1e-12 || target > f(hi)+1e-12 {
		return 0, fmt.Errorf("%w: target %v outside [%v, %v] for k=%d",
			ErrBadParam, target, f(lo), f(hi), k)
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// KForRange returns the smallest k with 1/(2^k−1) <= r1 (so that the α_1
// range of the k-family covers targets at or above r1, cf. Lemma 58 and
// Theorem 6).
func KForRange(r1 float64) (int, error) {
	if r1 <= 0 || r1 >= 1 {
		return 0, fmt.Errorf("%w: r1 = %v outside (0,1)", ErrBadParam, r1)
	}
	for k := 1; k <= 62; k++ {
		if 1/(math.Pow(2, float64(k))-1) <= r1 {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: r1 = %v too small", ErrBadParam, r1)
}
