package landscape

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEfficiencyFactors(t *testing.T) {
	// Δ=5, d=2: x = log2/log4 = 1/2.
	x, err := EfficiencyX(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x, 0.5, 1e-12) {
		t.Fatalf("x = %v, want 0.5", x)
	}
	// x' = log(Δ−d+1)/log(Δ−1) = log4/log4 = 1.
	xp, err := EfficiencyXPrime(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(xp, 1, 1e-12) {
		t.Fatalf("x' = %v, want 1", xp)
	}
}

func TestEfficiencyRejectsBadParams(t *testing.T) {
	if _, err := EfficiencyX(4, 2); err == nil { // Δ < d+3
		t.Error("Δ < d+3 accepted")
	}
	if _, err := EfficiencyX(5, 0); err == nil {
		t.Error("d = 0 accepted")
	}
}

func TestAlpha1PolyEndpoints(t *testing.T) {
	for k := 1; k <= 6; k++ {
		// α_1(0) = 1/(2^k − 1): the unweighted node-averaged complexity of
		// k-hierarchical 2½-coloring [BBK+23b].
		a0, err := Alpha1Poly(0, k)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(a0, 1/(math.Pow(2, float64(k))-1), 1e-12) {
			t.Fatalf("k=%d: α1(0) = %v", k, a0)
		}
		// α_1(1) = 1/k: the worst-case complexity exponent.
		a1, err := Alpha1Poly(1, k)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(a1, 1/float64(k), 1e-12) {
			t.Fatalf("k=%d: α1(1) = %v", k, a1)
		}
	}
}

func TestAlpha1LogStarEndpoints(t *testing.T) {
	for k := 2; k <= 6; k++ {
		a0, err := Alpha1LogStar(0, k)
		if err != nil {
			t.Fatal(err)
		}
		// α_1(0) = 1/(1 + Σ_{j=0}^{k-2} 2^j) = 1/2^{k-1}... the paper's
		// Lemma 61 states α_1(0) = 1/(2^k − 1)? Evaluate the formula
		// directly: 1 + 1·(2^{k-1}−1) = 2^{k-1}.
		want := 1 / math.Pow(2, float64(k-1))
		if !almost(a0, want, 1e-12) {
			t.Fatalf("k=%d: α1(0) = %v, want %v", k, a0, want)
		}
		a1, err := Alpha1LogStar(1, k)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(a1, 1, 1e-12) {
			t.Fatalf("k=%d: α1(1) = %v, want 1", k, a1)
		}
	}
}

func TestAlpha1Monotone(t *testing.T) {
	// Lemmas 57 and 61: α_1 is continuous and strictly increasing on [0,1].
	for k := 2; k <= 5; k++ {
		for _, f := range []func(float64, int) (float64, error){Alpha1Poly, Alpha1LogStar} {
			prev := -1.0
			for x := 0.0; x <= 1.0001; x += 0.01 {
				v, err := f(math.Min(x, 1), k)
				if err != nil {
					t.Fatal(err)
				}
				if v <= prev {
					t.Fatalf("k=%d: α1 not strictly increasing at x=%v", k, x)
				}
				prev = v
			}
		}
	}
}

func TestOptimalAlphasEqualizeExponents(t *testing.T) {
	// Lemma 33 / Lemma 36: at the optimum, B_1 = B_2 = ... = B_k = α_1.
	for _, k := range []int{2, 3, 4, 5} {
		for _, x := range []float64{0.1, 0.33, 0.5, 0.9} {
			aPoly, err := Alphas(RegimePolynomial, x, k)
			if err != nil {
				t.Fatal(err)
			}
			bPoly := ExponentsPoly(aPoly, x)
			for i, b := range bPoly {
				if !almost(b, aPoly[0], 1e-9) {
					t.Fatalf("poly k=%d x=%v: B_%d = %v != α1 = %v", k, x, i+1, b, aPoly[0])
				}
			}
			aLS, err := Alphas(RegimeLogStar, x, k)
			if err != nil {
				t.Fatal(err)
			}
			bLS := ExponentsLogStar(aLS, x)
			for i, b := range bLS {
				if !almost(b, aLS[0], 1e-9) {
					t.Fatalf("log* k=%d x=%v: B_%d = %v != α1 = %v", k, x, i+1, b, aLS[0])
				}
			}
		}
	}
}

func TestAlphasRecurrence(t *testing.T) {
	// α_i = (2−x) α_{i−1} (Equation (1)/(3)).
	alphas, err := Alphas(RegimePolynomial, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(alphas); i++ {
		if !almost(alphas[i], (2-0.4)*alphas[i-1], 1e-12) {
			t.Fatalf("recurrence broken at i=%d", i)
		}
	}
}

func TestInverseAlpha1RoundTrips(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, x := range []float64{0.05, 0.3, 0.7, 0.95} {
			for _, regime := range []Regime{RegimePolynomial, RegimeLogStar} {
				var v float64
				var err error
				if regime == RegimePolynomial {
					v, err = Alpha1Poly(x, k)
				} else {
					v, err = Alpha1LogStar(x, k)
				}
				if err != nil {
					t.Fatal(err)
				}
				back, err := InverseAlpha1(regime, v, k)
				if err != nil {
					t.Fatal(err)
				}
				if !almost(back, x, 1e-9) {
					t.Fatalf("%v k=%d: inverse(α1(%v)) = %v", regime, k, x, back)
				}
			}
		}
	}
}

func TestSimplestRational(t *testing.T) {
	cases := []struct {
		lo, hi float64
		want   Rational
	}{
		{0.4, 0.6, Rational{1, 2}},
		{0.3, 0.34, Rational{1, 3}},
		{0.65, 0.67, Rational{2, 3}},
		{0.19, 0.21, Rational{1, 5}},
	}
	for _, tc := range cases {
		got, err := SimplestRationalIn(tc.lo, tc.hi)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("SimplestRationalIn(%v,%v) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
	if _, err := SimplestRationalIn(0.5, 0.5); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestQuickSimplestRationalInInterval(t *testing.T) {
	f := func(a, b uint16) bool {
		lo := float64(a%1000)/1001 + 1e-6
		hi := lo + float64(b%100+1)/2000
		if hi >= 1 {
			hi = 0.9999
		}
		if lo >= hi {
			return true
		}
		r, err := SimplestRationalIn(lo, hi)
		if err != nil {
			return false
		}
		v := r.Float()
		return v > lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFindPolyParamsTheorem1(t *testing.T) {
	// Theorem 1: for any 0 < r1 < r2 <= 1/2 there are (Δ,d,k) with exponent
	// in [r1, r2].
	cases := [][2]float64{{0.1, 0.2}, {0.25, 0.3}, {0.4, 0.5}, {0.05, 0.08}, {0.33, 0.35}}
	for _, tc := range cases {
		p, err := FindPolyParams(tc[0], tc[1])
		if err != nil {
			t.Fatalf("FindPolyParams(%v, %v): %v", tc[0], tc[1], err)
		}
		if p.C < tc[0]-1e-9 || p.C > tc[1]+1e-9 {
			t.Fatalf("(%v,%v): exponent %v outside interval", tc[0], tc[1], p.C)
		}
		if p.Delta < p.D+3 {
			t.Fatalf("Δ=%d < d+3=%d", p.Delta, p.D+3)
		}
		// The rational x must be realized exactly: x = log(Δ−d−1)/log(Δ−1).
		x, err := EfficiencyX(p.Delta, p.D)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(x, p.X.Float(), 1e-12) {
			t.Fatalf("realized x=%v != chosen %v", x, p.X)
		}
		// And the exponent is α_1(x).
		c, err := Alpha1Poly(x, p.K)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(c, p.C, 1e-12) {
			t.Fatalf("C mismatch: %v vs %v", c, p.C)
		}
	}
}

func TestFindPolyParamsRejectsBadRange(t *testing.T) {
	bad := [][2]float64{{0, 0.2}, {0.3, 0.3}, {0.4, 0.6}, {-0.1, 0.2}}
	for _, tc := range bad {
		if _, err := FindPolyParams(tc[0], tc[1]); err == nil {
			t.Errorf("(%v,%v) accepted", tc[0], tc[1])
		}
	}
}

func TestFindLogStarParamsTheorem6(t *testing.T) {
	cases := []struct{ r1, r2, eps float64 }{
		{0.3, 0.5, 0.05},
		{0.5, 0.7, 0.1},
		{0.2, 0.4, 0.08},
	}
	for _, tc := range cases {
		p, err := FindLogStarParams(tc.r1, tc.r2, tc.eps)
		if err != nil {
			t.Fatalf("FindLogStarParams(%v, %v, %v): %v", tc.r1, tc.r2, tc.eps, err)
		}
		if p.C < tc.r1-1e-9 || p.C > tc.r2+1e-9 {
			t.Fatalf("c = %v outside [%v, %v]", p.C, tc.r1, tc.r2)
		}
		if p.CUpper > p.C+tc.eps+1e-9 {
			t.Fatalf("upper exponent %v > c+ε = %v", p.CUpper, p.C+tc.eps)
		}
		if p.CUpper < p.C {
			t.Fatalf("upper exponent %v below lower %v", p.CUpper, p.C)
		}
		if p.Delta < p.D+3 || p.D < 1 {
			t.Fatalf("invalid (Δ=%d, d=%d)", p.Delta, p.D)
		}
	}
}

func TestKForRange(t *testing.T) {
	k, err := KForRange(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 { // 1/(2^2−1) = 1/3 > 0.3 → k=3? 1/3 ≈ 0.333 > 0.3, so k must be 3.
		if k != 3 {
			t.Fatalf("KForRange(0.3) = %d", k)
		}
	}
	if _, err := KForRange(0); err == nil {
		t.Error("r1=0 accepted")
	}
}

func TestFigures(t *testing.T) {
	f1, f2 := Figure1(), Figure2()
	if len(f1) < 5 || len(f2) < 7 {
		t.Fatal("figures too small")
	}
	newCount := 0
	for _, e := range f2 {
		if e.New {
			newCount++
		}
	}
	if newCount < 4 {
		t.Fatalf("Figure 2 marks only %d new entries, want >= 4 (Thms 1, 6, 7, Cor 60, Lemma 69)", newCount)
	}
}

func TestSampleDensityPoints(t *testing.T) {
	pts, err := SampleDensityPoints(RegimePolynomial, 0.1, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	prev := 0.0
	for _, p := range pts {
		if p.Exponent <= prev {
			t.Fatalf("density points not increasing: %v", pts)
		}
		prev = p.Exponent
	}
	ls, err := SampleDensityPoints(RegimeLogStar, 0.3, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 3 {
		t.Fatalf("got %d log* points", len(ls))
	}
}
