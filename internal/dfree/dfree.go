// Package dfree implements the d-free weight problem of Section 7 and the
// O(log n)-round Algorithm 𝒜 that solves it.
//
// The d-free weight problem is an LCL on trees with input labels A
// ("adjacent" — in the weighted problems these are the weight nodes adjacent
// to an active node) and W ("weight"), and output labels Decline, Connect,
// Copy, subject to:
//
//  1. An A-node that outputs Connect has ≥ 1 neighbor outputting Connect; a
//     W-node that outputs Connect has ≥ 2 neighbors outputting Connect.
//  2. A node that outputs Copy has ≤ d neighbors that output Decline.
//  3. Every A-node outputs Connect or Copy.
//
// Algorithm 𝒜 (worst case O(log n)): every node collects its
// (3⌈log_{d+1} n⌉+3)-hop ball; nodes on a ≤ (2⌈log_{d+1} n⌉+2)-hop path
// between two A-nodes output Connect; around every remaining A-node v, the
// greedy assignment 𝒜* marks a sparse subtree of Copy nodes (each Copy node
// declines its min(d, ·) heaviest children), everything else declines.
// Lemma 40: the Copy set around v has size ≤ 6·|Û|^x with
// x = log(Δ−1−d)/log(Δ−1).
package dfree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Input is a node input label of the d-free weight problem.
type Input uint8

// Input labels.
const (
	InputW Input = iota // weight node
	InputA              // adjacent node (next to an active node)
)

// String names the input.
func (i Input) String() string {
	if i == InputA {
		return "A"
	}
	return "W"
}

// Out is an output label of the d-free weight problem.
type Out uint8

// Output labels.
const (
	OutNone Out = iota
	OutDecline
	OutConnect
	OutCopy
)

var outNames = [...]string{"none", "Decline", "Connect", "Copy"}

// String names the output.
func (o Out) String() string {
	if int(o) < len(outNames) {
		return outNames[o]
	}
	return fmt.Sprintf("Out(%d)", uint8(o))
}

// ErrInvalid is wrapped by verifier failures.
var ErrInvalid = errors.New("d-free weight output invalid")

// Solution is the outcome of Algorithm 𝒜 on one tree.
type Solution struct {
	Out []Out
	// Rounds is the uniform worst-case round count 3⌈log_{d+1} n⌉ + 3 every
	// node spends collecting its ball before deciding.
	Rounds int
	// CopySets maps each A-node that output Copy to its maximal connected
	// component of Copy nodes (the component contains exactly one A-node;
	// Observation 39).
	CopySets map[int][]int
}

// Radius returns ⌈log_{d+1} n⌉, the ball radius parameter of Algorithm 𝒜
// (computed by integer arithmetic to avoid float rounding at exact powers).
func Radius(n, d int) int {
	if n <= 1 {
		return 1
	}
	base := d + 1
	r, pow := 0, 1
	for pow < n {
		// pow*base cannot overflow for the graph sizes int supports.
		pow *= base
		r++
	}
	return r
}

// Solve runs Algorithm 𝒜 on tree t with the given inputs. The parameter d
// must satisfy 1 <= d < Δ. The computation is performed centrally but uses
// only radius-limited information per node, mirroring the ball-collection
// algorithm; every node is charged Rounds = 3⌈log_{d+1} n⌉+3.
func Solve(t *graph.Tree, inputs []Input, d int) (*Solution, error) {
	n := t.N()
	if len(inputs) != n {
		return nil, fmt.Errorf("dfree: %d inputs for %d nodes", len(inputs), n)
	}
	if d < 1 {
		return nil, fmt.Errorf("dfree: d = %d < 1", d)
	}
	r := Radius(n, d)
	sol := &Solution{
		Out:      make([]Out, n),
		Rounds:   3*r + 3,
		CopySets: make(map[int][]int),
	}

	// Step 1: Connect all nodes on a path of length <= 2r+2 between two
	// A-nodes.
	isA := make([]bool, n)
	for v := range isA {
		isA[v] = inputs[v] == InputA
	}
	for v, c := range ShortPathConnect(t, isA, 2*r+2) {
		if c {
			sol.Out[v] = OutConnect
		}
	}

	// Step 2: around each remaining A-node, run the greedy 𝒜* on its
	// radius-(r+1) ball.
	for v := 0; v < n; v++ {
		if inputs[v] != InputA || sol.Out[v] == OutConnect {
			continue
		}
		copySet := greedyCopySet(t, v, r, d)
		for _, u := range copySet {
			if sol.Out[u] == OutConnect {
				// Cannot happen: Connect regions and remaining A-balls are
				// disjoint (any node on a short A–A path makes both A-nodes
				// Connect).
				return nil, fmt.Errorf("dfree: node %d both Connect and Copy", u)
			}
			sol.Out[u] = OutCopy
		}
		sol.CopySets[v] = copySet
	}

	// Step 3: everything else declines.
	for v := 0; v < n; v++ {
		if sol.Out[v] == OutNone {
			sol.Out[v] = OutDecline
		}
	}
	return sol, nil
}

// ShortPathConnect reports, for every node, whether it lies on a path of
// length at most limit between two distinct A-marked nodes. In a tree, u
// lies on the a–b path iff dist(a,u) + dist(u,b) = dist(a,b), so it suffices
// to know, for every node, the nearest A-node in each neighbor direction
// (and itself). This is the Connect rule of Algorithm 𝒜 and of the Section
// 8.2 preprocessing (there with limit 5).
func ShortPathConnect(t *graph.Tree, isA []bool, limit int) []bool {
	n := t.N()
	out := make([]bool, n)
	const inf = math.MaxInt32
	// down[v] = min distance from v to an A-node within the subtree of v
	// (rooted at 0); up[v] = min distance via the parent direction.
	parent := make([]int, n)
	order := bfsOrder(t, 0, parent)
	down := make([]int, n)
	up := make([]int, n)
	for v := range down {
		down[v] = inf
		up[v] = inf
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if isA[v] {
			down[v] = 0
		}
		if p := parent[v]; p >= 0 && down[v]+1 < down[p] {
			down[p] = down[v] + 1
		}
	}
	for _, v := range order {
		// Children of v get up = 1 + min(up[v], self-A, best sibling down).
		type cand struct{ dist, via int }
		best := []cand{{inf, -1}, {inf, -1}} // two smallest with distinct via
		push := func(dist, via int) {
			if dist < best[0].dist {
				best[1] = best[0]
				best[0] = cand{dist, via}
			} else if dist < best[1].dist && via != best[0].via {
				best[1] = cand{dist, via}
			}
		}
		if isA[v] {
			push(0, v)
		}
		if up[v] < inf {
			push(up[v], -2)
		}
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if parent[u] == v && down[u] < inf {
				push(down[u]+1, u)
			}
		}
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if parent[u] != v {
				continue
			}
			b := best[0]
			if b.via == u {
				b = best[1]
			}
			if b.dist < inf {
				up[u] = b.dist + 1
			}
		}
	}
	// Node v is on a short A–A path iff two distinct directions (a direction
	// is "self", "parent side", or a child subtree) both reach A-nodes with
	// total distance <= limit.
	for v := 0; v < n; v++ {
		var dists []int
		if isA[v] {
			dists = append(dists, 0)
		}
		if up[v] < inf {
			dists = append(dists, up[v])
		}
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if parent[u] == v && down[u] < inf {
				dists = append(dists, down[u]+1)
			}
		}
		if len(dists) < 2 {
			continue
		}
		sort.Ints(dists)
		if dists[0]+dists[1] <= limit {
			out[v] = true
		}
	}
	return out
}

func bfsOrder(t *graph.Tree, root int, parent []int) []int {
	n := t.N()
	for i := range parent {
		parent[i] = -1
	}
	order := make([]int, 0, n)
	seen := make([]bool, n)
	seen[root] = true
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return order
}

// greedyCopySet runs 𝒜* (proof of Lemma 37) on the radius-(r+1) ball around
// root: root is Copy; every Copy node declines its min(budget, #children)
// heaviest children (whole subtrees), where budget is d for the root and d
// (of at most Δ−1 children) below; the remaining children copy. The returned
// set is the Copy component containing root, always within radius r.
func greedyCopySet(t *graph.Tree, root, r, d int) []int {
	// Collect the ball of radius r+1 with parent pointers and subtree sizes
	// truncated at the ball boundary.
	type nodeInfo struct {
		depth    int
		parent   int
		children []int
		size     int
	}
	info := map[int]*nodeInfo{root: {depth: 0, parent: -1}}
	order := []int{root}
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		iv := info[v]
		if iv.depth == r+1 {
			continue
		}
		for _, w := range t.NeighborsRaw(v) {
			u := int(w)
			if u == iv.parent {
				continue
			}
			if _, ok := info[u]; ok {
				continue
			}
			info[u] = &nodeInfo{depth: iv.depth + 1, parent: v}
			iv.children = append(iv.children, u)
			order = append(order, u)
			queue = append(queue, u)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		iv := info[v]
		iv.size = 1
		for _, c := range iv.children {
			iv.size += info[c].size
		}
	}
	// Greedy descent.
	copySet := []int{root}
	frontier := []int{root}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		iv := info[v]
		if iv.depth >= r {
			// Children would be at depth r+1 ∈ Û\U and must decline; the
			// subtree-size argument of Lemma 37 guarantees Copy never needs
			// to extend this deep, so simply stop.
			continue
		}
		kids := append([]int(nil), iv.children...)
		sort.Slice(kids, func(a, b int) bool { return info[kids[a]].size > info[kids[b]].size })
		declines := d
		if declines > len(kids) {
			declines = len(kids)
		}
		for _, c := range kids[declines:] {
			copySet = append(copySet, c)
			frontier = append(frontier, c)
		}
	}
	return copySet
}

// Verify checks properties (1)-(3) of the d-free weight problem.
func Verify(t *graph.Tree, inputs []Input, d int, out []Out) error {
	n := t.N()
	if len(inputs) != n || len(out) != n {
		return fmt.Errorf("dfree: length mismatch (n=%d)", n)
	}
	for v := 0; v < n; v++ {
		switch out[v] {
		case OutDecline, OutConnect, OutCopy:
		default:
			return fmt.Errorf("%w: node %d has output %v", ErrInvalid, v, out[v])
		}
		if inputs[v] == InputA && out[v] == OutDecline {
			return fmt.Errorf("%w: A-node %d declines (property 3)", ErrInvalid, v)
		}
		if out[v] == OutConnect {
			connects := 0
			for _, w := range t.NeighborsRaw(v) {
				if out[w] == OutConnect {
					connects++
				}
			}
			need := 2
			if inputs[v] == InputA {
				need = 1
			}
			if connects < need {
				return fmt.Errorf("%w: node %d (input %v) Connect with %d Connect neighbors, need %d (property 1)",
					ErrInvalid, v, inputs[v], connects, need)
			}
		}
		if out[v] == OutCopy {
			declines := 0
			for _, w := range t.NeighborsRaw(v) {
				if out[w] == OutDecline {
					declines++
				}
			}
			if declines > d {
				return fmt.Errorf("%w: Copy node %d has %d Decline neighbors > d=%d (property 2)",
					ErrInvalid, v, declines, d)
			}
		}
	}
	return nil
}
