package dfree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// buildWeightTree returns a balanced Δ-regular weight tree in the Lemma 23
// shape: node 0 is the A-node (the weight node that sits next to the active
// node) and is the root of the balanced tree, with Δ−1 children (its Δ-th
// port would lead to the active node, which is not part of the d-free
// instance).
func buildWeightTree(t *testing.T, delta, size int) (*graph.Tree, []Input) {
	t.Helper()
	tr, err := graph.BuildBalanced(delta, size)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, size)
	inputs[0] = InputA
	return tr, inputs
}

func TestSolveSingleANode(t *testing.T) {
	tr, inputs := buildWeightTree(t, 5, 200)
	sol, err := Solve(tr, inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tr, inputs, 2, sol.Out); err != nil {
		t.Fatal(err)
	}
	if sol.Out[0] != OutCopy {
		t.Fatalf("A-node output %v, want Copy", sol.Out[0])
	}
	if len(sol.CopySets) != 1 {
		t.Fatalf("%d copy sets, want 1", len(sol.CopySets))
	}
}

func TestSolveRoundsAreLogarithmic(t *testing.T) {
	for _, n := range []int{10, 100, 10000} {
		tr, inputs := buildWeightTree(t, 4, n)
		sol, err := Solve(tr, inputs, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := 3*Radius(n+1, 2) + 3
		if sol.Rounds != want {
			t.Fatalf("n=%d: rounds=%d, want %d", n, sol.Rounds, want)
		}
		if sol.Rounds > 3*int(math.Ceil(math.Log2(float64(n+1))))+3 {
			t.Fatalf("n=%d: rounds=%d not O(log n)", n, sol.Rounds)
		}
	}
}

func TestLemma40CopySetBound(t *testing.T) {
	// |Copy| <= 6 * |ball|^x with x = log(Δ−1−d)/log(Δ−1). We verify the
	// bound against the whole component size (>= |Û|, so the bound is only
	// harder to meet on the exponent side; we allow the constant 6 plus the
	// +1 root slack).
	cases := []struct{ delta, d, size int }{
		{5, 2, 500}, {5, 2, 5000}, {6, 2, 2000}, {7, 3, 3000}, {9, 5, 4000},
	}
	for _, tc := range cases {
		tr, inputs := buildWeightTree(t, tc.delta, tc.size)
		sol, err := Solve(tr, inputs, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(tr, inputs, tc.d, sol.Out); err != nil {
			t.Fatal(err)
		}
		copies := 0
		for _, o := range sol.Out {
			if o == OutCopy {
				copies++
			}
		}
		x := math.Log(float64(tc.delta-1-tc.d)) / math.Log(float64(tc.delta-1))
		bound := 6*math.Pow(float64(tr.N()), x) + 1
		if float64(copies) > bound {
			t.Fatalf("Δ=%d d=%d n=%d: %d copies > bound %.1f (x=%.3f)",
				tc.delta, tc.d, tr.N(), copies, bound, x)
		}
		if copies < 1 {
			t.Fatal("no copies at all")
		}
	}
}

func TestCopySetGrowsWithWeight(t *testing.T) {
	// Lemma 23 lower-bound shape: more weight forces more copies.
	var prev int
	for _, size := range []int{100, 1000, 10000} {
		tr, inputs := buildWeightTree(t, 5, size)
		sol, err := Solve(tr, inputs, 2)
		if err != nil {
			t.Fatal(err)
		}
		copies := 0
		for _, o := range sol.Out {
			if o == OutCopy {
				copies++
			}
		}
		if copies <= prev {
			t.Fatalf("copy count not growing: size=%d copies=%d prev=%d", size, copies, prev)
		}
		prev = copies
	}
}

func TestTwoCloseANodesConnect(t *testing.T) {
	// Path with A-nodes at both ends, short enough to Connect:
	// r = Radius(7, 2) = 2, so the Connect limit is 2r+2 = 6 = path length.
	n := 7
	tr, err := graph.BuildPath(n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, n)
	inputs[0] = InputA
	inputs[n-1] = InputA
	sol, err := Solve(tr, inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tr, inputs, 2, sol.Out); err != nil {
		t.Fatal(err)
	}
	for v, o := range sol.Out {
		if o != OutConnect {
			t.Fatalf("node %d output %v, want Connect (path length %d <= 2r+2)", v, o, n-1)
		}
	}
}

func TestTwoFarANodesDontConnect(t *testing.T) {
	// Path long enough that the A-endpoints are beyond the Connect limit.
	n := 4096
	tr, err := graph.BuildPath(n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, n)
	inputs[0] = InputA
	inputs[n-1] = InputA
	d := 2
	sol, err := Solve(tr, inputs, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tr, inputs, d, sol.Out); err != nil {
		t.Fatal(err)
	}
	if sol.Out[0] != OutCopy || sol.Out[n-1] != OutCopy {
		t.Fatalf("far A-nodes output (%v, %v), want Copy", sol.Out[0], sol.Out[n-1])
	}
	if len(sol.CopySets) != 2 {
		t.Fatalf("%d copy sets, want 2", len(sol.CopySets))
	}
	// Observation 39: the two Copy components are disjoint and separated.
	inSet := make(map[int]int)
	for root, set := range sol.CopySets {
		for _, v := range set {
			if other, ok := inSet[v]; ok && other != root {
				t.Fatalf("node %d in two copy sets", v)
			}
			inSet[v] = root
		}
	}
}

func TestObservation39OneANodePerCopyComponent(t *testing.T) {
	// Random trees with several A-nodes.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(400)
		b := graph.NewBuilder(n)
		b.AddNode()
		deg := make([]int, n)
		for v := 1; v < n; v++ {
			b.AddNode()
			for {
				u := rng.Intn(v)
				if deg[u] < 5 {
					if err := b.AddEdge(v, u); err != nil {
						t.Fatal(err)
					}
					deg[u]++
					deg[v]++
					break
				}
			}
		}
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]Input, n)
		for i := 0; i < 4; i++ {
			inputs[rng.Intn(n)] = InputA
		}
		d := 2 + rng.Intn(3)
		sol, err := Solve(tr, inputs, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(tr, inputs, d, sol.Out); err != nil {
			t.Fatalf("trial %d (d=%d): %v", trial, d, err)
		}
		// Each maximal Copy component contains exactly one A-node.
		mask := make([]bool, n)
		for v := range mask {
			mask[v] = sol.Out[v] == OutCopy
		}
		for _, comp := range graph.InducedComponents(tr, mask) {
			aCount := 0
			for _, v := range comp.Nodes {
				if inputs[v] == InputA {
					aCount++
				}
			}
			if aCount != 1 {
				t.Fatalf("trial %d: copy component with %d A-nodes", trial, aCount)
			}
		}
	}
}

func TestVerifyRejectsBrokenOutputs(t *testing.T) {
	tr, inputs := buildWeightTree(t, 5, 50)
	sol, err := Solve(tr, inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A-node declining violates property 3.
	out := append([]Out(nil), sol.Out...)
	out[0] = OutDecline
	if Verify(tr, inputs, 2, out) == nil {
		t.Error("declining A-node accepted")
	}
	// Lone Connect violates property 1.
	out = append([]Out(nil), sol.Out...)
	out[len(out)-1] = OutConnect
	if Verify(tr, inputs, 2, out) == nil {
		t.Error("lone Connect accepted")
	}
	// Copy surrounded by > d declines violates property 2: the root of the
	// Δ=5 tree has 4 > d = 2 children; declining them all breaks its Copy.
	out = append([]Out(nil), sol.Out...)
	for _, w := range tr.Neighbors(0) {
		out[w] = OutDecline
	}
	out[0] = OutCopy
	if Verify(tr, inputs, 2, out) == nil {
		t.Error("over-declined Copy accepted")
	}
}

func TestRadius(t *testing.T) {
	if Radius(1, 2) != 1 {
		t.Fatal("Radius(1) should be 1")
	}
	if r := Radius(27, 2); r != 3 {
		t.Fatalf("Radius(27, d=2) = %d, want 3 (log_3 27)", r)
	}
	if r := Radius(1000, 1); r != 10 {
		t.Fatalf("Radius(1000, d=1) = %d, want 10 (log_2 1000)", r)
	}
}

func TestSolveRejectsBadArgs(t *testing.T) {
	tr, err := graph.BuildPath(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(tr, []Input{InputA}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Solve(tr, make([]Input, 3), 0); err == nil {
		t.Error("d=0 accepted")
	}
}
