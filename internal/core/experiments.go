// Package core is the legacy library facade. The experiment drivers that
// regenerate every table and figure of the paper moved to the registry
// package internal/exp (where they are also discoverable via
// exp.Lookup/exp.List and runnable with contexts, presets, and parallel
// simulation); this package keeps the original context-free signatures so
// downstream callers of repro.* and core.* keep working unchanged.
package core

import (
	"context"

	"repro/internal/exp"
	"repro/internal/measure"
)

// ExpResult is the outcome of one scaling experiment (an alias of the
// registry's sweep result, so the two APIs interoperate).
type ExpResult = exp.SweepResult

// Hierarchical35 runs experiment E-T11 (Theorem 11); see exp.Hierarchical35.
func Hierarchical35(k int, scales []int, seed uint64) (*ExpResult, error) {
	return exp.Hierarchical35(context.Background(), k, scales, seed)
}

// Weighted25 runs experiment E-T2T3 (Theorems 2-3); see exp.Weighted25.
func Weighted25(delta, d, k int, sizes []int, seed uint64) (*ExpResult, error) {
	return exp.Weighted25(context.Background(), delta, d, k, sizes, seed)
}

// Weighted35 runs experiment E-T4T5 (Theorems 4-5); see exp.Weighted35.
func Weighted35(delta, d, k int, scales []int, weightFactor int, seed uint64) (*ExpResult, error) {
	return exp.Weighted35(context.Background(), delta, d, k, scales, weightFactor, seed)
}

// WeightAugmented runs experiment E-L68 (Lemmas 68-69); see
// exp.WeightAugmented.
func WeightAugmented(k, delta int, sizes []int, seed uint64) (*ExpResult, error) {
	return exp.WeightAugmented(context.Background(), k, delta, sizes, seed)
}

// TwoColoringGap runs experiment E-C60 (Corollary 60) sequentially; see
// exp.TwoColoringGap for the context- and parallelism-aware form.
func TwoColoringGap(sizes []int, seed uint64) (*ExpResult, error) {
	return exp.TwoColoringGap(context.Background(), sizes, seed, 1)
}

// CopyFraction runs experiment E-L40 (Lemma 40); see exp.CopyFraction.
func CopyFraction(delta, d int, sizes []int) (*ExpResult, error) {
	return exp.CopyFraction(context.Background(), delta, d, sizes)
}

// DensityPoly runs experiment E-T1 (Theorem 1); see exp.DensityPoly.
func DensityPoly(intervals [][2]float64) (measure.Table, error) {
	return exp.DensityPoly(context.Background(), intervals)
}

// DensityLogStar runs experiment E-T6 (Theorem 6); see exp.DensityLogStar.
func DensityLogStar(intervals [][2]float64, eps float64) (measure.Table, error) {
	return exp.DensityLogStar(context.Background(), intervals, eps)
}

// PathLCLTable runs experiment E-T7; see exp.PathLCLTable.
func PathLCLTable() (measure.Table, error) {
	return exp.PathLCLTable()
}

// LandscapeFigures renders Figures 1 and 2 as tables; see
// exp.LandscapeFigures.
func LandscapeFigures() (measure.Table, measure.Table) {
	return exp.LandscapeFigures()
}
