package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/measure"
	"repro/internal/sim"
)

// SurvivorCounts runs experiment E-GEN (Lemma 13): after phase i of the
// generic algorithm with parameter γ_i, at most O(n'/γ_i) nodes of level
// > i remain undecided. The driver runs the k=2 generic 3½ algorithm on the
// lower-bound graph for a range of γ values and reports the survivor count
// next to the charging bound from the lemma's proof (each surviving node
// accounts for γ/2 terminated level-1 nodes, so survivors <= c·n/γ).
func SurvivorCounts(lengths []int, gammas []int, seed uint64) (measure.Table, error) {
	tb := measure.Table{
		Title:  "E-GEN: Lemma 13 survivor counts after phase 1 (k=2, 3½)",
		Header: []string{"γ1", "n", "survivors", "bound c·n/γ (c=8)"},
	}
	h, err := graph.BuildHierarchical(lengths)
	if err != nil {
		return tb, err
	}
	levels := graph.ComputeLevels(h.Tree, 2)
	ids := sim.DefaultIDs(h.Tree.N(), seed)
	for _, gamma := range gammas {
		sched, err := hierarchy.NewSchedule(hierarchy.Params{
			Problem: hierarchy.Problem{K: 2, Variant: hierarchy.Coloring35},
			Gammas:  []int{gamma},
		})
		if err != nil {
			return tb, err
		}
		ex, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids)
		if err != nil {
			return tb, err
		}
		survivors := 0
		for v := range ex.Rounds {
			if ex.Rounds[v] >= sched.Start(2) {
				survivors++
			}
		}
		bound := 8 * h.Tree.N() / gamma
		if survivors > bound {
			return tb, fmt.Errorf("core: Lemma 13 violated: %d survivors > %d at γ=%d",
				survivors, bound, gamma)
		}
		tb.AddRow(gamma, h.Tree.N(), survivors, bound)
	}
	return tb, nil
}
