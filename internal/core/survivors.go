package core

import (
	"context"

	"repro/internal/exp"
	"repro/internal/measure"
)

// SurvivorCounts runs experiment E-GEN (Lemma 13); see exp.SurvivorCounts.
func SurvivorCounts(lengths []int, gammas []int, seed uint64) (measure.Table, error) {
	return exp.SurvivorCounts(context.Background(), lengths, gammas, seed)
}
