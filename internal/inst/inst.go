// Package inst is the instance provider: a keyed, size-bounded,
// singleflight-guarded cache over the paper's instance constructions.
//
// The lower-bound instances behind the paper's sweeps (the Definition-18
// hierarchical graphs, balanced Δ-regular weight trees, and plain paths) are
// pure functions of their construction parameters, and graph.Tree is
// immutable, so a tree built once can be shared by every sweep point, every
// preset, and every concurrently running experiment that asks for the same
// parameters. A Cache keys each construction by (kind, parameters), builds on
// first request, and serves shared references afterwards; concurrent first
// requests for the same key are coalesced so each instance is built exactly
// once. Entries are evicted least-recently-used once the total cached node
// count exceeds the bound.
//
// Beyond the bare trees, the cache holds keyed *composite* entries: the
// Definition-25 weighted instances (tree + Active/Weight inputs,
// weighted.BuildInstance) and the Section-10 weight-augmented instances
// (labeling.BuildAugInstance). Composites are built around a hierarchical
// core requested through the same cache, so every composite sharing a
// path-length vector shares one core tree; the composite entry itself is
// accounted by its full node count in the same LRU.
//
// Callers must treat returned values as read-only: trees, input slices, and
// the Hierarchical metadata around them are shared across goroutines. That
// read-only sharing is also what the sharded simulation backend relies on:
// every shard of a sharded run steps its node range of the same cached tree,
// so sharding adds no instance builds and no extra cache occupancy.
package inst

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/labeling"
	"repro/internal/weighted"
)

// DefaultMaxNodes bounds the default cache at ~33.5M cached nodes: large
// enough that one full weighted standard preset stays resident (the
// weighted25-d5k3 standard sweep totals ~22M composite nodes plus ~7M of
// shared hierarchical cores — its warm repeat must perform zero builds)
// while bounding the cache at roughly a gigabyte and a half.
const DefaultMaxNodes = 1 << 25

// Kind names a cached construction family.
type Kind string

// The cached construction kinds: one per graph.Build* entry point used by
// the experiment drivers, plus the composite weighted/weight-augmented
// instances of Definitions 25 and 67.
const (
	KindPath         Kind = "path"
	KindBalanced     Kind = "balanced"
	KindHierarchical Kind = "hierarchical"
	KindWeighted     Kind = "weighted"
	KindAug          Kind = "weightaug"
	KindGW           Kind = "galtonwatson"
	KindLadder       Kind = "ladder"
)

// Kinds lists every construction family in a stable display order.
func Kinds() []Kind {
	return []Kind{KindPath, KindBalanced, KindHierarchical, KindWeighted, KindAug, KindGW, KindLadder}
}

// Key identifies one construction: the kind plus its parameters. Keys are
// comparable and printable (they name the persisted-instance slot in logs,
// counters, and task metadata).
type Key struct {
	Kind Kind
	// A and B are the scalar parameters: Path{n}, Balanced{delta, size};
	// the composite kinds use them for Δ and d.
	A, B int
	// Lengths is the canonical "ell_1,...,ell_k" encoding of a hierarchical
	// construction's path-length vector; empty for scalar kinds.
	Lengths string
	// Variant, K, and Budget parameterize the composite kinds: the problem
	// variant (2½/3½; zero for the weight-augmented problem), the hierarchy
	// depth, and the per-level weight budget.
	Variant uint8
	K       int
	Budget  int
	// Seed identifies one sample of a seeded random family (the
	// galtonwatson/ladder kinds); zero for deterministic constructions.
	// Sampled trees are pure functions of (parameters, seed), so the key
	// still fully determines the instance.
	Seed uint64
}

func (k Key) String() string {
	switch k.Kind {
	case KindPath:
		return fmt.Sprintf("path(%d)", k.A)
	case KindBalanced:
		return fmt.Sprintf("balanced(%d,%d)", k.A, k.B)
	case KindHierarchical:
		return fmt.Sprintf("hierarchical(%s)", k.Lengths)
	case KindWeighted:
		return fmt.Sprintf("weighted(%s,Δ=%d,d=%d,k=%d,ℓ=%s,w=%d)",
			hierarchy.Variant(k.Variant), k.A, k.B, k.K, k.Lengths, k.Budget)
	case KindAug:
		return fmt.Sprintf("weightaug(Δ=%d,k=%d,ℓ=%s,w=%d)", k.A, k.K, k.Lengths, k.Budget)
	case KindGW:
		return fmt.Sprintf("galtonwatson(%d,c=%d,seed=%d)", k.A, k.B, k.Seed)
	case KindLadder:
		return fmt.Sprintf("ladder(%d,seed=%d)", k.A, k.Seed)
	}
	return fmt.Sprintf("%s(%d,%d,%s)", k.Kind, k.A, k.B, k.Lengths)
}

// Core returns the key of the hierarchical core the instance is built
// around: the composite weighted/weight-augmented kinds share a
// KindHierarchical core tree (they request it through the same cache — see
// Weighted and Aug), so their core key names the entry concurrent composites
// can reuse. Every other kind is its own core. Schedulers use the core key
// as a task-affinity group: tasks whose instances share a core are routed to
// the same worker process so the core is built once per process.
func (k Key) Core() Key {
	switch k.Kind {
	case KindWeighted, KindAug:
		return Key{Kind: KindHierarchical, Lengths: k.Lengths}
	}
	return k
}

// PathKey is the cache key for graph.BuildPath(n).
func PathKey(n int) Key { return Key{Kind: KindPath, A: n} }

// BalancedKey is the cache key for graph.BuildBalanced(delta, size).
func BalancedKey(delta, size int) Key { return Key{Kind: KindBalanced, A: delta, B: size} }

// HierarchicalKey is the cache key for graph.BuildHierarchical(lengths).
func HierarchicalKey(lengths []int) Key {
	return Key{Kind: KindHierarchical, Lengths: encodeLengths(lengths)}
}

// WeightedKey is the cache key for weighted.BuildInstance(p, lengths,
// budget): the full problem parameters (variant, Δ, d, k), the core's
// path-length vector, and the per-level weight budget.
func WeightedKey(p weighted.Problem, lengths []int, budget int) Key {
	return Key{
		Kind:    KindWeighted,
		A:       p.Delta,
		B:       p.D,
		K:       p.K,
		Variant: uint8(p.Variant),
		Lengths: encodeLengths(lengths),
		Budget:  budget,
	}
}

// AugKey is the cache key for labeling.BuildAugInstance(k, delta, lengths,
// budget).
func AugKey(k, delta int, lengths []int, budget int) Key {
	return Key{
		Kind:    KindAug,
		A:       delta,
		K:       k,
		Lengths: encodeLengths(lengths),
		Budget:  budget,
	}
}

// GWKey is the cache key for graph.BuildGaltonWatson(n, maxChildren, seed).
func GWKey(n, maxChildren int, seed uint64) Key {
	return Key{Kind: KindGW, A: n, B: maxChildren, Seed: seed}
}

// LadderKey is the cache key for graph.BuildLadder(n, seed).
func LadderKey(n int, seed uint64) Key {
	return Key{Kind: KindLadder, A: n, Seed: seed}
}

func encodeLengths(lengths []int) string {
	var b strings.Builder
	for i, l := range lengths {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(l))
	}
	return b.String()
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts requests served from a cached entry.
	Hits uint64 `json:"hits"`
	// Misses counts requests that found no entry and triggered (or joined) a
	// build.
	Misses uint64 `json:"misses"`
	// Coalesced counts misses that joined another goroutine's in-flight
	// build instead of building themselves (singleflight sharing).
	Coalesced uint64 `json:"coalesced"`
	// Builds counts actual build invocations, successful or failed
	// (failed builds leave no entry). Misses == Builds + Coalesced.
	Builds uint64 `json:"builds"`
	// Evictions counts entries dropped by the LRU size bound.
	Evictions uint64 `json:"evictions"`
	// BuildTime is the cumulative wall-clock time spent inside the builders.
	BuildTime time.Duration `json:"build_time_ns"`
	// Entries and Nodes are the current cache occupancy.
	Entries int   `json:"entries"`
	Nodes   int64 `json:"nodes"`
	// Kinds breaks the counters down by construction family — in
	// particular it separates the composite weighted/weight-augmented
	// entries from the bare tree builds they sit on.
	Kinds map[Kind]KindStats `json:"kinds,omitempty"`
}

// KindStats is one construction family's slice of the counters. A composite
// kind's BuildTime includes any cold core build it triggered (the core build
// is also recorded under its own kind).
type KindStats struct {
	Hits      uint64        `json:"hits"`
	Builds    uint64        `json:"builds"`
	BuildTime time.Duration `json:"build_time_ns"`
	Entries   int           `json:"entries"`
	Nodes     int64         `json:"nodes"`
}

// entry is one cached instance.
type entry struct {
	key   Key
	val   any
	nodes int64
	elem  *list.Element
}

// call is one in-flight build, shared by coalesced requesters.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Cache is a keyed, size-bounded, singleflight-guarded instance cache. The
// zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	maxNodes int64
	entries  map[Key]*entry
	lru      *list.List // front = most recently used; values are *entry
	flight   map[Key]*call
	nodes    int64
	stats    Stats
	perKind  map[Kind]*KindStats // hits/builds/build time only; occupancy derived in Stats
}

// New returns a Cache bounded at maxNodes total cached tree nodes
// (maxNodes <= 0 selects DefaultMaxNodes).
func New(maxNodes int64) *Cache {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	return &Cache{
		maxNodes: maxNodes,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		flight:   make(map[Key]*call),
		perKind:  make(map[Kind]*KindStats),
	}
}

// kindLocked returns the per-kind counter slot for k, creating it on first
// use. Callers hold c.mu.
func (c *Cache) kindLocked(k Kind) *KindStats {
	ks, ok := c.perKind[k]
	if !ok {
		ks = &KindStats{}
		c.perKind[k] = ks
	}
	return ks
}

// Path returns the cached path with n nodes, building it on first request.
func (c *Cache) Path(n int) (*graph.Tree, error) {
	v, err := c.get(PathKey(n), func() (any, int64, error) {
		t, err := graph.BuildPath(n)
		if err != nil {
			return nil, 0, err
		}
		return t, int64(t.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Tree), nil
}

// Balanced returns the cached balanced Δ-regular tree with exactly size
// nodes, building it on first request.
func (c *Cache) Balanced(delta, size int) (*graph.Tree, error) {
	v, err := c.get(BalancedKey(delta, size), func() (any, int64, error) {
		t, err := graph.BuildBalanced(delta, size)
		if err != nil {
			return nil, 0, err
		}
		return t, int64(t.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Tree), nil
}

// Hierarchical returns the cached Definition-18 lower-bound graph for the
// given path-length vector, building it on first request.
func (c *Cache) Hierarchical(lengths []int) (*graph.Hierarchical, error) {
	v, err := c.get(HierarchicalKey(lengths), func() (any, int64, error) {
		h, err := graph.BuildHierarchical(lengths)
		if err != nil {
			return nil, 0, err
		}
		return h, int64(h.Tree.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Hierarchical), nil
}

// Weighted returns the cached Definition-25 weighted composite instance
// (hierarchical core plus attached weight trees and Active/Weight inputs)
// for problem p, core path lengths, and per-level weight budget, building it
// on first request. The core is requested through Hierarchical on the same
// cache, so composites sharing a path-length vector share one core tree; the
// composite entry is accounted by the full composite node count.
func (c *Cache) Weighted(p weighted.Problem, lengths []int, budget int) (*weighted.Instance, error) {
	v, err := c.get(WeightedKey(p, lengths, budget), func() (any, int64, error) {
		h, err := c.Hierarchical(lengths)
		if err != nil {
			return nil, 0, err
		}
		in, err := weighted.BuildInstanceFrom(p, h, budget)
		if err != nil {
			return nil, 0, err
		}
		return in, int64(in.Tree.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*weighted.Instance), nil
}

// Aug returns the cached Section-10 weight-augmented composite instance for
// hierarchy depth k, degree bound delta, core path lengths, and per-level
// weight budget, building it on first request. Like Weighted, the core is
// shared through the cache's Hierarchical entry.
func (c *Cache) Aug(k, delta int, lengths []int, budget int) (*labeling.AugInstance, error) {
	v, err := c.get(AugKey(k, delta, lengths, budget), func() (any, int64, error) {
		h, err := c.Hierarchical(lengths)
		if err != nil {
			return nil, 0, err
		}
		in, err := labeling.BuildAugInstanceFrom(k, delta, h, budget)
		if err != nil {
			return nil, 0, err
		}
		return in, int64(in.Tree.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*labeling.AugInstance), nil
}

// GaltonWatson returns the cached Galton-Watson sample for
// (n, maxChildren, seed), building it on first request. The sample is a
// pure function of its key (see graph.BuildGaltonWatson), so cache sharing
// never mixes distinct ensemble members.
func (c *Cache) GaltonWatson(n, maxChildren int, seed uint64) (*graph.Tree, error) {
	v, err := c.get(GWKey(n, maxChildren, seed), func() (any, int64, error) {
		t, err := graph.BuildGaltonWatson(n, maxChildren, seed)
		if err != nil {
			return nil, 0, err
		}
		return t, int64(t.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Tree), nil
}

// Ladder returns the cached ladder-tree sample for (n, seed), building it on
// first request (see graph.BuildLadder).
func (c *Cache) Ladder(n int, seed uint64) (*graph.Tree, error) {
	v, err := c.get(LadderKey(n, seed), func() (any, int64, error) {
		t, err := graph.BuildLadder(n, seed)
		if err != nil {
			return nil, 0, err
		}
		return t, int64(t.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Tree), nil
}

// get serves key from the cache, joining an in-flight build or invoking
// build exactly once on a cold key. Build errors are returned to every
// waiter and are not cached.
func (c *Cache) get(key Key, build func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.kindLocked(key.Kind).Hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e.val, nil
	}
	c.stats.Misses++
	if cl, ok := c.flight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		cl.wg.Wait()
		return cl.val, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.mu.Unlock()

	started := time.Now()
	val, nodes, err := build()
	elapsed := time.Since(started)

	c.mu.Lock()
	delete(c.flight, key)
	c.stats.Builds++
	c.stats.BuildTime += elapsed
	ks := c.kindLocked(key.Kind)
	ks.Builds++
	ks.BuildTime += elapsed
	if err == nil {
		c.insertLocked(key, val, nodes)
	}
	c.mu.Unlock()

	cl.val, cl.err = val, err
	cl.wg.Done()
	return val, err
}

// insertLocked adds a built instance and evicts least-recently-used entries
// until the node bound holds again. The freshly inserted entry is never
// evicted on its own insert, so instances larger than the bound still serve
// the current callers (they become eviction candidates on the next insert).
func (c *Cache) insertLocked(key Key, val any, nodes int64) {
	e := &entry{key: key, val: val, nodes: nodes}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.nodes += nodes
	for c.nodes > c.maxNodes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		if oldest == nil || oldest == e.elem {
			break
		}
		victim := oldest.Value.(*entry)
		c.lru.Remove(oldest)
		delete(c.entries, victim.key)
		c.nodes -= victim.nodes
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters and current occupancy, including
// the per-kind breakdown (occupancy per kind is derived by walking the
// entry table; the cache holds at most a few dozen entries).
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Nodes = c.nodes
	s.Kinds = make(map[Kind]KindStats, len(c.perKind))
	for kind, ks := range c.perKind {
		s.Kinds[kind] = *ks
	}
	for _, e := range c.entries {
		ks := s.Kinds[e.key.Kind]
		ks.Entries++
		ks.Nodes += e.nodes
		s.Kinds[e.key.Kind] = ks
	}
	return s
}

// Reset drops every cached entry and zeroes the counters. In-flight builds
// complete normally but their results are inserted into the cleared cache.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*entry)
	c.lru = list.New()
	c.nodes = 0
	c.stats = Stats{}
	c.perKind = make(map[Kind]*KindStats)
}
