// Package inst is the instance provider: a keyed, size-bounded,
// singleflight-guarded cache over the graph.Build* constructions.
//
// The lower-bound instances behind the paper's sweeps (the Definition-18
// hierarchical graphs, balanced Δ-regular weight trees, and plain paths) are
// pure functions of their construction parameters, and graph.Tree is
// immutable, so a tree built once can be shared by every sweep point, every
// preset, and every concurrently running experiment that asks for the same
// parameters. A Cache keys each construction by (kind, parameters), builds on
// first request, and serves shared references afterwards; concurrent first
// requests for the same key are coalesced so each instance is built exactly
// once. Entries are evicted least-recently-used once the total cached node
// count exceeds the bound.
//
// Callers must treat returned values as read-only: trees (and the
// Hierarchical metadata around them) are shared across goroutines.
package inst

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
)

// DefaultMaxNodes bounds the default cache at ~16.7M cached tree nodes,
// comfortably above the standard presets (the largest standard instance,
// the T=144 k=2 hierarchical graph, is ~3M nodes) while keeping the cache
// well under a gigabyte.
const DefaultMaxNodes = 1 << 24

// Kind names a cached construction family.
type Kind string

// The cached construction kinds, one per graph.Build* entry point used by
// the experiment drivers.
const (
	KindPath         Kind = "path"
	KindBalanced     Kind = "balanced"
	KindHierarchical Kind = "hierarchical"
)

// Key identifies one construction: the kind plus its parameters. Keys are
// comparable and printable (they name the persisted-instance slot in logs
// and counters).
type Key struct {
	Kind Kind
	// A and B are the scalar parameters: Path{n}, Balanced{delta, size}.
	A, B int
	// Lengths is the canonical "ell_1,...,ell_k" encoding of a hierarchical
	// construction's path-length vector; empty for scalar kinds.
	Lengths string
}

func (k Key) String() string {
	switch k.Kind {
	case KindPath:
		return fmt.Sprintf("path(%d)", k.A)
	case KindBalanced:
		return fmt.Sprintf("balanced(%d,%d)", k.A, k.B)
	case KindHierarchical:
		return fmt.Sprintf("hierarchical(%s)", k.Lengths)
	}
	return fmt.Sprintf("%s(%d,%d,%s)", k.Kind, k.A, k.B, k.Lengths)
}

// PathKey is the cache key for graph.BuildPath(n).
func PathKey(n int) Key { return Key{Kind: KindPath, A: n} }

// BalancedKey is the cache key for graph.BuildBalanced(delta, size).
func BalancedKey(delta, size int) Key { return Key{Kind: KindBalanced, A: delta, B: size} }

// HierarchicalKey is the cache key for graph.BuildHierarchical(lengths).
func HierarchicalKey(lengths []int) Key {
	var b strings.Builder
	for i, l := range lengths {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(l))
	}
	return Key{Kind: KindHierarchical, Lengths: b.String()}
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts requests served from a cached entry.
	Hits uint64 `json:"hits"`
	// Misses counts requests that found no entry and triggered (or joined) a
	// build.
	Misses uint64 `json:"misses"`
	// Coalesced counts misses that joined another goroutine's in-flight
	// build instead of building themselves (singleflight sharing).
	Coalesced uint64 `json:"coalesced"`
	// Builds counts actual graph.Build* invocations, successful or failed
	// (failed builds leave no entry). Misses == Builds + Coalesced.
	Builds uint64 `json:"builds"`
	// Evictions counts entries dropped by the LRU size bound.
	Evictions uint64 `json:"evictions"`
	// BuildTime is the cumulative wall-clock time spent inside graph.Build*.
	BuildTime time.Duration `json:"build_time_ns"`
	// Entries and Nodes are the current cache occupancy.
	Entries int   `json:"entries"`
	Nodes   int64 `json:"nodes"`
}

// entry is one cached instance.
type entry struct {
	key   Key
	val   any
	nodes int64
	elem  *list.Element
}

// call is one in-flight build, shared by coalesced requesters.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Cache is a keyed, size-bounded, singleflight-guarded instance cache. The
// zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	maxNodes int64
	entries  map[Key]*entry
	lru      *list.List // front = most recently used; values are *entry
	flight   map[Key]*call
	nodes    int64
	stats    Stats
}

// New returns a Cache bounded at maxNodes total cached tree nodes
// (maxNodes <= 0 selects DefaultMaxNodes).
func New(maxNodes int64) *Cache {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	return &Cache{
		maxNodes: maxNodes,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		flight:   make(map[Key]*call),
	}
}

// Path returns the cached path with n nodes, building it on first request.
func (c *Cache) Path(n int) (*graph.Tree, error) {
	v, err := c.get(PathKey(n), func() (any, int64, error) {
		t, err := graph.BuildPath(n)
		if err != nil {
			return nil, 0, err
		}
		return t, int64(t.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Tree), nil
}

// Balanced returns the cached balanced Δ-regular tree with exactly size
// nodes, building it on first request.
func (c *Cache) Balanced(delta, size int) (*graph.Tree, error) {
	v, err := c.get(BalancedKey(delta, size), func() (any, int64, error) {
		t, err := graph.BuildBalanced(delta, size)
		if err != nil {
			return nil, 0, err
		}
		return t, int64(t.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Tree), nil
}

// Hierarchical returns the cached Definition-18 lower-bound graph for the
// given path-length vector, building it on first request.
func (c *Cache) Hierarchical(lengths []int) (*graph.Hierarchical, error) {
	v, err := c.get(HierarchicalKey(lengths), func() (any, int64, error) {
		h, err := graph.BuildHierarchical(lengths)
		if err != nil {
			return nil, 0, err
		}
		return h, int64(h.Tree.N()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*graph.Hierarchical), nil
}

// get serves key from the cache, joining an in-flight build or invoking
// build exactly once on a cold key. Build errors are returned to every
// waiter and are not cached.
func (c *Cache) get(key Key, build func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e.val, nil
	}
	c.stats.Misses++
	if cl, ok := c.flight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		cl.wg.Wait()
		return cl.val, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.mu.Unlock()

	started := time.Now()
	val, nodes, err := build()
	elapsed := time.Since(started)

	c.mu.Lock()
	delete(c.flight, key)
	c.stats.Builds++
	c.stats.BuildTime += elapsed
	if err == nil {
		c.insertLocked(key, val, nodes)
	}
	c.mu.Unlock()

	cl.val, cl.err = val, err
	cl.wg.Done()
	return val, err
}

// insertLocked adds a built instance and evicts least-recently-used entries
// until the node bound holds again. The freshly inserted entry is never
// evicted on its own insert, so instances larger than the bound still serve
// the current callers (they become eviction candidates on the next insert).
func (c *Cache) insertLocked(key Key, val any, nodes int64) {
	e := &entry{key: key, val: val, nodes: nodes}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.nodes += nodes
	for c.nodes > c.maxNodes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		if oldest == nil || oldest == e.elem {
			break
		}
		victim := oldest.Value.(*entry)
		c.lru.Remove(oldest)
		delete(c.entries, victim.key)
		c.nodes -= victim.nodes
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters and current occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Nodes = c.nodes
	return s
}

// Reset drops every cached entry and zeroes the counters. In-flight builds
// complete normally but their results are inserted into the cleared cache.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*entry)
	c.lru = list.New()
	c.nodes = 0
	c.stats = Stats{}
}
