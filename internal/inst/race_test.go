package inst

// Concurrency audit of the cache. Every path through Cache — hit, miss,
// coalesced miss, LRU eviction, Stats snapshot, Reset — runs under c.mu,
// and a singleflight call publishes val/err before wg.Done, so waiters
// observe the build result happens-before their wakeup. These tests hammer
// all of those paths from parallel goroutines so `go test -race` would
// surface any regression of that discipline.

import (
	"sync"
	"testing"
)

// hammer runs fn from workers goroutines, iters times each, alongside a
// dedicated goroutine that continuously snapshots Stats until the workers
// finish.
func hammer(t *testing.T, c *Cache, workers, iters int, fn func(worker, iter int)) {
	t.Helper()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := c.Stats()
				if s.Entries < 0 || s.Nodes < 0 {
					t.Errorf("negative occupancy snapshot: %+v", s)
					return
				}
			}
		}
	}()
	var work sync.WaitGroup
	for w := 0; w < workers; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			for i := 0; i < iters; i++ {
				fn(w, i)
			}
		}(w)
	}
	work.Wait()
	close(stop)
	wg.Wait()
}

// TestCacheConcurrentHammer drives hits, misses, coalesced builds, and LRU
// evictions from parallel goroutines while Stats is read concurrently, with
// a bound small enough that the working set cannot all stay resident. After
// the dust settles the counter algebra must hold exactly.
func TestCacheConcurrentHammer(t *testing.T) {
	// Paths of 50..57 nodes plus a 10-node balanced tree and a {3,4}
	// hierarchical instance against a 200-node bound: every iteration risks
	// evicting someone else's entry, so rebuilds and evictions both churn.
	c := New(200)
	const workers, iters = 16, 200
	var requests int64 = int64(workers * iters * 3)

	hammer(t, c, workers, iters, func(w, i int) {
		if tr, err := c.Path(50 + (w+i)%8); err != nil || tr == nil {
			t.Errorf("Path: %v", err)
		}
		if tr, err := c.Balanced(3, 10); err != nil || tr == nil {
			t.Errorf("Balanced: %v", err)
		}
		if h, err := c.Hierarchical([]int{3, 4}); err != nil || h == nil {
			t.Errorf("Hierarchical: %v", err)
		}
	})

	s := c.Stats()
	if s.Hits+s.Misses != uint64(requests) {
		t.Fatalf("hits %d + misses %d != %d requests", s.Hits, s.Misses, requests)
	}
	if s.Misses != s.Builds+s.Coalesced {
		t.Fatalf("misses %d != builds %d + coalesced %d", s.Misses, s.Builds, s.Coalesced)
	}
	if s.Builds == 0 || s.Hits == 0 {
		t.Fatalf("hammer exercised nothing: %+v", s)
	}
	var kindHits, kindBuilds uint64
	var kindEntries int
	var kindNodes int64
	for _, ks := range s.Kinds {
		kindHits += ks.Hits
		kindBuilds += ks.Builds
		kindEntries += ks.Entries
		kindNodes += ks.Nodes
	}
	if kindHits != s.Hits || kindBuilds != s.Builds {
		t.Fatalf("per-kind counters (hits %d, builds %d) disagree with totals (%d, %d)",
			kindHits, kindBuilds, s.Hits, s.Builds)
	}
	if kindEntries != s.Entries || kindNodes != s.Nodes {
		t.Fatalf("per-kind occupancy (%d entries, %d nodes) disagrees with totals (%d, %d)",
			kindEntries, kindNodes, s.Entries, s.Nodes)
	}
	if s.Evictions == 0 {
		t.Fatal("bound of 200 nodes never evicted; the hammer is not stressing the LRU")
	}
}

// TestCacheConcurrentReset interleaves Reset with the request paths: the
// counters lose history by design, but occupancy must stay consistent and
// nothing may race or deadlock.
func TestCacheConcurrentReset(t *testing.T) {
	c := New(500)
	hammer(t, c, 8, 100, func(w, i int) {
		if w == 0 && i%10 == 0 {
			c.Reset()
			return
		}
		if _, err := c.Path(50 + i%4); err != nil {
			t.Errorf("Path: %v", err)
		}
		if _, err := c.Balanced(3, 10); err != nil {
			t.Errorf("Balanced: %v", err)
		}
	})
	s := c.Stats()
	if s.Entries < 0 || s.Nodes < 0 || s.Entries > 5 {
		t.Fatalf("implausible post-reset occupancy: %+v", s)
	}
	// The cache must still work after the churn.
	if _, err := c.Path(50); err != nil {
		t.Fatal(err)
	}
	if hits := c.Stats().Hits; hits == 0 && c.Stats().Builds == 0 {
		t.Fatal("cache dead after reset churn")
	}
}
