package inst

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/weighted"
)

// TestHitMissCounters: a cold request builds, a warm repeat is served from
// cache with zero additional builds.
func TestHitMissCounters(t *testing.T) {
	c := New(0)
	a, err := c.Path(50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Path(50)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("warm request returned a different instance")
	}
	s := c.Stats()
	if s.Builds != 1 || s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 build, 1 miss, 1 hit", s)
	}
	if s.Entries != 1 || s.Nodes != 50 {
		t.Fatalf("occupancy = %d entries / %d nodes, want 1/50", s.Entries, s.Nodes)
	}
	if s.BuildTime <= 0 {
		t.Fatal("build time not recorded")
	}
}

// TestKeySeparation: different kinds and parameters occupy distinct slots.
func TestKeySeparation(t *testing.T) {
	c := New(0)
	if _, err := c.Path(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Path(11); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Balanced(3, 10); err != nil {
		t.Fatal(err)
	}
	h1, err := c.Hierarchical([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Hierarchical([]int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("distinct length vectors shared one slot")
	}
	if s := c.Stats(); s.Builds != 5 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 5 distinct builds", s)
	}
	if HierarchicalKey([]int{3, 4}) == HierarchicalKey([]int{34}) {
		t.Fatal("length encoding is ambiguous")
	}
}

// TestErrorsNotCached: a failing build propagates its error and leaves no
// entry, so a later valid request is unaffected.
func TestErrorsNotCached(t *testing.T) {
	c := New(0)
	if _, err := c.Path(0); err == nil {
		t.Fatal("invalid construction accepted")
	}
	if _, err := c.Path(0); err == nil {
		t.Fatal("invalid construction accepted on repeat")
	}
	s := c.Stats()
	if s.Entries != 0 {
		t.Fatalf("failed build cached: %+v", s)
	}
	if s.Builds != 2 {
		t.Fatalf("failed build coalesced into cache: %+v", s)
	}
}

// TestLRUEviction: exceeding the node bound evicts the least recently used
// entry first.
func TestLRUEviction(t *testing.T) {
	c := New(100)
	if _, err := c.Path(40); err != nil { // oldest
		t.Fatal(err)
	}
	if _, err := c.Path(50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Path(40); err != nil { // touch: 40 now most recent
		t.Fatal(err)
	}
	if _, err := c.Path(30); err != nil { // 120 > 100: evicts 50
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Nodes != 70 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction leaving 70 nodes in 2 entries", s)
	}
	if _, err := c.Path(40); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Builds != s.Builds {
		t.Fatal("recently used entry was evicted")
	}
	if _, err := c.Path(50); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Builds != s.Builds+1 {
		t.Fatal("least recently used entry survived eviction")
	}
}

// TestOversizedInstanceStillServed: an instance larger than the whole bound
// is built, returned, and kept until the next insert.
func TestOversizedInstanceStillServed(t *testing.T) {
	c := New(10)
	tr, err := c.Path(100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 100 {
		t.Fatalf("got %d nodes", tr.N())
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("oversized entry dropped on its own insert: %+v", s)
	}
	if _, err := c.Path(5); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Nodes > 10 {
		t.Fatalf("bound not restored on next insert: %+v", s)
	}
}

// TestSingleflightCoalesces: concurrent cold requests for one key share a
// single build.
func TestSingleflightCoalesces(t *testing.T) {
	c := New(0)
	const workers = 16
	trees := make([]*graph.Tree, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Hierarchical([]int{20, 30})
			if err != nil {
				t.Error(err)
				return
			}
			trees[i] = tr.Tree
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if trees[i] != trees[0] {
			t.Fatal("coalesced requests returned distinct instances")
		}
	}
	s := c.Stats()
	if s.Builds != 1 {
		t.Fatalf("%d builds for one key under contention", s.Builds)
	}
	if s.Hits+s.Coalesced != workers-1 {
		t.Fatalf("stats = %+v, want %d shared requests", s, workers-1)
	}
}

// TestConcurrentMixedLoad hammers the cache from many goroutines under
// -race: distinct keys, repeats, and evictions at a tight bound.
func TestConcurrentMixedLoad(t *testing.T) {
	c := New(500)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					if _, err := c.Path(10 + i%7); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := c.Balanced(3, 20+i%5); err != nil {
						t.Error(err)
					}
				default:
					if _, err := c.Hierarchical([]int{2 + i%3, 4}); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*50 {
		t.Fatalf("requests lost: %+v", s)
	}
	if s.Nodes > 500 && s.Entries > 1 {
		t.Fatalf("bound violated: %+v", s)
	}
}

// TestWeightedCompositeCached: the Definition-25 composite is keyed by
// (problem, lengths, budget), built once, and shares its hierarchical core
// through the same cache.
func TestWeightedCompositeCached(t *testing.T) {
	c := New(0)
	p := weighted.Problem{Variant: hierarchy.Coloring25, Delta: 5, D: 2, K: 2}
	a, err := c.Weighted(p, []int{6, 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Weighted(p, []int{6, 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("warm composite request returned a different instance")
	}
	h, err := c.Hierarchical([]int{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hier != h {
		t.Fatal("composite does not share the cached hierarchical core")
	}
	// Different budget or problem parameters are distinct slots.
	if other, err := c.Weighted(p, []int{6, 8}, 200); err != nil {
		t.Fatal(err)
	} else if other == a {
		t.Fatal("budgets share one composite slot")
	}
	s := c.Stats()
	if got := s.Kinds[KindWeighted]; got.Builds != 2 || got.Hits != 1 || got.Entries != 2 {
		t.Fatalf("weighted kind stats = %+v, want 2 builds / 1 hit / 2 entries", got)
	}
	if got := s.Kinds[KindHierarchical]; got.Builds != 1 {
		t.Fatalf("hierarchical core built %d times, want 1 (shared)", got.Builds)
	}
	if got := s.Kinds[KindWeighted]; got.Nodes < int64(a.Tree.N()) {
		t.Fatalf("weighted kind accounts %d nodes, want >= %d (full composite)", got.Nodes, a.Tree.N())
	}
}

// TestAugCompositeCached: same contract for the weight-augmented composite.
func TestAugCompositeCached(t *testing.T) {
	c := New(0)
	a, err := c.Aug(2, 5, []int{6, 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Aug(2, 5, []int{6, 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("warm aug request returned a different instance")
	}
	s := c.Stats()
	if got := s.Kinds[KindAug]; got.Builds != 1 || got.Hits != 1 || got.Entries != 1 {
		t.Fatalf("aug kind stats = %+v, want 1 build / 1 hit / 1 entry", got)
	}
	if got := s.Kinds[KindAug]; got.BuildTime <= 0 {
		t.Fatal("aug build time not recorded")
	}
	// The weighted and aug composites over the same core are distinct slots.
	p := weighted.Problem{Variant: hierarchy.Coloring25, Delta: 5, D: 2, K: 2}
	if WeightedKey(p, []int{6, 8}, 100) == AugKey(2, 5, []int{6, 8}, 100) {
		t.Fatal("weighted and aug keys collide")
	}
}

// TestCompositeBuildErrorsNotCached: invalid composite parameters propagate
// and leave no entry (a later valid request is unaffected).
func TestCompositeBuildErrorsNotCached(t *testing.T) {
	c := New(0)
	bad := weighted.Problem{Variant: hierarchy.Coloring25, Delta: 5, D: 2, K: 1}
	if _, err := c.Weighted(bad, []int{6}, 10); err == nil {
		t.Fatal("k=1 composite accepted")
	}
	if _, err := c.Aug(1, 5, []int{6}, 10); err == nil {
		t.Fatal("k=1 aug composite accepted")
	}
	if s := c.Stats(); s.Kinds[KindWeighted].Entries != 0 || s.Kinds[KindAug].Entries != 0 {
		t.Fatalf("failed composite build cached: %+v", s)
	}
}

// TestCompositeKeyStrings: the composite keys print their full parameters
// (they label tasks and cache-stats lines).
func TestCompositeKeyStrings(t *testing.T) {
	p := weighted.Problem{Variant: hierarchy.Coloring25, Delta: 5, D: 2, K: 3}
	wk := WeightedKey(p, []int{4, 8, 16}, 1000).String()
	for _, want := range []string{"weighted", "Δ=5", "d=2", "k=3", "4,8,16", "w=1000"} {
		if !strings.Contains(wk, want) {
			t.Fatalf("WeightedKey string %q missing %q", wk, want)
		}
	}
	ak := AugKey(2, 6, []int{3, 9}, 50).String()
	for _, want := range []string{"weightaug", "Δ=6", "k=2", "3,9", "w=50"} {
		if !strings.Contains(ak, want) {
			t.Fatalf("AugKey string %q missing %q", ak, want)
		}
	}
}

// TestReset zeroes counters and occupancy.
func TestReset(t *testing.T) {
	c := New(0)
	if _, err := c.Path(10); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 || s.Builds != 0 || s.BuildTime != 0 ||
		s.Entries != 0 || s.Nodes != 0 || len(s.Kinds) != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if _, err := c.Path(10); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Builds != 1 {
		t.Fatalf("entry survived reset: %+v", s)
	}
}

// TestKeyCore: composite keys route to their shared hierarchical core —
// the affinity group the multi-process dispatcher co-locates tasks by —
// while every non-composite key is its own core.
func TestKeyCore(t *testing.T) {
	p := weighted.Problem{Variant: hierarchy.Coloring25, Delta: 5, D: 2, K: 2}
	core := HierarchicalKey([]int{4, 16})
	if got := WeightedKey(p, []int{4, 16}, 100).Core(); got != core {
		t.Fatalf("weighted core = %v, want %v", got, core)
	}
	if got := AugKey(2, 5, []int{4, 16}, 100).Core(); got != core {
		t.Fatalf("weightaug core = %v, want %v", got, core)
	}
	// Composites sharing a path-length vector share one core group even
	// when every other parameter differs.
	q := weighted.Problem{Variant: hierarchy.Coloring35, Delta: 7, D: 3, K: 2}
	if WeightedKey(p, []int{4, 16}, 100).Core() != WeightedKey(q, []int{4, 16}, 999).Core() {
		t.Fatal("same-core composites landed in different affinity groups")
	}
	for _, k := range []Key{PathKey(7), BalancedKey(5, 100), core} {
		if k.Core() != k {
			t.Fatalf("non-composite key %v is not its own core (%v)", k, k.Core())
		}
	}
}

// TestStatsJSONRoundTrip: the stats snapshot serializes losslessly — it
// crosses the worker protocol's stats frame, so per-worker counters must
// survive the wire.
func TestStatsJSONRoundTrip(t *testing.T) {
	c := New(0)
	if _, err := c.Path(50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Path(50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hierarchical([]int{3, 9}); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("stats did not round-trip:\n%+v\nvs\n%+v", s, back)
	}
}
