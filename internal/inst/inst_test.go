package inst

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestHitMissCounters: a cold request builds, a warm repeat is served from
// cache with zero additional builds.
func TestHitMissCounters(t *testing.T) {
	c := New(0)
	a, err := c.Path(50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Path(50)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("warm request returned a different instance")
	}
	s := c.Stats()
	if s.Builds != 1 || s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 build, 1 miss, 1 hit", s)
	}
	if s.Entries != 1 || s.Nodes != 50 {
		t.Fatalf("occupancy = %d entries / %d nodes, want 1/50", s.Entries, s.Nodes)
	}
	if s.BuildTime <= 0 {
		t.Fatal("build time not recorded")
	}
}

// TestKeySeparation: different kinds and parameters occupy distinct slots.
func TestKeySeparation(t *testing.T) {
	c := New(0)
	if _, err := c.Path(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Path(11); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Balanced(3, 10); err != nil {
		t.Fatal(err)
	}
	h1, err := c.Hierarchical([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Hierarchical([]int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("distinct length vectors shared one slot")
	}
	if s := c.Stats(); s.Builds != 5 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 5 distinct builds", s)
	}
	if HierarchicalKey([]int{3, 4}) == HierarchicalKey([]int{34}) {
		t.Fatal("length encoding is ambiguous")
	}
}

// TestErrorsNotCached: a failing build propagates its error and leaves no
// entry, so a later valid request is unaffected.
func TestErrorsNotCached(t *testing.T) {
	c := New(0)
	if _, err := c.Path(0); err == nil {
		t.Fatal("invalid construction accepted")
	}
	if _, err := c.Path(0); err == nil {
		t.Fatal("invalid construction accepted on repeat")
	}
	s := c.Stats()
	if s.Entries != 0 {
		t.Fatalf("failed build cached: %+v", s)
	}
	if s.Builds != 2 {
		t.Fatalf("failed build coalesced into cache: %+v", s)
	}
}

// TestLRUEviction: exceeding the node bound evicts the least recently used
// entry first.
func TestLRUEviction(t *testing.T) {
	c := New(100)
	if _, err := c.Path(40); err != nil { // oldest
		t.Fatal(err)
	}
	if _, err := c.Path(50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Path(40); err != nil { // touch: 40 now most recent
		t.Fatal(err)
	}
	if _, err := c.Path(30); err != nil { // 120 > 100: evicts 50
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Nodes != 70 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction leaving 70 nodes in 2 entries", s)
	}
	if _, err := c.Path(40); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Builds != s.Builds {
		t.Fatal("recently used entry was evicted")
	}
	if _, err := c.Path(50); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Builds != s.Builds+1 {
		t.Fatal("least recently used entry survived eviction")
	}
}

// TestOversizedInstanceStillServed: an instance larger than the whole bound
// is built, returned, and kept until the next insert.
func TestOversizedInstanceStillServed(t *testing.T) {
	c := New(10)
	tr, err := c.Path(100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 100 {
		t.Fatalf("got %d nodes", tr.N())
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("oversized entry dropped on its own insert: %+v", s)
	}
	if _, err := c.Path(5); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Nodes > 10 {
		t.Fatalf("bound not restored on next insert: %+v", s)
	}
}

// TestSingleflightCoalesces: concurrent cold requests for one key share a
// single build.
func TestSingleflightCoalesces(t *testing.T) {
	c := New(0)
	const workers = 16
	trees := make([]*graph.Tree, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Hierarchical([]int{20, 30})
			if err != nil {
				t.Error(err)
				return
			}
			trees[i] = tr.Tree
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if trees[i] != trees[0] {
			t.Fatal("coalesced requests returned distinct instances")
		}
	}
	s := c.Stats()
	if s.Builds != 1 {
		t.Fatalf("%d builds for one key under contention", s.Builds)
	}
	if s.Hits+s.Coalesced != workers-1 {
		t.Fatalf("stats = %+v, want %d shared requests", s, workers-1)
	}
}

// TestConcurrentMixedLoad hammers the cache from many goroutines under
// -race: distinct keys, repeats, and evictions at a tight bound.
func TestConcurrentMixedLoad(t *testing.T) {
	c := New(500)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					if _, err := c.Path(10 + i%7); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := c.Balanced(3, 20+i%5); err != nil {
						t.Error(err)
					}
				default:
					if _, err := c.Hierarchical([]int{2 + i%3, 4}); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*50 {
		t.Fatalf("requests lost: %+v", s)
	}
	if s.Nodes > 500 && s.Entries > 1 {
		t.Fatalf("bound violated: %+v", s)
	}
}

// TestReset zeroes counters and occupancy.
func TestReset(t *testing.T) {
	c := New(0)
	if _, err := c.Path(10); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v", s)
	}
	if _, err := c.Path(10); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Builds != 1 {
		t.Fatalf("entry survived reset: %+v", s)
	}
}
