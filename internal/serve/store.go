package serve

// The result store: a disk directory of canonical result files keyed by
// exp.ResultKey, layered on the same byte contract as exp.WriteResults — a
// stored (and therefore served) response is byte-identical to the file
// cmd/experiments -out writes for the same (experiment, preset, seed). The
// store survives restarts: a directory populated by a previous expd process,
// or by cmd/experiments -out itself, serves warm immediately.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exp"
)

// StoreStats is a snapshot of the result-store counters.
type StoreStats struct {
	// Hits counts Get calls served from a stored file.
	Hits uint64 `json:"hits"`
	// Misses counts Get calls that found no stored file.
	Misses uint64 `json:"misses"`
	// Puts counts results persisted.
	Puts uint64 `json:"puts"`
	// Entries is the current number of stored result files.
	Entries int `json:"entries"`
}

// Store is a disk-backed canonical-result store. All methods are safe for
// concurrent use; per-key write atomicity comes from writing to a temp file
// and renaming into place, so a concurrent Get sees either nothing or a
// complete file.
type Store struct {
	dir    string
	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64

	// mu serializes writers per store (Put is rare: once per cold key).
	mu sync.Mutex
}

// NewStore opens (creating if needed) the store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store directory is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a ResultKey to its file, rejecting keys that would escape the
// store directory. ResultKeys are kebab-case names plus "__preset__seedN",
// so a separator or dot-segment only ever appears in a forged key.
func (s *Store) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.Contains(key, "..") {
		return "", fmt.Errorf("serve: invalid result key %q", key)
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Get returns the stored canonical bytes for key, or ok=false on a miss.
func (s *Store) Get(key string) (raw []byte, ok bool, err error) {
	file, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	raw, err = os.ReadFile(file)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, false, nil
		}
		return nil, false, err
	}
	s.hits.Add(1)
	return raw, true, nil
}

// Put persists res under key and returns the exact stored bytes
// (exp.CanonicalJSON form). Writing is atomic per key.
func (s *Store) Put(key string, res *exp.Result) ([]byte, error) {
	file, err := s.path(key)
	if err != nil {
		return nil, err
	}
	raw, err := exp.CanonicalJSON(res)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp*")
	if err != nil {
		return nil, err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := os.Rename(tmp.Name(), file); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	s.puts.Add(1)
	return raw, nil
}

// Stats snapshots the store counters and current entry count.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
	}
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				st.Entries++
			}
		}
	}
	return st
}
