// Package serve is the HTTP experiment service behind cmd/expd: the
// registry catalog, memoized canonical results, and streamed batches over
// one shared compute tier.
//
// The service composes pieces that already exist elsewhere in the module —
// it adds serving, not science. GET /v1/experiments returns exp.Catalog
// (byte-identical to `experiments -list -json`). GET /v1/experiments/{name}
// returns the canonical Result for (experiment, preset, seed), memoized
// through a disk-backed Store keyed by exp.ResultKey: a stored response is
// byte-identical to the file cmd/experiments -out writes for the same key,
// and a warm request performs zero computation and zero instance builds.
// Result responses carry a strong ETag (the quoted ResultKey); a request
// revalidating with If-None-Match is answered 304 before the store is
// touched. Identical concurrent cold requests are singleflighted — one computation,
// every waiter gets the same bytes — and the computation's context is
// canceled only when every waiting request has gone away. POST /v1/batch
// streams NDJSON results as experiments finish, reusing exp.RunBatch's
// emitter, and writes each result through to the store.
//
// Admission control bounds concurrent compute with a weighted semaphore
// whose unit is one schedulable task (sweep point): requests are weighted by
// their task count, a bounded queue absorbs bursts, and saturation returns
// 429 + Retry-After instead of queuing unboundedly. Request contexts (and
// per-request deadlines) propagate into exp.RunBatch's first-failure
// cancellation machinery. Every non-2xx response is a JSON envelope
// {"error": ..., "label": ...}; /healthz and /statsz expose liveness and the
// service's own telemetry (result-store and instance-cache counters,
// admission state, singleflight effectiveness).
package serve

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/inst"
)

// StatusClientClosedRequest is the nonstandard 499 status (nginx lineage)
// reported when the client abandoned a request before its result was ready.
const StatusClientClosedRequest = 499

// Defaults for Config zero values.
const (
	// DefaultMaxInFlight is the default admission capacity in task-weight
	// units (one unit = one schedulable sweep point).
	DefaultMaxInFlight = 64
	// DefaultMaxQueue is the default bound on requests waiting for
	// admission; beyond it the service sheds load with 429.
	DefaultMaxQueue = 8
	// DefaultRetryAfter is the default Retry-After hint on 429 responses.
	DefaultRetryAfter = time.Second
)

// Config parameterizes a Server.
type Config struct {
	// Store is the disk-backed canonical-result store (required).
	Store *Store
	// MaxInFlight bounds concurrently admitted compute, in task-weight
	// units; <= 0 selects DefaultMaxInFlight.
	MaxInFlight int64
	// MaxQueue bounds requests waiting for admission; beyond it requests
	// are rejected with 429. < 0 selects DefaultMaxQueue; 0 means reject
	// immediately when full.
	MaxQueue int
	// Jobs is the in-process task parallelism of each admitted computation
	// (exp.BatchOptions.Jobs); <= 0 selects GOMAXPROCS. Ignored when Remote
	// is set.
	Jobs int
	// Remote, when non-empty, dispatches every admitted computation to these
	// `experiments worker -listen` TCP acceptors instead of computing in
	// process (exp.BatchOptions.Remote). Served bytes are identical either
	// way; the workers become the compute tier and this process stays an
	// orchestrator.
	Remote []string
	// RemoteTLS optionally wraps every remote worker connection in TLS
	// (exp.BatchOptions.RemoteTLS); see RemoteTLSConfig.
	RemoteTLS *tls.Config
	// WorkerRetry allows a crashed remote worker's tasks one rerun on a
	// fresh session before a request fails (exp.BatchOptions.WorkerRetry) —
	// a service in front of a worker fleet usually wants a single flaky
	// worker to cost latency, not the request.
	WorkerRetry bool
	// Timeout is the per-request compute ceiling; a request may lower it
	// via its timeout parameter but never raise it. 0 means no ceiling.
	Timeout time.Duration
	// RetryAfter is the Retry-After hint attached to 429 responses;
	// <= 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
}

// errorEnvelope is the JSON body of every non-2xx response (and of the
// trailing NDJSON line of a batch stream that failed mid-flight). Error
// carries the failure chain — for compute failures that is the batch
// runner's message, which embeds the failing task's label — and Label names
// the request-scoped unit the failure belongs to (the experiment name,
// "batch", or the offending parameter).
type errorEnvelope struct {
	Error string `json:"error"`
	Label string `json:"label,omitempty"`
}

// flight is one in-progress cold computation, shared by every request that
// arrived for its key while it ran. done is closed after the outcome fields
// are set; the flight is removed from the server's table first, so late
// requests start fresh instead of joining a finished flight.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int // waiting requests; the compute is canceled when it hits 0

	// Outcome (valid after done is closed): raw on success, else env+status.
	raw    []byte
	status int
	env    errorEnvelope
}

// Server is the experiment service. Construct with New; serve via Handler.
type Server struct {
	cfg  Config
	sem  *semaphore
	base context.Context
	stop context.CancelFunc

	mu      sync.Mutex
	flights map[string]*flight

	started time.Time

	catalogReqs  atomic.Uint64
	resultReqs   atomic.Uint64
	notModified  atomic.Uint64
	batchReqs    atomic.Uint64
	computes     atomic.Uint64
	flightLeads  atomic.Uint64
	flightJoins  atomic.Uint64
	storeServes  atomic.Uint64
	batchResults atomic.Uint64

	// traffic accumulates cross-shard traffic from freshly computed results,
	// keyed by shard layout ("range", "subtree"). Stored results are
	// canonical — the mechanics are stripped — so these counters are the
	// service's only view of what each layout actually cost.
	trafficMu sync.Mutex
	traffic   map[string]*LayoutTraffic
}

// LayoutTraffic is one layout's cumulative cross-shard traffic across every
// sharded computation the service performed under it.
type LayoutTraffic struct {
	// Results counts freshly computed results that ran sharded under this
	// layout (warm store hits compute nothing and are not counted).
	Results uint64 `json:"results"`
	// BoundaryEdges is the cumulative count of tree edges crossing a shard
	// boundary, summed over those results. It is the objective the subtree
	// layout minimizes, so comparing layouts here shows the reduction.
	BoundaryEdges int64 `json:"boundary_edges"`
	// MessagesCrossed is the cumulative count of simulator messages sent
	// across shard boundaries.
	MessagesCrossed int64 `json:"messages_crossed"`
}

// recordTraffic books a freshly computed result's cross-shard traffic under
// its layout. Results that ran unsharded (no traffic block) are skipped.
func (s *Server) recordTraffic(res *exp.Result) {
	if res == nil || res.ShardTraffic == nil {
		return
	}
	layout := res.ShardLayout
	if layout == "" {
		layout = "range"
	}
	s.trafficMu.Lock()
	defer s.trafficMu.Unlock()
	if s.traffic == nil {
		s.traffic = make(map[string]*LayoutTraffic)
	}
	t := s.traffic[layout]
	if t == nil {
		t = &LayoutTraffic{}
		s.traffic[layout] = t
	}
	t.Results++
	t.BoundaryEdges += res.ShardTraffic.BoundaryEdges
	t.MessagesCrossed += res.ShardTraffic.MessagesCrossed
}

// trafficSnapshot copies the per-layout traffic counters for /statsz.
func (s *Server) trafficSnapshot() map[string]LayoutTraffic {
	s.trafficMu.Lock()
	defer s.trafficMu.Unlock()
	out := make(map[string]LayoutTraffic, len(s.traffic))
	for layout, t := range s.traffic {
		out[layout] = *t
	}
	return out
}

// New validates cfg, applies defaults, and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	base, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		sem:     newSemaphore(cfg.MaxInFlight, cfg.MaxQueue),
		base:    base,
		stop:    stop,
		flights: make(map[string]*flight),
		started: time.Now(),
	}, nil
}

// Close cancels every in-flight computation. Call after the HTTP server has
// stopped accepting requests.
func (s *Server) Close() { s.stop() }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleCatalog)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleResult)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// writeError emits the JSON error envelope with the mapped status code.
func (s *Server) writeError(w http.ResponseWriter, status int, env errorEnvelope) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	w.WriteHeader(status)
	raw, _ := json.MarshalIndent(env, "", "  ")
	w.Write(append(raw, '\n'))
}

// envelopeFor maps a failure to its status code and envelope: 400 for
// unknown experiments/presets (client named something the catalog doesn't
// have), 429 for admission saturation, 499/504 for canceled or
// deadline-exceeded computations, 500 otherwise.
func envelopeFor(err error, label string) (int, errorEnvelope) {
	env := errorEnvelope{Error: err.Error(), Label: label}
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests, env
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, env
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, env
	case errors.Is(err, exp.ErrNotFound):
		return http.StatusBadRequest, env
	default:
		return http.StatusInternalServerError, env
	}
}

// handleCatalog serves the machine-readable experiment catalog —
// byte-identical to `experiments -list -json`.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	s.catalogReqs.Add(1)
	raw, err := json.MarshalIndent(exp.Catalog(), "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, errorEnvelope{Error: err.Error(), Label: "catalog"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(raw, '\n'))
}

// parseRunConfig reads the shared run parameters (preset, seed, parallel,
// shards, shard-layout) plus the optional per-request timeout from query
// values.
func parseRunConfig(get func(string) string) (exp.RunConfig, time.Duration, error) {
	var cfg exp.RunConfig
	cfg.Preset = get("preset")
	if v := get("shard-layout"); v != "" {
		if err := validShardLayout(v); err != nil {
			return cfg, 0, err
		}
		cfg.ShardLayout = v
	}
	var timeout time.Duration
	if v := get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return cfg, 0, fmt.Errorf("seed %q: %w", v, err)
		}
		cfg.Seed = seed
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"parallel", &cfg.Parallelism}, {"shards", &cfg.Shards}} {
		if v := get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, 0, fmt.Errorf("%s %q: %w", p.name, v, err)
			}
			*p.dst = n
		}
	}
	if v := get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return cfg, 0, fmt.Errorf("timeout %q: want a positive Go duration like 30s", v)
		}
		timeout = d
	}
	return cfg, timeout, nil
}

// validShardLayout rejects a layout name the simulator does not implement,
// so a typo gets a clean 400 instead of a mid-computation failure.
func validShardLayout(v string) error {
	switch v {
	case "range", "subtree":
		return nil
	}
	return fmt.Errorf("shard-layout %q: want \"range\" or \"subtree\"", v)
}

// effectiveTimeout combines the server ceiling with a per-request value:
// requests may lower the ceiling, never raise it.
func (s *Server) effectiveTimeout(req time.Duration) time.Duration {
	d := s.cfg.Timeout
	if req > 0 && (d == 0 || req < d) {
		d = req
	}
	return d
}

// planWeight is a request's admission weight: its schedulable task count
// (plan derivation is analytic — preset resolution and exponent math — so
// weighing a request computes nothing).
func planWeight(e *exp.Experiment, cfg exp.RunConfig) int64 {
	if e.Plan != nil {
		if p, err := e.Plan(cfg); err == nil {
			return int64(len(p.Tasks))
		}
	}
	return 1
}

// handleResult serves the canonical Result for one (experiment, preset,
// seed): from the store when warm, through a singleflighted admitted
// computation when cold.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.resultReqs.Add(1)
	name := r.PathValue("name")
	e, ok := exp.Lookup(name)
	if !ok {
		status, env := envelopeFor(exp.ErrUnknownExperiment(name), name)
		s.writeError(w, status, env)
		return
	}
	cfg, reqTimeout, err := parseRunConfig(r.URL.Query().Get)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, errorEnvelope{Error: err.Error(), Label: name})
		return
	}
	key, err := e.ResultKeyFor(cfg)
	if err != nil { // unknown preset
		s.writeError(w, http.StatusBadRequest, errorEnvelope{Error: err.Error(), Label: name})
		return
	}
	// Canonical results are immutable — the ResultKey is a complete validator
	// — so a matching If-None-Match revalidates without touching the store,
	// let alone computing.
	if etag := resultETag(key); inmMatches(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Expd-Result-Key", key)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if raw, ok, err := s.cfg.Store.Get(key); err != nil {
		s.writeError(w, http.StatusInternalServerError, errorEnvelope{Error: err.Error(), Label: name})
		return
	} else if ok {
		s.storeServes.Add(1)
		s.writeResult(w, key, raw, "hit")
		return
	}

	f := s.joinFlight(key, e, cfg, s.effectiveTimeout(reqTimeout))
	defer s.leaveFlight(key, f)
	select {
	case <-f.done:
		if f.status != 0 {
			s.writeError(w, f.status, f.env)
			return
		}
		s.writeResult(w, key, f.raw, "miss")
	case <-r.Context().Done():
		// The client is gone (or the HTTP server is shutting down); the
		// deferred leaveFlight drops our reference, and the computation is
		// canceled once no request still wants it.
		status, env := envelopeFor(r.Context().Err(), name)
		s.writeError(w, status, env)
	}
}

// resultETag is the strong entity tag of a canonical result: the quoted
// ResultKey. The key names (experiment, preset, seed) and results are
// immutable once computed, so the tag never has to change.
func resultETag(key string) string { return `"` + key + `"` }

// inmMatches reports whether an If-None-Match header value matches etag:
// either the wildcard "*" or a list member equal to the tag (weak prefixes
// accepted — RFC 9110 prescribes weak comparison for If-None-Match).
func inmMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		if tag == "*" || strings.TrimPrefix(tag, "W/") == etag {
			return true
		}
	}
	return false
}

// writeResult emits stored canonical bytes, labeling whether the store was
// warm ("hit") or the bytes were computed by this request's flight ("miss").
func (s *Server) writeResult(w http.ResponseWriter, key string, raw []byte, store string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", resultETag(key))
	w.Header().Set("X-Expd-Result-Key", key)
	w.Header().Set("X-Expd-Store", store)
	w.Write(raw)
}

// joinFlight returns the in-progress flight for key, starting one (as
// leader) when none exists. The caller must pair it with leaveFlight.
func (s *Server) joinFlight(key string, e *exp.Experiment, cfg exp.RunConfig, timeout time.Duration) *flight {
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		f.refs++
		s.flightJoins.Add(1)
		s.mu.Unlock()
		return f
	}
	fctx, cancel := context.WithCancel(s.base)
	f := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
	s.flights[key] = f
	s.flightLeads.Add(1)
	s.mu.Unlock()
	go s.runFlight(fctx, f, key, e, cfg, timeout)
	return f
}

// leaveFlight drops one request's reference; the last leaver of an
// unfinished flight cancels its computation (nobody is waiting for it).
func (s *Server) leaveFlight(key string, f *flight) {
	s.mu.Lock()
	f.refs--
	if f.refs == 0 {
		select {
		case <-f.done:
		default:
			f.cancel()
		}
	}
	s.mu.Unlock()
}

// runFlight executes one cold computation: admission, compute, store
// write-through, and outcome publication to every waiter.
func (s *Server) runFlight(ctx context.Context, f *flight, key string, e *exp.Experiment, cfg exp.RunConfig, timeout time.Duration) {
	defer f.cancel()
	raw, status, env := s.computeResult(ctx, key, e, cfg, timeout)
	s.mu.Lock()
	delete(s.flights, key)
	f.raw, f.status, f.env = raw, status, env
	s.mu.Unlock()
	close(f.done)
}

// batchOptions is the execution backend every admitted computation runs
// under: the in-process pool by default, the configured remote TCP worker
// fleet when Config.Remote is set. Both compute byte-identical canonical
// results, so the store and every response are backend-agnostic.
func (s *Server) batchOptions(cfg exp.RunConfig) exp.BatchOptions {
	return exp.BatchOptions{
		Jobs:        s.cfg.Jobs,
		Remote:      s.cfg.Remote,
		RemoteTLS:   s.cfg.RemoteTLS,
		WorkerRetry: s.cfg.WorkerRetry,
		Config:      cfg,
	}
}

// computeResult runs e under cfg with admission control and persists the
// canonical result. On success it returns the stored bytes and status 0.
func (s *Server) computeResult(ctx context.Context, key string, e *exp.Experiment, cfg exp.RunConfig, timeout time.Duration) ([]byte, int, errorEnvelope) {
	release, err := s.sem.Acquire(ctx, planWeight(e, cfg))
	if err != nil {
		status, env := envelopeFor(err, e.Name)
		return nil, status, env
	}
	defer release()
	// A near-miss race (another request computed and stored this key while
	// we waited for admission) is served from disk instead of recomputed.
	if raw, ok, err := s.cfg.Store.Get(key); err == nil && ok {
		return raw, 0, errorEnvelope{}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	s.computes.Add(1)
	results, err := exp.RunBatch(ctx, []*exp.Experiment{e}, s.batchOptions(cfg))
	if err != nil {
		status, env := envelopeFor(err, e.Name)
		return nil, status, env
	}
	s.recordTraffic(results[0])
	raw, err := s.cfg.Store.Put(key, results[0])
	if err != nil {
		status, env := envelopeFor(err, e.Name)
		return nil, status, env
	}
	return raw, 0, errorEnvelope{}
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	// Experiments names the experiments to run, in request order. Empty, or
	// the single element "all", selects the whole catalog in registry order.
	Experiments []string `json:"experiments"`
	Preset      string   `json:"preset,omitempty"`
	Seed        uint64   `json:"seed,omitempty"`
	Parallel    int      `json:"parallel,omitempty"`
	Shards      int      `json:"shards,omitempty"`
	// ShardLayout selects the shard partitioning layout ("range" or
	// "subtree"); empty means range. Results are identical under both.
	ShardLayout string `json:"shard_layout,omitempty"`
	// Timeout is a Go duration string bounding the whole batch; it may
	// lower the server ceiling, never raise it.
	Timeout string `json:"timeout,omitempty"`
}

// flushWriter flushes after every write so NDJSON lines reach the client as
// results complete, not when the response buffer fills.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// handleBatch streams NDJSON results as the batch's experiments finish
// (exp.RunBatch's emitter), writing each result through to the store. A
// failure after streaming began is reported as a final NDJSON error
// envelope line — the 200 header is already on the wire.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batchReqs.Add(1)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, errorEnvelope{Error: "decoding request body: " + err.Error(), Label: "batch"})
		return
	}
	var reqTimeout time.Duration
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			s.writeError(w, http.StatusBadRequest, errorEnvelope{Error: fmt.Sprintf("timeout %q: want a positive Go duration like 30s", req.Timeout), Label: "batch"})
			return
		}
		reqTimeout = d
	}
	if req.ShardLayout != "" {
		if err := validShardLayout(req.ShardLayout); err != nil {
			s.writeError(w, http.StatusBadRequest, errorEnvelope{Error: err.Error(), Label: "batch"})
			return
		}
	}
	cfg := exp.RunConfig{Preset: req.Preset, Seed: req.Seed,
		Parallelism: req.Parallel, Shards: req.Shards, ShardLayout: req.ShardLayout}

	var exps []*exp.Experiment
	if len(req.Experiments) == 0 || (len(req.Experiments) == 1 && req.Experiments[0] == "all") {
		exps = exp.List()
	} else {
		for _, name := range req.Experiments {
			e, ok := exp.Lookup(name)
			if !ok {
				status, env := envelopeFor(exp.ErrUnknownExperiment(name), name)
				s.writeError(w, status, env)
				return
			}
			exps = append(exps, e)
		}
	}
	// Validate presets (and derive admission weight) before any output, so
	// configuration mistakes get a clean 400 instead of a broken stream.
	var weight int64
	for _, e := range exps {
		if _, err := e.ResultKeyFor(cfg); err != nil {
			s.writeError(w, http.StatusBadRequest, errorEnvelope{Error: err.Error(), Label: e.Name})
			return
		}
		weight += planWeight(e, cfg)
	}

	ctx := r.Context()
	release, err := s.sem.Acquire(ctx, weight)
	if err != nil {
		status, env := envelopeFor(err, "batch")
		s.writeError(w, status, env)
		return
	}
	defer release()
	if d := s.effectiveTimeout(reqTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	stream := flushWriter{w: w, f: flusher}

	s.computes.Add(1)
	opts := s.batchOptions(cfg)
	opts.Stream = stream
	results, err := exp.RunBatch(ctx, exps, opts)
	if err != nil {
		// Mid-stream failure: deliver the envelope as the final NDJSON line.
		_, env := envelopeFor(err, "batch")
		raw, _ := json.Marshal(env)
		stream.Write(append(raw, '\n'))
		return
	}
	for _, res := range results {
		s.recordTraffic(res)
		if _, err := s.cfg.Store.Put(exp.ResultKey(res), res); err != nil {
			_, env := envelopeFor(err, "batch")
			raw, _ := json.Marshal(env)
			stream.Write(append(raw, '\n'))
			return
		}
		s.batchResults.Add(1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statszBody is the /statsz JSON document: the service's own telemetry.
type statszBody struct {
	UptimeMS float64 `json:"uptime_ms"`
	Requests struct {
		Catalog uint64 `json:"catalog"`
		Result  uint64 `json:"result"`
		// NotModified counts result requests revalidated by If-None-Match
		// (304, no store read, no computation).
		NotModified uint64 `json:"not_modified"`
		Batch       uint64 `json:"batch"`
		// Computes counts admitted computations (cold results and batches);
		// warm requests never compute.
		Computes uint64 `json:"computes"`
	} `json:"requests"`
	Singleflight struct {
		// Leaders counts cold computations started; Joined counts requests
		// that piggybacked on an identical in-flight computation.
		Leaders uint64 `json:"leaders"`
		Joined  uint64 `json:"joined"`
	} `json:"singleflight"`
	Admission struct {
		Capacity       int64  `json:"capacity"`
		InFlightWeight int64  `json:"in_flight_weight"`
		Queued         int    `json:"queued"`
		MaxQueue       int    `json:"max_queue"`
		Rejected       uint64 `json:"rejected"`
	} `json:"admission"`
	// ResultStore is the memoization layer; Hits counts requests served
	// without any computation.
	ResultStore StoreStats `json:"result_store"`
	// InstanceCache is the shared compute-tier cache every request's tasks
	// draw instances from (hit/miss/build-time, per-kind breakdown).
	InstanceCache inst.Stats `json:"instance_cache"`
	// ShardTraffic is the cumulative cross-shard traffic of freshly computed
	// sharded results, keyed by shard layout ("range", "subtree"). Empty
	// until a sharded computation runs.
	ShardTraffic map[string]LayoutTraffic `json:"shard_traffic"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	var body statszBody
	body.UptimeMS = float64(time.Since(s.started).Microseconds()) / 1000
	body.Requests.Catalog = s.catalogReqs.Load()
	body.Requests.Result = s.resultReqs.Load()
	body.Requests.NotModified = s.notModified.Load()
	body.Requests.Batch = s.batchReqs.Load()
	body.Requests.Computes = s.computes.Load()
	body.Singleflight.Leaders = s.flightLeads.Load()
	body.Singleflight.Joined = s.flightJoins.Load()
	inUse, queued, rejected := s.sem.snapshot()
	body.Admission.Capacity = s.cfg.MaxInFlight
	body.Admission.InFlightWeight = inUse
	body.Admission.Queued = queued
	body.Admission.MaxQueue = s.cfg.MaxQueue
	body.Admission.Rejected = rejected
	body.ResultStore = s.cfg.Store.Stats()
	body.InstanceCache = exp.InstanceCache().Stats()
	body.ShardTraffic = s.trafficSnapshot()
	raw, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, errorEnvelope{Error: err.Error(), Label: "statsz"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(raw, '\n'))
}
