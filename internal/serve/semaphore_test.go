package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSemaphoreBasic: immediate grant within capacity, release restores it.
func TestSemaphoreBasic(t *testing.T) {
	s := newSemaphore(4, 0)
	rel1, err := s.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if inUse, _, _ := s.snapshot(); inUse != 3 {
		t.Fatalf("inUse = %d, want 3", inUse)
	}
	rel2, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	rel2()
	if inUse, queued, _ := s.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("after release: inUse=%d queued=%d, want 0/0", inUse, queued)
	}
}

// TestSemaphoreClampsOversizedWeight: a request heavier than the whole
// capacity still runs (alone) instead of never being admitted.
func TestSemaphoreClampsOversizedWeight(t *testing.T) {
	s := newSemaphore(2, 0)
	rel, err := s.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if inUse, _, _ := s.snapshot(); inUse != 2 {
		t.Fatalf("inUse = %d, want clamped 2", inUse)
	}
	rel()
	if inUse, _, _ := s.snapshot(); inUse != 0 {
		t.Fatal("clamped weight not fully released")
	}
}

// TestSemaphoreSaturation: a full semaphore with a full queue rejects with
// ErrSaturated and counts the rejection.
func TestSemaphoreSaturation(t *testing.T) {
	s := newSemaphore(1, 0)
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if _, _, rejected := s.snapshot(); rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
	rel()
	rel2, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("post-release acquire failed: %v", err)
	}
	rel2()
}

// TestSemaphoreFIFOGrant: queued waiters are granted in arrival order, and
// a light late-comer cannot jump a heavy earlier waiter.
func TestSemaphoreFIFOGrant(t *testing.T) {
	s := newSemaphore(2, 2)
	relA, err := s.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 2)
	var wg sync.WaitGroup
	acquire := func(name string, weight int64) {
		defer wg.Done()
		rel, err := s.Acquire(context.Background(), weight)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		order <- name
		rel()
	}
	wg.Add(1)
	go acquire("heavy", 2)
	// Ensure "heavy" is queued before "light" arrives.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, queued, _ := s.snapshot(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heavy waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go acquire("light", 1)
	for {
		if _, queued, _ := s.snapshot(); queued == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("light waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	relA()
	wg.Wait()
	if first := <-order; first != "heavy" {
		t.Fatalf("first grant = %s, want heavy (FIFO)", first)
	}
}

// TestSemaphoreQueueBound: the queue admits exactly maxQueue waiters.
func TestSemaphoreQueueBound(t *testing.T) {
	s := newSemaphore(1, 1)
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		rel2, err := s.Acquire(context.Background(), 1)
		if err == nil {
			rel2()
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, queued, _ := s.snapshot(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second waiter: err = %v, want ErrSaturated", err)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

// TestSemaphoreContextCancelWhileQueued: a canceled waiter leaves the queue
// without leaking capacity or blocking later grants.
func TestSemaphoreContextCancelWhileQueued(t *testing.T) {
	s := newSemaphore(1, 4)
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, 1)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, queued, _ := s.snapshot(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, queued, _ := s.snapshot(); queued != 0 {
		t.Fatal("canceled waiter still queued")
	}
	rel()
	rel2, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire after canceled waiter: %v", err)
	}
	rel2()
	if inUse, queued, _ := s.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("leaked state: inUse=%d queued=%d", inUse, queued)
	}
}
