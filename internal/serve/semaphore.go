package serve

// Admission control: a weighted semaphore with a bounded wait queue. The
// weight unit is one schedulable task (one sweep point), so a stress-preset
// batch request weighs its whole task count while a catalog lookup weighs
// nothing. Saturation — the queue bound reached — is reported immediately as
// ErrSaturated, which the HTTP layer maps to 429 + Retry-After: the service
// sheds load instead of queuing unboundedly.

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by Acquire when the semaphore is full and the
// wait queue has reached its bound. The HTTP layer maps it to 429.
var ErrSaturated = errors.New("serve: compute saturated")

// waiter is one queued acquisition; ready is closed when capacity is
// granted.
type waiter struct {
	weight int64
	ready  chan struct{}
}

// semaphore is a weighted semaphore with FIFO granting and a bounded wait
// queue. The zero value is not usable; construct with newSemaphore.
type semaphore struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	maxQueue int
	queue    *list.List // of *waiter, FIFO
	rejected uint64
}

func newSemaphore(capacity int64, maxQueue int) *semaphore {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &semaphore{capacity: capacity, maxQueue: maxQueue, queue: list.New()}
}

// Acquire claims weight units of capacity, waiting in FIFO order while the
// semaphore is full, and returns the matching release function. Weights
// larger than the total capacity are clamped to it (a request bigger than
// the machine still runs — alone — rather than never). Acquire fails with
// ErrSaturated when the wait queue is at its bound, or with ctx.Err() when
// the context ends first; in both cases no capacity is held.
func (s *semaphore) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > s.capacity {
		weight = s.capacity
	}
	s.mu.Lock()
	// Grant immediately only when no earlier waiter is queued, so a heavy
	// request cannot be starved by a stream of light ones slipping past it.
	if s.inUse+weight <= s.capacity && s.queue.Len() == 0 {
		s.inUse += weight
		s.mu.Unlock()
		return func() { s.release(weight) }, nil
	}
	if s.queue.Len() >= s.maxQueue {
		s.rejected++
		s.mu.Unlock()
		return nil, ErrSaturated
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := s.queue.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return func() { s.release(weight) }, nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: the capacity is ours, so
			// hand it straight back.
			s.mu.Unlock()
			s.release(weight)
		default:
			s.queue.Remove(elem)
			s.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// release returns weight units and grants queued waiters in FIFO order
// while they fit.
func (s *semaphore) release(weight int64) {
	s.mu.Lock()
	s.inUse -= weight
	if s.inUse < 0 { // defensive; Acquire/release weights always pair
		s.inUse = 0
	}
	for s.queue.Len() > 0 {
		w := s.queue.Front().Value.(*waiter)
		if s.inUse+w.weight > s.capacity {
			break
		}
		s.queue.Remove(s.queue.Front())
		s.inUse += w.weight
		close(w.ready)
	}
	s.mu.Unlock()
}

// snapshot reports the current admission state for /statsz.
func (s *semaphore) snapshot() (inUse int64, queued int, rejected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse, s.queue.Len(), s.rejected
}
