package serve

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/measure"
)

func testResult(name, preset string, seed uint64) *exp.Result {
	return &exp.Result{
		Schema:    exp.SchemaVersion,
		Name:      name,
		Preset:    preset,
		Seed:      seed,
		ElapsedMS: 12.5, // must be stripped by the canonical form
		Tables:    []measure.Table{{Title: name, Header: []string{"a"}}},
	}
}

// TestStoreRoundTrip: Put returns exactly the bytes a later Get serves,
// and they are the canonical (elapsed-stripped) form.
func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	res := testResult("test-store-rt", "quick", 3)
	key := exp.ResultKey(res)

	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("Get before Put: ok=%v err=%v", ok, err)
	}
	put, err := s.Put(key, res)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.CanonicalJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(put, want) {
		t.Fatal("Put bytes differ from exp.CanonicalJSON")
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, put) {
		t.Fatal("Get bytes differ from Put bytes")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

// TestStoreRejectsForgedKeys: keys with separators or dot segments cannot
// escape the store directory.
func TestStoreRejectsForgedKeys(t *testing.T) {
	s, err := NewStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a/b", `a\b`, "../escape", "a..b"} {
		if _, _, err := s.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a forged key", key)
		}
		if _, err := s.Put(key, testResult("x", "quick", 1)); err == nil {
			t.Errorf("Put(%q) accepted a forged key", key)
		}
	}
}

// TestStoreInterchangeableWithOutDir: a directory written by
// exp.WriteResults (cmd/experiments -out) serves as a pre-warmed store —
// the byte contract is shared.
func TestStoreInterchangeableWithOutDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	res := testResult("test-store-interop", "quick", 9)
	if err := exp.WriteResults(dir, []*exp.Result{res}); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok, err := s.Get(exp.ResultKey(res))
	if err != nil || !ok {
		t.Fatalf("store over -out dir missed: ok=%v err=%v", ok, err)
	}
	want, _ := exp.CanonicalJSON(res)
	if !bytes.Equal(raw, want) {
		t.Fatal("pre-warmed bytes differ from canonical form")
	}
}
