package serve

// The load-test harness behind `expd loadtest`: it boots a real Server on a
// loopback listener, drives it with concurrent HTTP clients, and reports
// cold (result-store miss, full compute) versus warm (store hit, zero
// compute) latency and throughput per concurrency level. The committed
// BENCH_expd.json is one run of this harness.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// LoadOptions parameterizes LoadTest.
type LoadOptions struct {
	// Experiment and Preset select the queried result family; every request
	// uses a distinct seed, so each cold request is a genuinely distinct
	// key requiring a full computation.
	Experiment string
	Preset     string
	// Requests is the request count per phase per concurrency level.
	Requests int
	// Concurrency lists the client concurrency levels to measure.
	Concurrency []int
	// Jobs is the server-side task parallelism per admitted computation.
	Jobs int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// PhaseStats are the measurements of one phase (cold or warm) at one
// concurrency level.
type PhaseStats struct {
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	TotalMS       float64 `json:"total_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	MaxMS         float64 `json:"max_ms"`
	// StoreHits is how many of the phase's requests the result store
	// absorbed: 0 in a cold phase, Requests in a fully warm one.
	StoreHits uint64 `json:"store_hits"`
}

// LevelStats pairs the two phases measured at one concurrency level.
type LevelStats struct {
	Concurrency int        `json:"concurrency"`
	Cold        PhaseStats `json:"cold"`
	Warm        PhaseStats `json:"warm"`
}

// LoadReport is the marshaled outcome of a LoadTest run.
type LoadReport struct {
	Schema           int    `json:"schema"`
	Experiment       string `json:"experiment"`
	Preset           string `json:"preset"`
	RequestsPerPhase int    `json:"requests_per_phase"`
	ServerJobs       int    `json:"server_jobs"`
	// Note documents the phase semantics for readers of the committed file.
	Note   string       `json:"note"`
	Levels []LevelStats `json:"levels"`
}

// LoadTest measures the service under concurrent clients: for each
// concurrency level, a cold phase of Requests distinct-seed requests (every
// one computes) followed by a warm phase replaying the same requests (every
// one is a store hit). The server runs in-process on a loopback listener
// with admission sized generously — the harness measures latency under
// load, not shedding (shedding is covered by the 429 tests).
func LoadTest(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.Experiment == "" {
		opts.Experiment = "twocoloring-gap"
	}
	if opts.Preset == "" {
		opts.Preset = "quick"
	}
	if opts.Requests <= 0 {
		opts.Requests = 32
	}
	if len(opts.Concurrency) == 0 {
		opts.Concurrency = []int{1, 8}
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	dir, err := os.MkdirTemp("", "expd-loadtest-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := NewStore(dir)
	if err != nil {
		return nil, err
	}
	srv, err := New(Config{
		Store: store,
		Jobs:  opts.Jobs,
		// Admission sized so the harness never sheds: capacity for every
		// client's whole task weight plus queue headroom.
		MaxInFlight: 1 << 20,
		MaxQueue:    1 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	maxC := 0
	for _, c := range opts.Concurrency {
		if c > maxC {
			maxC = c
		}
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: maxC}}

	report := &LoadReport{
		Schema:           1,
		Experiment:       opts.Experiment,
		Preset:           opts.Preset,
		RequestsPerPhase: opts.Requests,
		ServerJobs:       srv.cfg.Jobs,
		Note: "cold = result-store miss (distinct seed per request, full compute); " +
			"warm = same requests replayed (store hit, zero compute)",
	}
	seedBase := uint64(1000)
	for li, conc := range opts.Concurrency {
		if conc < 1 {
			conc = 1
		}
		urls := make([]string, opts.Requests)
		for i := range urls {
			seed := seedBase + uint64(li*opts.Requests+i)
			urls[i] = fmt.Sprintf("%s/v1/experiments/%s?preset=%s&seed=%d",
				base, opts.Experiment, opts.Preset, seed)
		}
		level := LevelStats{Concurrency: conc}
		logf("level c=%d: cold phase (%d requests)", conc, opts.Requests)
		level.Cold, err = runPhase(ctx, client, store, urls, conc)
		if err != nil {
			return nil, err
		}
		logf("level c=%d: warm phase (%d requests)", conc, opts.Requests)
		level.Warm, err = runPhase(ctx, client, store, urls, conc)
		if err != nil {
			return nil, err
		}
		report.Levels = append(report.Levels, level)
		logf("level c=%d: cold %.1f req/s p50 %.1fms | warm %.1f req/s p50 %.2fms",
			conc, level.Cold.ThroughputRPS, level.Cold.P50MS,
			level.Warm.ThroughputRPS, level.Warm.P50MS)
	}
	return report, nil
}

// runPhase fires the urls across conc workers and aggregates latencies.
func runPhase(ctx context.Context, client *http.Client, store *Store, urls []string, conc int) (PhaseStats, error) {
	hitsBefore := store.Stats().Hits
	latencies := make([]float64, len(urls))
	errs := make([]error, len(urls))
	next := make(chan int)
	var wg sync.WaitGroup
	started := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				errs[i] = fetchOK(ctx, client, urls[i])
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
			}
		}()
	}
	for i := range urls {
		next <- i
	}
	close(next)
	wg.Wait()
	total := time.Since(started)

	var st PhaseStats
	st.Requests = len(urls)
	for _, err := range errs {
		if err != nil {
			st.Errors++
		}
	}
	if ctx.Err() != nil {
		return st, ctx.Err()
	}
	st.TotalMS = float64(total.Microseconds()) / 1000
	if total > 0 {
		st.ThroughputRPS = float64(len(urls)) / total.Seconds()
	}
	sort.Float64s(latencies)
	st.P50MS = percentile(latencies, 50)
	st.P95MS = percentile(latencies, 95)
	st.MaxMS = latencies[len(latencies)-1]
	st.StoreHits = store.Stats().Hits - hitsBefore
	return st, nil
}

// fetchOK performs one GET and fails on any non-200 or empty body.
func fetchOK(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, raw)
	}
	if len(raw) == 0 {
		return fmt.Errorf("%s: empty body", url)
	}
	return nil
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}
