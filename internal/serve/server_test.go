package serve

// The service contract tests: catalog and result byte-identity with the
// cmd/experiments outputs, the warm path (store hit, zero computation, zero
// instance builds), singleflight coalescing of identical cold requests,
// admission saturation (429, never unbounded queuing), the JSON error
// envelope with its status mapping, batch NDJSON streaming with store
// write-through, and request-context propagation into compute cancellation.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/measure"
)

// newTestServer boots a Server over a fresh store with the given config
// tweaks and returns it with its HTTP test frontend.
func newTestServer(t *testing.T, tweak func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	store, err := NewStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: store, Jobs: 2}
	if tweak != nil {
		tweak(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// registerServeExp registers a throwaway experiment under a unique
// test-serve- name (the test- prefix keeps it out of CatalogHash). The run
// function receives the resolved preset/seed pre-stamped result to fill in.
func registerServeExp(t *testing.T, name string, run func(ctx context.Context, res *exp.Result) error) string {
	t.Helper()
	full := "test-serve-" + name
	e := &exp.Experiment{
		Name:        full,
		Description: "serve test fixture",
		DefaultSeed: 7,
	}
	e.Run = func(ctx context.Context, cfg exp.RunConfig) (*exp.Result, error) {
		preset := cfg.Preset
		if preset == "" {
			preset = exp.PresetStandard
		}
		seed := cfg.Seed
		if seed == 0 {
			seed = e.DefaultSeed
		}
		res := &exp.Result{
			Schema: exp.SchemaVersion,
			Name:   full,
			Preset: preset,
			Seed:   seed,
			Tables: []measure.Table{{Title: full, Header: []string{"k", "v"}}},
		}
		if err := run(ctx, res); err != nil {
			return nil, err
		}
		return res, nil
	}
	if err := exp.Register(e); err != nil {
		t.Fatal(err)
	}
	return full
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func decodeEnvelope(t *testing.T, raw []byte) errorEnvelope {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("response %q is not a JSON envelope: %v", raw, err)
	}
	if env.Error == "" {
		t.Fatalf("envelope %q has an empty error field", raw)
	}
	return env
}

// TestCatalogEndpoint: GET /v1/experiments returns exactly the
// exp.Catalog JSON that `experiments -list -json` prints.
func TestCatalogEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, hdr, raw := get(t, ts.URL+"/v1/experiments")
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%s)", status, raw)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	want, err := json.MarshalIndent(exp.Catalog(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(raw, want) {
		t.Fatal("served catalog differs from exp.Catalog JSON")
	}
	var entries []exp.CatalogEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) < 18 {
		t.Fatalf("catalog has %d entries, want the full registry (>= 18)", len(entries))
	}
}

// TestResultByteIdenticalToWriteResults: the served body for a real
// experiment is byte-identical to the canonical per-result file
// cmd/experiments -out would write for the same (experiment, preset, seed),
// and a repeat request serves the identical bytes from the store.
func TestResultByteIdenticalToWriteResults(t *testing.T) {
	_, ts := newTestServer(t, nil)
	const name, preset = "survivors", "quick"

	status, hdr, raw := get(t, ts.URL+"/v1/experiments/"+name+"?preset="+preset)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, raw)
	}
	if s := hdr.Get("X-Expd-Store"); s != "miss" {
		t.Fatalf("first request store header = %q, want miss", s)
	}

	// The reference bytes: the same run through the cmd/experiments
	// persistence path (serial RunBatch + WriteResults directory form).
	e, ok := exp.Lookup(name)
	if !ok {
		t.Fatalf("experiment %s not registered", name)
	}
	cfg := exp.RunConfig{Preset: preset}
	results, err := exp.RunBatch(context.Background(), []*exp.Experiment{e}, exp.BatchOptions{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(t.TempDir(), "out")
	if err := exp.WriteResults(outDir, results); err != nil {
		t.Fatal(err)
	}
	key, err := e.ResultKeyFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(outDir, key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("served result differs from the canonical %s.json written by WriteResults", key)
	}

	status, hdr, raw2 := get(t, ts.URL+"/v1/experiments/"+name+"?preset="+preset)
	if status != http.StatusOK {
		t.Fatalf("repeat status = %d", status)
	}
	if s := hdr.Get("X-Expd-Store"); s != "hit" {
		t.Fatalf("repeat request store header = %q, want hit", s)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("warm bytes differ from cold bytes")
	}
}

// TestResultOverRemoteWorkersByteIdentical: a service configured with
// Config.Remote dispatches its computations to TCP workers and serves
// bytes identical to an in-process service — the compute tier is
// interchangeable underneath the store.
func TestResultOverRemoteWorkersByteIdentical(t *testing.T) {
	const name, preset = "survivors", "quick"
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = exp.ServeWorker(ctx, l)
	}()
	t.Cleanup(func() {
		cancel()
		<-served
	})

	_, local := newTestServer(t, nil)
	_, remote := newTestServer(t, func(c *Config) {
		c.Remote = []string{l.Addr().String()}
		c.WorkerRetry = true
	})

	status, _, want := get(t, local.URL+"/v1/experiments/"+name+"?preset="+preset)
	if status != http.StatusOK {
		t.Fatalf("in-process status = %d: %s", status, want)
	}
	status, hdr, got := get(t, remote.URL+"/v1/experiments/"+name+"?preset="+preset)
	if status != http.StatusOK {
		t.Fatalf("remote-workers status = %d: %s", status, got)
	}
	if s := hdr.Get("X-Expd-Store"); s != "miss" {
		t.Fatalf("remote request store header = %q, want miss (computed on the worker)", s)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result computed over remote TCP workers differs from the in-process bytes")
	}
}

// TestResultETagRevalidation: /v1/experiments/{name} responses carry a
// strong ETag (the quoted ResultKey), and a request presenting it via
// If-None-Match is answered 304 before the store is read — zero store
// traffic, zero computation. A stale tag still gets the full body.
func TestResultETagRevalidation(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/experiments/survivors?preset=quick"

	status, hdr, raw := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("cold status = %d: %s", status, raw)
	}
	etag := hdr.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted strong tag", etag)
	}
	if want := `"` + hdr.Get("X-Expd-Result-Key") + `"`; etag != want {
		t.Fatalf("ETag = %q, want quoted result key %q", etag, want)
	}

	hitsBefore := srv.cfg.Store.Stats().Hits
	computesBefore := srv.computes.Load()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304 (%s)", resp.StatusCode, body)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}
	if d := srv.cfg.Store.Stats().Hits - hitsBefore; d != 0 {
		t.Fatalf("revalidation read the store %d times, want 0", d)
	}
	if d := srv.computes.Load() - computesBefore; d != 0 {
		t.Fatalf("revalidation ran %d computations, want 0", d)
	}
	if srv.notModified.Load() != 1 {
		t.Fatalf("notModified counter = %d, want 1", srv.notModified.Load())
	}

	// A stale (non-matching) validator falls through to the full response.
	req.Header.Set("If-None-Match", `"stale-tag"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-tag status = %d, want 200", resp.StatusCode)
	}
	if !bytes.Equal(body, raw) {
		t.Fatal("stale-tag response differs from the original bytes")
	}
}

// TestWarmRequestBuildsNothing mirrors TestWarmCacheRepeatBuildsNothing at
// the service layer: a repeated request is absorbed by the result store —
// zero computations and zero instance builds.
func TestWarmRequestBuildsNothing(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	url := ts.URL + "/v1/experiments/twocoloring-gap?preset=quick"
	if status, _, raw := get(t, url); status != http.StatusOK {
		t.Fatalf("cold status = %d: %s", status, raw)
	}
	buildsBefore := exp.InstanceCache().Stats().Builds
	computesBefore := srv.computes.Load()
	hitsBefore := srv.cfg.Store.Stats().Hits

	if status, hdr, _ := get(t, url); status != http.StatusOK {
		t.Fatalf("warm status = %d", status)
	} else if s := hdr.Get("X-Expd-Store"); s != "hit" {
		t.Fatalf("warm store header = %q, want hit", s)
	}

	if d := exp.InstanceCache().Stats().Builds - buildsBefore; d != 0 {
		t.Fatalf("warm request performed %d instance builds, want 0", d)
	}
	if d := srv.computes.Load() - computesBefore; d != 0 {
		t.Fatalf("warm request ran %d computations, want 0", d)
	}
	if d := srv.cfg.Store.Stats().Hits - hitsBefore; d != 1 {
		t.Fatalf("store hits advanced by %d, want 1", d)
	}
}

// TestSingleflightColdComputesOnce: identical concurrent cold requests
// share one computation and all receive the same bytes.
func TestSingleflightColdComputesOnce(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	name := registerServeExp(t, "singleflight", func(ctx context.Context, res *exp.Result) error {
		if runs.Add(1) == 1 {
			close(started)
		}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	url := ts.URL + "/v1/experiments/" + name

	const clients = 6
	bodies := make([][]byte, clients)
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		statuses[0], _, bodies[0] = get(t, url)
	}()
	<-started // the leader is computing; everyone else must join its flight
	for i := 1; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, bodies[i] = get(t, url)
		}(i)
	}
	// Wait until every follower has joined before releasing the compute.
	deadline := time.Now().Add(5 * time.Second)
	for srv.flightJoins.Load() < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined the flight", srv.flightJoins.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d status = %d (%s)", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("experiment ran %d times, want 1 (singleflight)", n)
	}
}

// TestSaturationReturns429: with capacity 1 and no queue, a request
// arriving while compute is busy is shed with 429 + Retry-After and the
// envelope, not queued; after the running request finishes, service resumes.
func TestSaturationReturns429(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 0
		c.RetryAfter = 2 * time.Second
	})
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := registerServeExp(t, "saturate-a", func(ctx context.Context, res *exp.Result) error {
		close(started)
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	quick := registerServeExp(t, "saturate-b", func(ctx context.Context, res *exp.Result) error {
		return nil
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		if status, _, raw := get(t, ts.URL+"/v1/experiments/"+blocker); status != http.StatusOK {
			t.Errorf("blocker status = %d: %s", status, raw)
		}
	}()
	<-started

	status, hdr, raw := get(t, ts.URL+"/v1/experiments/"+quick)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (%s)", status, raw)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
	env := decodeEnvelope(t, raw)
	if env.Label != quick {
		t.Fatalf("envelope label = %q, want %q", env.Label, quick)
	}
	if _, _, rejected := srv.sem.snapshot(); rejected == 0 {
		t.Fatal("admission rejected counter did not advance")
	}

	close(release)
	<-done
	if status, _, raw := get(t, ts.URL+"/v1/experiments/"+quick); status != http.StatusOK {
		t.Fatalf("post-saturation status = %d: %s", status, raw)
	}
}

// TestErrorEnvelopeStatusCodes: the envelope and status mapping for bad
// requests and compute deadline expiry.
func TestErrorEnvelopeStatusCodes(t *testing.T) {
	_, ts := newTestServer(t, nil)
	slow := registerServeExp(t, "timeout", func(ctx context.Context, res *exp.Result) error {
		<-ctx.Done()
		return ctx.Err()
	})

	cases := []struct {
		name   string
		url    string
		status int
		label  string
	}{
		{"unknown experiment", "/v1/experiments/no-such-exp", http.StatusBadRequest, "no-such-exp"},
		{"unknown preset", "/v1/experiments/survivors?preset=bogus", http.StatusBadRequest, "survivors"},
		{"bad seed", "/v1/experiments/survivors?seed=banana", http.StatusBadRequest, "survivors"},
		{"bad shards", "/v1/experiments/survivors?shards=lots", http.StatusBadRequest, "survivors"},
		{"bad timeout", "/v1/experiments/survivors?timeout=-3", http.StatusBadRequest, "survivors"},
		{"deadline exceeded", "/v1/experiments/" + slow + "?timeout=50ms", http.StatusGatewayTimeout, slow},
	}
	for _, tc := range cases {
		status, _, raw := get(t, ts.URL+tc.url)
		if status != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, status, tc.status, raw)
			continue
		}
		if env := decodeEnvelope(t, raw); env.Label != tc.label {
			t.Errorf("%s: label = %q, want %q", tc.name, env.Label, tc.label)
		}
	}
}

// TestBatchStreamsAndWritesThrough: POST /v1/batch streams one NDJSON line
// per experiment and persists every canonical result in the store.
func TestBatchStreamsAndWritesThrough(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	body := `{"experiments":["survivors","pathlcl-classify"],"preset":"quick"}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("stream has %d lines, want 2:\n%s", len(lines), raw)
	}
	for _, line := range lines {
		var res exp.Result
		if err := json.Unmarshal(line, &res); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if res.Name == "" || len(res.Tables) == 0 {
			t.Fatalf("line %q is not a result", line)
		}
		key := exp.ResultKey(&res)
		if _, ok, err2 := srv.cfg.Store.Get(key); err2 != nil || !ok {
			t.Fatalf("store missing write-through for %s (ok=%v err=%v)", key, ok, err2)
		}
	}
}

// TestBatchUnknownExperiment: a bad batch body fails with the envelope
// before any streaming begins.
func TestBatchUnknownExperiment(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"experiments":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, raw)
	}
	if env := decodeEnvelope(t, raw); env.Label != "nope" {
		t.Fatalf("label = %q, want nope", env.Label)
	}
}

// TestBatchMidStreamFailure: a task failure after streaming began is
// delivered as a trailing NDJSON error-envelope line carrying the batch
// runner's labeled error.
func TestBatchMidStreamFailure(t *testing.T) {
	_, ts := newTestServer(t, nil)
	failing := registerServeExp(t, "batch-fail", func(ctx context.Context, res *exp.Result) error {
		return fmt.Errorf("synthetic task failure")
	})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(fmt.Sprintf(`{"experiments":[%q]}`, failing)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	last := lines[len(lines)-1]
	env := decodeEnvelope(t, last)
	if !strings.Contains(env.Error, "synthetic task failure") {
		t.Fatalf("trailing envelope %q does not carry the task failure", last)
	}
	if env.Label != "batch" {
		t.Fatalf("trailing envelope label = %q, want batch", env.Label)
	}
}

// TestClientDisconnectCancelsCompute: when every request waiting on a cold
// computation goes away, the computation's context is canceled (request
// contexts propagate into the batch runner's cancellation machinery).
func TestClientDisconnectCancelsCompute(t *testing.T) {
	_, ts := newTestServer(t, nil)
	started := make(chan struct{})
	canceled := make(chan struct{})
	name := registerServeExp(t, "disconnect", func(ctx context.Context, res *exp.Result) error {
		close(started)
		<-ctx.Done()
		close(canceled)
		return ctx.Err()
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/experiments/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-started
	cancel() // the only client disconnects
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context not canceled after the last client left")
	}
	if err := <-errc; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}
}
