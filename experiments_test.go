// The end-to-end driver tests, exercised through the stable root-package
// wrappers (they lived in the retired internal/core package; the registry
// path is covered separately in internal/exp).
package repro

import (
	"strings"
	"testing"
)

func TestHierarchical35SlopeIsLinearInScale(t *testing.T) {
	res, err := Hierarchical35(2, []int{4, 8, 16, 24}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slope < 0.7 || res.Slope > 1.3 {
		t.Fatalf("slope %.3f, want ~1 (Theorem 11 shape)", res.Slope)
	}
}

func TestHierarchical35K3(t *testing.T) {
	res, err := Hierarchical35(3, []int{2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatal("missing points")
	}
}

func TestWeighted25SlopeMatchesAlpha1(t *testing.T) {
	res, err := Weighted25(5, 2, 2, []int{4000, 16000, 64000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slope < res.TheorySlope-0.2 || res.Slope > res.TheorySlope+0.25 {
		t.Fatalf("slope %.3f, theory %.3f", res.Slope, res.TheorySlope)
	}
}

func TestWeighted35SlopeWithinBand(t *testing.T) {
	res, err := Weighted35(7, 3, 2, []int{8, 16, 32, 64}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slope < res.TheorySlope-0.35 || res.Slope > res.TheoryUpper+0.35 {
		t.Fatalf("slope %.3f outside [%.3f, %.3f] (±0.35)",
			res.Slope, res.TheorySlope, res.TheoryUpper)
	}
}

func TestWeightAugmentedSlopeIsHalfForK2(t *testing.T) {
	res, err := WeightAugmented(2, 5, []int{2000, 8000, 32000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slope < 0.3 || res.Slope > 0.7 {
		t.Fatalf("slope %.3f, want ~0.5 (Lemma 69)", res.Slope)
	}
}

func TestTwoColoringGapSlopeIsLinear(t *testing.T) {
	res, err := TwoColoringGap([]int{200, 400, 800}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slope < 0.85 || res.Slope > 1.15 {
		t.Fatalf("slope %.3f, want ~1 (Corollary 60)", res.Slope)
	}
}

func TestCopyFractionSlopeMatchesX(t *testing.T) {
	res, err := CopyFraction(5, 2, []int{500, 2000, 8000, 32000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slope < res.TheorySlope-0.15 || res.Slope > res.TheorySlope+0.15 {
		t.Fatalf("slope %.3f, theory x = %.3f", res.Slope, res.TheorySlope)
	}
}

func TestDensityTables(t *testing.T) {
	tb, err := DensityPoly([][2]float64{{0.1, 0.2}, {0.3, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatal("missing poly density rows")
	}
	tb2, err := DensityLogStar([][2]float64{{0.3, 0.5}}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb2.Rows) != 1 {
		t.Fatal("missing log* density rows")
	}
}

func TestPathLCLTable(t *testing.T) {
	tb, err := PathLCLTable()
	if err != nil {
		t.Fatal(err)
	}
	text := tb.Format()
	for _, want := range []string{"2-coloring", "Θ(n)", "3-coloring", "Θ(log* n)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table missing %q:\n%s", want, text)
		}
	}
}

func TestLandscapeFigures(t *testing.T) {
	f1, f2 := LandscapeFigures()
	if len(f1.Rows) < 5 || len(f2.Rows) < 7 {
		t.Fatal("figure tables too small")
	}
	if !strings.Contains(f2.Format(), "Theorem 7") {
		t.Fatal("Figure 2 missing the new gap")
	}
}

func TestTableFormatsRender(t *testing.T) {
	res, err := TwoColoringGap([]int{100, 200}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table.Format(), "node-avg") {
		t.Fatal("plain format broken")
	}
	if !strings.Contains(res.Table.Markdown(), "| n |") {
		t.Fatal("markdown format broken")
	}
}

func TestSurvivorCounts(t *testing.T) {
	tb, err := SurvivorCounts([]int{40, 60}, []int{5, 10, 20, 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
}
