package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/inst"
	"repro/internal/sim"
)

// One benchmark per experiment of the per-experiment index in DESIGN.md.
// Each bench reports the fitted exponent and the paper's exponent as custom
// metrics, so `go test -bench` regenerates the paper's scaling shapes.

func reportSlopes(b *testing.B, res *ExpResult) {
	b.Helper()
	b.ReportMetric(res.Slope, "fitted-exp")
	b.ReportMetric(res.TheorySlope, "theory-exp")
	if res.TheoryUpper != res.TheorySlope {
		b.ReportMetric(res.TheoryUpper, "theory-upper-exp")
	}
}

// Benchmark35ColoringNodeAvg regenerates E-T11 (Theorem 11).
func Benchmark35ColoringNodeAvg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Hierarchical35(2, []int{12, 24, 48, 96}, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportSlopes(b, res)
	}
}

// BenchmarkWeighted25NodeAvg regenerates E-T2T3 (Theorems 2-3).
func BenchmarkWeighted25NodeAvg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Weighted25(5, 2, 2, []int{16000, 64000, 256000, 1024000}, 2)
		if err != nil {
			b.Fatal(err)
		}
		reportSlopes(b, res)
	}
}

// BenchmarkWeighted35NodeAvg regenerates E-T4T5 (Theorems 4-5).
func BenchmarkWeighted35NodeAvg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Weighted35(7, 3, 2, []int{16, 32, 64, 128, 256}, 3, 3)
		if err != nil {
			b.Fatal(err)
		}
		reportSlopes(b, res)
	}
}

// BenchmarkWeightAugmented regenerates E-L68 (Lemmas 68-69, the Θ(√n)
// point).
func BenchmarkWeightAugmented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := WeightAugmented(2, 5, []int{4000, 16000, 64000}, 4)
		if err != nil {
			b.Fatal(err)
		}
		reportSlopes(b, res)
	}
}

// BenchmarkTwoColoringPath regenerates E-C60 (Corollary 60).
func BenchmarkTwoColoringPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := TwoColoringGap([]int{200, 400, 800, 1600}, 5)
		if err != nil {
			b.Fatal(err)
		}
		reportSlopes(b, res)
	}
}

// BenchmarkDFreeCopyFraction regenerates E-L40 (Lemma 40).
func BenchmarkDFreeCopyFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := CopyFraction(5, 2, []int{1000, 4000, 16000, 64000})
		if err != nil {
			b.Fatal(err)
		}
		reportSlopes(b, res)
	}
}

// BenchmarkDensityPoly regenerates E-T1 (Theorem 1).
func BenchmarkDensityPoly(b *testing.B) {
	intervals := [][2]float64{{0.05, 0.1}, {0.1, 0.2}, {0.2, 0.3}, {0.3, 0.4}, {0.4, 0.5}}
	for i := 0; i < b.N; i++ {
		if _, err := DensityPoly(intervals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDensityLogStar regenerates E-T6 (Theorem 6).
func BenchmarkDensityLogStar(b *testing.B) {
	intervals := [][2]float64{{0.2, 0.4}, {0.4, 0.6}, {0.6, 0.8}}
	for i := 0; i < b.N; i++ {
		if _, err := DensityLogStar(intervals, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathLCLClassify regenerates E-T7 (Theorem 7 demonstration).
func BenchmarkPathLCLClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := PathLCLTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLandscapeTables regenerates F1/F2 (Figures 1-2).
func BenchmarkLandscapeTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f1, f2 := LandscapeFigures()
		if len(f1.Rows) == 0 || len(f2.Rows) == 0 {
			b.Fatal("empty figures")
		}
	}
}

// BenchmarkGenericAlgorithm regenerates E-GEN: the Section-4.1 generic
// algorithm end to end on a lower-bound graph (analytic accounting).
func BenchmarkGenericAlgorithm(b *testing.B) {
	h, err := graph.BuildHierarchical([]int{30, 40})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := hierarchy.NewSchedule(hierarchy.Params{
		Problem: hierarchy.Problem{K: 2, Variant: hierarchy.Coloring35},
		Gammas:  []int{10},
	})
	if err != nil {
		b.Fatal(err)
	}
	levels := graph.ComputeLevels(h.Tree, 2)
	ids := sim.DefaultIDs(h.Tree.N(), 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryRun measures the registry execution path end to end:
// lookup, preset resolution, the quick E-C60 sweep, and JSON-native result
// assembly.
func BenchmarkRegistryRun(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(ctx, "twocoloring-gap", RunConfig{Preset: "quick"})
		if err != nil {
			b.Fatal(err)
		}
		if res.Fit == nil {
			b.Fatal("missing fit")
		}
	}
}

// BenchmarkInstanceCache measures what the keyed instance cache saves: a
// cold request pays the full graph.BuildHierarchical cost of the
// Definition-18/25 lower-bound instance, a warm request is a map hit on the
// shared tree.
func BenchmarkInstanceCache(b *testing.B) {
	lengths := []int{48, 2304} // the T=48 k=2 standard-preset instance, ~113k nodes
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := inst.New(0)
			if _, err := c.Hierarchical(lengths); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := inst.New(0)
		if _, err := c.Hierarchical(lengths); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Hierarchical(lengths); err != nil {
				b.Fatal(err)
			}
		}
		s := c.Stats()
		b.ReportMetric(float64(s.Hits), "hits")
		b.ReportMetric(float64(s.Builds), "builds")
	})
}

// BenchmarkBatchRunner compares the serial and concurrent execution of a
// representative batch at the quick preset (results are identical; only
// wall-clock differs).
func BenchmarkBatchRunner(b *testing.B) {
	names := []string{
		"twocoloring-gap", "survivors", "hierarchical35-k2",
		"copyfraction-d5", "weightaug-k2", "density-poly",
	}
	exps := make([]*Experiment, len(names))
	for i, name := range names {
		e, ok := LookupExperiment(name)
		if !ok {
			b.Fatalf("%q not registered", name)
		}
		exps[i] = e
	}
	ctx := context.Background()
	for _, jobs := range []int{1, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunBatch(ctx, exps, BatchOptions{
					Jobs:   jobs,
					Config: RunConfig{Preset: "quick"},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepScheduler measures the task-level scheduler on a single
// sweep experiment: with tasks as the scheduling unit, -jobs parallelizes
// inside one sweep, so jobs > 1 shortens the batch's critical path on
// multi-core hosts (results are byte-identical at every level; only
// wall-clock differs).
func BenchmarkSweepScheduler(b *testing.B) {
	e, ok := LookupExperiment("twocoloring-gap")
	if !ok {
		b.Fatal("twocoloring-gap not registered")
	}
	ctx := context.Background()
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := RunBatch(ctx, []*Experiment{e}, BatchOptions{
					Jobs:   jobs,
					Config: RunConfig{Preset: "quick"},
				})
				if err != nil {
					b.Fatal(err)
				}
				if results[0].Fit == nil {
					b.Fatal("missing fit")
				}
			}
		})
	}
}

// BenchmarkEngineParallelism compares the engine's sequential and parallel
// backends on the message-heavy 2-coloring path (results are bit-identical
// across backends; only wall-clock differs).
func BenchmarkEngineParallelism(b *testing.B) {
	const n = 2000
	tr, err := graph.BuildPath(n)
	if err != nil {
		b.Fatal(err)
	}
	ids := sim.DefaultIDs(n, 1)
	for _, p := range []int{1, 2, 4, -1} { // -1 = GOMAXPROCS
		b.Run(fmt.Sprintf("parallel=%d", p), func(b *testing.B) {
			eng := sim.NewEngine(sim.WithIDs(ids), sim.WithParallelism(p))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(tr, coloring.TwoColorPathAlgorithm{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimVsAnalytic is the dual-accounting ablation: the same generic
// algorithm once through the message-level simulator and once analytically.
func BenchmarkSimVsAnalytic(b *testing.B) {
	h, err := graph.BuildHierarchical([]int{12, 16})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := hierarchy.NewSchedule(hierarchy.Params{
		Problem: hierarchy.Problem{K: 2, Variant: hierarchy.Coloring35},
		Gammas:  []int{6},
	})
	if err != nil {
		b.Fatal(err)
	}
	levels := graph.ComputeLevels(h.Tree, 2)
	ids := sim.DefaultIDs(h.Tree.N(), 3)
	inputs := make([]any, len(levels))
	for i, l := range levels {
		inputs[i] = l
	}
	b.Run("simulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(h.Tree, hierarchy.Generic{Schedule: sched}, sim.Config{
				IDs: ids, Inputs: inputs, MaxRounds: 8*h.Tree.N() + 256,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hierarchy.RunAnalytic(h.Tree, levels, sched, ids); err != nil {
				b.Fatal(err)
			}
		}
	})
}
